//! Minimal stand-in for `rand` 0.9 (offline build; see `shims/README.md`).
//!
//! Provides the exact surface the workspace uses: the [`Rng`] trait with
//! `random_range` / `random_bool`, [`SeedableRng::seed_from_u64`], and a
//! deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64).
//! Seeded streams differ from upstream `rand`; only determinism is
//! promised.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (blanket-implemented for every
/// [`RngCore`], mirroring rand 0.9's `Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a `lo..hi` or `lo..=hi` range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly sampleable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi]` (both inclusive).
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
    /// The predecessor of `hi`, for half-open ranges. `None` if empty.
    fn half_open_hi(hi: Self) -> Option<Self>;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "empty sample range");
                let span = (hi as u128) - (lo as u128) + 1;
                // widening multiply keeps modulo bias below 2^-64
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                lo + ((wide >> 64) as $t)
            }
            fn half_open_hi(hi: Self) -> Option<Self> {
                hi.checked_sub(1)
            }
        }
    )*};
}
impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "empty sample range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                (lo as i128 + (wide >> 64) as i128) as $t
            }
            fn half_open_hi(hi: Self) -> Option<Self> {
                hi.checked_sub(1)
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        debug_assert!(lo <= hi, "empty sample range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
    fn half_open_hi(hi: Self) -> Option<Self> {
        // Half-open float ranges sample [lo, hi); the measure-zero
        // endpoint is ignored rather than excluded bit-exactly.
        Some(hi)
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
    fn half_open_hi(hi: Self) -> Option<Self> {
        Some(hi)
    }
}

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Uniform sample from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let hi = T::half_open_hi(self.end).expect("empty sample range");
        T::sample_inclusive(rng, self.start, hi)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's
    /// `StdRng`; different stream, same determinism guarantees).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000u64), b.random_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-6i32..10);
            assert!((-6..10).contains(&w));
            let x = rng.random_range(2..=5u64);
            assert!((2..=5).contains(&x));
            let f = rng.random_range(1.0..10.0f64);
            assert!((1.0..10.0).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn generic_rng_bound_usable() {
        fn takes_rng<R: Rng>(rng: &mut R) -> u64 {
            rng.random_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(takes_rng(&mut rng) < 10);
    }
}
