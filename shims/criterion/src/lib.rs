//! Minimal stand-in for `criterion` 0.5 (offline build; see
//! `shims/README.md`).
//!
//! Runs each benchmark for a handful of timed iterations (after one
//! warm-up) and prints the mean wall-clock time per iteration. No
//! statistics, no HTML reports. Set `CRITERION_SHIM_ITERS` to override
//! the per-benchmark iteration count.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: default_iters(),
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one("", id, default_iters(), &mut f);
        self
    }
}

fn default_iters() -> usize {
    std::env::var("CRITERION_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as the benchmark `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into().label, self.sample_size, &mut f);
        self
    }

    /// Runs `f(b, input)` as the benchmark `id` within this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into().label, self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, iters: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        total: Duration::ZERO,
        timed_iters: 0,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.timed_iters == 0 {
        println!("bench {label}: no iterations recorded");
    } else {
        let mean = b.total / b.timed_iters as u32;
        println!("bench {label}: {mean:?} mean over {} iters", b.timed_iters);
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`].
pub struct Bencher {
    iters: usize,
    total: Duration,
    timed_iters: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.timed_iters += self.iters;
    }
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Declares a benchmark group function (upstream-compatible form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_ids_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("b", 7), &3u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            });
        });
        group.finish();
        assert!(runs >= 2);
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
        assert_eq!(BenchmarkId::new("n", 1).label, "n/1");
    }
}
