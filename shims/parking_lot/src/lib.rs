//! Minimal stand-in for `parking_lot` 0.12 (offline build; see
//! `shims/README.md`). [`Mutex`] wraps `std::sync::Mutex` with
//! parking_lot's panic-free, poison-free surface: a panicking holder
//! does not poison the lock for later callers.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{MutexGuard, PoisonError};

/// A mutual-exclusion lock (no poisoning, like upstream parking_lot).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// New lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1u64);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn not_poisoned_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
