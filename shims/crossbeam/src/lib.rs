//! Minimal stand-in for `crossbeam` 0.8 (offline build; see
//! `shims/README.md`). Only `utils::CachePadded` is provided.

#![forbid(unsafe_code)]

pub mod utils {
    //! Utility types.

    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so adjacent instances never
    /// share a cache line (matches upstream's alignment on x86_64 and
    /// aarch64, which both prefetch line pairs).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value`.
        pub fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::utils::CachePadded;

    #[test]
    fn padded_roundtrip_and_alignment() {
        let p = CachePadded::new(41u64);
        assert_eq!(*p, 41);
        assert_eq!(CachePadded::into_inner(p), 41);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
    }
}
