//! Minimal stand-in for `crossbeam` 0.8 (offline build; see
//! `shims/README.md`). Provides `utils::CachePadded`, the
//! `channel` MPMC channels used by `rtt_engine`'s batch executor, and
//! the `thread::scope` scoped-spawn API used by `rtt_par`'s
//! deterministic map/reduce helper.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads, API-compatible with the `crossbeam::thread`
    //! subset this workspace uses. Upstream predates
    //! `std::thread::scope` (Rust 1.63); the standard library version
    //! has the same guarantee — every spawned thread joins before
    //! `scope` returns, so borrows of stack data may cross the spawn
    //! boundary — which is all `rtt_par::map_chunks` needs.

    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels, API-compatible with
    //! the `crossbeam-channel` subset this workspace uses: `unbounded`,
    //! `bounded`, cloneable `Sender`/`Receiver`, and disconnect
    //! semantics (recv fails once all senders are gone and the queue is
    //! drained; send fails once all receivers are gone).
    //!
    //! Built on `Mutex` + `Condvar` instead of upstream's lock-free
    //! core: same semantics, adequate throughput for the work-queue
    //! granularity the executor needs (requests, not messages).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Capacity for `bounded` channels (`None` = unbounded).
        cap: Option<usize>,
        /// Signalled when an item arrives or the channel disconnects.
        not_empty: Condvar,
        /// Signalled when an item leaves (bounded senders wait on this).
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message back to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders still connected).
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half; clone freely across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone freely across threads (each message is
    /// delivered to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages
    /// (senders block while full). `cap = 0` is rounded up to 1: the
    /// shim has no rendezvous mode and none of its users need one.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, blocking while a bounded channel is full.
        /// Fails (returning the message) once every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .shared
                            .not_full
                            .wait(st)
                            .expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking while the channel is
        /// empty. Fails once the queue is drained and all senders are
        /// gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .not_empty
                    .wait(st)
                    .expect("channel poisoned");
            }
        }

        /// Non-blocking [`Receiver::recv`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Drains the channel until disconnect (blocking iterator).
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received messages; ends on disconnect.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // wake blocked receivers so they observe the disconnect
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // wake blocked senders so they observe the disconnect
                self.shared.not_full.notify_all();
            }
        }
    }
}

pub mod utils {
    //! Utility types.

    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so adjacent instances never
    /// share a cache line (matches upstream's alignment on x86_64 and
    /// aarch64, which both prefetch line pairs).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value`.
        pub fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, SendError, TryRecvError};
    use super::utils::CachePadded;

    #[test]
    fn padded_roundtrip_and_alignment() {
        let p = CachePadded::new(41u64);
        assert_eq!(*p, 41);
        assert_eq!(CachePadded::into_inner(p), 41);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
    }

    #[test]
    fn unbounded_fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (tx, rx) = bounded::<usize>(4);
        let n = 200;
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().sum::<usize>())
            })
            .collect();
        drop(rx);
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..n {
                        tx.send(2 * i + p).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        // 0..2n summed exactly once across all consumers
        assert_eq!(total, (0..2 * n).sum::<usize>());
    }

    #[test]
    fn bounded_blocks_then_drains() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = {
            let tx = tx.clone();
            std::thread::spawn(move || tx.send(2).unwrap())
        };
        // the queued 1 must come out before the blocked 2 lands
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }
}
