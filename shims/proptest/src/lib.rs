//! Minimal stand-in for `proptest` (offline build; see `shims/README.md`).
//!
//! Implements the surface the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! attribute, [`Strategy`] with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`option::of`], and the
//! `prop_assert*` macros. Generation is seeded and deterministic; there
//! is **no shrinking** — a failure reports the case index *and the
//! case's RNG seed*, and setting `RTT_PROPTEST_SEED=<seed>` replays
//! exactly that seeded case (combine with the test's name filter, e.g.
//! `RTT_PROPTEST_SEED=0x… cargo test my_property`).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::Range;

/// Deterministic RNG handed to strategies by the [`proptest!`] runner.
pub struct TestRng(StdRng);

impl TestRng {
    /// The seed [`TestRng::for_case`] derives for a (test, case) pair —
    /// exposed so failure messages can print it and
    /// [`replay_seed`]-driven reruns can reconstruct the exact stream.
    pub fn seed_for(test_name: &str, case: u32) -> u64 {
        // FNV-1a over the test name keeps distinct tests on distinct
        // streams while staying fully deterministic run-to-run.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        h ^ (case as u64).wrapping_mul(0x9E37_79B9)
    }

    /// Fixed-seed RNG; `case` perturbs the stream per test case.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        Self::from_seed(Self::seed_for(test_name, case))
    }

    /// RNG reconstructed from a reported seed (see [`replay_seed`]).
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn range<T: SampleUniform>(&mut self, lo: T, hi_incl: T) -> T {
        T::sample_inclusive(&mut self.0, lo, hi_incl)
    }

    fn random_usize(&mut self, range: Range<usize>) -> usize {
        self.0.random_range(range)
    }

    fn random_bool_half(&mut self) -> bool {
        self.0.random_bool(0.5)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let hi = T::half_open_hi(self.end).expect("empty strategy range");
        rng.range(self.start, hi)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`] (upstream `SizeRange`).
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            SizeRange(lo..hi + 1)
        }
    }

    /// `Vec` strategy with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into().0,
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_usize(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// `Some` with probability 1/2.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.random_bool_half() {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Runner configuration (subset of upstream's fields).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod test_runner {
    //! Re-exports for macro use.
    pub use super::{ProptestConfig, TestRng};
}

/// Parses a reported seed: `0x`-prefixed hex (the format failure
/// messages print) or plain decimal.
pub fn parse_seed(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| format!("RTT_PROPTEST_SEED: cannot parse {s:?} as a u64 seed"))
}

/// The seed from `RTT_PROPTEST_SEED`, if set: the [`proptest!`] runner
/// then replays exactly one case with that seed instead of the full
/// sweep. A malformed value panics rather than silently running the
/// normal sweep — a replay that quietly ignores its seed would report
/// "fixed" for a bug that was never rerun.
pub fn replay_seed() -> Option<u64> {
    let raw = std::env::var("RTT_PROPTEST_SEED").ok()?;
    Some(parse_seed(&raw).unwrap_or_else(|e| panic!("{e}")))
}

pub mod prelude {
    //! The usual imports.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..10, v in proptest::collection::vec(0i32..5, 0..4)) {
///         prop_assert!(x < 10 && v.len() < 4);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                if let Some(seed) = $crate::replay_seed() {
                    // single-case replay of a reported failure; combine
                    // with the harness name filter to target one test
                    eprintln!(
                        "proptest shim: '{}' replaying one case from RTT_PROPTEST_SEED=0x{seed:016x}",
                        stringify!($name)
                    );
                    let mut __rng = $crate::test_runner::TestRng::from_seed(seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                    return;
                }
                for case in 0..config.cases {
                    let seed = $crate::test_runner::TestRng::seed_for(stringify!($name), case);
                    let mut __rng = $crate::test_runner::TestRng::from_seed(seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let run = ::std::panic::AssertUnwindSafe(|| { $body });
                    if let Err(e) = ::std::panic::catch_unwind(run) {
                        eprintln!(
                            "proptest shim: '{}' failed at case {} of {}; replay just this case with RTT_PROPTEST_SEED=0x{seed:016x}",
                            stringify!($name), case, config.cases
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_collections(x in 1u64..30, v in crate::collection::vec((1u64..6, -3i32..4), 0..5), o in crate::option::of(0u8..6)) {
            prop_assert!((1..30).contains(&x));
            prop_assert!(v.len() < 5);
            for (a, b) in &v {
                prop_assert!((1..6).contains(a) && (-3..4).contains(b));
            }
            if let Some(u) = o {
                prop_assert!(u < 6);
            }
        }

        #[test]
        fn flat_map_dependent_lengths(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0i32..10, n..n + 1))) {
            prop_assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn reported_seed_reconstructs_the_exact_stream() {
        let seed = crate::TestRng::seed_for("some_property", 17);
        let strat = (1u64..1000, crate::collection::vec(0i32..50, 0..8));
        let mut by_case = crate::TestRng::for_case("some_property", 17);
        let mut by_seed = crate::TestRng::from_seed(seed);
        let a = crate::Strategy::generate(&strat, &mut by_case);
        let b = crate::Strategy::generate(&strat, &mut by_seed);
        assert_eq!(a, b, "replaying the seed must regenerate the failing inputs");
        // distinct cases / names stay on distinct streams
        assert_ne!(seed, crate::TestRng::seed_for("some_property", 18));
        assert_ne!(seed, crate::TestRng::seed_for("other_property", 17));
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(crate::parse_seed("0x00000000000000ff"), Ok(255));
        assert_eq!(crate::parse_seed("0XFF"), Ok(255));
        assert_eq!(crate::parse_seed(" 255 "), Ok(255));
        assert!(crate::parse_seed("za").is_err());
        assert!(crate::parse_seed("").is_err());
        // round trip through the failure-message format
        let seed = crate::TestRng::seed_for("p", 3);
        assert_eq!(crate::parse_seed(&format!("0x{seed:016x}")), Ok(seed));
    }
}
