//! Exact planning for a series-parallel analytics pipeline (§3.4).
//!
//! A fork-join ETL job: ingest, three parallel feature extractors (one
//! with a heavy two-stage inner pipeline), a join, and a report stage.
//! Each stage is a hot accumulator cell whose update cost shrinks with
//! reducer space (k-way splitting, Eq. 2). The series-parallel DP gives
//! the *exact* space-time tradeoff; the approximation algorithms are
//! compared against it.
//!
//! Run with: `cargo run --release --example sp_pipeline`

use resource_time_tradeoff::core::instance::{Activity, ArcInstance};
use resource_time_tradeoff::core::sp_dp::{solve_sp_exact, sp_min_resource};
use resource_time_tradeoff::core::{solve_bicriteria, solve_kway_5approx, validate};
use resource_time_tradeoff::dag::Dag;
use resource_time_tradeoff::duration::Duration;

fn main() {
    // activity-on-arc pipeline (durations = k-way splitting, Eq. 2)
    let mut g: Dag<(), Activity> = Dag::new();
    let s = g.add_node(());
    let fork = g.add_node(());
    let join = g.add_node(());
    let t = g.add_node(());
    // ingest: 120 updates
    g.add_edge(s, fork, Activity::labeled("ingest", Duration::kway(120)))
        .unwrap();
    // extractor A: simple, 64 updates
    g.add_edge(fork, join, Activity::labeled("extract-A", Duration::kway(64)))
        .unwrap();
    // extractor B: 100 updates
    g.add_edge(fork, join, Activity::labeled("extract-B", Duration::kway(100)))
        .unwrap();
    // extractor C: two chained stages of 80 updates each
    let mid = g.add_node(());
    g.add_edge(fork, mid, Activity::labeled("extract-C1", Duration::kway(80)))
        .unwrap();
    g.add_edge(mid, join, Activity::labeled("extract-C2", Duration::kway(80)))
        .unwrap();
    // report: 48 updates
    g.add_edge(join, t, Activity::labeled("report", Duration::kway(48)))
        .unwrap();
    let arc = ArcInstance::new(g).unwrap();

    println!("pipeline base makespan (no extra space): {}", arc.base_makespan());
    println!("ideal makespan (unlimited space):        {}", arc.ideal_makespan());

    let budget = 30;
    let (sp, sol) = solve_sp_exact(&arc, budget).expect("pipeline is series-parallel");
    validate(&arc, &sol).unwrap();
    println!("\nexact DP at B = {budget}: makespan {}", sp.makespan);
    println!("per-arc space allocation (edge -> units):");
    for e in arc.dag().edge_ids() {
        let lvl = sp.levels[e.index()];
        if lvl > 0 {
            println!(
                "  {:<10} gets {:>2} units (duration {} -> {})",
                arc.dag().edge(e).label,
                lvl,
                arc.dag().edge(e).duration.time(0),
                arc.dag().edge(e).duration.time(lvl),
            );
        }
    }

    // approximation algorithms vs the exact optimum
    println!("\nsolver comparison at B = {budget}:");
    println!("  exact DP            : {}", sp.makespan);
    let bi = solve_bicriteria(&arc, budget, 0.5).unwrap();
    println!(
        "  bi-criteria (α=.5)  : {} (budget used {} ≤ 2B)",
        bi.solution.makespan, bi.solution.budget_used
    );
    let kw = solve_kway_5approx(&arc, budget).unwrap();
    println!(
        "  k-way 5-approx      : {} (budget used {} ≤ B)",
        kw.solution.makespan, kw.solution.budget_used
    );

    // the whole curve from one DP run + min-resource queries
    println!("\ntradeoff curve (one DP run):");
    for b in (0..=budget).step_by(5) {
        println!("  B = {b:>2} -> makespan {}", sp.curve[b as usize]);
    }
    for target in [sp.curve[0] / 2, sp.curve[0] / 4] {
        match sp_min_resource(&arc, target, 200) {
            Some(r) => println!("min space for makespan ≤ {target}: {r}"),
            None => println!("makespan ≤ {target}: unreachable"),
        }
    }
}
