//! The three reuse regimes of §1, measured side by side.
//!
//! The paper asks three questions about a budget of extra space:
//! Question 1.1 (no reuse — dedicated allocations), Question 1.2
//! (global reuse — a central pool), and Question 1.3 (reuse over
//! source→sink paths — the paper's subject). This example builds
//! instances that separate the three and prints the measured makespans,
//! reproducing the hierarchy the introduction argues qualitatively:
//!
//! * serial structure: path reuse matches global reuse, both beat
//!   dedicated allocations;
//! * parallel structure: only the global pool can recycle units across
//!   branches — the gap path-reuse accepts in exchange for avoiding a
//!   central allocator bottleneck.
//!
//! Run with: `cargo run --release --example reuse_regimes`

use resource_time_tradeoff::core::regimes::{
    compare_regimes, global_reuse_schedule, solve_noreuse_exact, sp_noreuse_curve, GlobalPolicy,
};
use resource_time_tradeoff::core::sp_dp::solve_sp_exact;
use resource_time_tradeoff::core::transform::to_arc_form;
use resource_time_tradeoff::core::{ArcInstance, Instance, Job};
use resource_time_tradeoff::dag::Dag;
use resource_time_tradeoff::duration::Duration;

/// A pipeline of `depth` stages, each an improvable job (10 → 0 for 4
/// units): the friendliest case for reuse over paths.
fn pipeline(depth: usize) -> ArcInstance {
    let mut g: Dag<Job, ()> = Dag::new();
    let s = g.add_node(Job::labeled("s", Duration::zero()));
    let mut prev = s;
    for i in 0..depth {
        let v = g.add_node(Job::labeled(format!("stage{i}"), Duration::two_point(10, 4, 0)));
        g.add_edge(prev, v, ()).unwrap();
        prev = v;
    }
    let t = g.add_node(Job::labeled("t", Duration::zero()));
    g.add_edge(prev, t, ()).unwrap();
    to_arc_form(&Instance::new(g).unwrap()).0
}

/// `width` parallel branches (10 → 1 for 4 units each): the case where
/// paths cannot share but a global pool can.
fn fan(width: usize) -> ArcInstance {
    let mut g: Dag<Job, ()> = Dag::new();
    let s = g.add_node(Job::labeled("s", Duration::zero()));
    let t = g.add_node(Job::labeled("t", Duration::zero()));
    for i in 0..width {
        let v = g.add_node(Job::labeled(format!("branch{i}"), Duration::two_point(10, 4, 1)));
        g.add_edge(s, v, ()).unwrap();
        g.add_edge(v, t, ()).unwrap();
    }
    to_arc_form(&Instance::new(g).unwrap()).0
}

fn show(name: &str, arc: &ArcInstance, budgets: &[u64]) {
    println!("\n== {name} (base makespan {}) ==", arc.base_makespan());
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>16}",
        "B", "no-reuse (1.1)", "paths (1.3)", "global-eager", "global-patient"
    );
    for &b in budgets {
        let c = compare_regimes(arc, b);
        println!(
            "{:>6} {:>14} {:>14} {:>14} {:>16}",
            b, c.noreuse, c.path_reuse, c.global_eager, c.global_patient
        );
    }
}

fn main() {
    // ---- serial pipeline: reuse over the path is all you need ---------
    let pipe = pipeline(4);
    show("pipeline of 4 stages", &pipe, &[0, 4, 8, 16]);
    println!(
        "note: at B = 4 path reuse already reaches the floor — the same\n\
         4 units expedite all four stages as they flow down the chain;\n\
         no-reuse needs 16."
    );

    // ---- parallel fan: paths cannot share, the pool can ----------------
    let f = fan(4);
    show("fan of 4 branches", &f, &[0, 4, 8, 16]);
    println!(
        "note: at B = 4 the global pool runs branches back to back while\n\
         path reuse must leave three branches unimproved: the cost of\n\
         avoiding a central allocator (the paper's §1 motivation)."
    );

    // ---- the whole tradeoff curve on a series-parallel instance -------
    let (sp, _) = solve_sp_exact(&pipe, 16).expect("pipeline is series-parallel");
    let nr = sp_noreuse_curve(&pipe, 16).expect("series-parallel");
    println!("\n== pipeline tradeoff curves (makespan per budget) ==");
    println!("{:>6} {:>12} {:>12} {:>12}", "B", "no-reuse", "path-reuse", "advantage");
    for b in (0..=16).step_by(2) {
        let advantage = nr[b] as i64 - sp.curve[b] as i64;
        println!("{:>6} {:>12} {:>12} {:>12}", b, nr[b], sp.curve[b], advantage);
    }

    // ---- one concrete schedule, for intuition ---------------------------
    let sched = global_reuse_schedule(&f, 4, GlobalPolicy::Patient);
    println!(
        "\nglobal-patient on the fan at B = 4: makespan {}, peak in use {}",
        sched.makespan, sched.peak_in_use
    );
    let nr = solve_noreuse_exact(&f, 4);
    println!(
        "no-reuse exact at B = 4: makespan {} with {} unit(s) spent",
        nr.makespan, nr.budget_used
    );
}
