//! The full pipeline the paper motivates, end to end:
//! detect races → capture them as a DAG → place reducers optimally.
//!
//! A fork-join histogram program: many parallel strands update a few
//! shared counting cells with wildly different contention. We detect
//! the determinacy races, extract the race DAG `D(P)`, attach Eq. 3
//! (recursive binary) duration functions, and ask the solvers where a
//! fixed budget of reducer space should go.
//!
//! Run with: `cargo run --release --example race_to_reducers`

use resource_time_tradeoff::core::transform::to_arc_form;
use resource_time_tradeoff::core::{exact::solve_exact, solve_recbinary_improved, Instance};
use resource_time_tradeoff::dag::dot::to_dot;
use resource_time_tradeoff::duration::Duration;
use resource_time_tradeoff::race::{detect_races, extract_race_dag, interleave, Prog};

fn main() {
    // ---- Figure 1 first: the two-thread increment --------------------
    let outcomes = interleave::counter_outcomes(2, 1);
    println!(
        "Figure 1, exhaustively: two parallel x++ can print {:?}",
        outcomes.iter().collect::<Vec<_>>()
    );

    // ---- a histogram with skewed contention --------------------------
    // locations: inputs 100.. (one per strand), counters 0, 1, 2
    // counter 0 is hot (24 updates), 1 is warm (8), 2 is cold (2)
    let mut strands = Vec::new();
    let mut input = 100u64;
    for (counter, updates) in [(0u64, 24usize), (1, 8), (2, 2)] {
        for _ in 0..updates {
            strands.push(Prog::update(counter, Some(input), vec![]));
            input += 1;
        }
    }
    let program = Prog::Par(strands);

    let races = detect_races(&program);
    println!(
        "\nhistogram program: {} strands, {} racing pairs",
        program.strand_count(),
        races.len()
    );

    // ---- extract D(P) and optimize -----------------------------------
    let rd = extract_race_dag(&program).expect("acyclic");
    println!(
        "race DAG: {} cells, {} update arcs",
        rd.dag.node_count(),
        rd.dag.edge_count()
    );

    // attach Eq. 3 durations; normalization adds zero-work terminals
    let inst = Instance::race_dag_normalized(&rd.dag, Duration::recursive_binary).unwrap();
    let (arc, map) = to_arc_form(&inst);
    println!("zero-space makespan: {}", inst.base_makespan());

    for budget in [2u64, 4, 8, 16] {
        let approx = solve_recbinary_improved(&arc, budget).unwrap();
        let exact = solve_exact(&arc, budget);
        println!(
            "B = {budget:>2}: exact {}  (4/3,14/5)-approx {}  [budget used {}]",
            exact.solution.makespan, approx.solution.makespan, approx.solution.budget_used
        );
        // where did the exact solver put the space?
        let placements: Vec<String> = arc
            .dag()
            .edge_ids()
            .filter(|e| exact.levels[e.index()] > 0)
            .map(|e| {
                let origin = arc.dag().edge(e).origin;
                let label = origin
                    .map(|v| inst.dag().node(v).label.clone())
                    .unwrap_or_default();
                format!("{}:{}", label, exact.levels[e.index()])
            })
            .collect();
        println!("        exact reducer placement: {placements:?}");
    }
    let _ = map;

    // ---- the Question 1.3 routing certificate -------------------------
    // every unit of space travels one source→sink path and may build
    // reducers at several cells along it
    let exact = solve_exact(&arc, 8);
    let plan = resource_time_tradeoff::core::routing_plan(&arc, &exact.solution)
        .expect("exact solutions are routable");
    println!("\nrouting plan for B = 8 (how the units flow):");
    println!("{}", plan.render(&arc));

    // DOT export for inspection
    let dot = to_dot(
        &rd.dag,
        "race_dag",
        |_, loc| format!("cell {loc}"),
        |_, _| String::new(),
    );
    println!("\nDOT of the race DAG (pipe into `dot -Tpng`):\n{}", &dot[..dot.len().min(400)]);
}
