//! The two optimization objectives of §2, played against each other.
//!
//! The TCTP literature the paper builds on distinguishes the *deadline*
//! problem (meet a deadline with the least resource) from the *budget*
//! problem (spend at most B, finish earliest). This example walks the
//! whole tradeoff curve of one instance from both directions and checks
//! they are inverses: `min_resource(makespan(B)) ≤ B` and
//! `makespan(min_resource(T)) ≤ T` (up to the bi-criteria slack for the
//! approximate solvers).
//!
//! Run with: `cargo run --release --example deadline_budget`

use resource_time_tradeoff::core::exact::{solve_exact, solve_exact_min_resource};
use resource_time_tradeoff::core::sp_dp::{solve_sp_exact, sp_min_resource};
use resource_time_tradeoff::core::transform::to_arc_form;
use resource_time_tradeoff::core::{min_resource, Instance, Job};
use resource_time_tradeoff::dag::Dag;
use resource_time_tradeoff::duration::Duration;

/// A build-pipeline-shaped instance: fetch → [compile × 3 parallel] →
/// link → test, with different contention per stage.
fn build_pipeline() -> resource_time_tradeoff::core::ArcInstance {
    let mut g: Dag<Job, ()> = Dag::new();
    let fetch = g.add_node(Job::labeled("fetch", Duration::recursive_binary(16)));
    let c1 = g.add_node(Job::labeled("compile-a", Duration::recursive_binary(64)));
    let c2 = g.add_node(Job::labeled("compile-b", Duration::recursive_binary(32)));
    let c3 = g.add_node(Job::labeled("compile-c", Duration::recursive_binary(32)));
    let link = g.add_node(Job::labeled("link", Duration::recursive_binary(16)));
    let test = g.add_node(Job::labeled("test", Duration::recursive_binary(64)));
    for c in [c1, c2, c3] {
        g.add_edge(fetch, c, ()).unwrap();
        g.add_edge(c, link, ()).unwrap();
    }
    g.add_edge(link, test, ()).unwrap();
    to_arc_form(&Instance::new(g).unwrap()).0
}

fn main() {
    let arc = build_pipeline();
    println!(
        "build pipeline: base makespan {}, ideal {}, saturation budget {}",
        arc.base_makespan(),
        arc.ideal_makespan(),
        arc.saturation_budget()
    );

    // ---- the budget problem, exactly --------------------------------
    println!("\n== budget problem (exact): earliest finish per budget ==");
    println!("{:>8} {:>10} {:>14}", "B", "makespan", "resource used");
    let mut curve = Vec::new();
    for b in [0u64, 4, 8, 16, 32, 64] {
        let r = solve_exact(&arc, b);
        println!(
            "{:>8} {:>10} {:>14}",
            b, r.solution.makespan, r.solution.budget_used
        );
        curve.push((b, r.solution.makespan));
    }

    // ---- the deadline problem, exactly — and the inverse check ------
    println!("\n== deadline problem (exact): least budget per deadline ==");
    println!("{:>8} {:>12} {:>10}", "deadline", "min budget", "inverse?");
    for &(b, t) in &curve {
        match solve_exact_min_resource(&arc, t) {
            Some((need, _)) => {
                let ok = need <= b;
                println!("{:>8} {:>12} {:>10}", t, need, ok);
                assert!(ok, "duality violated: needs {need} > {b} for deadline {t}");
            }
            None => println!("{:>8} {:>12} {:>10}", t, "—", "n/a"),
        }
    }

    // ---- approximate min-resource with its guarantee ----------------
    let target = arc.ideal_makespan() + (arc.base_makespan() - arc.ideal_makespan()) / 3;
    println!("\n== approximate deadline (α = 0.5, Theorem 3.4 dual) ==");
    match min_resource(&arc, target, 0.5) {
        Ok(r) => println!(
            "deadline {target}: LP needs ≥ {:.1}, rounded plan spends {} and finishes at {} (≤ 2×deadline = {})",
            r.lp_budget,
            r.solution.budget_used,
            r.solution.makespan,
            2 * target
        ),
        Err(e) => println!("deadline {target} unreachable: {e}"),
    }

    // ---- the same curve from one DP run on an SP instance ------------
    // the pipeline above is series-parallel, so §3.4 gives the whole
    // curve in one O(mB²) pass
    if let Some((sp, _)) = solve_sp_exact(&arc, 64) {
        println!("\n== §3.4 DP: the full curve from one run ==");
        let marks: Vec<String> = (0..=64u64)
            .step_by(8)
            .map(|b| format!("{}→{}", b, sp.curve[b as usize]))
            .collect();
        println!("B→makespan: {}", marks.join("  "));
        // cross-check the DP curve against the deadline direction
        for t in [sp.curve[0], sp.curve[16], sp.curve[64]] {
            if let Some(need) = sp_min_resource(&arc, t, 64) {
                println!("deadline {t}: DP says {need} units suffice");
            }
        }
    }
}
