//! Quickstart: build a small race DAG, attach duration functions, and
//! solve the minimum-makespan problem with every solver in the crate.
//!
//! Run with: `cargo run --release --example quickstart`

use resource_time_tradeoff::core::{
    exact::solve_exact, solve_bicriteria, solve_recbinary_4approx, sp_dp::solve_sp_exact,
    Instance,
};
use resource_time_tradeoff::core::transform::to_arc_form;
use resource_time_tradeoff::dag::Dag;
use resource_time_tradeoff::duration::Duration;

fn main() {
    // A pipeline of three hot memory cells: the first gets 64 updates,
    // the second 32, the third 16 — think successive reduction stages.
    // Node work = in-degree (the w_x = d_in(x) convention of the paper).
    let mut g: Dag<(), ()> = Dag::new();
    let s = g.add_node(());
    let x = g.add_node(());
    let y = g.add_node(());
    let z = g.add_node(());
    let t = g.add_node(());
    g.add_parallel_edges(s, x, (), 64).unwrap();
    g.add_parallel_edges(x, y, (), 32).unwrap();
    g.add_parallel_edges(y, z, (), 16).unwrap();
    g.add_edge(z, t, ()).unwrap();

    // Give every cell a recursive binary reducer duration function
    // (Eq. 3): with r units of space the cell's update time drops from
    // d to ⌈d/2^⌊log r⌋⌉ + log r + 1.
    let inst = Instance::race_dag(&g, Duration::recursive_binary).unwrap();
    println!("zero-resource makespan: {}", inst.base_makespan());

    // The solvers work on the activity-on-arc form (D').
    let (arc, _) = to_arc_form(&inst);

    let budget = 8;
    println!("\n--- budget B = {budget} ---");

    // Theorem 3.4: (1/α, 1/(1−α)) bi-criteria for any duration family.
    let bi = solve_bicriteria(&arc, budget, 0.5).unwrap();
    println!(
        "bi-criteria (α=0.5):  makespan {:>4}  budget used {:>3}  (LP bound {:.1})",
        bi.solution.makespan, bi.solution.budget_used, bi.lp_makespan
    );

    // Theorem 3.10: stays within the budget, makespan ≤ 4·OPT.
    let rb = solve_recbinary_4approx(&arc, budget).unwrap();
    println!(
        "rec-binary 4-approx:  makespan {:>4}  budget used {:>3}",
        rb.solution.makespan, rb.solution.budget_used
    );

    // §3.4: this instance is series-parallel, so the DP is exact —
    // and one run yields the entire budget-makespan tradeoff curve.
    let (sp, sol) = solve_sp_exact(&arc, budget).expect("chain is series-parallel");
    println!(
        "series-parallel DP :  makespan {:>4}  budget used {:>3}  (exact)",
        sp.makespan, sol.budget_used
    );
    println!("\ntradeoff curve (budget -> optimal makespan):");
    for (b, t) in sp.curve.iter().enumerate() {
        println!("  B = {b:>2}  ->  {t}");
    }

    // Brute force agrees (reference solver).
    let ex = solve_exact(&arc, budget);
    assert_eq!(ex.solution.makespan, sp.makespan);
    println!("\nbrute-force exact agrees: {}", ex.solution.makespan);
}
