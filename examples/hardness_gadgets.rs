//! Tour of the §4 hardness gadgets as executable objects.
//!
//! Builds the paper's running example `(V1 ∨ ¬V2 ∨ V3) ∧ (¬V1 ∨ V2 ∨ V3)`
//! (Figure 9) through every reduction in the paper, solving each with
//! the exact solvers to confirm the lemmas on this instance.
//!
//! Run with: `cargo run --release --example hardness_gadgets`

use resource_time_tradeoff::core::exact::{decide_feasible, solve_exact_min_resource};
use resource_time_tradeoff::hardness::{
    matching3d, partition, sat_chain, sat_general, sat_splitting, Formula,
};

fn main() {
    let f = Formula::paper_example();
    println!(
        "formula: (V1 ∨ ¬V2 ∨ V3) ∧ (¬V1 ∨ V2 ∨ V3), 1-in-3 model: {:?}",
        f.solve_1in3()
    );

    // ---- Theorem 4.1 (Figures 8-9) -----------------------------------
    let red = sat_general::reduce(&f);
    println!(
        "\n[Thm 4.1] DAG: {} nodes / {} arcs, budget {}, target {}",
        red.arc.dag().node_count(),
        red.arc.dag().edge_count(),
        red.budget,
        red.target
    );
    let sol = decide_feasible(&red.arc, red.budget, red.target).expect("satisfiable");
    println!(
        "          makespan 1 achieved with {} units (Lemma 4.2 ✓)",
        sol.budget_used
    );
    println!("          with budget-1: {:?}", decide_feasible(&red.arc, red.budget - 1, 1).is_some());

    // Table 2, regenerated from the gadget
    println!("\n[Table 2] earliest start times at C(5), C(6), C(7):");
    for (assignment, times) in sat_general::table2() {
        let fmt = |b: bool| if b { "T" } else { "F" };
        println!(
            "  Vi={} Vj={} Vk={}  ->  {} {} {}",
            fmt(assignment[0]),
            fmt(assignment[1]),
            fmt(assignment[2]),
            times[0],
            times[1],
            times[2]
        );
    }

    // ---- Theorem 4.4 (Figures 10-11) ----------------------------------
    let chain = sat_chain::reduce(&f);
    let (opt, _) = solve_exact_min_resource(&chain.arc, chain.target).unwrap();
    println!(
        "\n[Thm 4.4] chained min-resource instance: target {}, OPT = {opt} (2 ⇔ satisfiable)",
        chain.target
    );

    // ---- §4.2 (Figures 12-14) -----------------------------------------
    for fam in [
        sat_splitting::SplitFamily::KWay,
        sat_splitting::SplitFamily::RecursiveBinary,
    ] {
        let split = sat_splitting::reduce(&f, fam);
        let ok = decide_feasible(&split.arc, split.budget, split.target).is_some();
        println!(
            "[§4.2]    {fam:?} gadgets: budget {}, target {}, reachable: {ok}",
            split.budget, split.target
        );
    }

    // ---- Theorem 4.6 (Figures 15-16) ----------------------------------
    let p = partition::PartitionInstance::new(vec![3, 1, 2, 2]);
    let pred = partition::reduce(&p);
    let td = partition::tree_decomposition(&pred);
    let width = td.verify(pred.arc.dag()).unwrap();
    let ok = decide_feasible(&pred.arc, pred.budget, pred.target).is_some();
    println!(
        "\n[Thm 4.6] Partition {:?}: treewidth ≤ {width}, makespan B/2 = {} reachable: {ok}",
        p.items, pred.target
    );

    // ---- Appendix A (Figures 17-18) ------------------------------------
    let m3 = matching3d::Numerical3dm::new(vec![1, 2], vec![3, 5], vec![6, 3]);
    let mred = matching3d::reduce(&m3).unwrap();
    let ok = decide_feasible(&mred.arc, mred.budget, mred.target).is_some();
    println!(
        "[App A]   numerical 3DM n=2: budget n² = {}, target 2M+T = {}, reachable: {ok}",
        mred.budget, mred.target
    );
    println!("          brute-force matching: {:?}", m3.solve().is_some());
}
