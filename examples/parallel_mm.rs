//! The paper's motivating workload (Figure 3): Parallel-MM.
//!
//! Three acts:
//! 1. detect the data races of the naive fully-parallel matrix multiply
//!    and extract its race DAG (§1);
//! 2. sweep reducer heights on the race DAG and reproduce the
//!    `Θ(n/2^h + h)` space-time tradeoff analytically and on the
//!    physically expanded DAG;
//! 3. actually multiply matrices with racing threads tamed by a real
//!    concurrent reducer, verifying against the serial product.
//!
//! Run with: `cargo run --release --example parallel_mm`

use resource_time_tradeoff::race::{detect_races, extract_race_dag, mm};
use resource_time_tradeoff::reducer::{AddU64, BinaryReducer};
use resource_time_tradeoff::sim::parallel_mm as mm_sim;

fn main() {
    // ---- Act 1: races and the race DAG ------------------------------
    let n = 4u64;
    let (safe, _) = mm::parallel_mm(n);
    let (racy, layout) = mm::parallel_mm_racy(n);
    println!(
        "Parallel-MM n={n}: safe variant races = {}, racy variant races = {}",
        detect_races(&safe).len(),
        detect_races(&racy).len()
    );
    let rd = extract_race_dag(&racy).expect("acyclic dataflow");
    let z00 = rd.node_of[&layout.z(0, 0)];
    println!(
        "extracted race DAG: {} locations, {} update arcs, d_in(Z[0][0]) = {}",
        rd.dag.node_count(),
        rd.dag.edge_count(),
        rd.dag.in_degree(z00)
    );

    // ---- Act 2: the Figure 3 tradeoff curve --------------------------
    let n = 64usize;
    println!("\nreducer-height sweep for n = {n} (per Z cell):");
    println!("{:>3} {:>12} {:>10} {:>10}", "h", "extra space", "analytic", "measured");
    for p in mm_sim::tradeoff_curve(n, 7) {
        println!(
            "{:>3} {:>12} {:>10} {:>10}",
            p.height, p.extra_space, p.analytic, p.measured
        );
    }
    println!("(h = 1 halves the time with 2n² space; h = log n reaches Θ(log n))");

    // ---- Act 3: real threads, real reducer ---------------------------
    let n = 32usize;
    let x: Vec<u64> = (0..n * n).map(|i| (i % 7 + 1) as u64).collect();
    let y: Vec<u64> = (0..n * n).map(|i| (i % 5 + 1) as u64).collect();

    // serial reference
    let mut z_ref = vec![0u64; n * n];
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                z_ref[i * n + j] += x[i * n + k] * y[k * n + j];
            }
        }
    }

    // parallel: one binary reducer per output cell, all k-updates
    // applied from racing threads
    let reducers: Vec<BinaryReducer<AddU64>> = (0..n * n)
        .map(|_| BinaryReducer::new(AddU64, 3, n as u64))
        .collect();
    let threads = 8;
    std::thread::scope(|s| {
        for t in 0..threads {
            let reducers = &reducers;
            let (x, y) = (&x, &y);
            s.spawn(move || {
                // each thread takes a slice of the (i, j, k) space
                for idx in (t..n * n * n).step_by(threads) {
                    let (i, jk) = (idx / (n * n), idx % (n * n));
                    let (j, k) = (jk / n, jk % n);
                    reducers[i * n + j].update(x[i * n + k] * y[k * n + j]);
                }
            });
        }
    });
    let z: Vec<u64> = reducers.into_iter().map(|r| r.into_value()).collect();
    assert_eq!(z, z_ref, "reducer-based parallel multiply must be exact");
    println!(
        "\n{n}x{n} parallel multiply with height-3 reducers across {threads} threads: correct ✓"
    );
}
