//! Cross-crate: execution model vs analytic model (Observation 1.1,
//! Figures 2–5), race detection vs the optimization pipeline.

use resource_time_tradeoff::dag::gen;
use resource_time_tradeoff::duration::expand::{expand_reducers, ReducerVariant};
use resource_time_tradeoff::duration::Duration;
use resource_time_tradeoff::race::{detect_races, extract_race_dag, mm, Prog};
use resource_time_tradeoff::sim::{simulate, UNBOUNDED};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn observation_1_1_on_random_dags() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..20 {
        let tt = gen::random_race_dag(&mut rng, 12, 10);
        let makespan =
            resource_time_tradeoff::dag::longest_path_nodes(&tt.dag, |v| {
                tt.dag.in_degree(v) as u64
            })
            .unwrap()
            .weight;
        let sim = simulate(&tt.dag, UNBOUNDED);
        assert!(
            sim.finish <= makespan,
            "Observation 1.1: simulated {} > makespan {}",
            sim.finish,
            makespan
        );
    }
}

#[test]
fn brent_bound_on_random_dags() {
    let mut rng = StdRng::seed_from_u64(102);
    for _ in 0..10 {
        let tt = gen::random_race_dag(&mut rng, 10, 12);
        let work = tt.dag.edge_count() as u64;
        let span = simulate(&tt.dag, UNBOUNDED).finish;
        for p in [1usize, 2, 4] {
            let tp = simulate(&tt.dag, p).finish;
            assert!(
                tp <= work.div_ceil(p as u64) + span,
                "greedy bound: T_{p} = {tp} > W/p + span = {}",
                work.div_ceil(p as u64) + span
            );
            assert!(tp >= span, "span law");
            assert!(tp >= work.div_ceil(p as u64), "work law");
        }
    }
}

#[test]
fn expanded_reducers_never_hurt_makespan_beyond_formula() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..10 {
        let tt = gen::random_race_dag(&mut rng, 8, 20);
        let base = resource_time_tradeoff::dag::longest_path_nodes(&tt.dag, |v| {
            tt.dag.in_degree(v) as u64
        })
        .unwrap()
        .weight;
        // put height-1 reducers on all nodes with in-degree ≥ 4
        let heights: Vec<u32> = tt
            .dag
            .node_ids()
            .map(|v| u32::from(tt.dag.in_degree(v) >= 4))
            .collect();
        let exp = expand_reducers(&tt.dag, &heights, ReducerVariant::Sibling);
        // ⌈d/2⌉ + 2 ≤ d for d ≥ 4, so the makespan cannot increase
        assert!(
            exp.makespan() <= base,
            "reducers on hot nodes: {} > {base}",
            exp.makespan()
        );
    }
}

#[test]
fn race_pipeline_histogram_to_solver() {
    // parallel histogram: 16 strands hammering one cell + 4 on another
    let mut strands = Vec::new();
    for i in 0..16 {
        strands.push(Prog::update(0, Some(100 + i), vec![]));
    }
    for i in 0..4 {
        strands.push(Prog::update(1, Some(200 + i), vec![]));
    }
    let program = Prog::Par(strands);
    let races = detect_races(&program);
    assert_eq!(races.len(), 16 * 15 / 2 + 4 * 3 / 2);

    let rd = extract_race_dag(&program).unwrap();
    let inst = resource_time_tradeoff::core::Instance::race_dag_normalized(
        &rd.dag,
        Duration::recursive_binary,
    )
    .unwrap();
    // hot cell dominates: base makespan 16 (normalization arcs carry no work)
    assert_eq!(inst.base_makespan(), 16);
    let (arc, _) = resource_time_tradeoff::core::transform::to_arc_form(&inst);
    // give 4 units: reducer of height 2 on the hot cell -> ⌈16/4⌉+3 = 7
    let ex = resource_time_tradeoff::core::exact::solve_exact(&arc, 4);
    assert_eq!(ex.solution.makespan, 7);
}

#[test]
fn mm_extraction_feeds_the_solvers() {
    let n = 8u64;
    let (racy, _) = mm::parallel_mm_racy(n);
    let rd = extract_race_dag(&racy).unwrap();
    let inst = resource_time_tradeoff::core::Instance::race_dag_normalized(
        &rd.dag,
        Duration::recursive_binary,
    )
    .unwrap();
    // every Z cell takes n updates serially (X inputs are zero-work
    // sources): the critical path is source -> X -> Z, worth n
    assert_eq!(inst.base_makespan(), n);
    let (arc, _) = resource_time_tradeoff::core::transform::to_arc_form(&inst);
    // budget 4 per cell: height-2 reducers everywhere -> ⌈8/4⌉+3 = 5
    let r = resource_time_tradeoff::core::solve_recbinary_4approx(&arc, 4 * n * n).unwrap();
    resource_time_tradeoff::core::validate(&arc, &r.solution).unwrap();
    assert!(r.solution.makespan <= n);
    assert!(r.solution.budget_used <= 4 * n * n);
}

#[test]
fn reducer_sim_consistent_with_expansion_makespan() {
    // the tick-level reducer simulation and the expanded-DAG longest
    // path must agree for every (n, h)
    for n in [16u64, 100, 1000] {
        for h in 1..=4u32 {
            let sim = resource_time_tradeoff::sim::reducer_sim::simulate_reducer(
                n,
                h,
                usize::MAX,
            );
            let mut g: resource_time_tradeoff::dag::Dag<(), ()> =
                resource_time_tradeoff::dag::Dag::new();
            let hub = g.add_node(());
            for _ in 0..n {
                let s = g.add_node(());
                g.add_edge(s, hub, ()).unwrap();
            }
            let mut heights = vec![0u32; g.node_count()];
            heights[hub.index()] = h;
            let exp = expand_reducers(&g, &heights, ReducerVariant::Sibling);
            assert_eq!(sim.finish, exp.makespan(), "n={n} h={h}");
        }
    }
}
