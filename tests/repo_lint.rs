//! The PR-9 determinism self-lint, CI-enforced: every wire-path module
//! of the workspace must be free of byte-stability hazards —
//! hash-ordered collections feeding serialization, wall-clock reads
//! outside the allow-listed stderr paths. The rule set and the curated
//! wire-path file list live in `rtt_analyze::source_lint`; a finding
//! here names the file, line, rule, and offending snippet.

use resource_time_tradeoff::analyze::lint_workspace;
use std::path::Path;

#[test]
fn wire_path_sources_are_hazard_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = lint_workspace(root);
    assert!(
        findings.is_empty(),
        "determinism self-lint found {} hazard(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
