//! End-to-end: random instances through every solver, validated and
//! checked against the exact optimum (the Table 1 experiment as
//! assertions).

use resource_time_tradeoff::core::exact::solve_exact;
use resource_time_tradeoff::core::transform::to_arc_form;
use resource_time_tradeoff::core::{
    min_resource, solve_bicriteria, solve_kway_5approx, solve_recbinary_4approx,
    solve_recbinary_improved, validate, Instance,
};
use resource_time_tradeoff::dag::gen;
use resource_time_tradeoff::duration::Duration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_small_instances(seed: u64, family: fn(u64) -> Duration) -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..6 {
        let tt = gen::random_race_dag(&mut rng, 5, 8);
        // scale up in-degrees so the duration functions have room
        let mut g = resource_time_tradeoff::dag::Dag::new();
        for _ in tt.dag.node_ids() {
            g.add_node(());
        }
        for e in tt.dag.edge_refs() {
            let copies = rng.random_range(1..6usize);
            g.add_parallel_edges(e.src, e.dst, (), copies).unwrap();
        }
        out.push(Instance::race_dag(&g, family).unwrap());
    }
    out
}

#[test]
fn bicriteria_respects_both_bounds_on_random_instances() {
    for inst in random_small_instances(11, Duration::recursive_binary) {
        let (arc, _) = to_arc_form(&inst);
        for budget in [0u64, 2, 5, 10] {
            for alpha in [0.3, 0.5, 0.7] {
                let r = solve_bicriteria(&arc, budget, alpha).unwrap();
                validate(&arc, &r.solution).unwrap();
                assert!(
                    (r.solution.budget_used as f64) <= budget as f64 / (1.0 - alpha) + 1e-6
                );
                assert!(
                    r.solution.makespan as f64 <= r.lp_makespan / alpha + 1e-6,
                    "makespan {} vs LP {} / α {alpha}",
                    r.solution.makespan,
                    r.lp_makespan
                );
            }
        }
    }
}

#[test]
fn kway_5approx_vs_exact_ratio() {
    let mut worst: f64 = 1.0;
    for inst in random_small_instances(23, Duration::kway) {
        let (arc, _) = to_arc_form(&inst);
        for budget in [0u64, 3, 6] {
            let r = solve_kway_5approx(&arc, budget).unwrap();
            validate(&arc, &r.solution).unwrap();
            assert!(r.solution.budget_used <= budget, "single-criteria budget");
            let opt = solve_exact(&arc, budget).solution.makespan;
            assert!(
                r.solution.makespan <= 5 * opt.max(1),
                "Theorem 3.9: {} > 5 × {opt}",
                r.solution.makespan
            );
            if opt > 0 {
                worst = worst.max(r.solution.makespan as f64 / opt as f64);
            }
        }
    }
    // the observed ratio should be far below the worst-case bound
    assert!(worst <= 5.0, "observed {worst}");
}

#[test]
fn recbinary_solvers_vs_exact_ratio() {
    for inst in random_small_instances(37, Duration::recursive_binary) {
        let (arc, _) = to_arc_form(&inst);
        for budget in [0u64, 2, 4, 8] {
            let opt = solve_exact(&arc, budget).solution.makespan;
            let four = solve_recbinary_4approx(&arc, budget).unwrap();
            validate(&arc, &four.solution).unwrap();
            assert!(four.solution.budget_used <= budget);
            assert!(
                four.solution.makespan <= 4 * opt.max(1),
                "Theorem 3.10: {} > 4 × {opt}",
                four.solution.makespan
            );
            let imp = solve_recbinary_improved(&arc, budget).unwrap();
            validate(&arc, &imp.solution).unwrap();
            assert!(
                imp.solution.budget_used as f64 <= 4.0 / 3.0 * budget as f64 + 1e-9,
                "Theorem 3.16 resource: {} vs 4/3 × {budget}",
                imp.solution.budget_used
            );
            // 14/5 against the LP bound (≤ OPT) — compare against exact
            assert!(
                imp.solution.makespan as f64 <= 14.0 / 5.0 * (opt.max(1) as f64) + 1e-9,
                "Theorem 3.16 makespan: {} vs 2.8 × {opt}",
                imp.solution.makespan
            );
        }
    }
}

#[test]
fn min_resource_bicriteria_on_random_instances() {
    for inst in random_small_instances(53, Duration::recursive_binary) {
        let (arc, _) = to_arc_form(&inst);
        let base = arc.base_makespan();
        let ideal = arc.ideal_makespan();
        let target = ideal + (base - ideal) / 2;
        match min_resource(&arc, target, 0.5) {
            Ok(r) => {
                validate(&arc, &r.solution).unwrap();
                assert!(
                    r.solution.makespan as f64 <= target as f64 / 0.5 + 1e-9,
                    "makespan {} vs target {target}",
                    r.solution.makespan
                );
                assert!(
                    r.solution.budget_used as f64 <= r.lp_budget * 2.0 + 1e-6,
                    "budget {} vs LP {}",
                    r.solution.budget_used,
                    r.lp_budget
                );
            }
            Err(e) => panic!("target {target} between ideal and base must be feasible: {e:?}"),
        }
    }
}

#[test]
fn exact_is_monotone_and_bounded_by_extremes() {
    for inst in random_small_instances(71, Duration::kway) {
        let (arc, _) = to_arc_form(&inst);
        let base = arc.base_makespan();
        let ideal = arc.ideal_makespan();
        let mut prev = u64::MAX;
        for budget in [0u64, 1, 2, 4, 8, 16] {
            let r = solve_exact(&arc, budget);
            validate(&arc, &r.solution).unwrap();
            assert!(r.solution.makespan <= prev, "monotone in budget");
            assert!(r.solution.makespan <= base);
            assert!(r.solution.makespan >= ideal);
            prev = r.solution.makespan;
        }
    }
}
