//! Cross-crate hardness checks beyond the per-module tests: random
//! formulas through every reduction, cross-reduction consistency, and
//! inapproximability gaps measured end-to-end.

use resource_time_tradeoff::core::exact::{decide_feasible, solve_exact_min_resource};
use resource_time_tradeoff::hardness::{
    matching3d, partition, sat_chain, sat_general, sat_splitting, Formula,
};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

#[test]
fn random_formulas_all_reductions_agree() {
    let mut rng = StdRng::seed_from_u64(4242);
    for _ in 0..4 {
        let f = Formula::random(&mut rng, 3, 2);
        let sat = f.solve_1in3().is_some();

        let g = sat_general::reduce(&f);
        assert_eq!(
            decide_feasible(&g.arc, g.budget, g.target).is_some(),
            sat,
            "Thm 4.1 disagrees on {f:?}"
        );

        let ch = sat_chain::reduce(&f);
        let (opt, _) = solve_exact_min_resource(&ch.arc, ch.target).unwrap();
        assert_eq!(opt == 2, sat, "Thm 4.4 disagrees on {f:?}");
        assert!(opt <= 3, "3 units always suffice");
    }
}

/// Same cross-check at the paper's own scale; heavy (exponential decision
/// procedure on larger gadgets) — run with `cargo test -- --ignored`.
#[test]
#[ignore = "heavy: minutes of exponential search"]
fn random_formulas_all_reductions_agree_heavy() {
    let mut rng = StdRng::seed_from_u64(4242);
    for _ in 0..6 {
        let f = Formula::random(&mut rng, 4, 2);
        let sat = f.solve_1in3().is_some();
        let g = sat_general::reduce(&f);
        assert_eq!(
            decide_feasible(&g.arc, g.budget, g.target).is_some(),
            sat,
            "Thm 4.1 disagrees on {f:?}"
        );
        let ch = sat_chain::reduce(&f);
        let (opt, _) = solve_exact_min_resource(&ch.arc, ch.target).unwrap();
        assert_eq!(opt == 2, sat, "Thm 4.4 disagrees on {f:?}");
    }
}

#[test]
fn splitting_reduction_agrees_on_random_formulas() {
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..2 {
        let f = Formula::random(&mut rng, 3, 1);
        let sat = f.solve_1in3().is_some();
        let red = sat_splitting::reduce(&f, sat_splitting::SplitFamily::RecursiveBinary);
        assert_eq!(
            decide_feasible(&red.arc, red.budget, red.target).is_some(),
            sat,
            "§4.2 disagrees on {f:?}"
        );
    }
}

/// §4.2 cross-check at the original test scale — heavy.
#[test]
#[ignore = "heavy: minutes of exponential search"]
fn splitting_reduction_agrees_on_random_formulas_heavy() {
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..3 {
        let f = Formula::random(&mut rng, 3, 2);
        let sat = f.solve_1in3().is_some();
        let red = sat_splitting::reduce(&f, sat_splitting::SplitFamily::RecursiveBinary);
        assert_eq!(
            decide_feasible(&red.arc, red.budget, red.target).is_some(),
            sat,
            "§4.2 disagrees on {f:?}"
        );
    }
}

#[test]
fn theorem_43_gap_is_at_least_two() {
    // for unsatisfiable formulas OPT(makespan) jumps from 1 to ≥ 2:
    // no polynomial algorithm can approximate below factor 2. The
    // formula (V1∨V1∨V2) ∧ (V1∨V1∨¬V2) has no 1-in-3 assignment:
    // V1 = T makes two literals of each clause true, V1 = F forces
    // V2 = T for the first clause and V2 = F for the second.
    let unsat = Formula::new(
        2,
        vec![
            [
                resource_time_tradeoff::hardness::Lit::pos(0),
                resource_time_tradeoff::hardness::Lit::pos(0),
                resource_time_tradeoff::hardness::Lit::pos(1),
            ],
            [
                resource_time_tradeoff::hardness::Lit::pos(0),
                resource_time_tradeoff::hardness::Lit::pos(0),
                resource_time_tradeoff::hardness::Lit::neg(1),
            ],
        ],
    );
    assert!(unsat.solve_1in3().is_none());
    let red = sat_general::reduce(&unsat);
    assert!(decide_feasible(&red.arc, red.budget, 1).is_none());
    assert!(decide_feasible(&red.arc, red.budget, 2).is_some());
}

/// The original 3-variable, 4-clause unsatisfiable instance — heavy.
#[test]
#[ignore = "heavy: minutes of exponential search"]
fn theorem_43_gap_is_at_least_two_heavy() {
    use resource_time_tradeoff::hardness::Lit;
    let unsat = Formula::new(
        3,
        vec![
            [Lit::pos(0), Lit::pos(1), Lit::pos(2)],
            [Lit::neg(0), Lit::neg(1), Lit::pos(2)],
            [Lit::pos(0), Lit::neg(1), Lit::neg(2)],
            [Lit::neg(0), Lit::pos(1), Lit::neg(2)],
        ],
    );
    assert!(unsat.solve_1in3().is_none());
    let red = sat_general::reduce(&unsat);
    assert!(decide_feasible(&red.arc, red.budget, 1).is_none());
    assert!(decide_feasible(&red.arc, red.budget, 2).is_some());
}

#[test]
fn partition_reduction_is_weakly_hard_shape() {
    // the gadget's makespan equals max(side sums); solving it solves
    // Partition — across a batch of random instances.
    let mut rng = StdRng::seed_from_u64(88);
    for _ in 0..6 {
        let items: Vec<u64> = (0..4).map(|_| rng.random_range(1..6u64)).collect();
        let p = partition::PartitionInstance::new(items.clone());
        let red = partition::reduce(&p);
        let yes = p.solve().is_some();
        let feas = decide_feasible(&red.arc, red.budget, red.target).is_some();
        assert_eq!(yes, feas, "items {items:?}");
        // the decomposition stays narrow regardless of the instance
        let td = partition::tree_decomposition(&red);
        assert!(td.verify(red.arc.dag()).unwrap() <= 9);
    }
}

#[test]
fn matching3d_agrees_on_random_instances() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..4 {
        // build instances that at least divide evenly: draw triples
        // first, then shuffle columns
        let n = 2usize;
        let t = 10u64;
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut c = Vec::new();
        for _ in 0..n {
            let x = rng.random_range(1..5u64);
            let y = rng.random_range(1..(t - x - 1));
            a.push(x);
            b.push(y);
            c.push(t - x - y);
        }
        // shuffled instance is a yes-instance by construction
        let inst = matching3d::Numerical3dm::new(a, b, c);
        let red = matching3d::reduce(&inst).unwrap();
        let yes = inst.solve().is_some();
        assert!(yes, "constructed as yes-instance");
        assert_eq!(
            decide_feasible(&red.arc, red.budget, red.target).is_some(),
            yes
        );
        // tightening the target below 2M+T must fail
        assert!(decide_feasible(&red.arc, red.budget, red.target - 1).is_none());
    }
}

#[test]
fn gadget_dot_exports_are_well_formed() {
    let f = Formula::paper_example();
    let red = sat_general::reduce(&f);
    let dot = resource_time_tradeoff::dag::dot::to_dot(
        red.arc.dag(),
        "thm41",
        |_, _| String::new(),
        |_, a| a.label.clone(),
    );
    assert!(dot.starts_with("digraph thm41 {"));
    assert!(dot.trim_end().ends_with('}'));
    assert_eq!(
        dot.matches("->").count(),
        red.arc.dag().edge_count(),
        "one DOT edge per arc"
    );
}
