//! Property-based invariants across the whole stack.

use proptest::prelude::*;
use resource_time_tradeoff::core::exact::solve_exact;
use resource_time_tradeoff::core::instance::{Activity, ArcInstance};
use resource_time_tradeoff::core::sp_dp::solve_sp_exact;
use resource_time_tradeoff::core::transform::{expand_two_tuples, to_arc_form};
use resource_time_tradeoff::core::{solve_bicriteria, validate, Instance};
use resource_time_tradeoff::dag::{gen, Dag};
use resource_time_tradeoff::duration::{Duration, Tuple};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random canonical step function described by seed data.
fn arb_duration() -> impl Strategy<Value = Duration> {
    (
        1u64..30,
        proptest::collection::vec((1u64..6, 1u64..8), 0..4),
    )
        .prop_map(|(base, steps)| {
            let mut tuples = vec![Tuple::new(0, base)];
            let mut r = 0;
            let mut t = base;
            for (dr, dt) in steps {
                r += dr;
                t = t.saturating_sub(dt);
                tuples.push(Tuple::new(r, t));
            }
            Duration::step(tuples).expect("constructed non-increasing")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn duration_time_is_monotone_nonincreasing(d in arb_duration(), r1 in 0u64..40, r2 in 0u64..40) {
        let (lo, hi) = (r1.min(r2), r1.max(r2));
        prop_assert!(d.time(hi) <= d.time(lo));
        // resource_for_time inverts time()
        let t = d.time(hi);
        let r = d.resource_for_time(t).expect("achieved time is achievable");
        prop_assert!(r <= hi);
        prop_assert_eq!(d.time(r), t);
    }

    #[test]
    fn sp_dp_matches_bruteforce_on_random_sp(seed in 0u64..500, budget in 0u64..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gsp = gen::random_sp(&mut rng, 5);
        // attach pseudo-random durations derived from the seed
        let mut g: Dag<(), Activity> = Dag::new();
        for _ in gsp.tt.dag.node_ids() {
            g.add_node(());
        }
        for e in gsp.tt.dag.edge_refs() {
            let base = 3 + (seed + e.id.index() as u64 * 7) % 12;
            let gap = 1 + (seed + e.id.index() as u64 * 3) % 4;
            let rest = base.saturating_sub(1 + (seed % 3));
            g.add_edge(e.src, e.dst, Activity::new(Duration::two_point(base, gap, rest)))
                .unwrap();
        }
        let arc = ArcInstance::new(g).unwrap();
        let (sp, sol) = solve_sp_exact(&arc, budget).expect("generated SP instance");
        validate(&arc, &sol).unwrap();
        let ex = solve_exact(&arc, budget);
        prop_assert_eq!(sp.makespan, ex.solution.makespan,
            "DP vs brute force at B={}", budget);
    }

    /// The monotone two-pointer parallel merge must produce tables
    /// identical to the naive O(B²) scan on random SP trees — the whole
    /// tradeoff curve, every budget, every node shape.
    #[test]
    fn monotone_dp_tables_match_naive_on_random_sp(seed in 0u64..400, budget in 0u64..24) {
        use resource_time_tradeoff::core::sp_dp::{solve_sp_tree, solve_sp_tree_naive};
        use resource_time_tradeoff::dag::sp::decompose;
        let mut rng = StdRng::seed_from_u64(seed);
        let leaves = 2 + (seed as usize % 9);
        let gsp = gen::random_sp(&mut rng, leaves);
        let mut g: Dag<(), Activity> = Dag::new();
        for _ in gsp.tt.dag.node_ids() {
            g.add_node(());
        }
        for e in gsp.tt.dag.edge_refs() {
            let base = 2 + (seed + e.id.index() as u64 * 11) % 20;
            let gap = 1 + (seed + e.id.index() as u64 * 5) % 6;
            let rest = base.saturating_sub(1 + (seed % 4));
            g.add_edge(e.src, e.dst, Activity::new(Duration::two_point(base, gap, rest)))
                .unwrap();
        }
        let arc = ArcInstance::new(g).unwrap();
        let d = arc.dag();
        let tree = decompose(d, arc.source(), arc.sink()).expect("generated SP");
        let (fast, fast_alloc) = solve_sp_tree(&tree, |e| d.edge(e).duration.clone(), budget);
        let (naive, _) = solve_sp_tree_naive(&tree, |e| d.edge(e).duration.clone(), budget);
        prop_assert_eq!(&fast, &naive, "root tables diverge at B={}", budget);
        // the fast path's recovered allocation must stay within budget
        // at every leaf (the min-flow in solve_sp_exact certifies the
        // routed total)
        for &(_, r) in &fast_alloc {
            prop_assert!(r <= budget);
        }
        let (sp, sol) = solve_sp_exact(&arc, budget).expect("still SP");
        prop_assert_eq!(sp.makespan, fast[budget as usize]);
        validate(&arc, &sol).unwrap();
    }

    #[test]
    fn two_tuple_expansion_preserves_base_and_ideal(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tt0 = gen::random_race_dag(&mut rng, 4, 4);
        let inst = Instance::race_dag(&tt0.dag, Duration::recursive_binary).unwrap();
        let (arc, _) = to_arc_form(&inst);
        let tt = expand_two_tuples(&arc);
        // no purchases: D'' makespan equals D' base makespan
        let zero = vec![0u64; tt.dag.edge_count()];
        prop_assert_eq!(tt.makespan_with_flows(&zero), arc.base_makespan());
        // saturating every chain reproduces the ideal makespan
        let full: Vec<u64> = tt
            .dag
            .edge_ids()
            .map(|e| tt.dag.edge(e).buy.map_or(0, |(r, _)| r))
            .collect();
        prop_assert_eq!(tt.makespan_with_flows(&full), arc.ideal_makespan());
    }

    #[test]
    fn bicriteria_always_validates(seed in 0u64..200, budget in 0u64..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tt0 = gen::random_race_dag(&mut rng, 4, 5);
        let inst = Instance::race_dag(&tt0.dag, Duration::kway).unwrap();
        let (arc, _) = to_arc_form(&inst);
        let r = solve_bicriteria(&arc, budget, 0.5).unwrap();
        prop_assert!(validate(&arc, &r.solution).is_ok());
        // LP lower-bounds the achieved integral makespan
        prop_assert!(r.lp_makespan <= r.solution.makespan as f64 + 1e-6);
    }

    #[test]
    fn exact_solution_flows_decompose_into_paths(seed in 0u64..100, budget in 0u64..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tt0 = gen::random_race_dag(&mut rng, 4, 4);
        let inst = Instance::race_dag(&tt0.dag, Duration::recursive_binary).unwrap();
        let (arc, _) = to_arc_form(&inst);
        let r = solve_exact(&arc, budget);
        // validate() already checks path-decomposability; assert the
        // budget equals the decomposed amount
        let d = arc.dag();
        let edges: Vec<(usize, usize)> = d
            .edge_refs()
            .map(|e| (e.src.index(), e.dst.index()))
            .collect();
        let paths = resource_time_tradeoff::flow::decompose_paths(
            d.node_count(),
            &edges,
            &r.solution.arc_flows,
            arc.source().index(),
            arc.sink().index(),
        ).unwrap();
        let total: u64 = paths.iter().map(|p| p.amount).sum();
        prop_assert_eq!(total, r.solution.budget_used);
    }
}
