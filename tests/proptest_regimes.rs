//! Property-based invariants for the reuse-regime baselines
//! (Questions 1.1/1.2) and the Question 1.3 routing certificates.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use resource_time_tradeoff::core::exact::solve_exact;
use resource_time_tradeoff::core::regimes::{
    global_reuse_schedule, solve_noreuse_bicriteria, solve_noreuse_exact,
    solve_noreuse_exact_min_resource, sp_noreuse_curve, validate_noreuse,
    verify_global_schedule, GlobalPolicy,
};
use resource_time_tradeoff::core::routing_plan;
use resource_time_tradeoff::core::sp_dp::solve_sp_exact;
use resource_time_tradeoff::core::transform::to_arc_form;
use resource_time_tradeoff::core::{ArcInstance, Instance};
use resource_time_tradeoff::dag::gen;
use resource_time_tradeoff::duration::Duration;

fn random_arc(seed: u64) -> ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tt0 = gen::random_race_dag(&mut rng, 4, 5);
    let inst = Instance::race_dag(&tt0.dag, Duration::recursive_binary).unwrap();
    to_arc_form(&inst).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Question 1.1 can never beat Question 1.3: a dedicated allocation
    /// is a special case of a routed one.
    #[test]
    fn noreuse_never_beats_path_reuse(seed in 0u64..300, budget in 0u64..8) {
        let arc = random_arc(seed);
        let nr = solve_noreuse_exact(&arc, budget);
        validate_noreuse(&arc, &nr).unwrap();
        prop_assert!(nr.budget_used <= budget);
        let pr = solve_exact(&arc, budget);
        prop_assert!(nr.makespan >= pr.solution.makespan,
            "no-reuse {} < path-reuse {} at B={}", nr.makespan, pr.solution.makespan, budget);
    }

    /// The no-reuse bi-criteria bounds of Theorem 3.4 hold for the
    /// sum-budget LP too.
    #[test]
    fn noreuse_bicriteria_within_bounds(seed in 0u64..200, budget in 0u64..8) {
        let arc = random_arc(seed);
        let alpha = 0.5;
        let r = solve_noreuse_bicriteria(&arc, budget, alpha).unwrap();
        validate_noreuse(&arc, &r.solution).unwrap();
        prop_assert!(
            (r.solution.budget_used as f64) <= budget as f64 / (1.0 - alpha) + 1e-6
        );
        prop_assert!(
            r.solution.makespan as f64 <= r.lp_makespan / alpha + 1e-6
        );
        // the LP lower-bounds the exact no-reuse optimum
        let exact = solve_noreuse_exact(&arc, budget);
        prop_assert!(r.lp_makespan <= exact.makespan as f64 + 1e-6);
    }

    /// Greedy global schedules are always feasible; the eager policy
    /// never idles, so it cannot exceed the zero-resource makespan.
    #[test]
    fn global_schedules_always_verify(seed in 0u64..300, budget in 0u64..10) {
        let arc = random_arc(seed);
        for policy in [GlobalPolicy::Eager, GlobalPolicy::Patient] {
            let s = global_reuse_schedule(&arc, budget, policy);
            verify_global_schedule(&arc, budget, &s).unwrap();
            prop_assert!(s.peak_in_use <= budget);
        }
        let eager = global_reuse_schedule(&arc, budget, GlobalPolicy::Eager);
        prop_assert!(eager.makespan <= arc.base_makespan());
    }

    /// Exact min-resource inverts exact min-makespan in the no-reuse
    /// regime: spending the returned budget reaches the target.
    #[test]
    fn noreuse_min_resource_inverts(seed in 0u64..150, budget in 0u64..6) {
        let arc = random_arc(seed);
        let ms = solve_noreuse_exact(&arc, budget).makespan;
        let back = solve_noreuse_exact_min_resource(&arc, ms)
            .expect("achieved makespans are reachable");
        prop_assert!(back.budget_used <= budget,
            "needed {} > spent {}", back.budget_used, budget);
        prop_assert!(back.makespan <= ms);
    }

    /// Routing plans cover the solution flow exactly, edge by edge.
    #[test]
    fn routing_plans_cover_flows(seed in 0u64..300, budget in 0u64..8) {
        let arc = random_arc(seed);
        let r = solve_exact(&arc, budget);
        let plan = routing_plan(&arc, &r.solution).unwrap();
        prop_assert_eq!(plan.total(), r.solution.budget_used);
        let mut covered = vec![0u64; arc.dag().edge_count()];
        for route in &plan.routes {
            for &e in &route.edges {
                covered[e] += route.amount;
            }
        }
        prop_assert_eq!(covered, r.solution.arc_flows.clone());
        // every route is a real source→sink path
        for route in &plan.routes {
            let d = arc.dag();
            let first = rtt_edge_src(&arc, route.edges[0]);
            prop_assert_eq!(first, arc.source());
            let last = rtt_edge_dst(&arc, *route.edges.last().unwrap());
            prop_assert_eq!(last, arc.sink());
            for w in route.edges.windows(2) {
                prop_assert_eq!(rtt_edge_dst(&arc, w[0]), rtt_edge_src(&arc, w[1]));
            }
            let _ = d;
        }
    }

    /// On series-parallel instances the no-reuse DP curve dominates the
    /// reuse curve pointwise and both are monotone.
    #[test]
    fn sp_curves_ordered_and_monotone(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gsp = gen::random_sp(&mut rng, 4);
        let mut g: resource_time_tradeoff::dag::Dag<(), resource_time_tradeoff::core::Activity> =
            resource_time_tradeoff::dag::Dag::new();
        for _ in gsp.tt.dag.node_ids() {
            g.add_node(());
        }
        for e in gsp.tt.dag.edge_refs() {
            let base = 2 + (seed + e.id.index() as u64 * 5) % 10;
            let gap = 1 + (seed + e.id.index() as u64 * 3) % 3;
            g.add_edge(
                e.src,
                e.dst,
                resource_time_tradeoff::core::Activity::new(Duration::two_point(base, gap, 0)),
            )
            .unwrap();
        }
        let arc = ArcInstance::new(g).unwrap();
        let budget = 8u64;
        let (reuse, _) = solve_sp_exact(&arc, budget).expect("generated SP");
        let noreuse = sp_noreuse_curve(&arc, budget).expect("generated SP");
        prop_assert_eq!(reuse.curve.len(), noreuse.len());
        for b in 0..noreuse.len() {
            prop_assert!(noreuse[b] >= reuse.curve[b], "b={}", b);
            if b > 0 {
                prop_assert!(noreuse[b] <= noreuse[b - 1]);
                prop_assert!(reuse.curve[b] <= reuse.curve[b - 1]);
            }
        }
    }
}

fn rtt_edge_src(arc: &ArcInstance, e: usize) -> resource_time_tradeoff::dag::NodeId {
    arc.dag().src(resource_time_tradeoff::dag::EdgeId(e as u32))
}

fn rtt_edge_dst(arc: &ArcInstance, e: usize) -> resource_time_tradeoff::dag::NodeId {
    arc.dag().dst(resource_time_tradeoff::dag::EdgeId(e as u32))
}
