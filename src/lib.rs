//! # resource-time-tradeoff
//!
//! A comprehensive Rust implementation of *"Data Races and the Discrete
//! Resource-time Tradeoff Problem with Resource Reuse over Paths"*
//! (Das, Tsai, Duppala, Lynch, Arkin, Chowdhury, Mitchell, Skiena;
//! SPAA 2019): given a DAG of jobs with non-increasing duration
//! functions, route `B` units of a reusable resource along source→sink
//! paths — every unit may expedite *all* the jobs on its path — to
//! minimize the makespan, or meet a makespan target with the least
//! resource.
//!
//! This facade re-exports the workspace crates; see each for the full
//! API ([`core`], [`engine`], [`dag`], [`duration`], [`lp`], [`flow`],
//! [`sim`], [`reducer`], [`race`], [`hardness`]).
//!
//! ## From a racy program to an optimal reducer placement
//!
//! ```
//! use resource_time_tradeoff::core::{Instance, routing_plan, validate};
//! use resource_time_tradeoff::core::transform::to_arc_form;
//! use resource_time_tradeoff::core::exact::solve_exact;
//! use resource_time_tradeoff::dag::Dag;
//! use resource_time_tradeoff::duration::Duration;
//!
//! // a hot cell receiving 64 racy updates, then feeding a consumer
//! // that itself receives 16: the race DAG D(P) of §1
//! let mut g: Dag<(), ()> = Dag::new();
//! let s = g.add_node(());
//! let hot = g.add_node(());
//! let consumer = g.add_node(());
//! g.add_parallel_edges(s, hot, (), 64).unwrap();
//! g.add_parallel_edges(hot, consumer, (), 16).unwrap();
//!
//! // w = in-degree; durations from Eq. 3 (recursive binary reducers)
//! let inst = Instance::race_dag(&g, Duration::recursive_binary).unwrap();
//! assert_eq!(inst.base_makespan(), 64 + 16);
//!
//! // reuse over paths: the same 8 units serve BOTH jobs, because the
//! // hot cell finishes before the consumer starts
//! let (arc, _) = to_arc_form(&inst);
//! let r = solve_exact(&arc, 8);
//! validate(&arc, &r.solution).unwrap();
//! assert_eq!(r.solution.makespan, (64 / 8 + 4) + (16 / 8 + 4));
//! assert!(r.solution.budget_used <= 8);
//!
//! // and the routing certificate shows the units flowing through both
//! let plan = routing_plan(&arc, &r.solution).unwrap();
//! assert_eq!(plan.total(), r.solution.budget_used);
//! ```
//!
//! ## The approximation pipeline (Theorem 3.4)
//!
//! ```
//! use resource_time_tradeoff::core::{Instance, solve_bicriteria, validate};
//! use resource_time_tradeoff::core::transform::to_arc_form;
//! use resource_time_tradeoff::dag::Dag;
//! use resource_time_tradeoff::duration::Duration;
//!
//! let mut g: Dag<(), ()> = Dag::new();
//! let (s, x, t) = (g.add_node(()), g.add_node(()), g.add_node(()));
//! g.add_parallel_edges(s, x, (), 64).unwrap();
//! g.add_edge(x, t, ()).unwrap();
//! let inst = Instance::race_dag(&g, Duration::recursive_binary).unwrap();
//! let (arc, _) = to_arc_form(&inst);
//!
//! // LP 6–10 → α-rounding → min-flow routing
//! let r = solve_bicriteria(&arc, 8, 0.5).unwrap();
//! validate(&arc, &r.solution).unwrap();
//! assert!(r.lp_makespan <= r.solution.makespan as f64 + 1e-9);
//! assert!(r.solution.budget_used <= 16, "≤ B/(1−α)");
//! ```
//!
//! ## The three reuse regimes of §1, measured
//!
//! ```
//! use resource_time_tradeoff::core::regimes::compare_regimes;
//! use resource_time_tradeoff::core::transform::to_arc_form;
//! use resource_time_tradeoff::core::{Instance, Job};
//! use resource_time_tradeoff::dag::Dag;
//! use resource_time_tradeoff::duration::Duration;
//!
//! // two serial stages, each 10 → 0 with 4 units
//! let mut g: Dag<Job, ()> = Dag::new();
//! let s = g.add_node(Job::new(Duration::zero()));
//! let a = g.add_node(Job::new(Duration::two_point(10, 4, 0)));
//! let b = g.add_node(Job::new(Duration::two_point(10, 4, 0)));
//! let t = g.add_node(Job::new(Duration::zero()));
//! g.add_edge(s, a, ()).unwrap();
//! g.add_edge(a, b, ()).unwrap();
//! g.add_edge(b, t, ()).unwrap();
//! let (arc, _) = to_arc_form(&Instance::new(g).unwrap());
//!
//! let c = compare_regimes(&arc, 4);
//! assert_eq!(c.path_reuse, 0, "4 units flow through both stages");
//! assert_eq!(c.noreuse, 10, "dedicated allocations fix only one");
//! ```

#![forbid(unsafe_code)]

pub use rtt_analyze as analyze;
pub use rtt_core as core;
pub use rtt_dag as dag;
pub use rtt_engine as engine;
pub use rtt_duration as duration;
pub use rtt_flow as flow;
pub use rtt_hardness as hardness;
pub use rtt_lp as lp;
pub use rtt_race as race;
pub use rtt_reducer as reducer;
pub use rtt_sim as sim;
