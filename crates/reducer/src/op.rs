//! Update operations for reducers.

/// An associative and commutative update operation — the precondition
/// for race-free reduction (§1: "provided the update operation is
/// associative and commutative").
pub trait CommutativeOp: Sync {
    /// Accumulator/value type.
    type Value: Send;
    /// The identity element (initial cell contents).
    fn identity(&self) -> Self::Value;
    /// Folds `x` into `acc`. Must be associative and commutative up to
    /// the equivalence the caller relies on.
    fn combine(&self, acc: &mut Self::Value, x: Self::Value);
}

/// 64-bit wrapping addition.
#[derive(Debug, Clone, Copy, Default)]
pub struct AddU64;

impl CommutativeOp for AddU64 {
    type Value = u64;
    fn identity(&self) -> u64 {
        0
    }
    fn combine(&self, acc: &mut u64, x: u64) {
        *acc = acc.wrapping_add(x);
    }
}

/// 64-bit maximum.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxU64;

impl CommutativeOp for MaxU64 {
    type Value = u64;
    fn identity(&self) -> u64 {
        0
    }
    fn combine(&self, acc: &mut u64, x: u64) {
        *acc = (*acc).max(x);
    }
}

/// Addition with an artificial per-update cost of `spin` dummy
/// iterations — models the paper's assumption that "the time needed to
/// apply an update significantly dominates every other operation".
/// Used by throughput benches to expose the reducer-height tradeoff.
#[derive(Debug, Clone, Copy)]
pub struct SlowAdd {
    /// Busy-work iterations per update.
    pub spin: u32,
}

impl CommutativeOp for SlowAdd {
    type Value = u64;
    fn identity(&self) -> u64 {
        0
    }
    fn combine(&self, acc: &mut u64, x: u64) {
        let mut v = x;
        for i in 0..self.spin {
            // cheap data-dependent busy work the optimizer keeps
            v = v.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(7) ^ u64::from(i);
        }
        std::hint::black_box(v);
        *acc = acc.wrapping_add(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_commutative_and_associative() {
        let op = AddU64;
        let mut a = op.identity();
        op.combine(&mut a, 3);
        op.combine(&mut a, 9);
        let mut b = op.identity();
        op.combine(&mut b, 9);
        op.combine(&mut b, 3);
        assert_eq!(a, b);
        assert_eq!(a, 12);
    }

    #[test]
    fn max_identity_is_neutral() {
        let op = MaxU64;
        let mut a = op.identity();
        op.combine(&mut a, 0);
        assert_eq!(a, 0);
        op.combine(&mut a, 7);
        op.combine(&mut a, 3);
        assert_eq!(a, 7);
    }

    #[test]
    fn slow_add_matches_add() {
        let slow = SlowAdd { spin: 100 };
        let mut a = slow.identity();
        for x in 1..=10u64 {
            slow.combine(&mut a, x);
        }
        assert_eq!(a, 55);
    }
}
