//! The reducer implementations.

use crate::op::CommutativeOp;
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Baseline: a single mutex-protected cell — every update serializes
/// (the "associating a lock with the memory location" fix of §1 that
/// destroys parallelism).
pub struct LockCell<O: CommutativeOp> {
    op: O,
    cell: Mutex<O::Value>,
}

impl<O: CommutativeOp> LockCell<O> {
    /// New cell holding the identity.
    pub fn new(op: O) -> Self {
        let init = op.identity();
        LockCell {
            op,
            cell: Mutex::new(init),
        }
    }

    /// Applies one update (serializing on the lock).
    pub fn update(&self, x: O::Value) {
        let mut guard = self.cell.lock();
        self.op.combine(&mut guard, x);
    }

    /// Final value.
    pub fn into_value(self) -> O::Value {
        self.cell.into_inner()
    }
}

/// The k-way split reducer (Eq. 2): `k` independently locked cells,
/// round-robin assignment, one combining pass at the end.
pub struct KWayReducer<O: CommutativeOp> {
    op: O,
    cells: Vec<CachePadded<Mutex<O::Value>>>,
    next: AtomicUsize,
}

impl<O: CommutativeOp> KWayReducer<O> {
    /// New reducer with `k ≥ 1` cells.
    pub fn new(op: O, k: usize) -> Self {
        assert!(k >= 1);
        let cells = (0..k)
            .map(|_| CachePadded::new(Mutex::new(op.identity())))
            .collect();
        KWayReducer {
            op,
            cells,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of cells (the extra space used).
    pub fn width(&self) -> usize {
        self.cells.len()
    }

    /// Applies one update to the next cell (round-robin).
    pub fn update(&self, x: O::Value) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.cells.len();
        let mut guard = self.cells[i].lock();
        self.op.combine(&mut guard, x);
    }

    /// Combines all cells into the final value.
    pub fn into_value(self) -> O::Value {
        let mut acc = self.op.identity();
        for cell in self.cells {
            let v = CachePadded::into_inner(cell).into_inner();
            self.op.combine(&mut acc, v);
        }
        acc
    }
}

/// The recursive binary reducer of Figure 2, as a tournament tree.
///
/// `2^h` leaf cells accept updates in parallel (round-robin). The total
/// number of updates is fixed at construction; when a leaf applies its
/// last update it starts merging: at each internal tree node, the first
/// arriving child parks its value, the second combines both and moves
/// up — this is exactly the "node becomes its own parent" protocol that
/// lets a height-`h` reducer run with `2^h` cells. The root value lands
/// in the final slot after `2^h − 1` merges.
pub struct BinaryReducer<O: CommutativeOp> {
    op: O,
    leaves: Vec<CachePadded<Mutex<O::Value>>>,
    /// Remaining updates per leaf.
    remaining: Vec<CachePadded<AtomicU64>>,
    /// Tournament slots for internal nodes (heap layout, index 1 = root
    /// pair). `slots[i]` holds the first-arriving child's value.
    slots: Vec<Mutex<Option<O::Value>>>,
    /// Round-robin ticket counter.
    next: AtomicUsize,
    /// The final value (set by the last merge).
    result: Mutex<Option<O::Value>>,
}

impl<O: CommutativeOp> BinaryReducer<O> {
    /// Builds a height-`h` reducer expecting exactly `n_updates` calls
    /// to [`BinaryReducer::update`].
    ///
    /// # Panics
    /// If `n_updates == 0` (there would be nothing to reduce; use
    /// `op.identity()` directly).
    pub fn new(op: O, height: u32, n_updates: u64) -> Self {
        assert!(n_updates > 0, "a reducer needs at least one update");
        let n_leaves = 1usize << height;
        let leaves = (0..n_leaves)
            .map(|_| CachePadded::new(Mutex::new(op.identity())))
            .collect();
        // round-robin assignment: leaf i gets ⌈(n - i)/L⌉ updates
        let remaining = (0..n_leaves as u64)
            .map(|i| {
                let share = n_updates / n_leaves as u64
                    + u64::from(i < n_updates % n_leaves as u64);
                CachePadded::new(AtomicU64::new(share))
            })
            .collect();
        let slots = (0..n_leaves).map(|_| Mutex::new(None)).collect();
        let r = BinaryReducer {
            op,
            leaves,
            remaining,
            slots,
            next: AtomicUsize::new(0),
            result: Mutex::new(None),
        };
        // Leaves with no assigned updates (n < 2^h) will never fire a
        // "last update"; enter them into the tournament with the
        // identity now so the merges can complete.
        for i in 0..n_leaves {
            if r.remaining[i].load(Ordering::Relaxed) == 0 {
                r.propagate(i + n_leaves, r.op.identity());
            }
        }
        r
    }

    /// Number of leaf cells (`2^h`, the extra space used).
    pub fn width(&self) -> usize {
        self.leaves.len()
    }

    /// Applies one update. Must be called exactly `n_updates` times in
    /// total (across all threads).
    pub fn update(&self, x: O::Value) {
        let l = self.next.fetch_add(1, Ordering::Relaxed) % self.leaves.len();
        // Fold into the leaf.
        let value = {
            let mut guard = self.leaves[l].lock();
            self.op.combine(&mut guard, x);
            // Was that the leaf's last update?
            if self.remaining[l].fetch_sub(1, Ordering::AcqRel) == 1 {
                Some(std::mem::replace(&mut *guard, self.op.identity()))
            } else {
                None
            }
        };
        if let Some(v) = value {
            self.propagate(l + self.leaves.len(), v);
        }
    }

    /// Tournament climb from tree position `pos` (heap indexing: leaves
    /// occupy `L..2L`, internal pairs meet at `pos/2`).
    fn propagate(&self, mut pos: usize, mut value: O::Value) {
        loop {
            pos /= 2;
            if pos == 0 {
                *self.result.lock() = Some(value);
                return;
            }
            let mut slot = self.slots[pos].lock();
            match slot.take() {
                None => {
                    // first child to arrive parks its value
                    *slot = Some(value);
                    return;
                }
                Some(other) => {
                    // second child merges and continues up
                    drop(slot);
                    self.op.combine(&mut value, other);
                }
            }
        }
    }

    /// Final value. Call after all `n_updates` updates completed (e.g.
    /// after joining the worker threads).
    ///
    /// # Panics
    /// If updates are missing.
    pub fn into_value(self) -> O::Value {
        self.result
            .into_inner()
            .expect("reducer finished: all updates must have been applied")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AddU64, MaxU64};
    use std::sync::atomic::AtomicU64;

    fn parallel_updates<R: Sync>(r: &R, n: u64, threads: usize, f: impl Fn(&R, u64) + Sync) {
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    f(r, i + 1);
                });
            }
        });
    }

    #[test]
    fn lock_cell_correct() {
        let cell = LockCell::new(AddU64);
        parallel_updates(&cell, 10_000, 8, |c, x| c.update(x));
        assert_eq!(cell.into_value(), 10_000 * 10_001 / 2);
    }

    #[test]
    fn kway_correct_all_widths() {
        for k in [1usize, 2, 3, 7, 16] {
            let r = KWayReducer::new(AddU64, k);
            parallel_updates(&r, 5_000, 4, |r, x| r.update(x));
            assert_eq!(r.into_value(), 5_000 * 5_001 / 2, "k={k}");
        }
    }

    #[test]
    fn binary_correct_all_heights() {
        for h in 0..=5u32 {
            let n = 4_096u64;
            let r = BinaryReducer::new(AddU64, h, n);
            parallel_updates(&r, n, 8, |r, x| r.update(x));
            assert_eq!(r.into_value(), n * (n + 1) / 2, "h={h}");
        }
    }

    #[test]
    fn binary_handles_non_divisible_counts() {
        for n in [1u64, 3, 17, 1000, 4097] {
            let r = BinaryReducer::new(AddU64, 3, n);
            parallel_updates(&r, n, 4, |r, x| r.update(x));
            assert_eq!(r.into_value(), n * (n + 1) / 2, "n={n}");
        }
    }

    #[test]
    fn binary_with_max_operation() {
        let n = 999u64;
        let r = BinaryReducer::new(MaxU64, 4, n);
        parallel_updates(&r, n, 8, |r, x| r.update(x));
        assert_eq!(r.into_value(), n);
    }

    #[test]
    fn single_threaded_binary_still_works() {
        let r = BinaryReducer::new(AddU64, 2, 10);
        for x in 1..=10u64 {
            r.update(x);
        }
        assert_eq!(r.into_value(), 55);
    }

    #[test]
    #[should_panic(expected = "at least one update")]
    fn zero_updates_rejected() {
        let _ = BinaryReducer::new(AddU64, 1, 0);
    }

    #[test]
    #[should_panic(expected = "all updates must have been applied")]
    fn premature_finish_detected() {
        let r = BinaryReducer::new(AddU64, 1, 5);
        r.update(1);
        let _ = r.into_value();
    }

    #[test]
    fn width_reports_space() {
        assert_eq!(BinaryReducer::new(AddU64, 5, 100).width(), 32);
        assert_eq!(KWayReducer::new(AddU64, 9).width(), 9);
    }
}
