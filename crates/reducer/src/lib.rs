//! # rtt-reducer — real concurrent reducers (Figure 2, §1)
//!
//! The paper motivates the resource-time tradeoff with *reducers*:
//! tree-shaped accumulators that let logically parallel updates of a
//! shared variable proceed race-free. This crate implements them with
//! actual threads and locks, so the motivating claims can be measured
//! on real hardware, not just simulated:
//!
//! * [`BinaryReducer`] — the recursive binary reducer of Figure 2 as a
//!   tournament tree: `2^h` leaf cells take updates in parallel; when a
//!   cell finishes, its value merges into its sibling's survivor ("a
//!   node can become its own parent"), up to the root.
//! * [`KWayReducer`] — the k-way split reducer of Eq. 2: `k` cells,
//!   one final combining pass.
//! * [`LockCell`] — the baseline the paper argues against: one mutex
//!   serializing every update.
//! * [`racy`] — the Figure 1 demonstration: unsynchronized
//!   read-modify-write increments observably *lose updates* (staged
//!   with atomics, so the lost-update behaviour is real but defined).
//!
//! All reducers require the update operation to be **associative and
//! commutative** ([`CommutativeOp`]); under that contract every reducer
//! returns exactly the sequential fold.

#![warn(missing_docs)]

pub mod op;
pub mod racy;
pub mod reducers;

pub use op::{AddU64, CommutativeOp, MaxU64, SlowAdd};
pub use reducers::{BinaryReducer, KWayReducer, LockCell};
