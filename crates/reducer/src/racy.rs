//! The Figure 1 data race, reproduced observably (and safely).
//!
//! Figure 1 of the paper shows two threads executing `r ← x; r ← r + 1;
//! x ← r` concurrently: unless the threads serialize, one increment is
//! lost. Rust will not compile an actual unsynchronized data race, so we
//! stage the *same interleaving* with a relaxed atomic: each increment
//! is a separate load followed by a separate store — not a
//! read-modify-write — so two threads can still read the same value and
//! both write `v + 1`. The lost-update behaviour of the C code is
//! reproduced exactly, with defined semantics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Runs `threads` threads, each performing `per_thread` *racy*
/// increments (separate load and store), and returns the final counter
/// value. With more than one thread the result is typically *less* than
/// `threads · per_thread`: updates get lost, exactly as in Figure 1.
pub fn racy_counter(threads: usize, per_thread: u64) -> u64 {
    let x = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..per_thread {
                    let r = x.load(Ordering::Relaxed); // r1 = x
                    std::hint::black_box(&r);
                    x.store(r + 1, Ordering::Relaxed); // x = r1 + 1
                }
            });
        }
    });
    x.load(Ordering::Relaxed)
}

/// The race-free control: the same increments via atomic
/// read-modify-write. Always returns `threads · per_thread`.
pub fn atomic_counter(threads: usize, per_thread: u64) -> u64 {
    let x = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..per_thread {
                    x.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    x.load(Ordering::Relaxed)
}

/// Statistics from repeated racy runs (for the Figure 1 experiment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceStats {
    /// Expected count (`threads · per_thread`).
    pub expected: u64,
    /// Minimum observed final value.
    pub min_observed: u64,
    /// Number of runs (out of `runs`) that lost at least one update.
    pub runs_with_lost_updates: usize,
    /// Total runs.
    pub runs: usize,
}

/// Repeats [`racy_counter`] and tallies lost updates.
pub fn race_experiment(threads: usize, per_thread: u64, runs: usize) -> RaceStats {
    let expected = threads as u64 * per_thread;
    let mut min_observed = u64::MAX;
    let mut lost = 0;
    for _ in 0..runs {
        let v = racy_counter(threads, per_thread);
        min_observed = min_observed.min(v);
        if v < expected {
            lost += 1;
        }
    }
    RaceStats {
        expected,
        min_observed,
        runs_with_lost_updates: lost,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_never_loses() {
        assert_eq!(racy_counter(1, 10_000), 10_000);
    }

    #[test]
    fn atomic_control_is_exact() {
        assert_eq!(atomic_counter(4, 50_000), 200_000);
    }

    #[test]
    fn racy_result_never_exceeds_expected() {
        for _ in 0..5 {
            assert!(racy_counter(4, 10_000) <= 40_000);
        }
    }

    #[test]
    fn races_actually_lose_updates() {
        // With contending threads and many iterations, at least one run
        // loses updates with overwhelming probability. (If every run
        // were perfect, there was effectively no concurrency to race.)
        let stats = race_experiment(4, 100_000, 5);
        assert!(
            stats.runs_with_lost_updates > 0 || num_cpus_is_one(),
            "no lost updates across {} runs of 4x100k racy increments",
            stats.runs
        );
    }

    fn num_cpus_is_one() -> bool {
        std::thread::available_parallelism()
            .map(|n| n.get() == 1)
            .unwrap_or(true)
    }
}
