//! The original row-of-rows two-phase simplex, frozen as a baseline.
//!
//! This is the solver the crate shipped before the flat-tableau rewrite
//! in [`crate::simplex`] (one `Vec<f64>` per row, split-borrow pivot
//! updates, no post-phase-1 column shrink). It is retained verbatim for
//! two jobs:
//!
//! * **differential testing** — `tests/flat_vs_reference.rs` asserts the
//!   flat solver reproduces these objectives on the edge-case corpus and
//!   on random LPs;
//! * **benchmark baselining** — `rtt_bench`'s `bench-pr1` harness
//!   measures the bicriteria pipeline against this engine so every
//!   speedup claim in `BENCH_pr1.json` is reproduced, not remembered.
//!
//! Do not optimize this module; its value is that it does not change.

use crate::problem::{Cmp, Problem};
use crate::simplex::{Outcome, Solution};
use crate::TOL;

struct Tableau {
    /// m rows × n_cols coefficient matrix (dense, one `Vec` per row).
    a: Vec<Vec<f64>>,
    /// Right-hand sides (kept ≥ 0 up to tolerance).
    b: Vec<f64>,
    /// Reduced-cost row.
    rc: Vec<f64>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Columns that may never enter (artificials in phase 2).
    banned: Vec<bool>,
    pivots: usize,
}

impl Tableau {
    fn pivot(&mut self, r: usize, c: usize) {
        let m = self.a.len();
        let piv = self.a[r][c];
        debug_assert!(piv.abs() > TOL);
        let inv = 1.0 / piv;
        for v in self.a[r].iter_mut() {
            *v *= inv;
        }
        self.b[r] *= inv;
        // Re-normalize the pivot entry exactly.
        self.a[r][c] = 1.0;
        for i in 0..m {
            if i == r {
                continue;
            }
            let factor = self.a[i][c];
            if factor.abs() <= TOL * 1e-3 {
                self.a[i][c] = 0.0;
                continue;
            }
            let (head, tail) = self.a.split_at_mut(r.max(i));
            let (row_i, row_r) = if i < r {
                (&mut head[i], &tail[0])
            } else {
                (&mut tail[0], &head[r])
            };
            for (vi, vr) in row_i.iter_mut().zip(row_r.iter()) {
                *vi -= factor * *vr;
            }
            row_i[c] = 0.0;
            self.b[i] -= factor * self.b[r];
            if self.b[i].abs() < TOL * 1e-3 {
                self.b[i] = 0.0;
            }
        }
        let factor = self.rc[c];
        if factor.abs() > 0.0 {
            for (j, v) in self.rc.iter_mut().enumerate() {
                *v -= factor * self.a[r][j];
            }
            self.rc[c] = 0.0;
        }
        self.basis[r] = c;
        self.pivots += 1;
    }

    /// Runs the simplex loop on the current (feasible) tableau.
    /// Returns `false` on unboundedness.
    fn optimize(&mut self) -> bool {
        let n = self.rc.len();
        let m = self.a.len();
        // Switch to Bland's rule after a generous number of Dantzig steps.
        let bland_after = 20 * (m + n) + 1000;
        let hard_cap = 2_000 * (m + n) + 100_000;
        let mut iters = 0usize;
        loop {
            iters += 1;
            assert!(
                iters < hard_cap,
                "simplex exceeded {hard_cap} iterations; numerical cycling?"
            );
            let bland = iters > bland_after;
            // --- pricing
            let mut enter: Option<usize> = None;
            let mut best = -TOL;
            for j in 0..n {
                if self.banned[j] {
                    continue;
                }
                let r = self.rc[j];
                if r < best {
                    enter = Some(j);
                    if bland {
                        break; // smallest index with negative rc
                    }
                    best = r;
                }
            }
            let Some(c) = enter else {
                return true; // optimal
            };
            // --- ratio test
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let a = self.a[i][c];
                if a > TOL {
                    let ratio = self.b[i] / a;
                    let better = ratio < best_ratio - TOL
                        || (ratio < best_ratio + TOL
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if leave.is_none() || better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(r) = leave else {
                return false; // unbounded
            };
            self.pivot(r, c);
        }
    }
}

/// Solves `p` with the pre-rewrite row-of-rows simplex.
pub fn solve_reference(p: &Problem) -> Outcome {
    // Collect all rows: user rows + upper-bound rows.
    #[derive(Clone)]
    struct NRow {
        coeffs: Vec<(usize, f64)>,
        cmp: Cmp,
        rhs: f64,
    }
    let mut rows: Vec<NRow> = p
        .rows
        .iter()
        .map(|r| NRow {
            coeffs: r.coeffs.clone(),
            cmp: r.cmp,
            rhs: r.rhs,
        })
        .collect();
    for (j, ub) in p.upper.iter().enumerate() {
        if let Some(ub) = ub {
            rows.push(NRow {
                coeffs: vec![(j, 1.0)],
                cmp: Cmp::Le,
                rhs: *ub,
            });
        }
    }
    // Normalize to rhs >= 0.
    for r in rows.iter_mut() {
        if r.rhs < 0.0 {
            r.rhs = -r.rhs;
            for c in r.coeffs.iter_mut() {
                c.1 = -c.1;
            }
            r.cmp = match r.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Eq => Cmp::Eq,
                Cmp::Ge => Cmp::Le,
            };
        }
    }

    let m = rows.len();
    let n0 = p.n_vars;
    // Column layout: [original | slacks/surplus | artificials]
    let n_slack = rows.len(); // at most one per row (Le slack or Ge surplus)
    let mut n_art = 0usize;
    for r in &rows {
        if !matches!(r.cmp, Cmp::Le) {
            n_art += 1;
        }
    }
    let n_cols = n0 + n_slack + n_art;

    let mut a = vec![vec![0.0; n_cols]; m];
    let mut b = vec![0.0; m];
    let mut basis = vec![usize::MAX; m];
    let mut art_cols: Vec<usize> = Vec::with_capacity(n_art);
    let mut next_art = n0 + n_slack;
    for (i, r) in rows.iter().enumerate() {
        for &(j, v) in &r.coeffs {
            a[i][j] += v;
        }
        b[i] = r.rhs;
        match r.cmp {
            Cmp::Le => {
                a[i][n0 + i] = 1.0;
                basis[i] = n0 + i;
            }
            Cmp::Ge => {
                a[i][n0 + i] = -1.0;
                a[i][next_art] = 1.0;
                basis[i] = next_art;
                art_cols.push(next_art);
                next_art += 1;
            }
            Cmp::Eq => {
                a[i][next_art] = 1.0;
                basis[i] = next_art;
                art_cols.push(next_art);
                next_art += 1;
            }
        }
    }

    // ---- Phase 1: minimize sum of artificials.
    let mut t = Tableau {
        a,
        b,
        rc: vec![0.0; n_cols],
        basis,
        banned: vec![false; n_cols],
        pivots: 0,
    };
    if !art_cols.is_empty() {
        // rc_j = c_j − Σ_{rows with artificial basic} a[i][j]
        let art_set: Vec<bool> = {
            let mut v = vec![false; n_cols];
            for &c in &art_cols {
                v[c] = true;
            }
            v
        };
        for j in 0..n_cols {
            let mut rc = if art_set[j] { 1.0 } else { 0.0 };
            for i in 0..m {
                if art_set[t.basis[i]] {
                    rc -= t.a[i][j];
                }
            }
            t.rc[j] = rc;
        }
        let bounded = t.optimize();
        debug_assert!(bounded, "phase 1 objective is bounded below by 0");
        let phase1: f64 = (0..m)
            .filter(|&i| art_set[t.basis[i]])
            .map(|i| t.b[i])
            .sum();
        if phase1 > 1e-6 {
            return Outcome::Infeasible;
        }
        // Ban artificials from re-entering.
        for &c in &art_cols {
            t.banned[c] = true;
        }
        // Drive artificials that are still basic (at value ~0) OUT of the
        // basis: a later pivot on another column could otherwise raise a
        // basic artificial's value and silently violate its constraint.
        // Degenerate pivot on any non-artificial column with a nonzero
        // coefficient; a row with none is redundant (all-zero row) and
        // its artificial can never change value again.
        for i in 0..m {
            if art_set[t.basis[i]] {
                t.b[i] = 0.0; // clamp the ~0 residual exactly
                if let Some(j) =
                    (0..n_cols).find(|&j| !art_set[j] && t.a[i][j].abs() > 1e-7)
                {
                    t.pivot(i, j);
                }
            }
        }
    }

    // ---- Phase 2: original objective.
    for j in 0..n_cols {
        let cj = if j < n0 { p.objective[j] } else { 0.0 };
        t.rc[j] = cj;
    }
    // rc_j = c_j − c_B B^-1 A_j: subtract basic costs via current rows.
    for i in 0..m {
        let cb = if t.basis[i] < n0 {
            p.objective[t.basis[i]]
        } else {
            0.0
        };
        if cb != 0.0 {
            for j in 0..n_cols {
                t.rc[j] -= cb * t.a[i][j];
            }
        }
    }
    // Basic columns must have zero reduced cost (clean up numerics).
    for i in 0..m {
        t.rc[t.basis[i]] = 0.0;
    }
    if !t.optimize() {
        return Outcome::Unbounded;
    }

    let mut x = vec![0.0; n0];
    for i in 0..m {
        if t.basis[i] < n0 {
            x[t.basis[i]] = t.b[i].max(0.0);
        }
    }
    let objective = p.objective_at(&x);
    // Dimension stats only (no phase split: the frozen baseline is not
    // instrumented beyond what it always reported).
    let n_bound_rows = p.upper.iter().filter(|u| u.is_some()).count();
    Outcome::Optimal(Solution {
        objective,
        x,
        pivots: t.pivots,
        stats: crate::LpStats {
            rows: m,
            cols: n_cols,
            bound_rows: n_bound_rows,
            bound_cols: n_bound_rows,
            phase2_pivots: t.pivots,
            ..Default::default()
        },
    })
}
