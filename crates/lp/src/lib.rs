//! # rtt-lp — a from-scratch linear programming solver
//!
//! §3.1 of the paper formulates the relaxed resource-time tradeoff as the
//! linear program LP 6–10 (flow variables `f_e`, event times `T_v`,
//! minimize `T_t`). The paper treats the LP solver as an oracle; this
//! crate *is* that oracle: a dense two-phase primal simplex with
//!
//! * `≤` / `=` / `≥` rows and per-variable upper bounds,
//! * a single-allocation **flat row-major tableau** with AXPY pivot
//!   updates and a post-phase-1 column shrink (the module docs in
//!   `simplex.rs` describe the layout),
//! * selectable pivot rules ([`PivotRule`]): Dantzig pricing with a
//!   Bland's-rule fallback for anti-cycling, or pure Bland,
//! * infeasibility and unboundedness certificates,
//! * deterministic behaviour (no randomization), small-tolerance
//!   numerics suitable for the integral-data LPs the reduction produces,
//! * the pre-rewrite solver preserved in [`reference`] for differential
//!   testing and benchmark baselining ([`Engine`]).
//!
//! The solver is exact enough for the pipeline: every LP built by
//! `rtt-core` has integer input data, and the rounding scheme of §3.1
//! only needs duration values to a relative tolerance.
//!
//! ```
//! use rtt_lp::{Problem, Outcome};
//! // minimize x + 2y  s.t.  x + y >= 2, y <= 1, 0 <= x,y
//! let mut p = Problem::minimize(2);
//! p.set_objective(0, 1.0);
//! p.set_objective(1, 2.0);
//! p.add_ge(&[(0, 1.0), (1, 1.0)], 2.0);
//! p.set_upper_bound(1, 1.0);
//! match p.solve() {
//!     Outcome::Optimal(s) => {
//!         assert!((s.objective - 2.0).abs() < 1e-9); // x=2, y=0
//!     }
//!     other => panic!("{other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod problem;
pub mod reference;
mod simplex;

pub use problem::{Cmp, Problem, Row};
pub use simplex::{Engine, Outcome, PivotRule, Solution};

/// Default feasibility/optimality tolerance.
pub const TOL: f64 = 1e-8;
