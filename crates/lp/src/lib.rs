//! # rtt-lp — a from-scratch linear programming solver
//!
//! §3.1 of the paper formulates the relaxed resource-time tradeoff as the
//! linear program LP 6–10 (flow variables `f_e`, event times `T_v`,
//! minimize `T_t`). The paper treats the LP solver as an oracle; this
//! crate *is* that oracle: three two-phase simplex engines behind one
//! [`Problem`] model (`≤` / `=` / `≥` rows, per-variable upper bounds,
//! infeasibility/unboundedness certificates, deterministic behaviour).
//!
//! # Engine selection guide ([`Engine`])
//!
//! | engine | what it is | when to use it |
//! |---|---|---|
//! | [`Engine::Revised`] | sparse revised simplex ([`revised`]): CSC columns, **implicit upper bounds** (bound flips, no bound rows), eta-file basis updates with periodic refactorization, [`Basis`] warm starts | **the default** — fastest on the LP 6–10 network matrices, and the only engine that can warm-start budget sweeps |
//! | [`Engine::Flat`] | dense flat-tableau simplex ([`simplex.rs` module docs](crate::Engine)) | measurable dense baseline; also the automatic numerical fallback when a revised refactorization goes singular |
//! | [`Engine::Reference`] | the frozen pre-rewrite solver ([`reference`]) | differential testing and benchmark baselining only — never optimized, never the default |
//!
//! All engines run Dantzig pricing with a Bland's-rule fallback for
//! anti-cycling ([`PivotRule`]); every [`Solution`] carries an
//! [`LpStats`] with its matrix dimensions and pivot phase split.
//!
//! # Warm-start invariants
//!
//! A [`Basis`] returned by [`revised::solve_warm`] may be fed back only
//! to a problem of **identical shape**: same variables, same rows in
//! the same order with the same senses and coefficients — only
//! right-hand sides may change (LP 6–10 at a new budget). The engine
//! verifies the cheap invariants (dimensions, basic-set sanity, dual
//! feasibility) and silently falls back to a cold solve otherwise, so a
//! stale basis can cost time but never correctness.
//!
//! The solver is exact enough for the pipeline: every LP built by
//! `rtt-core` has integer input data, and the rounding scheme of §3.1
//! only needs duration values to a relative tolerance.
//!
//! ```
//! use rtt_lp::{Problem, Outcome};
//! // minimize x + 2y  s.t.  x + y >= 2, y <= 1, 0 <= x,y
//! let mut p = Problem::minimize(2);
//! p.set_objective(0, 1.0);
//! p.set_objective(1, 2.0);
//! p.add_ge(&[(0, 1.0), (1, 1.0)], 2.0);
//! p.set_upper_bound(1, 1.0);
//! match p.solve() {
//!     Outcome::Optimal(s) => {
//!         assert!((s.objective - 2.0).abs() < 1e-9); // x=2, y=0
//!     }
//!     other => panic!("{other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod problem;
pub mod reference;
pub mod revised;
mod simplex;
mod stats;

pub use problem::{Cmp, Problem, Row};
pub use revised::Basis;
pub use simplex::{Engine, Outcome, PivotRule, Solution};
pub use stats::{LpStats, WarmStart};

/// Default feasibility/optimality tolerance.
pub const TOL: f64 = 1e-8;
