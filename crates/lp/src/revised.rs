//! Sparse **revised simplex** with implicit upper bounds and warm starts.
//!
//! # Why a third engine
//!
//! The flat tableau ([`crate::simplex`]) materializes every variable
//! upper bound `x_j ≤ u_j` as an explicit `≤` row plus a slack column.
//! For the LP 6–10 network matrices this crate serves, that roughly
//! doubles the row count (one bound per two-tuple arc) and the dense
//! tableau pays for those rows on **every** pivot. This engine keeps the
//! constraint matrix in CSC column form, treats bounds *implicitly*
//! (nonbasic variables rest at either bound; a **bound flip** moves one
//! between its bounds without touching the basis), and represents the
//! basis inverse as an **eta file** (product form of the inverse):
//!
//! * `FTRAN`/`BTRAN` apply the eta list forward/backward in
//!   `O(Σ nnz(eta))`, skipping etas whose pivot entry is zero;
//! * each pivot appends one eta (the entering column's FTRAN image);
//! * the file is rebuilt from scratch (**refactorization**) whenever it
//!   grows past a size trigger, via sparse Gauss–Jordan over the basis
//!   columns with partial pivoting — near-triangular network bases
//!   refactorize in roughly `O(nnz)`;
//! * on optimality the basis is refactorized once more and the basic
//!   values get one step of iterative refinement, so extracted
//!   objectives agree with the dense engines to ~1e-10 on the
//!   pipeline's LPs.
//!
//! # Warm starts
//!
//! [`solve_warm`] accepts the [`Basis`] returned by a previous solve of
//! a problem with the **same shape** (identical rows/columns/sense;
//! only right-hand sides may differ — e.g. LP 6–10 at a new resource
//! budget). Changing `b` never changes reduced costs, so the old
//! optimal basis stays *dual feasible*; a bounded **dual simplex** loop
//! repairs primal feasibility, which for a small RHS step typically
//! takes 0–3 pivots instead of a full cold solve. Every suspicious
//! situation (shape mismatch, singular refactorization, dual
//! infeasibility, stalling) falls back to a cold solve, and a cold
//! solve that itself hits the iteration cap falls back to the flat
//! engine under Bland's rule — so the guarantees are exactly
//! [`crate::simplex`]'s, warm starting is purely an optimization.
//!
//! The two-phase structure, Dantzig-with-Bland-fallback pricing, and
//! termination caps mirror the flat engine; differential tests pin the
//! three engines to each other on random LPs (`tests/revised_differential.rs`).

use crate::problem::{Cmp, Problem};
use crate::simplex::{Outcome, PivotRule, Solution};
use crate::{LpStats, WarmStart, TOL};
use rtt_budget::{BudgetMeter, Exhausted};

/// A simplex basis snapshot: which column is basic in each row, and
/// which nonbasic columns rest at their upper bound. Opaque outside the
/// crate; obtain one from [`solve_warm`] and feed it back to a later
/// [`solve_warm`] call on a problem of identical shape.
#[derive(Debug, Clone)]
pub struct Basis {
    basic: Vec<u32>,
    at_upper: Vec<bool>,
    rows: u32,
    cols: u32,
}

impl Basis {
    /// Number of constraint rows the basis was built for.
    pub fn n_rows(&self) -> usize {
        self.rows as usize
    }

    /// Number of columns (structural + logical + artificial).
    pub fn n_cols(&self) -> usize {
        self.cols as usize
    }
}

/// Per-row basic-variable choice for a caller-constructed **crash
/// basis** (see [`crash_basis`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashVar {
    /// Make structural variable `j` basic in this row.
    Structural(usize),
    /// Make the row's own logical variable basic (slack/surplus; for an
    /// equality row, which has no logical, its artificial at value 0).
    Logical,
}

/// Builds a [`Basis`] from a caller's per-row basic-variable choice,
/// with every unmentioned variable nonbasic at its lower bound. Callers
/// that know their problem's structure (e.g. LP 6–10, where the
/// longest-path times at zero flow are primal feasible) can hand the
/// result to [`solve_warm`] and skip phase 1 outright. The choice is
/// *trusted but verified*: a singular, infeasible, or otherwise unusable
/// crash is detected at install time and quietly falls back to a cold
/// two-phase solve, so a wrong crash costs time, never correctness.
pub fn crash_basis(p: &Problem, choice: &[CrashVar]) -> Basis {
    assert_eq!(choice.len(), p.rows.len(), "one choice per row");
    let m = p.rows.len();
    let n0 = p.n_vars;
    // replicate the normalized senses (negative RHS flips Le/Ge) and
    // the artificial column numbering of the internal layout
    let mut next_art = n0 + m;
    let mut basic = Vec::with_capacity(m);
    for (i, row) in p.rows.iter().enumerate() {
        let cmp = match (row.cmp, row.rhs < 0.0) {
            (c, false) => c,
            (Cmp::Le, true) => Cmp::Ge,
            (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Eq, true) => Cmp::Eq,
        };
        let art = if matches!(cmp, Cmp::Le) {
            None
        } else {
            let a = next_art;
            next_art += 1;
            Some(a)
        };
        let col = match choice[i] {
            CrashVar::Structural(j) => {
                assert!(j < n0, "structural index {j} out of range");
                j
            }
            CrashVar::Logical => match cmp {
                Cmp::Eq => art.expect("Eq rows have an artificial"),
                _ => n0 + i,
            },
        };
        basic.push(col as u32);
    }
    Basis {
        basic,
        at_upper: vec![false; next_art],
        rows: m as u32,
        cols: next_art as u32,
    }
}

/// Where a variable currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VStat {
    Basic(u32),
    Lower,
    Upper,
}

/// One elementary (eta) matrix: pivoting row `r` on a direction vector
/// `d` maps `B⁻¹ ← E·B⁻¹` with `E` the identity except column `r`.
struct Eta {
    r: u32,
    inv_piv: f64,
    /// `(row, d_row)` for the direction's nonzeros off the pivot row.
    ent: Vec<(u32, f64)>,
}

/// Relative drop tolerance when recording eta nonzeros (mirrors the
/// flat engine's `DROP_REL` rationale).
const DROP_REL: f64 = 1e-15;
/// Pivot magnitudes below this are numerically unusable.
const PIV_TOL: f64 = 1e-9;
/// Primal/dual feasibility tolerance for the warm-start path.
const DTOL: f64 = 1e-7;
/// Rebuild the eta file after this many pivots since the last rebuild…
const REFACTOR_EVERY: usize = 192;
/// …or once it has *grown* by this many nonzeros per row since then
/// (every FTRAN/BTRAN walks the whole file, so growth is the per-pivot
/// cost knob; the triangular-peel rebuild is near-O(nnz) and cheap).
const REFACTOR_NNZ_PER_ROW: usize = 32;

enum LoopEnd {
    Optimal,
    Unbounded,
    /// Iteration cap or singular refactorization: restart colder.
    Fail,
    /// A cooperative budget check tripped. Unlike [`LoopEnd::Fail`],
    /// this must NOT restart colder — the caller surfaces it as
    /// [`Outcome::Exhausted`] and stops doing work.
    Exhausted(Exhausted),
}

/// Outcome of the bounded dual-simplex repair loop.
enum DualEnd {
    /// Primal feasibility restored.
    Feasible,
    /// No repair possible / stalled: the caller should go cold.
    Stuck,
    /// Budget tripped mid-repair (see [`LoopEnd::Exhausted`]).
    Exhausted(Exhausted),
}

struct Rev<'a> {
    p: &'a Problem,
    m: usize,
    n0: usize,
    /// First artificial column (`n0 + m`).
    n_real: usize,
    n_cols: usize,
    // CSC over all columns.
    colp: Vec<usize>,
    rowi: Vec<u32>,
    vals: Vec<f64>,
    upper: Vec<f64>,
    banned: Vec<bool>,
    /// Normalized right-hand sides (`≥ 0`).
    b: Vec<f64>,
    /// `b` minus the at-upper columns' contribution (`x_B = B⁻¹ b_eff`).
    b_eff: Vec<f64>,
    basis: Vec<usize>,
    status: Vec<VStat>,
    x_b: Vec<f64>,
    etas: Vec<Eta>,
    eta_nnz: usize,
    /// `(etas.len(), eta_nnz)` right after the last refactorization —
    /// the growth triggers compare against this base, not zero (a
    /// refactorization itself emits ~m etas).
    eta_base: (usize, usize),
    stats: LpStats,
    phase2: bool,
    /// Cooperative budget meter; one `lp_pivots` charge per pivot or
    /// bound flip, checked *before* the step is applied.
    meter: Option<&'a BudgetMeter>,
}

impl<'a> Rev<'a> {
    /// Builds the CSC matrix, logical/artificial columns, and the
    /// all-logical starting basis (`B = I`, no etas).
    fn build(p: &'a Problem) -> Rev<'a> {
        // Normalize rows to rhs ≥ 0 (flipping senses), summing repeated
        // variable indices per row.
        let m = p.rows.len();
        let n0 = p.n_vars;
        let n_real = n0 + m;
        struct NRow {
            coeffs: Vec<(usize, f64)>,
            cmp: Cmp,
            rhs: f64,
        }
        let mut acc: Vec<f64> = vec![0.0; n0];
        let rows: Vec<NRow> = p
            .rows
            .iter()
            .map(|r| {
                let mut touched: Vec<usize> = Vec::with_capacity(r.coeffs.len());
                for &(j, v) in &r.coeffs {
                    if acc[j] == 0.0 {
                        touched.push(j);
                    }
                    acc[j] += v;
                }
                touched.sort_unstable();
                let flip = r.rhs < 0.0;
                let sign = if flip { -1.0 } else { 1.0 };
                let coeffs: Vec<(usize, f64)> = touched
                    .iter()
                    .map(|&j| {
                        let v = acc[j] * sign;
                        acc[j] = 0.0;
                        (j, v)
                    })
                    .filter(|&(_, v)| v != 0.0)
                    .collect();
                let cmp = match (r.cmp, flip) {
                    (c, false) => c,
                    (Cmp::Le, true) => Cmp::Ge,
                    (Cmp::Ge, true) => Cmp::Le,
                    (Cmp::Eq, true) => Cmp::Eq,
                };
                NRow {
                    coeffs,
                    cmp,
                    rhs: r.rhs.abs(),
                }
            })
            .collect();

        let n_art = rows.iter().filter(|r| !matches!(r.cmp, Cmp::Le)).count();
        let n_cols = n_real + n_art;

        // CSC: structural columns from the rows, then one logical column
        // per row (slack +1 / surplus −1 / banned zero for Eq), then one
        // artificial (+1) per Ge/Eq row.
        let mut count = vec![0usize; n_cols];
        for (i, r) in rows.iter().enumerate() {
            for &(j, _) in &r.coeffs {
                count[j] += 1;
            }
            if !matches!(r.cmp, Cmp::Eq) {
                count[n0 + i] += 1;
            }
        }
        let mut art_of_row: Vec<Option<usize>> = vec![None; m];
        let mut next_art = n_real;
        for (i, r) in rows.iter().enumerate() {
            if !matches!(r.cmp, Cmp::Le) {
                count[next_art] += 1;
                art_of_row[i] = Some(next_art);
                next_art += 1;
            }
        }
        let mut colp = vec![0usize; n_cols + 1];
        for j in 0..n_cols {
            colp[j + 1] = colp[j] + count[j];
        }
        let nnz = colp[n_cols];
        let mut rowi = vec![0u32; nnz];
        let mut vals = vec![0.0f64; nnz];
        let mut cursor = colp.clone();
        let mut push = |cur: &mut Vec<usize>, j: usize, i: usize, v: f64| {
            let k = cur[j];
            rowi[k] = i as u32;
            vals[k] = v;
            cur[j] = k + 1;
        };
        for (i, r) in rows.iter().enumerate() {
            for &(j, v) in &r.coeffs {
                push(&mut cursor, j, i, v);
            }
            match r.cmp {
                Cmp::Le => push(&mut cursor, n0 + i, i, 1.0),
                Cmp::Ge => push(&mut cursor, n0 + i, i, -1.0),
                Cmp::Eq => {}
            }
            if let Some(a) = art_of_row[i] {
                push(&mut cursor, a, i, 1.0);
            }
        }

        let mut upper = vec![f64::INFINITY; n_cols];
        for (j, u) in p.upper.iter().enumerate() {
            if let Some(u) = u {
                upper[j] = *u;
            }
        }
        let mut banned = vec![false; n_cols];
        let b: Vec<f64> = rows.iter().map(|r| r.rhs).collect();

        // Starting basis: the logical/artificial identity.
        let mut basis = vec![usize::MAX; m];
        let mut status = vec![VStat::Lower; n_cols];
        for (i, r) in rows.iter().enumerate() {
            let col = match r.cmp {
                Cmp::Le => n0 + i,
                _ => art_of_row[i].expect("Ge/Eq rows have an artificial"),
            };
            basis[i] = col;
            status[col] = VStat::Basic(i as u32);
            if matches!(r.cmp, Cmp::Eq) {
                // the unused Eq logical column is an all-zero column
                banned[n0 + i] = true;
                upper[n0 + i] = 0.0;
            }
        }

        let n_bounded = p.upper.iter().filter(|u| u.is_some()).count();
        Rev {
            p,
            m,
            n0,
            n_real,
            n_cols,
            colp,
            rowi,
            vals,
            upper,
            banned,
            b_eff: b.clone(),
            x_b: b.clone(),
            b,
            basis,
            status,
            etas: Vec::new(),
            eta_nnz: 0,
            eta_base: (0, 0),
            stats: LpStats {
                rows: m,
                cols: n_cols,
                bound_rows: 0,
                bound_cols: n_bounded,
                ..Default::default()
            },
            phase2: false,
            meter: None,
        }
    }

    /// Charges one pivot to the meter, if any.
    #[inline]
    fn charge_pivot(&self) -> Result<(), Exhausted> {
        match self.meter {
            Some(m) => m.charge_lp_pivots(1),
            None => Ok(()),
        }
    }

    #[inline]
    fn col(&self, j: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.colp[j], self.colp[j + 1]);
        (&self.rowi[lo..hi], &self.vals[lo..hi])
    }

    /// `v += f · A_j` (sparse column into a dense vector).
    fn add_col(v: &mut [f64], rows: &[u32], vals: &[f64], f: f64) {
        for (&i, &a) in rows.iter().zip(vals) {
            v[i as usize] += f * a;
        }
    }

    /// Applies `B⁻¹` to `v` in place (forward through the eta file).
    fn ftran(&self, v: &mut [f64]) {
        for e in &self.etas {
            let t = v[e.r as usize];
            if t != 0.0 {
                let s = t * e.inv_piv;
                v[e.r as usize] = s;
                for &(i, d) in &e.ent {
                    v[i as usize] -= d * s;
                }
            }
        }
    }

    /// Applies `(B⁻¹)ᵀ` to `v` in place (backward through the eta file).
    fn btran(&self, v: &mut [f64]) {
        for e in self.etas.iter().rev() {
            let mut s = v[e.r as usize];
            for &(i, d) in &e.ent {
                s -= d * v[i as usize];
            }
            v[e.r as usize] = s * e.inv_piv;
        }
    }

    /// Dense scratch holding `B⁻¹ A_j`.
    fn direction(&self, j: usize, scratch: &mut Vec<f64>) {
        scratch.clear();
        scratch.resize(self.m, 0.0);
        let (rows, vals) = self.col(j);
        for (&i, &a) in rows.iter().zip(vals) {
            scratch[i as usize] = a;
        }
        self.ftran(scratch);
    }

    fn push_eta(&mut self, r: usize, d: &[f64]) {
        let mut scale = 0.0f64;
        for &v in d.iter() {
            scale = scale.max(v.abs());
        }
        let drop = scale.max(1.0) * DROP_REL;
        let ent: Vec<(u32, f64)> = d
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v.abs() > drop)
            .map(|(i, &v)| (i as u32, v))
            .collect();
        self.eta_nnz += ent.len() + 1;
        self.etas.push(Eta {
            r: r as u32,
            inv_piv: 1.0 / d[r],
            ent,
        });
    }

    /// Rebuilds the eta file from the current basis columns (sparse
    /// Gauss–Jordan; rows may be reassigned). Pivot order matters
    /// enormously: network bases are near-triangular, and processing a
    /// permuted-lower-triangular prefix in diagonal order produces etas
    /// that are exactly the original sparse columns (the FTRAN skip on
    /// a zero pivot entry then never materializes fill-in). A
    /// **row-singleton peel** finds that order in `O(nnz)`; only the
    /// small non-triangular kernel falls back to partial pivoting.
    /// Recomputes `x_B`. Returns `false` on a singular basis.
    fn refactorize(&mut self) -> bool {
        self.etas.clear();
        self.eta_nnz = 0;
        let m = self.m;
        let cols: Vec<usize> = self.basis.clone();
        // --- combined triangular peel (Suhl-style): repeatedly take
        // either a *column singleton* (a basis column with one nonzero
        // left in active rows — unit slack/artificial columns all
        // qualify immediately) or a *row singleton* (a row only one
        // active column still touches). Each take opens further
        // singletons; what survives is the genuinely non-triangular
        // kernel, which alone pays for partial pivoting.
        let mut row_cnt = vec![0u32; m]; // active columns touching row
        let mut col_cnt = vec![0u32; m]; // active rows of column (slot)
        let mut row_slots: Vec<Vec<u32>> = vec![Vec::new(); m];
        for (s, &c) in cols.iter().enumerate() {
            let rows = self.col(c).0;
            col_cnt[s] = rows.len() as u32;
            for &i in rows {
                row_cnt[i as usize] += 1;
                row_slots[i as usize].push(s as u32);
            }
        }
        let mut slot_done = vec![false; m];
        let mut row_taken = vec![false; m];
        let mut col_stack: Vec<usize> = (0..cols.len()).filter(|&s| col_cnt[s] == 1).collect();
        let mut row_stack: Vec<usize> = (0..m).filter(|&i| row_cnt[i] == 1).collect();
        let mut order: Vec<(usize, usize)> = Vec::with_capacity(m); // (slot, row)
        let mut take = |s: usize,
                        r: usize,
                        slot_done: &mut Vec<bool>,
                        row_taken: &mut Vec<bool>,
                        row_cnt: &mut Vec<u32>,
                        col_cnt: &mut Vec<u32>,
                        col_stack: &mut Vec<usize>,
                        row_stack: &mut Vec<usize>| {
            slot_done[s] = true;
            row_taken[r] = true;
            order.push((s, r));
            // column s leaves: its other active rows lose a column
            for &i in self.col(cols[s]).0 {
                let i = i as usize;
                if !row_taken[i] {
                    row_cnt[i] -= 1;
                    if row_cnt[i] == 1 {
                        row_stack.push(i);
                    }
                }
            }
            // row r leaves: every other active column through r shrinks
            for &s2 in &row_slots[r] {
                let s2 = s2 as usize;
                if !slot_done[s2] {
                    col_cnt[s2] -= 1;
                    if col_cnt[s2] == 1 {
                        col_stack.push(s2);
                    }
                }
            }
        };
        loop {
            if let Some(s) = col_stack.pop() {
                if slot_done[s] || col_cnt[s] != 1 {
                    continue;
                }
                let Some(&r) = self
                    .col(cols[s])
                    .0
                    .iter()
                    .find(|&&i| !row_taken[i as usize])
                else {
                    continue;
                };
                take(
                    s,
                    r as usize,
                    &mut slot_done,
                    &mut row_taken,
                    &mut row_cnt,
                    &mut col_cnt,
                    &mut col_stack,
                    &mut row_stack,
                );
            } else if let Some(r) = row_stack.pop() {
                if row_taken[r] || row_cnt[r] != 1 {
                    continue;
                }
                let Some(&s) = row_slots[r].iter().find(|&&s| !slot_done[s as usize])
                else {
                    continue;
                };
                take(
                    s as usize,
                    r,
                    &mut slot_done,
                    &mut row_taken,
                    &mut row_cnt,
                    &mut col_cnt,
                    &mut col_stack,
                    &mut row_stack,
                );
            } else {
                break;
            }
        }
        let mut new_basis = vec![usize::MAX; m];
        let mut d = Vec::new();
        for &(s, r) in &order {
            self.direction(cols[s], &mut d);
            if d[r].abs() <= PIV_TOL {
                // numerically degenerate on its peel row: retry below
                slot_done[s] = false;
                row_taken[r] = false;
                continue;
            }
            new_basis[r] = cols[s];
            self.push_eta(r, &d);
        }
        // --- non-triangular kernel (and peel rejects): partial pivoting
        for s in 0..cols.len() {
            if slot_done[s] {
                continue;
            }
            self.direction(cols[s], &mut d);
            let mut r_best = usize::MAX;
            let mut best = PIV_TOL;
            for (i, &v) in d.iter().enumerate() {
                if !row_taken[i] && v.abs() > best {
                    best = v.abs();
                    r_best = i;
                }
            }
            if r_best == usize::MAX {
                return false;
            }
            row_taken[r_best] = true;
            new_basis[r_best] = cols[s];
            self.push_eta(r_best, &d);
        }
        self.basis = new_basis;
        for (r, &c) in self.basis.iter().enumerate() {
            self.status[c] = VStat::Basic(r as u32);
        }
        self.stats.refactorizations += 1;
        self.eta_base = (self.etas.len(), self.eta_nnz);
        self.recompute_x_b();
        true
    }

    fn recompute_x_b(&mut self) {
        let mut v = self.b_eff.clone();
        self.ftran(&mut v);
        self.x_b = v;
    }

    fn needs_refactor(&self) -> bool {
        let (base_len, base_nnz) = self.eta_base;
        self.etas.len() - base_len >= REFACTOR_EVERY
            || self.eta_nnz - base_nnz > REFACTOR_NNZ_PER_ROW * self.m + 1024
    }

    /// Phase cost of column `j`.
    #[inline]
    fn cost(&self, j: usize) -> f64 {
        if self.phase2 {
            if j < self.n0 {
                self.p.objective[j]
            } else {
                0.0
            }
        } else if j >= self.n_real {
            1.0
        } else {
            0.0
        }
    }

    /// Simplex multipliers `y = (B⁻¹)ᵀ c_B` for the current phase.
    fn multipliers(&self, y: &mut Vec<f64>) {
        y.clear();
        y.resize(self.m, 0.0);
        for (r, &c) in self.basis.iter().enumerate() {
            let cb = self.cost(c);
            if cb != 0.0 {
                y[r] = cb;
            }
        }
        self.btran(y);
    }

    #[inline]
    fn rc(&self, j: usize, y: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        let mut dot = 0.0;
        for (&i, &a) in rows.iter().zip(vals) {
            dot += y[i as usize] * a;
        }
        self.cost(j) - dot
    }

    /// A nonbasic column is a pricing candidate unless banned or fixed.
    #[inline]
    fn priceable(&self, j: usize) -> bool {
        !self.banned[j]
            && !matches!(self.status[j], VStat::Basic(_))
            && self.upper[j] > 0.0
    }

    /// The bound-violation a pricing candidate would repair: positive
    /// iff entering `j` improves the current phase objective.
    #[inline]
    fn violation(&self, j: usize, y: &[f64]) -> f64 {
        let rc = self.rc(j, y);
        match self.status[j] {
            VStat::Lower => -rc,
            VStat::Upper => rc,
            VStat::Basic(_) => unreachable!("basic columns are not priced"),
        }
    }

    /// Serial pricing over `range`: Dantzig picks the first column
    /// attaining the maximum violation (strict `>`, so the lowest index
    /// wins ties); Bland returns at the first violating column.
    fn price_range(
        &self,
        range: std::ops::Range<usize>,
        y: &[f64],
        bland: bool,
    ) -> (Option<usize>, f64) {
        let mut enter: Option<usize> = None;
        let mut best = TOL;
        for j in range {
            if !self.priceable(j) {
                continue;
            }
            let viol = self.violation(j, y);
            if viol > best {
                enter = Some(j);
                if bland {
                    break;
                }
                best = viol;
            }
        }
        (enter, best)
    }

    /// Pricing: picks the entering column. When more than one
    /// intra-solve thread is in effect (`rtt_par`), the column scan
    /// runs over **fixed chunks** in parallel and the entering variable
    /// is chosen by an ordered (chunk-index-tiebroken) reduction —
    /// bit-identical to the serial scan at any thread count:
    ///
    /// * Dantzig uses a strict `>` against the running best, so the
    ///   serial winner is the *first* column attaining the global
    ///   maximum violation. Per-chunk winners use the same strict
    ///   comparison, and the in-order fold keeps an earlier chunk's
    ///   winner on ties — every chunk before the serial winner's has a
    ///   strictly smaller local maximum, so the fold lands on the same
    ///   column with the same float compared the same way.
    /// * Bland takes the first violating column: the first chunk (in
    ///   index order) with a violation contributes its first violating
    ///   column, which is the serial first hit.
    ///
    /// (The dual ratio-test scan is *not* parallelized: its ε-window
    /// tie-break is history-dependent, not an associative reduction —
    /// see the module docs of `rtt_par`.)
    fn price(&self, y: &[f64], bland: bool, threads: usize) -> Option<usize> {
        let n = self.n_cols;
        if threads <= 1 && !rtt_par::chunking_forced() {
            return self.price_range(0..n, y, bland).0;
        }
        let parts = rtt_par::map_chunks(n, rtt_par::DEFAULT_CHUNK, threads, |_, range| {
            self.price_range(range, y, bland)
        });
        let mut enter: Option<usize> = None;
        let mut best = TOL;
        for (e, b) in parts {
            let Some(j) = e else { continue };
            if bland {
                return Some(j);
            }
            if b > best {
                best = b;
                enter = Some(j);
            }
        }
        enter
    }

    /// Moves nonbasic `j` to its opposite bound (`d = B⁻¹ A_j`).
    fn apply_flip(&mut self, j: usize, d: &[f64]) {
        let u = self.upper[j];
        let (sigma, to_upper) = match self.status[j] {
            VStat::Lower => (1.0, true),
            VStat::Upper => (-1.0, false),
            VStat::Basic(_) => unreachable!("flip of a basic column"),
        };
        for (xb, &di) in self.x_b.iter_mut().zip(d) {
            *xb -= sigma * u * di;
        }
        self.status[j] = if to_upper { VStat::Upper } else { VStat::Lower };
        let f = if to_upper { -u } else { u };
        let (lo, hi) = (self.colp[j], self.colp[j + 1]);
        for k in lo..hi {
            self.b_eff[self.rowi[k] as usize] += f * self.vals[k];
        }
        self.stats.bound_flips += 1;
    }

    /// Pivots entering column `j` (moving `t` from its current bound,
    /// direction `d = B⁻¹ A_j`) against row `r`; the leaving variable
    /// settles at `leave_upper ? upper : lower`.
    fn apply_pivot(&mut self, r: usize, j: usize, t: f64, d: &[f64], leave_upper: bool) {
        let from_upper = matches!(self.status[j], VStat::Upper);
        let sigma = if from_upper { -1.0 } else { 1.0 };
        for (i, (xb, &di)) in self.x_b.iter_mut().zip(d).enumerate() {
            if i != r {
                *xb -= sigma * t * di;
            }
        }
        let l = self.basis[r];
        if leave_upper {
            self.status[l] = VStat::Upper;
            let u = self.upper[l];
            let (lo, hi) = (self.colp[l], self.colp[l + 1]);
            for k in lo..hi {
                self.b_eff[self.rowi[k] as usize] -= u * self.vals[k];
            }
        } else {
            self.status[l] = VStat::Lower;
        }
        if from_upper {
            let u = self.upper[j];
            let (lo, hi) = (self.colp[j], self.colp[j + 1]);
            for k in lo..hi {
                self.b_eff[self.rowi[k] as usize] += u * self.vals[k];
            }
        }
        self.basis[r] = j;
        self.status[j] = VStat::Basic(r as u32);
        self.x_b[r] = if from_upper { self.upper[j] - t } else { t };
        self.push_eta(r, d);
        if self.phase2 {
            self.stats.phase2_pivots += 1;
        } else {
            self.stats.phase1_pivots += 1;
        }
    }

    /// The primal simplex loop for the current phase.
    fn primal(&mut self, rule: PivotRule) -> LoopEnd {
        let (m, n) = (self.m, self.n_cols);
        let bland_after = match rule {
            PivotRule::Dantzig => 20 * (m + n) + 1000,
            PivotRule::Bland => 0,
        };
        let hard_cap = 2_000 * (m + n) + 100_000;
        let threads = rtt_par::current();
        let mut y = Vec::new();
        let mut d = Vec::new();
        let mut iters = 0usize;
        loop {
            iters += 1;
            if iters >= hard_cap {
                return LoopEnd::Fail;
            }
            let bland = iters > bland_after;
            // --- pricing (chunk-parallel when intra-solve threads > 1;
            // bit-identical entering choice either way — see `price`)
            self.multipliers(&mut y);
            let Some(q) = self.price(&y, bland, threads) else {
                return LoopEnd::Optimal;
            };
            let from_upper = matches!(self.status[q], VStat::Upper);
            let sigma = if from_upper { -1.0 } else { 1.0 };
            self.direction(q, &mut d);
            // --- ratio test over the basic variables' bound windows
            let mut leave: Option<(usize, bool)> = None; // (row, leaves at upper)
            let mut best_ratio = f64::INFINITY;
            for (i, &di) in d.iter().enumerate() {
                let sd = sigma * di;
                let (ratio, at_upper) = if sd > TOL {
                    (self.x_b[i].max(0.0) / sd, false)
                } else if sd < -TOL && self.upper[self.basis[i]].is_finite() {
                    let room = (self.upper[self.basis[i]] - self.x_b[i]).max(0.0);
                    (room / -sd, true)
                } else {
                    continue;
                };
                let better = ratio < best_ratio - TOL
                    || (ratio < best_ratio + TOL
                        && leave.is_some_and(|(l, _)| self.basis[i] < self.basis[l]));
                if leave.is_none() || better {
                    best_ratio = ratio;
                    leave = Some((i, at_upper));
                }
            }
            let flip_cap = self.upper[q];
            if flip_cap.is_finite() && flip_cap < best_ratio - TOL {
                if let Err(e) = self.charge_pivot() {
                    return LoopEnd::Exhausted(e);
                }
                self.apply_flip(q, &d);
                continue;
            }
            let Some((r, leave_upper)) = leave else {
                if flip_cap.is_finite() {
                    if let Err(e) = self.charge_pivot() {
                        return LoopEnd::Exhausted(e);
                    }
                    self.apply_flip(q, &d);
                    continue;
                }
                return LoopEnd::Unbounded;
            };
            if d[r].abs() <= PIV_TOL {
                // numerically hopeless pivot: refactorize and retry, or
                // give up and let the caller restart colder
                if !self.refactorize() {
                    return LoopEnd::Fail;
                }
                continue;
            }
            if let Err(e) = self.charge_pivot() {
                return LoopEnd::Exhausted(e);
            }
            self.apply_pivot(r, q, best_ratio.max(0.0), &d, leave_upper);
            if self.needs_refactor() && !self.refactorize() {
                return LoopEnd::Fail;
            }
        }
    }

    /// Bounded dual simplex: restores primal feasibility while keeping
    /// dual feasibility (used by warm starts after an RHS change).
    fn dual(&mut self) -> DualEnd {
        let cap = 20 * (self.m + self.n_cols) + 1000;
        let mut y = Vec::new();
        let mut rho = Vec::new();
        let mut d = Vec::new();
        for _ in 0..cap {
            // --- most-violated basic variable
            let mut leave: Option<(usize, bool)> = None; // (row, violates upper)
            let mut worst = DTOL;
            for (i, &xb) in self.x_b.iter().enumerate() {
                let u = self.upper[self.basis[i]];
                if xb < -worst {
                    worst = -xb;
                    leave = Some((i, false));
                } else if xb > u + worst {
                    worst = xb - u;
                    leave = Some((i, true));
                }
            }
            let Some((r, over_upper)) = leave else {
                return DualEnd::Feasible;
            };
            // --- row r of B⁻¹A and the reduced costs
            rho.clear();
            rho.resize(self.m, 0.0);
            rho[r] = 1.0;
            self.btran(&mut rho);
            self.multipliers(&mut y);
            let mut enter: Option<usize> = None;
            let mut best_theta = f64::INFINITY;
            for j in 0..self.n_cols {
                if !self.priceable(j) {
                    continue;
                }
                let (rows, vals) = self.col(j);
                let mut alpha = 0.0;
                for (&i, &a) in rows.iter().zip(vals) {
                    alpha += rho[i as usize] * a;
                }
                let at_lower = matches!(self.status[j], VStat::Lower);
                // eligibility: the pivot must move x_B[r] toward its bound
                let ok = if over_upper {
                    (at_lower && alpha > DTOL) || (!at_lower && alpha < -DTOL)
                } else {
                    (at_lower && alpha < -DTOL) || (!at_lower && alpha > DTOL)
                };
                if !ok {
                    continue;
                }
                let theta = (self.rc(j, &y) / alpha).abs();
                if theta < best_theta - TOL
                    || (theta < best_theta + TOL && enter.is_some_and(|e| j < e))
                    || enter.is_none()
                {
                    best_theta = theta;
                    enter = Some(j);
                }
            }
            let Some(q) = enter else {
                return DualEnd::Stuck; // no repair possible: go cold
            };
            self.direction(q, &mut d);
            if d[r].abs() <= PIV_TOL {
                return DualEnd::Stuck;
            }
            let sigma = if matches!(self.status[q], VStat::Upper) {
                -1.0
            } else {
                1.0
            };
            let target = if over_upper {
                self.upper[self.basis[r]]
            } else {
                0.0
            };
            let t = ((self.x_b[r] - target) / (sigma * d[r])).max(0.0);
            if let Err(e) = self.charge_pivot() {
                return DualEnd::Exhausted(e);
            }
            if self.upper[q].is_finite() && t > self.upper[q] + TOL {
                // the entering variable hits its own far bound first
                self.apply_flip(q, &d);
                continue;
            }
            self.apply_pivot(r, q, t, &d, over_upper);
            if self.needs_refactor() && !self.refactorize() {
                return DualEnd::Stuck;
            }
        }
        DualEnd::Stuck
    }

    /// Sum of the artificial variables (the phase-1 objective).
    fn artificial_residual(&self) -> f64 {
        self.basis
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= self.n_real)
            .map(|(r, _)| self.x_b[r].max(0.0))
            .sum()
    }

    /// Bans artificials and pivots still-basic ones out (degenerate
    /// pivots); redundant rows keep their artificial harmlessly basic.
    fn retire_artificials(&mut self) {
        for j in self.n_real..self.n_cols {
            self.banned[j] = true;
            // a retired artificial is fixed at zero; the dual loop's
            // bound checks then police redundant rows under RHS changes
            self.upper[j] = 0.0;
        }
        let mut rho = Vec::new();
        let mut d = Vec::new();
        for r in 0..self.m {
            if self.basis[r] < self.n_real {
                continue;
            }
            self.x_b[r] = 0.0;
            rho.clear();
            rho.resize(self.m, 0.0);
            rho[r] = 1.0;
            self.btran(&mut rho);
            let found = (0..self.n_real).find(|&j| {
                if self.banned[j] || matches!(self.status[j], VStat::Basic(_)) {
                    return false;
                }
                let (rows, vals) = self.col(j);
                let mut alpha = 0.0;
                for (&i, &a) in rows.iter().zip(vals) {
                    alpha += rho[i as usize] * a;
                }
                alpha.abs() > 1e-7
            });
            if let Some(j) = found {
                self.direction(j, &mut d);
                if d[r].abs() > PIV_TOL {
                    self.apply_pivot(r, j, 0.0, &d, false);
                }
            }
        }
    }

    /// Final cleanup plus one step of iterative refinement on
    /// `B x_B = b_eff`, then the solution extraction. A fresh eta file
    /// (≤ 16 pivots since the last rebuild — the steady state of a
    /// warm-sweep point) skips the refactorization and only re-solves
    /// `x_B`; refinement bounds the drift either way.
    fn extract(&mut self) -> Option<Solution> {
        if self.etas.len() - self.eta_base.0 > 16 {
            if !self.refactorize() {
                return None;
            }
        } else {
            self.recompute_x_b();
        }
        let mut resid = self.b_eff.clone();
        for (r, &c) in self.basis.iter().enumerate() {
            let xb = self.x_b[r];
            if xb != 0.0 {
                let (rows, vals) = self.col(c);
                Self::add_col(&mut resid, rows, vals, -xb);
            }
        }
        self.ftran(&mut resid);
        for (xb, dx) in self.x_b.iter_mut().zip(&resid) {
            *xb += dx;
        }
        let mut x = vec![0.0; self.n0];
        for (j, xv) in x.iter_mut().enumerate() {
            *xv = match self.status[j] {
                VStat::Lower => 0.0,
                VStat::Upper => self.upper[j],
                VStat::Basic(r) => {
                    let v = self.x_b[r as usize];
                    let u = self.upper[j];
                    if u.is_finite() {
                        v.clamp(0.0, u)
                    } else {
                        v.max(0.0)
                    }
                }
            };
        }
        let objective = self.p.objective_at(&x);
        let pivots =
            self.stats.phase1_pivots + self.stats.phase2_pivots + self.stats.bound_flips;
        Some(Solution {
            objective,
            x,
            pivots,
            stats: self.stats,
        })
    }

    fn snapshot_basis(&self) -> Basis {
        Basis {
            basic: self.basis.iter().map(|&c| c as u32).collect(),
            at_upper: self
                .status
                .iter()
                .map(|s| matches!(s, VStat::Upper))
                .collect(),
            rows: self.m as u32,
            cols: self.n_cols as u32,
        }
    }

    /// Installs a previously returned basis: reassigns statuses,
    /// rebuilds `b_eff`, refactorizes, and checks dual feasibility.
    fn install(&mut self, warm: &Basis) -> bool {
        if warm.rows as usize != self.m || warm.cols as usize != self.n_cols {
            return false;
        }
        // phase 2 from the start: artificials stay banned and fixed at 0
        // (do this first so the at-upper validation below sees their
        // finite bound — a dual pivot can legitimately park one "at
        // upper", i.e. at 0)
        self.phase2 = true;
        for j in self.n_real..self.n_cols {
            self.banned[j] = true;
            self.upper[j] = 0.0;
        }
        let mut status = vec![VStat::Lower; self.n_cols];
        for (r, &c) in warm.basic.iter().enumerate() {
            let c = c as usize;
            if c >= self.n_cols || matches!(status[c], VStat::Basic(_)) {
                return false;
            }
            status[c] = VStat::Basic(r as u32);
        }
        for (j, &up) in warm.at_upper.iter().enumerate() {
            if up {
                if matches!(status[j], VStat::Basic(_)) || !self.upper[j].is_finite() {
                    return false;
                }
                status[j] = VStat::Upper;
            }
        }
        self.status = status;
        self.basis = warm.basic.iter().map(|&c| c as usize).collect();
        self.b_eff = self.b.clone();
        for j in 0..self.n_cols {
            if matches!(self.status[j], VStat::Upper) {
                let u = self.upper[j];
                let (lo, hi) = (self.colp[j], self.colp[j + 1]);
                for k in lo..hi {
                    self.b_eff[self.rowi[k] as usize] -= u * self.vals[k];
                }
            }
        }
        self.refactorize()
    }

    /// Whether the installed basic values respect their bounds (the
    /// zero upper bound on retired artificials makes this also check
    /// that no basic artificial carries value).
    fn is_primal_feasible(&self) -> bool {
        self.basis.iter().zip(&self.x_b).all(|(&c, &v)| {
            let u = self.upper[c];
            v >= -DTOL && (u.is_infinite() || v <= u + DTOL)
        })
    }

    /// Whether the phase-2 reduced costs are sign-feasible.
    fn is_dual_feasible(&self) -> bool {
        let mut y = Vec::new();
        self.multipliers(&mut y);
        (0..self.n_cols).all(|j| {
            if !self.priceable(j) {
                return true;
            }
            let rc = self.rc(j, &y);
            match self.status[j] {
                VStat::Lower => rc >= -DTOL,
                VStat::Upper => rc <= DTOL,
                VStat::Basic(_) => true,
            }
        })
    }
}

/// Whether `b`'s shape matches what [`solve_warm`] would build for `p`
/// — the cheap pre-check for **cross-problem (delta) warm starts**,
/// where the offered basis came from a different `Problem` of
/// identical shape (e.g. the same instance at another budget, or a
/// duration-perturbed sibling whose LP kept its sparsity pattern). A
/// non-fitting basis would be rejected at install time anyway; callers
/// holding a better fallback (such as a crash basis) should check
/// first instead of burning the offer on a cold fallback.
pub fn basis_fits(p: &Problem, b: &Basis) -> bool {
    let m = p.rows.len();
    // replicate the internal column layout count: structurals +
    // one logical per row + one artificial per normalized Ge/Eq row
    let n_art = p
        .rows
        .iter()
        .filter(|row| {
            let cmp = match (row.cmp, row.rhs < 0.0) {
                (c, false) => c,
                (Cmp::Le, true) => Cmp::Ge,
                (Cmp::Ge, true) => Cmp::Le,
                (Cmp::Eq, true) => Cmp::Eq,
            };
            !matches!(cmp, Cmp::Le)
        })
        .count();
    b.n_rows() == m && b.n_cols() == p.n_vars + m + n_art
}

/// Cold two-phase solve (the [`crate::Engine::Revised`] entry point).
pub fn solve(p: &Problem, rule: PivotRule) -> Outcome {
    solve_warm(p, rule, None, None).0
}

/// [`solve`] under a cooperative budget meter: every pivot or bound
/// flip charges one `lp_pivots` unit, and a tripped budget (or
/// deadline / cancellation) returns [`Outcome::Exhausted`] instead of
/// looping on.
pub fn solve_metered(p: &Problem, rule: PivotRule, meter: Option<&BudgetMeter>) -> Outcome {
    solve_warm(p, rule, None, meter).0
}

/// Solves `p`, optionally warm-starting from a [`Basis`] of a
/// previous solve of an identically-shaped problem (only right-hand
/// sides may differ). Returns the outcome plus the optimal basis (for
/// the next warm start); the basis is `None` unless the solve ended
/// [`Outcome::Optimal`]. A `meter`, when given, is charged one
/// `lp_pivots` unit per pivot or bound flip across every stage (warm
/// repair, cold restart, flat fallback); exhaustion surfaces as
/// [`Outcome::Exhausted`] and never falls back to more work.
pub fn solve_warm(
    p: &Problem,
    rule: PivotRule,
    warm: Option<&Basis>,
    meter: Option<&BudgetMeter>,
) -> (Outcome, Option<Basis>) {
    if let Some(warm) = warm {
        let mut rev = Rev::build(p);
        rev.meter = meter;
        if rev.install(warm) {
            // Two admissible entries: a *dual-feasible* basis (an old
            // optimum after an RHS change) is repaired by the dual
            // simplex; a *primal-feasible* one (a structural crash)
            // goes straight to phase 2. Neither → cold. The entry used
            // is recorded as the solution's warm-start provenance.
            let (ready, via) = if rev.is_dual_feasible() {
                match rev.dual() {
                    DualEnd::Feasible => (true, WarmStart::Dual),
                    DualEnd::Stuck => (false, WarmStart::Rejected),
                    DualEnd::Exhausted(e) => return (Outcome::Exhausted(e), None),
                }
            } else {
                (rev.is_primal_feasible(), WarmStart::Primal)
            };
            rev.stats.warm = via;
            if ready {
                match rev.primal(rule) {
                    LoopEnd::Optimal => {
                        if let Some(sol) = rev.extract() {
                            let basis = rev.snapshot_basis();
                            return (Outcome::Optimal(sol), Some(basis));
                        }
                    }
                    // never trust a warm start's verdicts beyond
                    // optimality: unboundedness could be eta-file
                    // drift, so re-derive it from a cold solve
                    LoopEnd::Unbounded | LoopEnd::Fail => {}
                    LoopEnd::Exhausted(e) => return (Outcome::Exhausted(e), None),
                }
            }
        }
        // anything suspicious: fall through to a cold solve — but
        // record on the result that a basis was offered and rejected
        let (mut out, basis) = cold(p, rule, meter);
        if let Outcome::Optimal(ref mut sol) = out {
            sol.stats.warm = WarmStart::Rejected;
        }
        return (out, basis);
    }
    cold(p, rule, meter)
}

fn cold(p: &Problem, rule: PivotRule, meter: Option<&BudgetMeter>) -> (Outcome, Option<Basis>) {
    let mut rev = Rev::build(p);
    rev.meter = meter;
    let has_art = rev.n_cols > rev.n_real;
    if has_art {
        match rev.primal(rule) {
            LoopEnd::Optimal => {}
            // phase 1 is bounded below by 0; Unbounded means numerics
            LoopEnd::Unbounded | LoopEnd::Fail => return flat_fallback(p, meter),
            LoopEnd::Exhausted(e) => return (Outcome::Exhausted(e), None),
        }
        if rev.artificial_residual() > 1e-6 {
            return (Outcome::Infeasible, None);
        }
        rev.retire_artificials();
    }
    rev.phase2 = true;
    match rev.primal(rule) {
        LoopEnd::Optimal => {}
        LoopEnd::Unbounded => return (Outcome::Unbounded, None),
        LoopEnd::Fail => return flat_fallback(p, meter),
        LoopEnd::Exhausted(e) => return (Outcome::Exhausted(e), None),
    }
    match rev.extract() {
        Some(sol) => {
            let basis = rev.snapshot_basis();
            (Outcome::Optimal(sol), Some(basis))
        }
        None => flat_fallback(p, meter),
    }
}

/// Last-resort fallback: the dense flat engine under Bland's rule, so
/// the revised engine's worst case matches the flat engine's guarantees.
/// The meter keeps counting across the fallback — the budget bounds the
/// request's total pivot work, not one engine's.
fn flat_fallback(p: &Problem, meter: Option<&BudgetMeter>) -> (Outcome, Option<Basis>) {
    (
        crate::simplex::solve_standard(p, PivotRule::Bland, meter),
        None,
    )
}

/// Solves `p` at every value of `rhs_values` for row `row`'s right-hand
/// side, in **one chained solver session**: the CSC matrix, eta file,
/// and basis survive from point to point, so each point after the first
/// pays only its dual-reoptimization pivots — no rebuild, no install
/// refactorization. Outcomes are returned in input order (each optimal
/// outcome's [`Solution`] counters are per-point, not cumulative),
/// plus the final basis.
///
/// `start` seeds the first point (same contract as [`solve_warm`]).
/// Any hiccup — negative RHS (which would flip the row's normalized
/// sense), a failed install, a stalled loop — degrades the remaining
/// points to independent [`solve_warm`] calls; the chain is an
/// optimization, never a correctness dependency.
///
/// A `meter` bounds the *whole sweep*: once it trips, the current and
/// every remaining point come back as [`Outcome::Exhausted`] (the
/// counters are cumulative, so restarting per point cannot evade the
/// budget) and no reusable basis is returned.
pub fn solve_rhs_sweep(
    p: &Problem,
    row: usize,
    rhs_values: &[f64],
    rule: PivotRule,
    start: Option<&Basis>,
    meter: Option<&BudgetMeter>,
) -> (Vec<Outcome>, Option<Basis>) {
    assert!(row < p.rows.len(), "row {row} out of range");
    let mut out: Vec<Outcome> = Vec::with_capacity(rhs_values.len());
    let degraded = |from: usize,
                    out: &mut Vec<Outcome>,
                    mut basis: Option<Basis>| {
        let mut q = p.clone();
        for &v in &rhs_values[from..] {
            q.set_rhs(row, v);
            let (o, b) = solve_warm(&q, rule, basis.as_ref(), meter);
            if b.is_some() {
                basis = b;
            }
            out.push(o);
        }
        basis
    };
    // fills the tail once the budget trips: every remaining point owns
    // the same exhaustion verdict, and the chain's basis is dropped
    let exhausted_tail = |from: usize, out: &mut Vec<Outcome>, e: Exhausted| {
        for _ in from..rhs_values.len() {
            out.push(Outcome::Exhausted(e));
        }
    };
    if rhs_values.is_empty() {
        return (out, start.cloned());
    }
    if rhs_values.iter().any(|&v| !v.is_finite() || v < 0.0) {
        let basis = degraded(0, &mut out, start.cloned());
        return (out, basis);
    }
    let mut q = p.clone();
    q.set_rhs(row, rhs_values[0]);
    let mut rev = Rev::build(&q);
    rev.meter = meter;
    // the first point's counter baseline predates seeding, so a cold
    // seed's phase-1 pivots are charged to the point that caused them
    let seed_base = rev.stats;
    // seed the chain: a provided start, else the cold two-phase path
    let seeded = match start {
        Some(warm) => {
            rev.install(warm)
                && if rev.is_dual_feasible() {
                    match rev.dual() {
                        DualEnd::Feasible => {
                            rev.stats.warm = WarmStart::Dual;
                            true
                        }
                        DualEnd::Stuck => false,
                        DualEnd::Exhausted(e) => {
                            exhausted_tail(0, &mut out, e);
                            return (out, None);
                        }
                    }
                } else {
                    let ok = rev.is_primal_feasible();
                    if ok {
                        rev.stats.warm = WarmStart::Primal;
                    }
                    ok
                }
        }
        None => {
            let has_art = rev.n_cols > rev.n_real;
            let mut ok = true;
            if has_art {
                ok = match rev.primal(rule) {
                    LoopEnd::Optimal => rev.artificial_residual() <= 1e-6,
                    LoopEnd::Exhausted(e) => {
                        exhausted_tail(0, &mut out, e);
                        return (out, None);
                    }
                    LoopEnd::Unbounded | LoopEnd::Fail => false,
                };
                if ok {
                    rev.retire_artificials();
                }
            }
            rev.phase2 = true;
            ok
        }
    };
    if !seeded {
        let basis = degraded(0, &mut out, start.cloned());
        return (out, basis);
    }
    let mut basis: Option<Basis> = None;
    let mut prev_rhs = rhs_values[0];
    for (k, &v) in rhs_values.iter().enumerate() {
        // the baseline for this point's counters — taken before the
        // dual repair so a warm point's reported pivots are exactly
        // its dual-reoptimization cost plus the primal polish (and
        // point 0 additionally owns the seeding work)
        let base = if k == 0 { seed_base } else { rev.stats };
        if k > 0 {
            // only the RHS moves: dual feasibility is preserved, the
            // dual loop repairs the (usually tiny) primal violation
            rev.b[row] = v;
            rev.b_eff[row] += v - prev_rhs;
            rev.recompute_x_b();
            match rev.dual() {
                DualEnd::Feasible => {}
                DualEnd::Stuck => {
                    let basis = degraded(k, &mut out, basis);
                    return (out, basis);
                }
                DualEnd::Exhausted(e) => {
                    exhausted_tail(k, &mut out, e);
                    return (out, None);
                }
            }
        }
        prev_rhs = v;
        match rev.primal(rule) {
            LoopEnd::Optimal => {}
            // a chained session trusts nothing suspicious: genuine
            // unboundedness survives the cold re-verify in `degraded`,
            // while eta-drift artifacts get corrected
            LoopEnd::Unbounded | LoopEnd::Fail => {
                let basis = degraded(k, &mut out, basis);
                return (out, basis);
            }
            LoopEnd::Exhausted(e) => {
                exhausted_tail(k, &mut out, e);
                return (out, None);
            }
        }
        let Some(mut sol) = rev.extract() else {
            let basis = degraded(k, &mut out, basis);
            return (out, basis);
        };
        // per-point counters: subtract the chain's running totals
        sol.stats.phase1_pivots -= base.phase1_pivots;
        sol.stats.phase2_pivots -= base.phase2_pivots;
        sol.stats.bound_flips -= base.bound_flips;
        sol.stats.refactorizations -= base.refactorizations;
        if k > 0 {
            // chained points reoptimize from the previous point's basis
            sol.stats.warm = WarmStart::Dual;
        }
        sol.pivots =
            sol.stats.phase1_pivots + sol.stats.phase2_pivots + sol.stats.bound_flips;
        basis = Some(rev.snapshot_basis());
        out.push(Outcome::Optimal(sol));
    }
    (out, basis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Problem};

    fn opt(p: &Problem) -> Solution {
        solve(p, PivotRule::Dantzig).expect_optimal("expected optimal")
    }

    #[test]
    fn matches_flat_on_bounded_lp() {
        // min x + 2y s.t. x + y >= 2, y <= 1
        let mut p = Problem::minimize(2);
        p.set_objective(0, 1.0);
        p.set_objective(1, 2.0);
        p.add_ge(&[(0, 1.0), (1, 1.0)], 2.0);
        p.set_upper_bound(1, 1.0);
        let s = opt(&p);
        assert!((s.objective - 2.0).abs() < 1e-9, "{}", s.objective);
        // implicit bounds: no bound rows materialized
        assert_eq!(s.stats.rows, 1);
        assert_eq!(s.stats.bound_rows, 0);
        assert_eq!(s.stats.bound_cols, 1);
        let f = p.solve_with(Engine::Flat).expect_optimal("flat");
        assert_eq!(f.stats.rows, 2, "flat materializes the bound row");
        assert_eq!(f.stats.bound_rows, 1);
    }

    #[test]
    fn detects_infeasible_and_unbounded() {
        let mut p = Problem::minimize(1);
        p.add_ge(&[(0, 1.0)], 5.0);
        p.set_upper_bound(0, 1.0);
        assert!(matches!(solve(&p, PivotRule::Dantzig), Outcome::Infeasible));

        let mut p = Problem::minimize(1);
        p.set_objective(0, -1.0);
        p.add_ge(&[(0, 1.0)], 1.0);
        assert!(matches!(solve(&p, PivotRule::Dantzig), Outcome::Unbounded));
    }

    #[test]
    fn bounded_objective_uses_bound_flip() {
        // min -x with x <= 3: optimum x = 3 via a bound flip, no pivot.
        let mut p = Problem::minimize(1);
        p.set_objective(0, -1.0);
        p.set_upper_bound(0, 3.0);
        let s = opt(&p);
        assert!((s.objective + 3.0).abs() < 1e-9);
        assert!(s.stats.bound_flips >= 1, "{:?}", s.stats);
    }

    #[test]
    fn warm_start_agrees_with_cold_across_rhs_changes() {
        // A tiny budgeted flow shape: re-solve at several budgets,
        // warm-chaining, and compare against cold solves.
        let build = |budget: f64| {
            let mut p = Problem::minimize(3);
            p.set_objective(2, 1.0); // minimize T
            p.add_ge(&[(2, 1.0), (0, 4.0)], 4.0); // T + 4 f0 >= 4
            p.add_ge(&[(2, 1.0), (1, 5.0)], 5.0); // T + 5 f1 >= 5
            p.add_le(&[(0, 1.0), (1, 1.0)], budget);
            p.set_upper_bound(0, 1.0);
            p.set_upper_bound(1, 1.0);
            p
        };
        let mut warm: Option<Basis> = None;
        for b in [0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 1.0, 0.5] {
            let p = build(b);
            let (out, basis) = solve_warm(&p, PivotRule::Dantzig, warm.as_ref(), None);
            let w = out.expect_optimal("warm");
            let c = solve(&p, PivotRule::Dantzig).expect_optimal("cold");
            assert!(
                (w.objective - c.objective).abs() < 1e-9,
                "budget {b}: warm {} vs cold {}",
                w.objective,
                c.objective
            );
            assert!(p.is_feasible(&w.x, 1e-7), "budget {b}: {:?}", w.x);
            warm = basis;
        }
    }

    #[test]
    fn warm_start_rejects_wrong_shape() {
        let mut p1 = Problem::minimize(2);
        p1.set_objective(0, 1.0);
        p1.add_ge(&[(0, 1.0), (1, 1.0)], 2.0);
        let (_, basis) = solve_warm(&p1, PivotRule::Dantzig, None, None);
        let basis = basis.expect("optimal basis");
        let mut p2 = Problem::minimize(3);
        p2.set_objective(0, 1.0);
        p2.add_ge(&[(0, 1.0), (1, 1.0), (2, 1.0)], 2.0);
        p2.add_le(&[(2, 1.0)], 1.0);
        // shape mismatch must quietly fall back to a cold solve
        let (out, _) = solve_warm(&p2, PivotRule::Dantzig, Some(&basis), None);
        let s = out.expect_optimal("cold fallback");
        assert!((s.objective - 0.0).abs() < 1e-9);
    }

    #[test]
    fn pivot_budget_trips_mid_solve_and_an_ample_one_does_not() {
        use rtt_budget::{BudgetMeter, Dimension};
        // non-trivial enough to need several pivots
        let mut p = Problem::minimize(4);
        for j in 0..4 {
            p.set_objective(j, 1.0 + j as f64);
        }
        p.add_ge(&[(0, 1.0), (1, 1.0)], 2.0);
        p.add_ge(&[(1, 1.0), (2, 1.0)], 3.0);
        p.add_ge(&[(2, 1.0), (3, 1.0)], 4.0);
        p.add_eq(&[(0, 1.0), (3, 1.0)], 1.0);

        let tight = BudgetMeter::with_limits(Some(1), None, None, None);
        match solve_metered(&p, PivotRule::Dantzig, Some(&tight)) {
            Outcome::Exhausted(e) => {
                assert_eq!(e.dimension, Dimension::LpPivots);
                assert_eq!(e.limit, 1);
                assert!(e.consumed > e.limit);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        // the meter recorded the work that was attempted
        assert!(tight.consumed().lp_pivots >= 2);

        let ample = BudgetMeter::with_limits(Some(1_000_000), None, None, None);
        let s = solve_metered(&p, PivotRule::Dantzig, Some(&ample))
            .expect_optimal("ample budget");
        let cold = solve(&p, PivotRule::Dantzig).expect_optimal("unmetered");
        assert!((s.objective - cold.objective).abs() < 1e-9);
        assert!(ample.consumed().lp_pivots > 0);
    }

    #[test]
    fn sweep_fills_remaining_points_on_exhaustion() {
        use rtt_budget::BudgetMeter;
        let mut p = Problem::minimize(3);
        p.set_objective(2, 1.0);
        p.add_ge(&[(2, 1.0), (0, 4.0)], 4.0);
        p.add_ge(&[(2, 1.0), (1, 5.0)], 5.0);
        p.add_le(&[(0, 1.0), (1, 1.0)], 0.0);
        p.set_upper_bound(0, 1.0);
        p.set_upper_bound(1, 1.0);
        let meter = BudgetMeter::with_limits(Some(1), None, None, None);
        let (outs, basis) = solve_rhs_sweep(
            &p,
            2,
            &[0.0, 0.5, 1.0, 2.0],
            PivotRule::Dantzig,
            None,
            Some(&meter),
        );
        assert_eq!(outs.len(), 4, "one outcome per requested point");
        assert!(basis.is_none(), "no reusable basis after exhaustion");
        assert!(
            outs.iter().any(|o| matches!(o, Outcome::Exhausted(_))),
            "{outs:?}"
        );
        // once tripped, every later point is exhausted too
        let first = outs
            .iter()
            .position(|o| matches!(o, Outcome::Exhausted(_)))
            .unwrap();
        assert!(outs[first..]
            .iter()
            .all(|o| matches!(o, Outcome::Exhausted(_))));
    }

    #[test]
    fn equality_and_degenerate_rows() {
        let mut p = Problem::minimize(2);
        p.set_objective(0, 1.0);
        p.set_objective(1, 1.0);
        for _ in 0..3 {
            p.add_ge(&[(0, 1.0), (1, 1.0)], 2.0);
        }
        p.add_eq(&[(0, 2.0), (1, 2.0)], 4.0);
        let s = opt(&p);
        assert!((s.objective - 2.0).abs() < 1e-9);
    }
}
