//! LP model builder.

use crate::simplex::{solve_standard, Engine, Outcome, PivotRule};

/// Row sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ a_j x_j ≤ b`
    Le,
    /// `Σ a_j x_j = b`
    Eq,
    /// `Σ a_j x_j ≥ b`
    Ge,
}

/// One constraint row in sparse form.
#[derive(Debug, Clone)]
pub struct Row {
    /// `(variable index, coefficient)` pairs. Repeated indices are summed.
    pub coeffs: Vec<(usize, f64)>,
    /// Sense.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A minimization LP over variables `x_j ≥ 0` with optional upper bounds.
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) n_vars: usize,
    pub(crate) objective: Vec<f64>,
    pub(crate) rows: Vec<Row>,
    pub(crate) upper: Vec<Option<f64>>,
}

impl Problem {
    /// New minimization problem with `n_vars` variables (all `≥ 0`,
    /// initially unbounded above, zero objective coefficient).
    pub fn minimize(n_vars: usize) -> Self {
        Problem {
            n_vars,
            objective: vec![0.0; n_vars],
            rows: Vec::new(),
            upper: vec![None; n_vars],
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraint rows (upper bounds not included).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Sets the objective coefficient of variable `j`.
    pub fn set_objective(&mut self, j: usize, c: f64) {
        assert!(j < self.n_vars, "variable {j} out of range");
        self.objective[j] = c;
    }

    /// Sets an upper bound `x_j ≤ ub` (pass through for `None`-like ∞ via
    /// not calling this). `ub` must be non-negative.
    pub fn set_upper_bound(&mut self, j: usize, ub: f64) {
        assert!(j < self.n_vars, "variable {j} out of range");
        assert!(ub >= 0.0 && ub.is_finite(), "upper bound must be finite ≥ 0");
        self.upper[j] = Some(ub);
    }

    /// Adds a general row.
    pub fn add_row(&mut self, coeffs: &[(usize, f64)], cmp: Cmp, rhs: f64) {
        for &(j, _) in coeffs {
            assert!(j < self.n_vars, "variable {j} out of range");
        }
        assert!(rhs.is_finite(), "rhs must be finite");
        self.rows.push(Row {
            coeffs: coeffs.to_vec(),
            cmp,
            rhs,
        });
    }

    /// Adds `Σ a_j x_j ≤ b`.
    pub fn add_le(&mut self, coeffs: &[(usize, f64)], rhs: f64) {
        self.add_row(coeffs, Cmp::Le, rhs);
    }

    /// Adds `Σ a_j x_j = b`.
    pub fn add_eq(&mut self, coeffs: &[(usize, f64)], rhs: f64) {
        self.add_row(coeffs, Cmp::Eq, rhs);
    }

    /// Adds `Σ a_j x_j ≥ b`.
    pub fn add_ge(&mut self, coeffs: &[(usize, f64)], rhs: f64) {
        self.add_row(coeffs, Cmp::Ge, rhs);
    }

    /// Solves the problem with the default engine — the sparse revised
    /// simplex ([`crate::revised`], Dantzig pricing with automatic
    /// Bland fallback).
    pub fn solve(&self) -> Outcome {
        crate::revised::solve(self, PivotRule::Dantzig)
    }

    /// Solves with an explicit engine: the revised simplex (default),
    /// the flat solver (optionally under a chosen [`PivotRule`]), or
    /// the frozen pre-rewrite [`crate::reference`] baseline
    /// (differential tests and perf baselining).
    pub fn solve_with(&self, engine: Engine) -> Outcome {
        match engine {
            Engine::Revised => crate::revised::solve(self, PivotRule::Dantzig),
            Engine::Flat => solve_standard(self, PivotRule::Dantzig, None),
            Engine::FlatWith(rule) => solve_standard(self, rule, None),
            Engine::Reference => crate::reference::solve_reference(self),
        }
    }

    /// [`Problem::solve`] under a cooperative [`rtt_budget::BudgetMeter`]:
    /// every pivot charges one `lp_pivots` unit, and a tripped budget
    /// (or deadline / cancellation) surfaces as [`Outcome::Exhausted`].
    pub fn solve_metered(&self, meter: &rtt_budget::BudgetMeter) -> Outcome {
        crate::revised::solve_metered(self, PivotRule::Dantzig, Some(meter))
    }

    /// [`Problem::solve_with`] under a cooperative budget meter. The
    /// revised and flat engines charge one `lp_pivots` unit per pivot;
    /// the frozen [`Engine::Reference`] baseline stays unmetered (it
    /// exists for differential testing, never serving).
    pub fn solve_with_metered(
        &self,
        engine: Engine,
        meter: Option<&rtt_budget::BudgetMeter>,
    ) -> Outcome {
        match engine {
            Engine::Revised => crate::revised::solve_metered(self, PivotRule::Dantzig, meter),
            Engine::Flat => solve_standard(self, PivotRule::Dantzig, meter),
            Engine::FlatWith(rule) => solve_standard(self, rule, meter),
            Engine::Reference => crate::reference::solve_reference(self),
        }
    }

    /// Solves with the revised engine, warm-starting from the optimal
    /// [`crate::Basis`] of a previous solve of an identically-shaped
    /// problem (only right-hand sides may differ — see the crate docs'
    /// warm-start invariants). Returns the outcome plus the basis for
    /// the next link of the chain.
    pub fn solve_revised_warm(
        &self,
        warm: Option<&crate::Basis>,
    ) -> (Outcome, Option<crate::Basis>) {
        crate::revised::solve_warm(self, PivotRule::Dantzig, warm, None)
    }

    /// [`Problem::solve_revised_warm`] under a cooperative budget meter
    /// (see [`Problem::solve_metered`]). The warm-start invariants are
    /// unchanged; exhaustion returns no reusable basis.
    pub fn solve_revised_warm_metered(
        &self,
        warm: Option<&crate::Basis>,
        meter: Option<&rtt_budget::BudgetMeter>,
    ) -> (Outcome, Option<crate::Basis>) {
        crate::revised::solve_warm(self, PivotRule::Dantzig, warm, meter)
    }

    /// Overwrites the right-hand side of row `index` (for warm-started
    /// re-solves where only one RHS changes, e.g. a budget sweep).
    pub fn set_rhs(&mut self, index: usize, rhs: f64) {
        assert!(index < self.rows.len(), "row {index} out of range");
        assert!(rhs.is_finite(), "rhs must be finite");
        self.rows[index].rhs = rhs;
    }

    /// Checks whether `x` satisfies every constraint (and bound) within
    /// tolerance `tol`. Used by validation and property tests.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.n_vars {
            return false;
        }
        for (j, &v) in x.iter().enumerate() {
            if v < -tol {
                return false;
            }
            if let Some(ub) = self.upper[j] {
                if v > ub + tol {
                    return false;
                }
            }
        }
        for row in &self.rows {
            let lhs: f64 = row.coeffs.iter().map(|&(j, a)| a * x[j]).sum();
            let ok = match row.cmp {
                Cmp::Le => lhs <= row.rhs + tol,
                Cmp::Eq => (lhs - row.rhs).abs() <= tol,
                Cmp::Ge => lhs >= row.rhs - tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Objective value at `x`.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }
}
