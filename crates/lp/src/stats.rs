//! Solve statistics: tableau/matrix dimensions and pivot breakdowns.
//!
//! Every engine fills an [`LpStats`] into its [`crate::Solution`], so
//! callers (and benches) can demonstrate structural claims — most
//! importantly that the revised engine's **implicit bounds** delete one
//! row per bounded variable: for the same [`crate::Problem`],
//! `flat.stats.rows == revised.stats.rows + revised.stats.bound_cols`.

/// Dimension and work counters of one LP solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpStats {
    /// Constraint rows the engine materialized. The flat/reference
    /// engines add one row per upper-bounded variable; the revised
    /// engine handles bounds implicitly and materializes none.
    pub rows: usize,
    /// Total columns (structural + logical + artificial).
    pub cols: usize,
    /// Upper-bound rows materialized (flat/reference) — always 0 for
    /// the revised engine.
    pub bound_rows: usize,
    /// Variables with a finite upper bound (identical across engines;
    /// for the revised engine these are handled by bound flips).
    pub bound_cols: usize,
    /// Pivots spent reaching feasibility (phase 1).
    pub phase1_pivots: usize,
    /// Pivots spent optimizing (phase 2, including any warm-start dual
    /// pivots).
    pub phase2_pivots: usize,
    /// Bound flips (revised engine only): nonbasic variables moved
    /// between their bounds without a basis change.
    pub bound_flips: usize,
    /// Basis refactorizations (revised engine only).
    pub refactorizations: usize,
}
