//! Solve statistics: tableau/matrix dimensions and pivot breakdowns.
//!
//! Every engine fills an [`LpStats`] into its [`crate::Solution`], so
//! callers (and benches) can demonstrate structural claims — most
//! importantly that the revised engine's **implicit bounds** delete one
//! row per bounded variable: for the same [`crate::Problem`],
//! `flat.stats.rows == revised.stats.rows + revised.stats.bound_cols`.

/// How a revised-engine solve entered its simplex loop — the
/// warm-start **provenance** of the solution. Diagnostics only (like
/// every other [`LpStats`] field it stays off the batch wire format),
/// but it is what lets callers — and the PR-7 delta-solve tests —
/// assert that a cached basis was actually *used* rather than silently
/// rejected into a cold solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WarmStart {
    /// No basis was offered (or the engine has no warm path): the
    /// ordinary two-phase cold solve.
    #[default]
    Cold,
    /// An offered basis installed **dual-feasible** (the signature of
    /// an old optimum after an RHS change) and was repaired by the dual
    /// simplex — the delta-solve path.
    Dual,
    /// An offered basis installed **primal-feasible** (a structural
    /// crash) and went straight to phase 2.
    Primal,
    /// A basis was offered but rejected (shape mismatch, singular
    /// install, neither primal- nor dual-feasible, or a stalled warm
    /// loop); the solve fell back cold. Cost, never correctness.
    Rejected,
}

impl WarmStart {
    /// Stable lowercase name, for logs and bench documents.
    pub fn as_str(&self) -> &'static str {
        match self {
            WarmStart::Cold => "cold",
            WarmStart::Dual => "dual",
            WarmStart::Primal => "primal",
            WarmStart::Rejected => "rejected",
        }
    }
}

/// Dimension and work counters of one LP solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpStats {
    /// Constraint rows the engine materialized. The flat/reference
    /// engines add one row per upper-bounded variable; the revised
    /// engine handles bounds implicitly and materializes none.
    pub rows: usize,
    /// Total columns (structural + logical + artificial).
    pub cols: usize,
    /// Upper-bound rows materialized (flat/reference) — always 0 for
    /// the revised engine.
    pub bound_rows: usize,
    /// Variables with a finite upper bound (identical across engines;
    /// for the revised engine these are handled by bound flips).
    pub bound_cols: usize,
    /// Pivots spent reaching feasibility (phase 1).
    pub phase1_pivots: usize,
    /// Pivots spent optimizing (phase 2, including any warm-start dual
    /// pivots).
    pub phase2_pivots: usize,
    /// Bound flips (revised engine only): nonbasic variables moved
    /// between their bounds without a basis change.
    pub bound_flips: usize,
    /// Basis refactorizations (revised engine only).
    pub refactorizations: usize,
    /// Warm-start provenance (revised engine only; always
    /// [`WarmStart::Cold`] for the dense engines).
    pub warm: WarmStart,
}
