//! Dense two-phase primal simplex over a **flat** tableau.
//!
//! # Tableau layout
//!
//! The `m × n_cols` coefficient matrix lives in one contiguous row-major
//! `Vec<f64>` (a single allocation for the whole solve); row `i` is the
//! slice `a[i*n_cols .. (i+1)*n_cols]`. Columns are laid out as
//! `[original variables | slacks/surplus | artificials]`, with the
//! artificials last on purpose: once phase 1 ends they can never re-enter
//! the basis, so phase 2 simply shrinks the *active* column count
//! (`active`) and every subsequent pricing pass, pivot update, and
//! reduced-cost update runs over the shorter prefix. Rows that keep an
//! artificial basic (redundant all-zero rows) are harmless — their stale
//! artificial columns are never read again.
//!
//! # Pivot structure
//!
//! A pivot on `(r, c)` normalizes row `r` in place, copies it once into a
//! reusable scratch buffer, and then updates every other row with an
//! AXPY-style loop over two disjoint flat slices
//! (`row_i[j] -= factor * scratch[j]`) — no index arithmetic, no split
//! borrows, exactly the shape LLVM auto-vectorizes. Rows whose
//! pivot-column factor is below tolerance are skipped before their cache
//! lines are ever touched. The scratch row's nonzero columns are indexed
//! once per pivot; while the pivot row is sparse (the common case for
//! the LP 6–10 network matrices this crate serves — rows start with ~3
//! structural nonzeros) each row update walks only those indices, and
//! the dense vectorized loop takes over automatically once fill-in
//! passes 50%. On the `bicriteria_thm34` pipeline this is worth ~2.7×
//! end-to-end over the retained [`crate::reference`] baseline (see
//! `BENCH_pr1.json`).
//!
//! # Pivot rules
//!
//! [`PivotRule::Dantzig`] prices the most-negative reduced cost and
//! falls back to Bland's rule automatically after a stall threshold
//! (`20·(m+n) + 1000` iterations) to guarantee termination on degenerate
//! tableaus; [`PivotRule::Bland`] runs the anti-cycling rule from the
//! first iteration. The pre-rewrite solver is preserved in
//! [`crate::reference`] and `tests/flat_vs_reference.rs` pins this
//! implementation to its objectives.

use crate::problem::{Cmp, Problem};
use crate::TOL;
use rtt_budget::{BudgetMeter, Exhausted};

/// Entering-column selection rule for the simplex loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PivotRule {
    /// Most-negative reduced cost, with an automatic switch to Bland's
    /// rule if the solve stalls (the default).
    #[default]
    Dantzig,
    /// Bland's anti-cycling rule (smallest eligible index) from the
    /// start. Slower but cycle-free by construction.
    Bland,
}

/// Which solver implementation to run (see [`Problem::solve_with`]).
///
/// Selection guide: **`Revised`** (the default) is the sparse revised
/// simplex with implicit upper bounds and warm-start support — use it
/// unless you have a reason not to. **`Flat`** is the dense flat-tableau
/// solver, kept as a measurable baseline and as the numerical fallback
/// the revised engine restarts into when a refactorization goes
/// singular. **`Reference`** is the frozen pre-rewrite solver: never
/// optimized, only ever used for differential testing and benchmark
/// baselining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The sparse revised simplex ([`crate::revised`]): CSC columns,
    /// implicit upper bounds, eta-file basis updates.
    #[default]
    Revised,
    /// The dense flat-tableau solver of this module.
    Flat,
    /// The flat-tableau solver under a fixed pivot rule.
    FlatWith(PivotRule),
    /// The frozen pre-rewrite baseline ([`crate::reference`]).
    Reference,
}

/// Result of solving an LP.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// An optimal basic solution was found.
    Optimal(Solution),
    /// The constraints are inconsistent (phase-1 optimum > 0).
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// A cooperative budget check tripped mid-solve (pivot cap,
    /// deadline, or cancellation — see [`rtt_budget::BudgetMeter`]).
    /// Only the metered entry points can return this; the engine, not
    /// this crate, decides what to do about it.
    Exhausted(Exhausted),
}

impl Outcome {
    /// Unwraps the optimal solution, panicking otherwise.
    pub fn expect_optimal(self, msg: &str) -> Solution {
        match self {
            Outcome::Optimal(s) => s,
            other => panic!("{msg}: {other:?}"),
        }
    }

    /// The optimal solution, if any.
    pub fn optimal(self) -> Option<Solution> {
        match self {
            Outcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// An optimal LP solution.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Objective value.
    pub objective: f64,
    /// Values of the original problem variables.
    pub x: Vec<f64>,
    /// Simplex pivot count (diagnostics / benches).
    pub pivots: usize,
    /// Dimension and phase counters (see [`crate::LpStats`]).
    pub stats: crate::LpStats,
}

/// Entries with `|factor| ≤ SKIP_TOL` are treated as an exact zero when
/// deciding whether a row participates in a pivot update.
const SKIP_TOL: f64 = TOL * 1e-3;

/// Relative drop tolerance for pivot-row normalization: entries below
/// `DROP_REL · max|row|` are snapped to exact zero so cancellation dust
/// cannot densify the nonzero index. Set a small factor above machine
/// epsilon (2⁻⁵² ≈ 2.2e-16): a surviving entry this small relative to
/// its own row is indistinguishable from the roundoff the dense AXPY
/// path commits anyway, so dropping it perturbs nothing the dense
/// computation could have preserved — even in rows mixing unit and
/// `LP_BIG`-scale coefficients, where any *looser* relative (or any
/// absolute) cutoff would delete genuine small entries.
const DROP_REL: f64 = 1e-15;

struct Tableau {
    /// Number of rows.
    m: usize,
    /// Allocated columns (row stride).
    n_cols: usize,
    /// Columns eligible for pricing and updates; shrinks to exclude the
    /// trailing artificials after phase 1.
    active: usize,
    /// Flat row-major `m × n_cols` coefficient matrix.
    a: Vec<f64>,
    /// Right-hand sides (kept ≥ 0 up to tolerance).
    b: Vec<f64>,
    /// Reduced-cost row.
    rc: Vec<f64>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Columns that may never enter (artificials in phase 2; only
    /// consulted while `active` still covers them).
    banned: Vec<bool>,
    /// Reusable copy of the normalized pivot row (AXPY source).
    scratch: Vec<f64>,
    /// Reusable index list of `scratch`'s nonzero columns.
    scratch_nz: Vec<u32>,
    pivots: usize,
}

impl Tableau {
    fn pivot(&mut self, r: usize, c: usize) {
        let n = self.n_cols;
        let w = self.active;
        let start = r * n;
        let piv = self.a[start + c];
        debug_assert!(piv.abs() > TOL);
        let inv = 1.0 / piv;
        {
            let row_r = &mut self.a[start..start + w];
            let mut scale = 0.0f64;
            for v in row_r.iter_mut() {
                *v *= inv;
                scale = scale.max(v.abs());
            }
            // Re-normalize the pivot entry exactly.
            row_r[c] = 1.0;
            let drop = scale.max(1.0) * DROP_REL;
            for v in row_r.iter_mut() {
                if v.abs() <= drop {
                    *v = 0.0;
                }
            }
            self.scratch[..w].copy_from_slice(row_r);
        }
        self.b[r] *= inv;
        let br = self.b[r];
        let scratch = &self.scratch[..w];
        // The LPs this crate serves (LP 6–10 network matrices) keep
        // pivot rows sparse for most of the solve: index the nonzeros
        // once and update only those columns per row, falling back to
        // the dense AXPY when fill-in makes indexing pointless. Only
        // exact structural zeros may be skipped — the pipeline's LPs mix
        // unit coefficients with `LP_BIG`-scale ones, so any magnitude
        // threshold here would drop updates that still matter.
        self.scratch_nz.clear();
        for (j, &v) in scratch.iter().enumerate() {
            if v != 0.0 {
                self.scratch_nz.push(j as u32);
            }
        }
        let sparse = self.scratch_nz.len() * 2 < w;
        for i in 0..self.m {
            if i == r {
                continue;
            }
            let istart = i * n;
            let factor = self.a[istart + c];
            // Skip rows the pivot column does not touch before reading
            // the rest of the row.
            if factor.abs() <= SKIP_TOL {
                self.a[istart + c] = 0.0;
                continue;
            }
            let row_i = &mut self.a[istart..istart + w];
            if sparse {
                for &j in &self.scratch_nz {
                    let j = j as usize;
                    row_i[j] -= factor * scratch[j];
                }
            } else {
                for (vi, vr) in row_i.iter_mut().zip(scratch) {
                    *vi -= factor * *vr;
                }
            }
            row_i[c] = 0.0;
            self.b[i] -= factor * br;
            if self.b[i].abs() < SKIP_TOL {
                self.b[i] = 0.0;
            }
        }
        let factor = self.rc[c];
        if factor != 0.0 {
            if sparse {
                let rc = &mut self.rc[..w];
                for &j in &self.scratch_nz {
                    let j = j as usize;
                    rc[j] -= factor * scratch[j];
                }
            } else {
                for (v, vr) in self.rc[..w].iter_mut().zip(scratch) {
                    *v -= factor * *vr;
                }
            }
            self.rc[c] = 0.0;
        }
        self.basis[r] = c;
        self.pivots += 1;
    }

    /// Runs the simplex loop on the current (feasible) tableau.
    /// Returns `Ok(false)` on unboundedness; `Err` when the meter's
    /// pivot budget (or deadline/cancellation) trips — one charge per
    /// pivot, checked before the pivot is applied.
    fn optimize(&mut self, rule: PivotRule, meter: Option<&BudgetMeter>) -> Result<bool, Exhausted> {
        let n = self.n_cols;
        let m = self.m;
        // Switch to Bland's rule after a generous number of Dantzig steps.
        let bland_after = match rule {
            PivotRule::Dantzig => 20 * (m + n) + 1000,
            PivotRule::Bland => 0,
        };
        let hard_cap = 2_000 * (m + n) + 100_000;
        let mut iters = 0usize;
        loop {
            iters += 1;
            assert!(
                iters < hard_cap,
                "simplex exceeded {hard_cap} iterations; numerical cycling?"
            );
            let bland = iters > bland_after;
            // --- pricing (over the active column prefix only)
            let mut enter: Option<usize> = None;
            let mut best = -TOL;
            for (j, (&r, &ban)) in self.rc[..self.active]
                .iter()
                .zip(&self.banned[..self.active])
                .enumerate()
            {
                if ban {
                    continue;
                }
                if r < best {
                    enter = Some(j);
                    if bland {
                        break; // smallest index with negative rc
                    }
                    best = r;
                }
            }
            let Some(c) = enter else {
                return Ok(true); // optimal
            };
            // --- ratio test (strided column walk)
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let a = self.a[i * n + c];
                if a > TOL {
                    let ratio = self.b[i] / a;
                    let better = ratio < best_ratio - TOL
                        || (ratio < best_ratio + TOL
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if leave.is_none() || better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(r) = leave else {
                return Ok(false); // unbounded
            };
            if let Some(m) = meter {
                m.charge_lp_pivots(1)?;
            }
            self.pivot(r, c);
        }
    }
}

/// Builds the standard-form flat tableau and runs both phases. A
/// meter, when given, is charged one `lp_pivots` unit per pivot.
pub(crate) fn solve_standard(
    p: &Problem,
    rule: PivotRule,
    meter: Option<&BudgetMeter>,
) -> Outcome {
    // Collect all rows: user rows + upper-bound rows.
    struct NRow {
        coeffs: Vec<(usize, f64)>,
        cmp: Cmp,
        rhs: f64,
    }
    let mut rows: Vec<NRow> = p
        .rows
        .iter()
        .map(|r| NRow {
            coeffs: r.coeffs.clone(),
            cmp: r.cmp,
            rhs: r.rhs,
        })
        .collect();
    for (j, ub) in p.upper.iter().enumerate() {
        if let Some(ub) = ub {
            rows.push(NRow {
                coeffs: vec![(j, 1.0)],
                cmp: Cmp::Le,
                rhs: *ub,
            });
        }
    }
    // Normalize to rhs >= 0.
    for r in rows.iter_mut() {
        if r.rhs < 0.0 {
            r.rhs = -r.rhs;
            for c in r.coeffs.iter_mut() {
                c.1 = -c.1;
            }
            r.cmp = match r.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Eq => Cmp::Eq,
                Cmp::Ge => Cmp::Le,
            };
        }
    }

    let m = rows.len();
    let n0 = p.n_vars;
    // Column layout: [original | slacks/surplus | artificials]; the
    // artificials trail so phase 2 can drop them by shrinking `active`.
    let n_slack = rows.len(); // at most one per row (Le slack or Ge surplus)
    let n_art = rows.iter().filter(|r| !matches!(r.cmp, Cmp::Le)).count();
    let n_cols = n0 + n_slack + n_art;
    let n_real = n0 + n_slack;

    let mut t = Tableau {
        m,
        n_cols,
        active: n_cols,
        a: vec![0.0; m * n_cols],
        b: vec![0.0; m],
        rc: vec![0.0; n_cols],
        basis: vec![usize::MAX; m],
        banned: vec![false; n_cols],
        scratch: vec![0.0; n_cols],
        scratch_nz: Vec::with_capacity(n_cols),
        pivots: 0,
    };
    let mut next_art = n_real;
    for (i, r) in rows.iter().enumerate() {
        let row = &mut t.a[i * n_cols..(i + 1) * n_cols];
        for &(j, v) in &r.coeffs {
            row[j] += v;
        }
        t.b[i] = r.rhs;
        match r.cmp {
            Cmp::Le => {
                row[n0 + i] = 1.0;
                t.basis[i] = n0 + i;
            }
            Cmp::Ge => {
                row[n0 + i] = -1.0;
                row[next_art] = 1.0;
                t.basis[i] = next_art;
                next_art += 1;
            }
            Cmp::Eq => {
                row[next_art] = 1.0;
                t.basis[i] = next_art;
                next_art += 1;
            }
        }
    }

    let n_bound_rows = p.upper.iter().filter(|u| u.is_some()).count();
    let mut stats = crate::LpStats {
        rows: m,
        cols: n_cols,
        bound_rows: n_bound_rows,
        bound_cols: n_bound_rows,
        ..Default::default()
    };

    // ---- Phase 1: minimize sum of artificials.
    if n_art > 0 {
        let is_art = |col: usize| col >= n_real;
        // rc_j = c_j − Σ_{rows with artificial basic} a[i][j]
        for j in 0..n_cols {
            t.rc[j] = if is_art(j) { 1.0 } else { 0.0 };
        }
        for i in 0..m {
            if is_art(t.basis[i]) {
                let row = &t.a[i * n_cols..(i + 1) * n_cols];
                for (rc, &v) in t.rc.iter_mut().zip(row) {
                    *rc -= v;
                }
            }
        }
        let bounded = match t.optimize(rule, meter) {
            Ok(b) => b,
            Err(e) => return Outcome::Exhausted(e),
        };
        debug_assert!(bounded, "phase 1 objective is bounded below by 0");
        let phase1: f64 = (0..m)
            .filter(|&i| is_art(t.basis[i]))
            .map(|i| t.b[i])
            .sum();
        if phase1 > 1e-6 {
            return Outcome::Infeasible;
        }
        // Ban artificials from re-entering.
        for j in n_real..n_cols {
            t.banned[j] = true;
        }
        // Drive artificials that are still basic (at value ~0) OUT of the
        // basis: a later pivot on another column could otherwise raise a
        // basic artificial's value and silently violate its constraint.
        // Degenerate pivot on any non-artificial column with a nonzero
        // coefficient; a row with none is redundant (all-zero row) and
        // its artificial can never change value again.
        for i in 0..m {
            if is_art(t.basis[i]) {
                t.b[i] = 0.0; // clamp the ~0 residual exactly
                let row = &t.a[i * n_cols..i * n_cols + n_real];
                if let Some(j) = (0..n_real).find(|&j| row[j].abs() > 1e-7) {
                    t.pivot(i, j);
                }
            }
        }
        // The artificial columns are dead from here on: pricing, pivot
        // updates, and rc maintenance all stop at `active`. Rows whose
        // basis is still an artificial (redundant rows) keep b = 0 and
        // are never extracted.
        t.active = n_real;
    }
    stats.phase1_pivots = t.pivots;

    // ---- Phase 2: original objective.
    for j in 0..t.active {
        t.rc[j] = if j < n0 { p.objective[j] } else { 0.0 };
    }
    // rc_j = c_j − c_B B^-1 A_j: subtract basic costs via current rows.
    for i in 0..m {
        let cb = if t.basis[i] < n0 {
            p.objective[t.basis[i]]
        } else {
            0.0
        };
        if cb != 0.0 {
            let row = &t.a[i * n_cols..i * n_cols + t.active];
            for (rc, &v) in t.rc[..t.active].iter_mut().zip(row) {
                *rc -= cb * v;
            }
        }
    }
    // Basic columns must have zero reduced cost (clean up numerics).
    for i in 0..m {
        if t.basis[i] < t.active {
            t.rc[t.basis[i]] = 0.0;
        }
    }
    match t.optimize(rule, meter) {
        Ok(true) => {}
        Ok(false) => return Outcome::Unbounded,
        Err(e) => return Outcome::Exhausted(e),
    }

    let mut x = vec![0.0; n0];
    for i in 0..m {
        if t.basis[i] < n0 {
            x[t.basis[i]] = t.b[i].max(0.0);
        }
    }
    let objective = p.objective_at(&x);
    stats.phase2_pivots = t.pivots - stats.phase1_pivots;
    Outcome::Optimal(Solution {
        objective,
        x,
        pivots: t.pivots,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Problem;

    /// These are the *flat* engine's unit tests: pin the engine
    /// explicitly, since `Problem::solve()` now defaults to Revised.
    fn opt(p: &Problem) -> Solution {
        p.solve_with(Engine::Flat).expect_optimal("expected optimal")
    }

    #[test]
    fn trivial_no_constraints() {
        let mut p = Problem::minimize(2);
        p.set_objective(0, 3.0);
        p.set_objective(1, 5.0);
        let s = opt(&p);
        assert_eq!(s.objective, 0.0);
        assert_eq!(s.x, vec![0.0, 0.0]);
    }

    #[test]
    fn simple_ge() {
        // min x + 2y s.t. x + y >= 2, y <= 1
        let mut p = Problem::minimize(2);
        p.set_objective(0, 1.0);
        p.set_objective(1, 2.0);
        p.add_ge(&[(0, 1.0), (1, 1.0)], 2.0);
        p.set_upper_bound(1, 1.0);
        let s = opt(&p);
        assert!((s.objective - 2.0).abs() < 1e-7, "{}", s.objective);
        assert!((s.x[0] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn classic_max_as_min() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Dantzig's ex.)
        // == min -3x - 5y; optimum x=2, y=6, obj = -36.
        let mut p = Problem::minimize(2);
        p.set_objective(0, -3.0);
        p.set_objective(1, -5.0);
        p.add_le(&[(0, 1.0)], 4.0);
        p.add_le(&[(1, 2.0)], 12.0);
        p.add_le(&[(0, 3.0), (1, 2.0)], 18.0);
        let s = opt(&p);
        assert!((s.objective + 36.0).abs() < 1e-7);
        assert!((s.x[0] - 2.0).abs() < 1e-7);
        assert!((s.x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 -> x = 2, y = 1
        let mut p = Problem::minimize(2);
        p.set_objective(0, 1.0);
        p.set_objective(1, 1.0);
        p.add_eq(&[(0, 1.0), (1, 2.0)], 4.0);
        p.add_eq(&[(0, 1.0), (1, -1.0)], 1.0);
        let s = opt(&p);
        assert!((s.x[0] - 2.0).abs() < 1e-7);
        assert!((s.x[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::minimize(1);
        p.add_ge(&[(0, 1.0)], 5.0);
        p.set_upper_bound(0, 1.0);
        assert!(matches!(p.solve_with(Engine::Flat), Outcome::Infeasible));
    }

    #[test]
    fn infeasible_equalities() {
        let mut p = Problem::minimize(2);
        p.add_eq(&[(0, 1.0), (1, 1.0)], 1.0);
        p.add_eq(&[(0, 1.0), (1, 1.0)], 2.0);
        assert!(matches!(p.solve_with(Engine::Flat), Outcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        // min -x with x >= 1 unbounded above.
        let mut p = Problem::minimize(1);
        p.set_objective(0, -1.0);
        p.add_ge(&[(0, 1.0)], 1.0);
        assert!(matches!(p.solve_with(Engine::Flat), Outcome::Unbounded));
    }

    #[test]
    fn negative_rhs_normalized() {
        // x - y <= -2  ==  y - x >= 2; min y -> y = 2, x = 0.
        let mut p = Problem::minimize(2);
        p.set_objective(1, 1.0);
        p.add_le(&[(0, 1.0), (1, -1.0)], -2.0);
        let s = opt(&p);
        assert!((s.x[1] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn duplicate_coefficients_summed() {
        // (x + x) >= 4 -> x >= 2.
        let mut p = Problem::minimize(1);
        p.set_objective(0, 1.0);
        p.add_ge(&[(0, 1.0), (0, 1.0)], 4.0);
        let s = opt(&p);
        assert!((s.x[0] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_redundant_rows() {
        // Same constraint three times + an equality that makes one
        // artificial stick around at zero.
        let mut p = Problem::minimize(2);
        p.set_objective(0, 1.0);
        p.set_objective(1, 1.0);
        for _ in 0..3 {
            p.add_ge(&[(0, 1.0), (1, 1.0)], 2.0);
        }
        p.add_eq(&[(0, 2.0), (1, 2.0)], 4.0);
        let s = opt(&p);
        assert!((s.objective - 2.0).abs() < 1e-7);
    }

    #[test]
    fn mini_flow_lp() {
        // A 2-path flow LP shaped like LP 6-10: route 1 unit from s to t
        // over edges e0 (s->a), e1 (a->t), e2 (s->t); conservation at a.
        // Times: Ta >= t_e0(f0) with t(f) = 4(1 - f); Tt >= Ta + 3(1-f1);
        // Tt >= 5(1 - f2). Budget f0 + f2 <= 1.
        // Vars: f0, f1, f2, Ta, Tt.
        let mut p = Problem::minimize(5);
        p.set_objective(4, 1.0);
        // conservation at a: f0 = f1
        p.add_eq(&[(0, 1.0), (1, -1.0)], 0.0);
        // Ta >= 4 - 4 f0  ->  Ta + 4 f0 >= 4
        p.add_ge(&[(3, 1.0), (0, 4.0)], 4.0);
        // Tt >= Ta + 3 - 3 f1
        p.add_ge(&[(4, 1.0), (3, -1.0), (1, 3.0)], 3.0);
        // Tt >= 5 - 5 f2
        p.add_ge(&[(4, 1.0), (2, 5.0)], 5.0);
        // budget
        p.add_le(&[(0, 1.0), (2, 1.0)], 1.0);
        for j in 0..3 {
            p.set_upper_bound(j, 1.0);
        }
        let s = opt(&p);
        // Optimum: split resources; the LP can push Tt down to where both
        // paths cost the same. With f0=f1=x, f2=1-x: path1 = 7(1-x),
        // path2 = 5x; equal at x = 7/12 -> Tt = 35/12.
        assert!(p.is_feasible(&s.x, 1e-6));
        assert!((s.objective - 35.0 / 12.0).abs() < 1e-6, "{}", s.objective);
    }

    #[test]
    fn solution_always_feasible_when_optimal() {
        let mut p = Problem::minimize(3);
        p.set_objective(0, 2.0);
        p.set_objective(1, -1.0);
        p.set_objective(2, 0.5);
        p.add_le(&[(0, 1.0), (1, 2.0), (2, 1.0)], 10.0);
        p.add_ge(&[(0, 1.0), (1, -1.0)], -3.0);
        p.add_eq(&[(1, 1.0), (2, 1.0)], 4.0);
        p.set_upper_bound(1, 3.5);
        let s = opt(&p);
        assert!(p.is_feasible(&s.x, 1e-6));
    }

    #[test]
    fn bland_rule_from_start_agrees() {
        // The same optimum must fall out under the pure anti-cycling rule.
        let mut p = Problem::minimize(3);
        p.set_objective(0, -0.75);
        p.set_objective(1, 150.0);
        p.set_objective(2, -0.02);
        p.add_le(&[(0, 0.25), (1, -60.0), (2, -0.04)], 0.0);
        p.add_le(&[(0, 0.5), (1, -90.0), (2, -0.02)], 0.0);
        p.add_le(&[(2, 1.0)], 1.0);
        let d = p.solve_with(Engine::Flat).expect_optimal("dantzig");
        let b = p
            .solve_with(Engine::FlatWith(PivotRule::Bland))
            .expect_optimal("bland");
        assert!((d.objective - b.objective).abs() < 1e-7);
    }

    #[test]
    fn engine_reference_reachable_through_problem() {
        let mut p = Problem::minimize(2);
        p.set_objective(0, 1.0);
        p.add_ge(&[(0, 1.0), (1, 1.0)], 2.0);
        p.set_upper_bound(1, 1.0);
        let flat = p.solve_with(Engine::Flat).expect_optimal("flat");
        let refr = p.solve_with(Engine::Reference).expect_optimal("reference");
        assert!((flat.objective - refr.objective).abs() < 1e-9);
    }
}
