//! Differential tests for the revised simplex: on random LPs —
//! including degenerate, infeasible, unbounded, and tight-upper-bound
//! instances — Revised, Flat, and Reference must agree on the
//! feasibility verdict and (relative-tolerance) objective, and a
//! warm-started chain over a random RHS sequence must match cold solves
//! point for point.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtt_lp::{Basis, Cmp, Engine, Outcome, Problem};

/// Verdicts must match exactly; objectives to relative 1e-6.
fn assert_three_way(p: &Problem, label: &str) {
    let revised = p.solve_with(Engine::Revised);
    let flat = p.solve_with(Engine::Flat);
    let reference = p.solve_with(Engine::Reference);
    match (&revised, &flat, &reference) {
        (Outcome::Optimal(v), Outcome::Optimal(f), Outcome::Optimal(r)) => {
            for (name, other) in [("flat", f.objective), ("reference", r.objective)] {
                assert!(
                    (v.objective - other).abs() <= 1e-6 * (1.0 + other.abs()),
                    "{label}: revised {} vs {name} {other}",
                    v.objective
                );
            }
            assert!(
                p.is_feasible(&v.x, 1e-5),
                "{label}: revised optimum infeasible: {:?}",
                v.x
            );
            // implicit bounds: the revised engine materializes no bound
            // rows, the flat engine materializes one per bounded var
            assert_eq!(v.stats.bound_rows, 0, "{label}");
            assert_eq!(
                f.stats.rows,
                v.stats.rows + v.stats.bound_cols,
                "{label}: flat rows must exceed revised rows by the bound count"
            );
        }
        (Outcome::Infeasible, Outcome::Infeasible, Outcome::Infeasible) => {}
        (Outcome::Unbounded, Outcome::Unbounded, Outcome::Unbounded) => {}
        (v, f, r) => {
            panic!("{label}: revised {v:?}, flat {f:?}, reference {r:?}")
        }
    }
}

fn random_problem(rng: &mut StdRng, tight_bounds: bool) -> Problem {
    let n = rng.random_range(1..7usize);
    let mut p = Problem::minimize(n);
    for j in 0..n {
        p.set_objective(j, rng.random_range(-4..5i32) as f64);
        if rng.random_bool(if tight_bounds { 0.9 } else { 0.4 }) {
            // tight mode skews toward small bounds so optima land on them
            let ub = if tight_bounds {
                rng.random_range(0..3i32)
            } else {
                rng.random_range(0..8i32)
            };
            p.set_upper_bound(j, ub as f64);
        }
    }
    for _ in 0..rng.random_range(0..8usize) {
        let coeffs: Vec<(usize, f64)> = (0..n)
            .map(|j| (j, rng.random_range(-3..4i32) as f64))
            .collect();
        let cmp = match rng.random_range(0..3u8) {
            0 => Cmp::Le,
            1 => Cmp::Eq,
            _ => Cmp::Ge,
        };
        p.add_row(&coeffs, cmp, rng.random_range(-6..10i32) as f64);
    }
    p
}

#[test]
fn three_way_agreement_on_random_lps() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0003);
    for case in 0..500 {
        let p = random_problem(&mut rng, false);
        assert_three_way(&p, &format!("random case {case}"));
    }
}

#[test]
fn three_way_agreement_on_tight_upper_bound_lps() {
    // Heavily bounded instances exercise the bound-flip machinery: most
    // optima have several variables parked at their upper bound.
    let mut rng = StdRng::seed_from_u64(0xB0_0B5);
    for case in 0..300 {
        let p = random_problem(&mut rng, true);
        assert_three_way(&p, &format!("tight case {case}"));
    }
}

#[test]
fn three_way_agreement_on_degenerate_lps() {
    // Duplicated rows and zero RHS force degenerate pivots.
    let mut rng = StdRng::seed_from_u64(0xDE6E_0001);
    for case in 0..200 {
        let n = rng.random_range(1..5usize);
        let mut p = Problem::minimize(n);
        for j in 0..n {
            p.set_objective(j, rng.random_range(-2..3i32) as f64);
            if rng.random_bool(0.5) {
                p.set_upper_bound(j, rng.random_range(0..4i32) as f64);
            }
        }
        let coeffs: Vec<(usize, f64)> = (0..n)
            .map(|j| (j, rng.random_range(-2..3i32) as f64))
            .collect();
        let rhs = if rng.random_bool(0.5) {
            0.0
        } else {
            rng.random_range(0..5i32) as f64
        };
        for _ in 0..rng.random_range(2..5usize) {
            p.add_ge(&coeffs, rhs);
        }
        p.add_eq(
            &coeffs.iter().map(|&(j, v)| (j, 2.0 * v)).collect::<Vec<_>>(),
            2.0 * rhs,
        );
        assert_three_way(&p, &format!("degenerate case {case}"));
    }
}

/// A makespan-LP-shaped problem whose only varying datum is one `≤`
/// RHS (the budget row) — the warm-start contract's exact use case.
fn budget_shaped(rng: &mut StdRng, n_jobs: usize, budget: f64) -> Problem {
    // vars: f_1..f_n (bounded), T (last); min T subject to
    // T + s_j f_j >= t_j and sum f_j <= budget.
    let mut p = Problem::minimize(n_jobs + 1);
    p.set_objective(n_jobs, 1.0);
    for j in 0..n_jobs {
        let t = rng.random_range(1..20i32) as f64;
        let r = rng.random_range(1..5i32) as f64;
        p.add_ge(&[(n_jobs, 1.0), (j, t / r)], t);
        p.set_upper_bound(j, r);
    }
    let coeffs: Vec<(usize, f64)> = (0..n_jobs).map(|j| (j, 1.0)).collect();
    p.add_le(&coeffs, budget);
    p
}

#[test]
fn warm_chain_matches_cold_over_random_budget_sequences() {
    let mut rng = StdRng::seed_from_u64(0x003A_5711);
    for case in 0..60 {
        let n_jobs = rng.random_range(2..8usize);
        // capture the generator state so every budget rebuilds the SAME
        // rows: regenerate from a per-case seed
        let case_seed = rng.random_range(0..u64::MAX);
        let budget_row = n_jobs; // rows: n_jobs precedence then the budget
        let mut p = budget_shaped(&mut StdRng::seed_from_u64(case_seed), n_jobs, 0.0);
        let mut warm: Option<Basis> = None;
        for step in 0..10 {
            let budget = rng.random_range(0..12i32) as f64;
            p.set_rhs(budget_row, budget);
            let (out, basis) = p.solve_revised_warm(warm.as_ref());
            let w = out.expect_optimal("budget LPs are always feasible");
            let c = p
                .solve_with(Engine::Flat)
                .expect_optimal("flat on the same LP");
            assert!(
                (w.objective - c.objective).abs() <= 1e-7 * (1.0 + c.objective.abs()),
                "case {case} step {step} budget {budget}: warm {} vs cold {}",
                w.objective,
                c.objective
            );
            assert!(p.is_feasible(&w.x, 1e-6), "case {case} step {step}");
            warm = basis;
        }
    }
}

#[test]
fn chained_sweep_matches_flat_point_for_point() {
    use rtt_lp::revised::solve_rhs_sweep;
    use rtt_lp::PivotRule;
    let mut rng = StdRng::seed_from_u64(0x5EED_C4A1);
    for case in 0..40 {
        let n_jobs = rng.random_range(2..7usize);
        let mut p = budget_shaped(&mut rng, n_jobs, 0.0);
        let budget_row = n_jobs;
        // non-monotone grids exercise both dual directions
        let rhs: Vec<f64> = (0..8).map(|_| rng.random_range(0..10i32) as f64).collect();
        let (outcomes, basis) =
            solve_rhs_sweep(&p, budget_row, &rhs, PivotRule::Dantzig, None, None);
        assert_eq!(outcomes.len(), rhs.len());
        assert!(basis.is_some(), "feasible sweeps return a basis");
        for (k, (o, &v)) in outcomes.iter().zip(&rhs).enumerate() {
            let w = o.clone().expect_optimal("budget LPs are always feasible");
            p.set_rhs(budget_row, v);
            let c = p.solve_with(Engine::Flat).expect_optimal("flat");
            assert!(
                (w.objective - c.objective).abs() <= 1e-7 * (1.0 + c.objective.abs()),
                "case {case} point {k} rhs {v}: chained {} vs flat {}",
                w.objective,
                c.objective
            );
            assert!(p.is_feasible(&w.x, 1e-6), "case {case} point {k}");
        }
    }
}

#[test]
fn warm_restart_after_infeasible_and_on_first_use() {
    // warm = None must behave exactly like a cold solve
    let mut rng = StdRng::seed_from_u64(7);
    let p = budget_shaped(&mut rng, 4, 3.0);
    let (a, _) = p.solve_revised_warm(None);
    let b = p.solve_with(Engine::Revised);
    let (a, b) = (a.expect_optimal("a"), b.expect_optimal("b"));
    assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    assert_eq!(a.pivots, b.pivots, "warm=None must be the cold path");
}
