//! Property tests: whatever the simplex claims optimal must be feasible,
//! and must not beat brute-force-sampled feasible points.

use proptest::prelude::*;
use rtt_lp::{Cmp, Outcome, Problem};

#[derive(Debug, Clone)]
struct RandLp {
    n: usize,
    obj: Vec<i32>,
    rows: Vec<(Vec<i32>, u8, i32)>,
    ubs: Vec<Option<u8>>,
}

fn rand_lp() -> impl Strategy<Value = RandLp> {
    (1usize..5).prop_flat_map(|n| {
        (
            proptest::collection::vec(-3i32..4, n),
            proptest::collection::vec(
                (
                    proptest::collection::vec(-3i32..4, n),
                    0u8..3,
                    -6i32..10,
                ),
                0..6,
            ),
            proptest::collection::vec(proptest::option::of(0u8..6), n),
        )
            .prop_map(move |(obj, rows, ubs)| RandLp { n, obj, rows, ubs })
    })
}

fn build(lp: &RandLp) -> Problem {
    let mut p = Problem::minimize(lp.n);
    for (j, &c) in lp.obj.iter().enumerate() {
        p.set_objective(j, c as f64);
    }
    for (coeffs, cmp, rhs) in &lp.rows {
        let cv: Vec<(usize, f64)> = coeffs
            .iter()
            .enumerate()
            .map(|(j, &a)| (j, a as f64))
            .collect();
        let cmp = match cmp {
            0 => Cmp::Le,
            1 => Cmp::Eq,
            _ => Cmp::Ge,
        };
        p.add_row(&cv, cmp, *rhs as f64);
    }
    for (j, ub) in lp.ubs.iter().enumerate() {
        if let Some(u) = ub {
            p.set_upper_bound(j, *u as f64);
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]
    #[test]
    fn optimal_is_feasible_and_not_too_good(lp in rand_lp()) {
        let p = build(&lp);
        match p.solve() {
            Outcome::Optimal(s) => {
                prop_assert!(p.is_feasible(&s.x, 1e-5),
                    "claimed optimal is infeasible: {:?}", s.x);
                // grid-sample feasible integer points; none may beat it
                let pts = grid_points(&lp);
                for x in pts {
                    if p.is_feasible(&x, 1e-9) {
                        prop_assert!(p.objective_at(&x) >= s.objective - 1e-5,
                            "point {x:?} beats 'optimal' {} with {}",
                            s.objective, p.objective_at(&x));
                    }
                }
            }
            Outcome::Infeasible => {
                // no grid point may be feasible
                for x in grid_points(&lp) {
                    prop_assert!(!p.is_feasible(&x, 1e-9),
                        "claimed infeasible but {x:?} is feasible");
                }
            }
            Outcome::Unbounded => { /* hard to cross-check cheaply */ }
            Outcome::Exhausted(e) => {
                prop_assert!(false, "unmetered solve cannot exhaust: {e}");
            }
        }
    }
}

/// All integer points in [0, 6]^n (n ≤ 4).
fn grid_points(lp: &RandLp) -> Vec<Vec<f64>> {
    let mut pts = vec![vec![]];
    for _ in 0..lp.n {
        let mut next = Vec::new();
        for p in &pts {
            for v in 0..=6 {
                let mut q = p.clone();
                q.push(v as f64);
                next.push(q);
            }
        }
        pts = next;
    }
    pts
}
