//! Differential property test for deterministic parallel pricing:
//! **a thread count may change what a run costs, never what it
//! emits.** On random LPs — feasible, infeasible, unbounded, and
//! degenerate alike — the revised engine must produce bit-identical
//! outcomes (same verdict, same `x` bits, same pivot sequence as
//! witnessed by every `LpStats` counter) at 1, 2, and 4 intra-solve
//! threads, and down the forced-chunking path at 1 thread (the
//! "parallel path without spawning" the overhead bench measures).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtt_lp::{Cmp, Engine, Problem};

fn random_problem(rng: &mut StdRng) -> Problem {
    let n = rng.random_range(1..8usize);
    let mut p = Problem::minimize(n);
    for j in 0..n {
        p.set_objective(j, rng.random_range(-4..5i32) as f64);
        if rng.random_bool(0.5) {
            p.set_upper_bound(j, rng.random_range(0..6i32) as f64);
        }
    }
    for _ in 0..rng.random_range(1..6usize) {
        let coeffs: Vec<(usize, f64)> = (0..n)
            .map(|j| (j, rng.random_range(-3..4i32) as f64))
            .collect();
        let rhs = rng.random_range(-4..9i32) as f64;
        let cmp = match rng.random_range(0..3u8) {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        p.add_row(&coeffs, cmp, rhs);
    }
    p
}

/// The exact-comparison form: `Debug` covers the verdict, every `x`
/// bit (f64 `Debug` is injective, `-0.0` included), the objective, and
/// the full `LpStats` counter block — pivot counts, bound flips,
/// refactorizations. Any pricing divergence shows up here.
fn outcome_repr(p: &Problem) -> String {
    format!("{:?}", p.solve_with(Engine::Revised))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pricing_is_bit_identical_at_any_thread_count(seed in 0u64..10_000) {
        let p = random_problem(&mut StdRng::seed_from_u64(seed));
        let serial = outcome_repr(&p);
        // the chunked selection path at 1 thread (no workers spawned)
        let forced = rtt_par::with_forced_chunking(|| outcome_repr(&p));
        prop_assert_eq!(&forced, &serial, "forced chunking diverged");
        for threads in [2usize, 4] {
            let par = rtt_par::with_threads(threads, || outcome_repr(&p));
            prop_assert_eq!(&par, &serial, "diverged at {} threads", threads);
        }
    }
}
