//! Differential tests: the flat-tableau solver must reproduce the
//! frozen pre-rewrite solver's outcomes — same feasibility verdicts,
//! objectives equal within `TOL`-scale slack — on the edge-case corpus
//! and on randomized LPs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtt_lp::{Cmp, Engine, Outcome, PivotRule, Problem, TOL};

/// Objectives may differ only by tolerance-scale noise; verdicts must
/// agree exactly.
fn assert_engines_agree(p: &Problem, label: &str) {
    let flat = p.solve_with(Engine::Flat);
    let reference = p.solve_with(Engine::Reference);
    match (&flat, &reference) {
        (Outcome::Optimal(f), Outcome::Optimal(r)) => {
            assert!(
                (f.objective - r.objective).abs() <= 1e-6 * (1.0 + r.objective.abs()),
                "{label}: flat objective {} vs reference {}",
                f.objective,
                r.objective
            );
            assert!(p.is_feasible(&f.x, 1e-5), "{label}: flat optimum infeasible");
        }
        (Outcome::Infeasible, Outcome::Infeasible) => {}
        (Outcome::Unbounded, Outcome::Unbounded) => {}
        (f, r) => panic!("{label}: flat says {f:?}, reference says {r:?}"),
    }
    // The Bland-from-the-start rule must land on the same objective too.
    if let (Outcome::Optimal(f), Outcome::Optimal(b)) = (
        &flat,
        &p.solve_with(Engine::FlatWith(PivotRule::Bland)),
    ) {
        assert!(
            (f.objective - b.objective).abs() <= 1e-6 * (1.0 + f.objective.abs()),
            "{label}: Dantzig {} vs Bland {}",
            f.objective,
            b.objective
        );
    }
}

/// The `edge_cases.rs` corpus, rebuilt problem-by-problem.
fn edge_case_corpus() -> Vec<(&'static str, Problem)> {
    let mut corpus = Vec::new();

    corpus.push(("empty_problem", Problem::minimize(3)));

    let mut p = Problem::minimize(1);
    p.set_objective(0, 1.0);
    for _ in 0..3 {
        p.add_ge(&[(0, 1.0)], 2.0);
    }
    corpus.push(("redundant_constraints", p));

    let mut p = Problem::minimize(1);
    p.set_objective(0, 1.0);
    p.add_row(&[(0, 1.0), (0, 1.0)], Cmp::Ge, 4.0);
    corpus.push(("repeated_coefficients", p));

    let mut p = Problem::minimize(3);
    p.set_objective(0, -0.75);
    p.set_objective(1, 150.0);
    p.set_objective(2, -0.02);
    p.add_le(&[(0, 0.25), (1, -60.0), (2, -0.04)], 0.0);
    p.add_le(&[(0, 0.5), (1, -90.0), (2, -0.02)], 0.0);
    p.add_le(&[(2, 1.0)], 1.0);
    corpus.push(("degenerate_beale", p));

    let mut p = Problem::minimize(1);
    p.set_objective(0, -1.0);
    p.set_upper_bound(0, 7.5);
    corpus.push(("upper_bound_cap", p));

    let mut p = Problem::minimize(2);
    p.set_objective(0, -1.0);
    p.add_ge(&[(1, 1.0)], 1.0);
    corpus.push(("unbounded", p));

    let mut p = Problem::minimize(2);
    p.add_eq(&[(0, 1.0), (1, 1.0)], 1.0);
    p.add_eq(&[(0, 1.0), (1, 1.0)], 2.0);
    corpus.push(("infeasible_equalities", p));

    let mut p = Problem::minimize(1);
    p.set_upper_bound(0, 1.0);
    p.add_ge(&[(0, 1.0)], 2.0);
    corpus.push(("infeasible_bounds", p));

    let mut p = Problem::minimize(1);
    p.set_objective(0, 1.0);
    p.add_ge(&[(0, 1.0)], -5.0);
    corpus.push(("vacuous_negative_rhs", p));

    let mut p = Problem::minimize(1);
    p.add_le(&[(0, 1.0)], -1.0);
    corpus.push(("negative_rhs_infeasible", p));

    let mut p = Problem::minimize(2);
    p.set_objective(0, 1.0);
    p.add_ge(&[(0, 1.0), (1, 0.0)], 3.0);
    corpus.push(("zero_coefficient_row", p));

    let mut p = Problem::minimize(2);
    p.set_objective(0, 1.0);
    p.set_objective(1, 1.0);
    p.add_ge(&[(0, 1.0), (1, 1.0)], 2.0);
    corpus.push(("multiple_optima", p));

    let mut p = Problem::minimize(2);
    p.add_eq(&[(0, 1.0), (1, 1.0)], 10.0);
    p.add_row(&[(0, 1.0), (1, -1.0)], Cmp::Ge, 4.0);
    p.add_row(&[(0, 1.0), (1, -1.0)], Cmp::Le, 4.0);
    corpus.push(("equality_system", p));

    let n = 4;
    let mut p = Problem::minimize(n * n);
    for i in 0..n {
        for j in 0..n {
            p.set_objective(i * n + j, ((i * 7 + j * 3) % 5 + 1) as f64);
        }
    }
    for i in 0..n {
        let row: Vec<(usize, f64)> = (0..n).map(|j| (i * n + j, 1.0)).collect();
        p.add_eq(&row, 1.0);
        let col: Vec<(usize, f64)> = (0..n).map(|j| (j * n + i, 1.0)).collect();
        p.add_eq(&col, 1.0);
    }
    corpus.push(("assignment_4x4", p));

    // Mixed magnitudes like the ∞-clamped LPs the pipeline builds
    // (LP_BIG = 1e12 precedence rows next to unit conservation rows):
    // the sparse pivot path must not drop the small genuine entries.
    let big = 1e12;
    let mut p = Problem::minimize(4);
    p.set_objective(3, 1.0);
    p.add_eq(&[(0, 1.0), (1, -1.0)], 0.0);
    p.add_ge(&[(3, 1.0), (0, big / 2.0)], big);
    p.add_ge(&[(3, 1.0), (1, 3.0), (2, 1.0)], 3.0);
    p.add_le(&[(0, 1.0), (2, 1.0)], 1.0);
    for j in 0..3 {
        p.set_upper_bound(j, 2.0);
    }
    corpus.push(("mixed_scale_lp_big", p));

    corpus
}

#[test]
fn flat_handles_lp_big_scale_exactly_like_reference() {
    // Dedicated relative check at the 1e12 scale: objectives must agree
    // to relative 1e-9 even though absolute values are huge.
    let big = 1e12;
    let mut p = Problem::minimize(3);
    p.set_objective(2, 1.0);
    p.add_ge(&[(2, 1.0), (0, big)], big); // T >= big(1 - f0)
    p.add_ge(&[(2, 1.0), (1, 7.0)], 5.0);
    p.add_le(&[(0, 1.0), (1, 1.0)], 1.0);
    p.set_upper_bound(0, 1.0);
    p.set_upper_bound(1, 1.0);
    let f = p.solve_with(Engine::Flat).expect_optimal("flat");
    let r = p.solve_with(Engine::Reference).expect_optimal("reference");
    assert!(
        (f.objective - r.objective).abs() <= 1e-9 * (1.0 + r.objective.abs()),
        "flat {} vs reference {}",
        f.objective,
        r.objective
    );
}

#[test]
fn flat_matches_reference_on_edge_case_corpus() {
    for (label, p) in edge_case_corpus() {
        assert_engines_agree(&p, label);
    }
}

#[test]
fn flat_matches_reference_on_random_lps() {
    let mut rng = StdRng::seed_from_u64(0x5117_F1A7);
    for case in 0..400 {
        let n = rng.random_range(1..6usize);
        let mut p = Problem::minimize(n);
        for j in 0..n {
            p.set_objective(j, rng.random_range(-4..5i32) as f64);
            if rng.random_bool(0.4) {
                p.set_upper_bound(j, rng.random_range(0..8i32) as f64);
            }
        }
        for _ in 0..rng.random_range(0..7usize) {
            let coeffs: Vec<(usize, f64)> = (0..n)
                .map(|j| (j, rng.random_range(-3..4i32) as f64))
                .collect();
            let cmp = match rng.random_range(0..3u8) {
                0 => Cmp::Le,
                1 => Cmp::Eq,
                _ => Cmp::Ge,
            };
            p.add_row(&coeffs, cmp, rng.random_range(-6..10i32) as f64);
        }
        assert_engines_agree(&p, &format!("random case {case}"));
    }
}

#[test]
fn pivot_counts_are_reported() {
    // A fixed LP must report a positive, deterministic pivot count.
    let mut p = Problem::minimize(2);
    p.set_objective(0, -3.0);
    p.set_objective(1, -5.0);
    p.add_le(&[(0, 1.0)], 4.0);
    p.add_le(&[(1, 2.0)], 12.0);
    p.add_le(&[(0, 3.0), (1, 2.0)], 18.0);
    let a = p.solve().expect_optimal("a");
    let b = p.solve().expect_optimal("b");
    assert!(a.pivots > 0);
    assert_eq!(a.pivots, b.pivots, "solver must be deterministic");
    let _ = TOL; // corpus tolerance is anchored to the crate constant
}
