//! Edge cases for the two-phase simplex: degeneracy, redundancy,
//! bounds, multiple optima, infeasibility/unboundedness detection.

use rtt_lp::{Cmp, Outcome, Problem};

fn optimal(p: &Problem) -> rtt_lp::Solution {
    match p.solve() {
        Outcome::Optimal(s) => s,
        other => panic!("expected optimal, got {other:?}"),
    }
}

#[test]
fn empty_problem_is_trivially_optimal() {
    let p = Problem::minimize(3);
    let s = optimal(&p);
    assert_eq!(s.objective, 0.0);
    assert!(p.is_feasible(&s.x, 1e-9));
}

#[test]
fn redundant_constraints_are_harmless() {
    // x ≥ 2 stated three times, minimize x
    let mut p = Problem::minimize(1);
    p.set_objective(0, 1.0);
    for _ in 0..3 {
        p.add_ge(&[(0, 1.0)], 2.0);
    }
    let s = optimal(&p);
    assert!((s.x[0] - 2.0).abs() < 1e-9);
}

#[test]
fn repeated_coefficients_sum() {
    // (x + x) ≥ 4 means x ≥ 2
    let mut p = Problem::minimize(1);
    p.set_objective(0, 1.0);
    p.add_row(&[(0, 1.0), (0, 1.0)], Cmp::Ge, 4.0);
    let s = optimal(&p);
    assert!((s.x[0] - 2.0).abs() < 1e-9, "{}", s.x[0]);
}

#[test]
fn degenerate_vertex_terminates() {
    // classic degeneracy: many constraints meeting at the origin;
    // Bland's rule must terminate
    let mut p = Problem::minimize(3);
    p.set_objective(0, -0.75);
    p.set_objective(1, 150.0);
    p.set_objective(2, -0.02);
    // a Beale-like cycling construction (plus bounds to keep it finite)
    p.add_le(&[(0, 0.25), (1, -60.0), (2, -0.04)], 0.0);
    p.add_le(&[(0, 0.5), (1, -90.0), (2, -0.02)], 0.0);
    p.add_le(&[(2, 1.0)], 1.0);
    let s = optimal(&p);
    assert!(p.is_feasible(&s.x, 1e-7));
    assert!((s.objective - (-0.05)).abs() < 1e-6, "{}", s.objective);
}

#[test]
fn variable_capped_by_upper_bound() {
    // maximize x (minimize −x) with x ≤ 7.5
    let mut p = Problem::minimize(1);
    p.set_objective(0, -1.0);
    p.set_upper_bound(0, 7.5);
    let s = optimal(&p);
    assert!((s.x[0] - 7.5).abs() < 1e-9);
}

#[test]
fn unbounded_detected() {
    let mut p = Problem::minimize(2);
    p.set_objective(0, -1.0); // minimize −x with x free above
    p.add_ge(&[(1, 1.0)], 1.0); // unrelated row
    assert!(matches!(p.solve(), Outcome::Unbounded));
}

#[test]
fn infeasible_equalities_detected() {
    let mut p = Problem::minimize(2);
    p.add_eq(&[(0, 1.0), (1, 1.0)], 1.0);
    p.add_eq(&[(0, 1.0), (1, 1.0)], 2.0);
    assert!(matches!(p.solve(), Outcome::Infeasible));
}

#[test]
fn infeasible_bounds_vs_row() {
    // x ≤ 1 but row requires x ≥ 2
    let mut p = Problem::minimize(1);
    p.set_upper_bound(0, 1.0);
    p.add_ge(&[(0, 1.0)], 2.0);
    assert!(matches!(p.solve(), Outcome::Infeasible));
}

#[test]
fn negative_rhs_ge_row() {
    // x ≥ −5 is vacuous for x ≥ 0: optimum at 0
    let mut p = Problem::minimize(1);
    p.set_objective(0, 1.0);
    p.add_ge(&[(0, 1.0)], -5.0);
    let s = optimal(&p);
    assert_eq!(s.x[0], 0.0);
}

#[test]
fn negative_rhs_le_row_forces_infeasible() {
    // x ≤ −1 contradicts x ≥ 0
    let mut p = Problem::minimize(1);
    p.add_le(&[(0, 1.0)], -1.0);
    assert!(matches!(p.solve(), Outcome::Infeasible));
}

#[test]
fn zero_coefficient_rows_ignored_gracefully() {
    let mut p = Problem::minimize(2);
    p.set_objective(0, 1.0);
    p.add_ge(&[(0, 1.0), (1, 0.0)], 3.0);
    let s = optimal(&p);
    assert!((s.x[0] - 3.0).abs() < 1e-9);
}

#[test]
fn multiple_optima_any_vertex_is_fine() {
    // minimize x + y with x + y ≥ 2: whole segment optimal, objective 2
    let mut p = Problem::minimize(2);
    p.set_objective(0, 1.0);
    p.set_objective(1, 1.0);
    p.add_ge(&[(0, 1.0), (1, 1.0)], 2.0);
    let s = optimal(&p);
    assert!((s.objective - 2.0).abs() < 1e-9);
    assert!(p.is_feasible(&s.x, 1e-9));
}

#[test]
fn equality_system_solved_exactly() {
    // x + y = 10, x − y = 4 → x = 7, y = 3
    let mut p = Problem::minimize(2);
    p.add_eq(&[(0, 1.0), (1, 1.0)], 10.0);
    p.add_row(&[(0, 1.0), (1, -1.0)], Cmp::Ge, 4.0);
    p.add_row(&[(0, 1.0), (1, -1.0)], Cmp::Le, 4.0);
    let s = optimal(&p);
    assert!((s.x[0] - 7.0).abs() < 1e-9);
    assert!((s.x[1] - 3.0).abs() < 1e-9);
}

#[test]
fn larger_assignment_lp_is_integral() {
    // assignment polytopes have integral vertices: 4×4 with distinct costs
    let n = 4;
    let mut p = Problem::minimize(n * n);
    for i in 0..n {
        for j in 0..n {
            p.set_objective(i * n + j, ((i * 7 + j * 3) % 5 + 1) as f64);
        }
    }
    for i in 0..n {
        let row: Vec<(usize, f64)> = (0..n).map(|j| (i * n + j, 1.0)).collect();
        p.add_eq(&row, 1.0);
        let col: Vec<(usize, f64)> = (0..n).map(|j| (j * n + i, 1.0)).collect();
        p.add_eq(&col, 1.0);
    }
    let s = optimal(&p);
    for &v in &s.x {
        assert!(v.abs() < 1e-7 || (v - 1.0).abs() < 1e-7, "fractional vertex {v}");
    }
}
