//! Decomposition of an integral DAG flow into source→sink paths.
//!
//! Question 1.3 routes every unit of resource along a source→sink path;
//! a solver however produces per-edge flow values. This module recovers
//! the actual routes: any non-negative integral flow with conservation on
//! a DAG decomposes into at most `|E|` weighted paths.

use std::fmt;

/// One route: a sequence of edge indices carrying `amount` units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowPath {
    /// Edge indices (into the caller's edge list), s→t order.
    pub edges: Vec<usize>,
    /// Units routed along this path.
    pub amount: u64,
}

/// Errors from [`decompose_paths`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecomposeError {
    /// Conservation violated at a node (non-zero net flow).
    NotConserved {
        /// The offending node.
        node: usize,
        /// Its net inflow − outflow.
        imbalance: i64,
    },
    /// A positive-flow walk failed to reach the sink (graph not a DAG or
    /// flow inconsistent).
    Stuck {
        /// Node where the walk got stuck.
        node: usize,
    },
}

impl fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecomposeError::NotConserved { node, imbalance } => {
                write!(f, "flow not conserved at node {node} (imbalance {imbalance})")
            }
            DecomposeError::Stuck { node } => {
                write!(f, "path walk stuck at node {node}")
            }
        }
    }
}

impl std::error::Error for DecomposeError {}

/// Decomposes an integral flow into weighted source→sink paths.
///
/// `edges[i] = (u, v)` with `flow[i]` units. Requires conservation at all
/// nodes except `s`/`t` and an acyclic support (guaranteed when the edges
/// come from a DAG). The returned paths sum to the flow exactly:
/// `Σ_path amount · [i ∈ path] = flow[i]` for every edge `i`.
pub fn decompose_paths(
    n: usize,
    edges: &[(usize, usize)],
    flow: &[u64],
    s: usize,
    t: usize,
) -> Result<Vec<FlowPath>, DecomposeError> {
    assert_eq!(edges.len(), flow.len());
    assert!(s < n && t < n);
    // check conservation
    let mut net = vec![0i64; n];
    for (&(u, v), &f) in edges.iter().zip(flow) {
        net[u] -= f as i64;
        net[v] += f as i64;
    }
    for v in 0..n {
        if v != s && v != t && net[v] != 0 {
            return Err(DecomposeError::NotConserved {
                node: v,
                imbalance: net[v],
            });
        }
    }

    let mut rem: Vec<u64> = flow.to_vec();
    // out adjacency of edge indices, with a cursor skipping drained edges
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &(u, _)) in edges.iter().enumerate() {
        out[u].push(i);
    }
    let mut cursor = vec![0usize; n];
    let mut paths = Vec::new();
    let step_cap = edges.len() + 1;
    loop {
        // find a live edge out of s
        while cursor[s] < out[s].len() && rem[out[s][cursor[s]]] == 0 {
            cursor[s] += 1;
        }
        if cursor[s] >= out[s].len() {
            break;
        }
        let mut path = Vec::new();
        let mut amount = u64::MAX;
        let mut v = s;
        let mut steps = 0usize;
        while v != t {
            steps += 1;
            if steps > step_cap {
                return Err(DecomposeError::Stuck { node: v });
            }
            while cursor[v] < out[v].len() && rem[out[v][cursor[v]]] == 0 {
                cursor[v] += 1;
            }
            let Some(&e) = out[v].get(cursor[v]) else {
                return Err(DecomposeError::Stuck { node: v });
            };
            amount = amount.min(rem[e]);
            path.push(e);
            v = edges[e].1;
        }
        for &e in &path {
            rem[e] -= amount;
        }
        // Reset cursors touched? Not needed: a cursor only skips fully
        // drained edges, and draining is monotone *per edge*, but an edge
        // may drain partially; cursors only advance past rem == 0 edges,
        // so partially drained edges are revisited. Correct as-is.
        paths.push(FlowPath {
            edges: path,
            amount,
        });
    }
    // all edges must be drained (otherwise there was a cycle of flow,
    // impossible on a DAG, or flow into s)
    if let Some(i) = rem.iter().position(|&r| r > 0) {
        return Err(DecomposeError::Stuck { node: edges[i].0 });
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path() {
        let edges = [(0, 1), (1, 2)];
        let paths = decompose_paths(3, &edges, &[4, 4], 0, 2).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].amount, 4);
        assert_eq!(paths[0].edges, vec![0, 1]);
    }

    #[test]
    fn split_and_merge() {
        // diamond: 0->1->3 carries 2, 0->2->3 carries 3
        let edges = [(0, 1), (1, 3), (0, 2), (2, 3)];
        let paths = decompose_paths(4, &edges, &[2, 2, 3, 3], 0, 3).unwrap();
        let total: u64 = paths.iter().map(|p| p.amount).sum();
        assert_eq!(total, 5);
        // each edge covered exactly
        let mut covered = vec![0u64; edges.len()];
        for p in &paths {
            for &e in &p.edges {
                covered[e] += p.amount;
            }
        }
        assert_eq!(covered, vec![2, 2, 3, 3]);
    }

    #[test]
    fn partial_drain_revisits_edge() {
        // 0->1 carries 5; it splits at 1 into 2 and 3.
        let edges = [(0, 1), (1, 2), (2, 4), (1, 3), (3, 4)];
        let flow = [5, 2, 2, 3, 3];
        let paths = decompose_paths(5, &edges, &flow, 0, 4).unwrap();
        let mut covered = vec![0u64; edges.len()];
        for p in &paths {
            for &e in &p.edges {
                covered[e] += p.amount;
            }
        }
        assert_eq!(covered.to_vec(), flow.to_vec());
    }

    #[test]
    fn zero_flow_no_paths() {
        let edges = [(0, 1), (1, 2)];
        let paths = decompose_paths(3, &edges, &[0, 0], 0, 2).unwrap();
        assert!(paths.is_empty());
    }

    #[test]
    fn conservation_violation_detected() {
        let edges = [(0, 1), (1, 2)];
        let err = decompose_paths(3, &edges, &[4, 3], 0, 2).unwrap_err();
        assert_eq!(
            err,
            DecomposeError::NotConserved {
                node: 1,
                imbalance: 1
            }
        );
    }

    #[test]
    fn path_count_at_most_edges() {
        // a ladder with many distinct routes; decomposition stays small
        let edges = [(0, 1), (0, 1), (1, 2), (1, 2)];
        let paths = decompose_paths(3, &edges, &[1, 1, 1, 1], 0, 2).unwrap();
        assert!(paths.len() <= edges.len());
        let total: u64 = paths.iter().map(|p| p.amount).sum();
        assert_eq!(total, 2);
    }
}
