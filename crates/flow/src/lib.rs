//! # rtt-flow — integer network flows for resource routing
//!
//! The rounding step of the paper's approximation pipeline (§3.1) ends
//! with a *min-flow* computation: after LP rounding fixes an integral
//! resource requirement `f'_e` at every edge, the total budget actually
//! needed is the minimum s–t flow subject to the lower bounds `f_e ≥ f'_e`
//! (LP 11–13). The paper invokes "min-flow has integral optimality"; this
//! crate supplies the combinatorial machinery behind that sentence:
//!
//! * [`max_flow`] — Dinic's algorithm (BFS level graph + blocking DFS);
//! * [`min_cut`] — the certifying cut for max-flow;
//! * [`min_flow`] — minimum s–t flow with per-edge lower bounds, via the
//!   classical transformation (feasible flow with a super source/sink,
//!   then cancel backwards flow with a t→s max-flow in the residual);
//! * [`decompose_paths`] — decomposition of an integral DAG flow into
//!   source→sink paths, i.e. the actual *routes the resource units take*
//!   (Question 1.3's "every unit of space flows along a source to sink
//!   path").
//!
//! The crate is index-based (`usize` nodes, edge lists) and free of
//! dependencies; `rtt-core` adapts it to `rtt-dag` graphs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dinic;
mod lower;
mod paths;

pub use dinic::{max_flow, min_cut, Dinic, MaxFlowResult};
pub use lower::{min_flow, BoundedEdge, MinFlowResult};
pub use paths::{decompose_paths, FlowPath};

/// Effectively-infinite capacity (kept far from `u64::MAX` so sums of
/// several infinities do not overflow).
pub const CAP_INF: u64 = u64::MAX / 8;
