//! Minimum s–t flow with per-edge lower bounds (LP 11–13, solved
//! combinatorially).

use crate::dinic::Dinic;
use crate::CAP_INF;

/// An edge with flow bounds `lower ≤ f ≤ upper`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedEdge {
    /// Tail.
    pub from: usize,
    /// Head.
    pub to: usize,
    /// Lower bound (the rounded resource requirement `f'_e` of §3.1).
    pub lower: u64,
    /// Upper bound (use [`CAP_INF`] for unbounded).
    pub upper: u64,
}

impl BoundedEdge {
    /// Edge with a lower bound only.
    pub fn at_least(from: usize, to: usize, lower: u64) -> Self {
        BoundedEdge {
            from,
            to,
            lower,
            upper: CAP_INF,
        }
    }
}

/// Result of [`min_flow`].
#[derive(Debug, Clone)]
pub struct MinFlowResult {
    /// The minimum s→t flow value (the resource budget actually needed).
    pub value: u64,
    /// A witnessing integral flow per input edge (`≥ lower`).
    pub edge_flow: Vec<u64>,
}

/// Computes a minimum s→t flow satisfying all lower/upper bounds, or
/// `None` if no feasible flow exists.
///
/// Classical reduction: (1) find *any* feasible flow by rebalancing the
/// lower-bound excesses through a super source/sink plus a `t→s` return
/// arc; (2) minimize by cancelling as much s→t flow as possible, i.e. a
/// max-flow from `t` to `s` in the residual network. Both phases are
/// Dinic runs on the same structure, so the result is integral — the
/// "integral optimality" the paper's Lemma 3.3 relies on.
pub fn min_flow(
    n: usize,
    edges: &[BoundedEdge],
    s: usize,
    t: usize,
) -> Option<MinFlowResult> {
    assert!(s < n && t < n && s != t, "need distinct s, t in range");
    for (i, e) in edges.iter().enumerate() {
        assert!(
            e.lower <= e.upper,
            "edge {i}: lower {} > upper {}",
            e.lower,
            e.upper
        );
        assert!(e.from < n && e.to < n, "edge {i}: endpoint out of range");
    }
    let ss = n;
    let tt = n + 1;
    let mut d = Dinic::new(n + 2);
    let mut excess = vec![0i64; n];
    let handles: Vec<_> = edges
        .iter()
        .map(|e| {
            excess[e.to] += e.lower as i64;
            excess[e.from] -= e.lower as i64;
            d.add_edge(e.from, e.to, e.upper - e.lower)
        })
        .collect();
    let ts = d.add_edge(t, s, CAP_INF);
    let mut need = 0u64;
    for (v, &x) in excess.iter().enumerate() {
        match x.cmp(&0) {
            std::cmp::Ordering::Greater => {
                d.add_edge(ss, v, x as u64);
                need += x as u64;
            }
            std::cmp::Ordering::Less => {
                d.add_edge(v, tt, (-x) as u64);
            }
            std::cmp::Ordering::Equal => {}
        }
    }
    let pushed = d.run(ss, tt);
    if pushed < need {
        return None; // lower bounds unsatisfiable
    }
    // Feasible flow found. Its s→t value is the flow on the return arc.
    let v0 = d.flow_on(ts);
    // Remove the return arc entirely (forward and residual directions).
    d.set_residual(ts, 0);
    d.clear_flow(ts);
    // Cancel surplus circulation: max-flow t→s in the residual network.
    let cancelled = d.run(t, s);
    debug_assert!(cancelled <= v0);
    let value = v0 - cancelled;
    let edge_flow = handles
        .iter()
        .zip(edges)
        .map(|(&h, e)| e.lower + d.flow_on(h))
        .collect();
    Some(MinFlowResult { value, edge_flow })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asserts `r` is a valid flow for `edges` with the given value.
    fn check(n: usize, edges: &[BoundedEdge], s: usize, t: usize, r: &MinFlowResult) {
        let mut net = vec![0i64; n];
        for (e, &f) in edges.iter().zip(&r.edge_flow) {
            assert!(f >= e.lower, "flow {f} below lower bound {}", e.lower);
            assert!(f <= e.upper, "flow {f} above upper bound {}", e.upper);
            net[e.from] -= f as i64;
            net[e.to] += f as i64;
        }
        for v in 0..n {
            if v == s {
                assert_eq!(net[v], -(r.value as i64), "source imbalance");
            } else if v == t {
                assert_eq!(net[v], r.value as i64, "sink imbalance");
            } else {
                assert_eq!(net[v], 0, "conservation violated at {v}");
            }
        }
    }

    #[test]
    fn single_edge_lower_bound() {
        let edges = [BoundedEdge::at_least(0, 1, 5)];
        let r = min_flow(2, &edges, 0, 1).unwrap();
        assert_eq!(r.value, 5);
        check(2, &edges, 0, 1, &r);
    }

    #[test]
    fn chain_takes_max_of_lower_bounds() {
        let edges = [
            BoundedEdge::at_least(0, 1, 2),
            BoundedEdge::at_least(1, 2, 7),
            BoundedEdge::at_least(2, 3, 4),
        ];
        let r = min_flow(4, &edges, 0, 3).unwrap();
        assert_eq!(r.value, 7, "a path must carry the max demand on it");
        check(4, &edges, 0, 3, &r);
    }

    #[test]
    fn parallel_demands_add() {
        // Two disjoint s->t paths with demands 3 and 4: min flow 7.
        let edges = [
            BoundedEdge::at_least(0, 1, 3),
            BoundedEdge::at_least(1, 3, 3),
            BoundedEdge::at_least(0, 2, 4),
            BoundedEdge::at_least(2, 3, 4),
        ];
        let r = min_flow(4, &edges, 0, 3).unwrap();
        assert_eq!(r.value, 7);
        check(4, &edges, 0, 3, &r);
    }

    #[test]
    fn reuse_over_path_shares_units() {
        // Diamond where both middle edges on *one* path demand 5 but the
        // other path demands nothing: the same 5 units serve both legs of
        // the demanding path (resource reuse over paths!).
        let edges = [
            BoundedEdge::at_least(0, 1, 5),
            BoundedEdge::at_least(1, 3, 5),
            BoundedEdge::at_least(0, 2, 0),
            BoundedEdge::at_least(2, 3, 0),
        ];
        let r = min_flow(4, &edges, 0, 3).unwrap();
        assert_eq!(r.value, 5);
        check(4, &edges, 0, 3, &r);
    }

    #[test]
    fn zero_demands_zero_flow() {
        let edges = [
            BoundedEdge::at_least(0, 1, 0),
            BoundedEdge::at_least(1, 2, 0),
        ];
        let r = min_flow(3, &edges, 0, 2).unwrap();
        assert_eq!(r.value, 0);
    }

    #[test]
    fn upper_bounds_can_make_infeasible() {
        // Demand 5 through a middle edge capped at 3.
        let edges = [
            BoundedEdge {
                from: 0,
                to: 1,
                lower: 0,
                upper: 3,
            },
            BoundedEdge::at_least(1, 2, 5),
        ];
        assert!(min_flow(3, &edges, 0, 2).is_none());
    }

    #[test]
    fn feasible_with_tight_upper_bounds() {
        let edges = [
            BoundedEdge {
                from: 0,
                to: 1,
                lower: 2,
                upper: 2,
            },
            BoundedEdge {
                from: 1,
                to: 2,
                lower: 2,
                upper: 2,
            },
        ];
        let r = min_flow(3, &edges, 0, 2).unwrap();
        assert_eq!(r.value, 2);
        assert_eq!(r.edge_flow, vec![2, 2]);
    }

    #[test]
    fn min_flow_not_fooled_by_slack_capacity() {
        // Wide edges everywhere, single demand of 1 somewhere in the
        // middle; minimum is 1, not the max-flow value.
        let mut edges = vec![
            BoundedEdge {
                from: 0,
                to: 1,
                lower: 0,
                upper: 100,
            },
            BoundedEdge {
                from: 1,
                to: 2,
                lower: 1,
                upper: 100,
            },
            BoundedEdge {
                from: 2,
                to: 3,
                lower: 0,
                upper: 100,
            },
        ];
        edges.push(BoundedEdge {
            from: 0,
            to: 3,
            lower: 0,
            upper: 100,
        });
        let r = min_flow(4, &edges, 0, 3).unwrap();
        assert_eq!(r.value, 1);
        check(4, &edges, 0, 3, &r);
    }

    #[test]
    fn merging_demands_from_two_branches() {
        // s->a (demand 3), s->b (demand 2), a->t and b->t free:
        // min flow = 5 (units split at the source).
        let edges = [
            BoundedEdge::at_least(0, 1, 3),
            BoundedEdge::at_least(0, 2, 2),
            BoundedEdge::at_least(1, 3, 0),
            BoundedEdge::at_least(2, 3, 0),
        ];
        let r = min_flow(4, &edges, 0, 3).unwrap();
        assert_eq!(r.value, 5);
        check(4, &edges, 0, 3, &r);
    }

    #[test]
    fn diamond_shared_then_split() {
        // Demands on the two middle edges (3 and 4) of a diamond plus a
        // demand 6 on a common first edge: 6 units enter, split 3/4
        // ... but 6 < 3+4 = 7 so the minimum is 7 driven by the split.
        let edges = [
            BoundedEdge::at_least(0, 1, 6),
            BoundedEdge::at_least(1, 2, 3),
            BoundedEdge::at_least(1, 3, 4),
            BoundedEdge::at_least(2, 4, 0),
            BoundedEdge::at_least(3, 4, 0),
        ];
        let r = min_flow(5, &edges, 0, 4).unwrap();
        assert_eq!(r.value, 7);
        check(5, &edges, 0, 4, &r);
    }
}
