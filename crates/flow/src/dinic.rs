//! Dinic's max-flow algorithm.

use crate::CAP_INF;

/// Result of a max-flow computation.
#[derive(Debug, Clone)]
pub struct MaxFlowResult {
    /// The flow value.
    pub value: u64,
    /// Flow on each input edge, in input order.
    pub edge_flow: Vec<u64>,
}

#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    cap: u64,
    /// Index of the reverse arc in `arcs`.
    rev: usize,
}

/// Reusable Dinic max-flow structure.
///
/// Arcs are added with [`Dinic::add_edge`], which returns a handle for
/// later flow queries; residual capacities persist between calls so flows
/// can be augmented incrementally (used by the min-flow transformation).
#[derive(Debug, Clone)]
pub struct Dinic {
    n: usize,
    arcs: Vec<Arc>,
    adj: Vec<Vec<usize>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

/// Handle to an edge added to a [`Dinic`] network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeHandle(usize);

impl Dinic {
    /// New network with `n` nodes.
    pub fn new(n: usize) -> Self {
        Dinic {
            n,
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Adds a directed edge `u -> v` with capacity `cap`.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: u64) -> EdgeHandle {
        assert!(u < self.n && v < self.n, "endpoint out of range");
        let a = self.arcs.len();
        self.arcs.push(Arc {
            to: v,
            cap,
            rev: a + 1,
        });
        self.arcs.push(Arc {
            to: u,
            cap: 0,
            rev: a,
        });
        self.adj[u].push(a);
        self.adj[v].push(a + 1);
        EdgeHandle(a)
    }

    /// Current flow on an edge (original capacity − residual capacity,
    /// read from the reverse arc).
    pub fn flow_on(&self, e: EdgeHandle) -> u64 {
        self.arcs[self.arcs[e.0].rev].cap
    }

    /// Remaining capacity of an edge.
    pub fn residual(&self, e: EdgeHandle) -> u64 {
        self.arcs[e.0].cap
    }

    /// Sets the *remaining* capacity of an edge (used to delete auxiliary
    /// arcs in the min-flow transformation). Does not touch accumulated
    /// flow on the reverse arc.
    pub fn set_residual(&mut self, e: EdgeHandle, cap: u64) {
        self.arcs[e.0].cap = cap;
    }

    /// Zeroes the recorded flow of an edge (reverse-arc capacity).
    pub fn clear_flow(&mut self, e: EdgeHandle) {
        let r = self.arcs[e.0].rev;
        self.arcs[r].cap = 0;
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &ai in &self.adj[u] {
                let arc = &self.arcs[ai];
                if arc.cap > 0 && self.level[arc.to] < 0 {
                    self.level[arc.to] = self.level[u] + 1;
                    queue.push_back(arc.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, pushed: u64) -> u64 {
        if u == t {
            return pushed;
        }
        while self.iter[u] < self.adj[u].len() {
            let ai = self.adj[u][self.iter[u]];
            let (to, cap) = (self.arcs[ai].to, self.arcs[ai].cap);
            if cap > 0 && self.level[to] == self.level[u] + 1 {
                let d = self.dfs(to, t, pushed.min(cap));
                if d > 0 {
                    self.arcs[ai].cap -= d;
                    let rev = self.arcs[ai].rev;
                    self.arcs[rev].cap += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    /// Augments the current flow to a maximum s→t flow; returns the
    /// *additional* flow pushed by this call.
    pub fn run(&mut self, s: usize, t: usize) -> u64 {
        assert!(s < self.n && t < self.n && s != t);
        let mut total = 0u64;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs(s, t, CAP_INF);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
        total
    }

    /// Nodes reachable from `s` in the residual graph (the min-cut side).
    pub fn residual_reachable(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        seen[s] = true;
        let mut stack = vec![s];
        while let Some(u) = stack.pop() {
            for &ai in &self.adj[u] {
                let arc = &self.arcs[ai];
                if arc.cap > 0 && !seen[arc.to] {
                    seen[arc.to] = true;
                    stack.push(arc.to);
                }
            }
        }
        seen
    }
}

/// Convenience one-shot max-flow on an edge list.
pub fn max_flow(n: usize, edges: &[(usize, usize, u64)], s: usize, t: usize) -> MaxFlowResult {
    let mut d = Dinic::new(n);
    let handles: Vec<_> = edges
        .iter()
        .map(|&(u, v, c)| d.add_edge(u, v, c))
        .collect();
    let value = d.run(s, t);
    MaxFlowResult {
        value,
        edge_flow: handles.iter().map(|&h| d.flow_on(h)).collect(),
    }
}

/// Max-flow value together with a minimum cut: `cut[v]` is true iff `v`
/// is on the source side.
pub fn min_cut(
    n: usize,
    edges: &[(usize, usize, u64)],
    s: usize,
    t: usize,
) -> (u64, Vec<bool>) {
    let mut d = Dinic::new(n);
    for &(u, v, c) in edges {
        d.add_edge(u, v, c);
    }
    let value = d.run(s, t);
    (value, d.residual_reachable(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let r = max_flow(2, &[(0, 1, 7)], 0, 1);
        assert_eq!(r.value, 7);
        assert_eq!(r.edge_flow, vec![7]);
    }

    #[test]
    fn series_bottleneck() {
        let r = max_flow(3, &[(0, 1, 5), (1, 2, 3)], 0, 2);
        assert_eq!(r.value, 3);
        assert_eq!(r.edge_flow, vec![3, 3]);
    }

    #[test]
    fn parallel_paths_sum() {
        let r = max_flow(4, &[(0, 1, 2), (1, 3, 2), (0, 2, 3), (2, 3, 3)], 0, 3);
        assert_eq!(r.value, 5);
    }

    #[test]
    fn classic_clrs_network() {
        // CLRS figure 26.6 flow network; max flow 23.
        let edges = [
            (0, 1, 16),
            (0, 2, 13),
            (1, 2, 10),
            (2, 1, 4),
            (1, 3, 12),
            (3, 2, 9),
            (2, 4, 14),
            (4, 3, 7),
            (3, 5, 20),
            (4, 5, 4),
        ];
        let r = max_flow(6, &edges, 0, 5);
        assert_eq!(r.value, 23);
    }

    #[test]
    fn disconnected_zero_flow() {
        let r = max_flow(4, &[(0, 1, 5), (2, 3, 5)], 0, 3);
        assert_eq!(r.value, 0);
    }

    #[test]
    fn min_cut_capacity_equals_flow() {
        let edges = [
            (0, 1, 3),
            (0, 2, 2),
            (1, 2, 1),
            (1, 3, 2),
            (2, 3, 3),
        ];
        let (value, cut) = min_cut(4, &edges, 0, 3);
        assert_eq!(value, 5);
        assert!(cut[0] && !cut[3]);
        let cut_cap: u64 = edges
            .iter()
            .filter(|&&(u, v, _)| cut[u] && !cut[v])
            .map(|&(_, _, c)| c)
            .sum();
        assert_eq!(cut_cap, value);
    }

    #[test]
    fn conservation_holds() {
        let edges = [
            (0, 1, 4),
            (0, 2, 4),
            (1, 2, 2),
            (1, 3, 3),
            (2, 3, 5),
        ];
        let r = max_flow(4, &edges, 0, 3);
        let mut net = [0i64; 4];
        for (i, &(u, v, _)) in edges.iter().enumerate() {
            net[u] -= r.edge_flow[i] as i64;
            net[v] += r.edge_flow[i] as i64;
        }
        assert_eq!(net[1], 0);
        assert_eq!(net[2], 0);
        assert_eq!(net[0], -(r.value as i64));
        assert_eq!(net[3], r.value as i64);
    }

    #[test]
    fn incremental_augmentation() {
        let mut d = Dinic::new(3);
        let e01 = d.add_edge(0, 1, 10);
        let e12 = d.add_edge(1, 2, 4);
        assert_eq!(d.run(0, 2), 4);
        // raise the bottleneck and re-run: only the delta is returned
        d.set_residual(e12, 3); // 4 already used; 3 more allowed
        assert_eq!(d.run(0, 2), 3);
        assert_eq!(d.flow_on(e01), 7);
        assert_eq!(d.flow_on(e12), 7);
    }

    #[test]
    fn infinite_capacity_edges() {
        let r = max_flow(3, &[(0, 1, CAP_INF), (1, 2, 9)], 0, 2);
        assert_eq!(r.value, 9);
    }
}
