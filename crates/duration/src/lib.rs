//! # rtt-duration — duration functions of the resource-time tradeoff
//!
//! §2 of the paper defines, for each job `v`, a non-increasing *duration
//! function* `t_v(r)`: the time to complete `v` using `r` units of
//! resource. Three families are considered:
//!
//! * **general non-increasing step functions** (Eq. 1), given by a list of
//!   resource-time tuples `⟨r_{v,i}, t_v(r_{v,i})⟩`;
//! * **k-way splitting** (Eq. 2), the duration induced by a k-way split
//!   reducer: `⌈d/k⌉ + k` for `2 ≤ k ≤ ⌊√d⌋`;
//! * **recursive binary splitting** (Eq. 3), the duration induced by a
//!   recursive binary reducer of height `i` using `2^i` cells:
//!   `⌈d/2^i⌉ + i + 1`.
//!
//! [`Duration`] canonicalizes all three to a validated step function whose
//! breakpoints are exactly the *useful* resource levels (strictly
//! decreasing times), while retaining the family tag and raw formulas the
//! single-criteria approximation algorithms rely on.
//!
//! The module [`expand`] performs the *physical* reducer expansion of
//! Figures 2 and 5: rewriting a DAG node into leaves + merge chain so that
//! the longest path through the expansion reproduces Eq. 3 exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expand;
mod function;

pub use function::{
    raw_kway_time, raw_recursive_binary_time, recursive_binary_max_height, Duration,
    DurationKind, StepError, Tuple,
};

/// Time in abstract ticks (one tick = one update application, §1).
pub type Time = u64;

/// Resource units (units of extra space, §1).
pub type Resource = u64;

/// Sentinel for the paper's `∞` durations (Appendix A gadgets).
///
/// Chosen far below `u64::MAX` so that saturating sums of many `INF`
/// values stay `≥ INF` and are still recognized by [`is_infinite`].
pub const INF: Time = u64::MAX / 4;

/// Whether a time value represents the `∞` sentinel (or a sum involving it).
#[inline]
pub fn is_infinite(t: Time) -> bool {
    t >= INF
}

/// `⌈a / b⌉` for `b > 0`.
#[inline]
pub fn ceil_div(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}
