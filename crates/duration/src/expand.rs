//! Physical reducer expansion (Figures 2 and 5).
//!
//! A reducer is not only a duration function: it is a concrete rewrite of
//! the race DAG. Putting a recursive binary reducer of height `h` on top
//! of node `v` replaces `v`'s `n` incoming updates by `2^h` leaf cells
//! (each receiving `≈ n/2^h` updates), a binary merge structure, and a
//! final update of `v`. This module performs that rewrite so the paper's
//! analytic formulas (Eq. 3) can be validated against the *longest path
//! of an actual DAG* — exactly the Figure 4 → Figure 5 step where
//! makespan 11 drops to 10.
//!
//! Two constructions are provided:
//!
//! * [`ReducerVariant::Sibling`] — the space-optimal version from §1
//!   ("if a node completes before its sibling it can become its own
//!   parent"): `2^h` cells, each pairwise merge costs one update, total
//!   path contribution `⌈n/2^h⌉ + h + 1` — matching Eq. 3 exactly.
//! * [`ReducerVariant::Tree`] — the naive full binary tree of Figure 2
//!   (left): `2^(h+1) − 2` cells, every internal node receives two
//!   updates, path contribution `⌈n/2^h⌉ + 2h`. Kept as an ablation
//!   baseline for the design choice the paper makes in §1.

use crate::{ceil_div, Resource, Time};
use rtt_dag::{Dag, NodeId};

/// Which physical reducer construction to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReducerVariant {
    /// Space-optimal sibling-merge reducer: `2^h` cells, `⌈n/2^h⌉ + h + 1`.
    Sibling,
    /// Full binary tree reducer: `2^(h+1) − 2` cells, `⌈n/2^h⌉ + 2h`.
    Tree,
}

/// Role of a node in an expanded DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A node of the original DAG.
    Original,
    /// A reducer leaf cell absorbing a share of the original updates.
    Leaf,
    /// A merge step (Sibling: one update; Tree: two updates).
    Merge,
}

/// Node payload of an expanded DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpNode {
    /// The original node this one belongs to (leaves/merges point to the
    /// node whose reducer created them).
    pub origin: NodeId,
    /// Structural role.
    pub role: Role,
    /// Explicit work (number of updates this cell applies).
    pub work: Time,
}

/// Result of [`expand_reducers`].
#[derive(Debug, Clone)]
pub struct Expanded {
    /// The rewritten DAG with explicit per-node work.
    pub dag: Dag<ExpNode, ()>,
    /// Extra space consumed (Sibling: `Σ 2^h`; Tree: `Σ 2^(h+1) − 2`).
    pub extra_space: Resource,
}

impl Expanded {
    /// Makespan of the expanded DAG (longest path over node works).
    pub fn makespan(&self) -> Time {
        rtt_dag::longest_path_nodes(&self.dag, |v| self.dag.node(v).work)
            .expect("expansion preserves acyclicity")
            .weight
    }
}

/// Expands reducers on a DAG whose node works equal their in-degrees
/// (the race-DAG convention of §1: `w_x = d_in(x)`).
///
/// `heights[v] = h` puts a height-`h` reducer on `v` (`0` = none).
/// Original node ids are preserved (node `i` of the input is node `i` of
/// the output); reducer cells are appended after them.
///
/// # Panics
/// If `heights.len() != g.node_count()`, or a reducer is requested on a
/// node with in-degree 0 (there is nothing to reduce).
pub fn expand_reducers<N, E>(
    g: &Dag<N, E>,
    heights: &[u32],
    variant: ReducerVariant,
) -> Expanded {
    assert_eq!(
        heights.len(),
        g.node_count(),
        "one height per node required"
    );
    let mut out: Dag<ExpNode, ()> = Dag::with_capacity(g.node_count(), g.edge_count());
    // 1. clone original nodes, with work fixed up later
    for v in g.node_ids() {
        let h = heights[v.index()];
        let work = if h == 0 {
            g.in_degree(v) as Time
        } else {
            assert!(
                g.in_degree(v) > 0,
                "cannot put a reducer on {v}: in-degree 0"
            );
            // v receives the final merged value: one update (Sibling) or
            // the two child updates (Tree).
            match variant {
                ReducerVariant::Sibling => 1,
                ReducerVariant::Tree => 2,
            }
        };
        out.add_node(ExpNode {
            origin: v,
            role: Role::Original,
            work,
        });
    }

    let mut extra_space: Resource = 0;
    // 2. per expanded node: build cells and record leaf targets
    // leaf_targets[v] = round-robin list of entry nodes for v's in-edges
    let mut leaf_targets: Vec<Option<Vec<NodeId>>> = vec![None; g.node_count()];
    for v in g.node_ids() {
        let h = heights[v.index()];
        if h == 0 {
            continue;
        }
        let n_leaves = 1usize << h;
        let n_updates = g.in_degree(v);
        let mut counts = vec![0u64; n_leaves];
        for i in 0..n_updates {
            counts[i % n_leaves] += 1;
        }
        let leaves: Vec<NodeId> = counts
            .iter()
            .map(|&c| {
                out.add_node(ExpNode {
                    origin: v,
                    role: Role::Leaf,
                    work: c,
                })
            })
            .collect();
        // binary merge structure
        let merge_work = match variant {
            ReducerVariant::Sibling => 1,
            ReducerVariant::Tree => 2,
        };
        // The shared variable at v is the *root* of the merge structure
        // (Figure 2), so it absorbs the last merge itself: Sibling merges
        // down to one survivor that applies a single update to v; Tree
        // merges down to two children that each update v.
        let stop = match variant {
            ReducerVariant::Sibling => 1,
            ReducerVariant::Tree => 2,
        };
        let mut level = leaves.clone();
        while level.len() > stop {
            let mut next = Vec::with_capacity(level.len() / 2);
            for pair in level.chunks(2) {
                let m = out.add_node(ExpNode {
                    origin: v,
                    role: Role::Merge,
                    work: merge_work,
                });
                for &c in pair {
                    out.add_edge(c, m, ()).expect("fresh nodes");
                }
                next.push(m);
            }
            level = next;
        }
        for &c in &level {
            out.add_edge(c, v, ()).expect("fresh nodes");
        }
        extra_space += match variant {
            ReducerVariant::Sibling => 1u64 << h,
            ReducerVariant::Tree => (1u64 << (h + 1)) - 2,
        };
        leaf_targets[v.index()] = Some(leaves);
    }

    // 3. copy original edges, redirecting into leaves where expanded
    let mut next_leaf = vec![0usize; g.node_count()];
    for e in g.edge_refs() {
        let dst = match &leaf_targets[e.dst.index()] {
            None => e.dst,
            Some(leaves) => {
                let i = next_leaf[e.dst.index()];
                next_leaf[e.dst.index()] = i + 1;
                leaves[i % leaves.len()]
            }
        };
        out.add_edge(e.src, dst, ()).expect("ids preserved");
    }

    Expanded {
        dag: out,
        extra_space,
    }
}

/// Analytic completion time of a reducer applying `n` updates:
/// Sibling = `⌈n/2^h⌉ + h + 1` (Eq. 3), Tree = `⌈n/2^h⌉ + 2h`.
/// Height 0 = plain serialization = `n`.
pub fn reducer_time(n: Time, height: u32, variant: ReducerVariant) -> Time {
    if height == 0 {
        return n;
    }
    let leaves = 1u64 << height;
    match variant {
        ReducerVariant::Sibling => ceil_div(n, leaves) + Time::from(height) + 1,
        ReducerVariant::Tree => ceil_div(n, leaves) + 2 * Time::from(height),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 4 DAG (makespan 11, node work = in-degree).
    fn figure4() -> (Dag<&'static str, ()>, [NodeId; 6]) {
        let mut g = Dag::new();
        let s = g.add_node("s");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        let t = g.add_node("t");
        g.add_edge(s, a, ()).unwrap();
        g.add_edge(s, b, ()).unwrap();
        g.add_edge(a, b, ()).unwrap();
        g.add_parallel_edges(a, c, (), 3).unwrap();
        g.add_parallel_edges(b, c, (), 3).unwrap();
        g.add_edge(c, d, ()).unwrap();
        g.add_edge(d, t, ()).unwrap();
        (g, [s, a, b, c, d, t])
    }

    #[test]
    fn no_heights_is_identity_makespan() {
        let (g, _) = figure4();
        let exp = expand_reducers(&g, &[0; 6], ReducerVariant::Sibling);
        assert_eq!(exp.makespan(), 11);
        assert_eq!(exp.extra_space, 0);
        assert_eq!(exp.dag.node_count(), 6);
        // s→a, s→b, a→b, a→c ×3, b→c ×3, c→d, d→t
        assert_eq!(exp.dag.edge_count(), 11);
    }

    #[test]
    fn figure5_reducer_on_c_drops_makespan_to_10() {
        let (g, [_, _, _, c, _, _]) = figure4();
        let mut heights = [0u32; 6];
        heights[c.index()] = 1;
        let exp = expand_reducers(&g, &heights, ReducerVariant::Sibling);
        assert_eq!(exp.extra_space, 2, "height-1 reducer uses 2 units");
        assert_eq!(exp.makespan(), 10, "Figure 5: makespan drops 11 -> 10");
    }

    #[test]
    fn sibling_matches_eq3_for_all_heights() {
        // A star: one node receiving n updates from n sources, then a sink.
        for n in [8u64, 100, 1000] {
            for h in 0..=6u32 {
                let mut g: Dag<(), ()> = Dag::new();
                let hub = g.add_node(());
                let t = g.add_node(());
                g.add_edge(hub, t, ()).unwrap();
                let mut srcs = Vec::new();
                for _ in 0..n {
                    let s = g.add_node(());
                    g.add_edge(s, hub, ()).unwrap();
                    srcs.push(s);
                }
                let mut heights = vec![0u32; g.node_count()];
                heights[hub.index()] = h;
                let exp = expand_reducers(&g, &heights, ReducerVariant::Sibling);
                // +1 for the sink node's own single update
                let expected = reducer_time(n, h, ReducerVariant::Sibling) + 1;
                assert_eq!(
                    exp.makespan(),
                    expected,
                    "n={n} h={h}: expansion vs Eq.3"
                );
                // Eq. 3 caps the height at k = ⌊log₂ n − log₂ log₂ e⌋;
                // taller physical reducers are legal but only slower.
                if h <= crate::recursive_binary_max_height(n) {
                    assert_eq!(
                        reducer_time(n, h, ReducerVariant::Sibling),
                        crate::raw_recursive_binary_time(n, h).min(n),
                        "n={n} h={h}: reducer_time vs Eq. 3 below the height cap"
                    );
                }
            }
        }
    }

    #[test]
    fn tree_variant_costs_more_time_and_space() {
        let n = 1024u64;
        let h = 4u32;
        assert_eq!(reducer_time(n, h, ReducerVariant::Sibling), 64 + 5);
        assert_eq!(reducer_time(n, h, ReducerVariant::Tree), 64 + 8);
        let mut g: Dag<(), ()> = Dag::new();
        let hub = g.add_node(());
        for _ in 0..n {
            let s = g.add_node(());
            g.add_edge(s, hub, ()).unwrap();
        }
        let mut heights = vec![0u32; g.node_count()];
        heights[hub.index()] = h;
        let sib = expand_reducers(&g, &heights, ReducerVariant::Sibling);
        let tree = expand_reducers(&g, &heights, ReducerVariant::Tree);
        assert_eq!(sib.extra_space, 16);
        assert_eq!(tree.extra_space, 30);
        assert_eq!(sib.makespan(), 64 + 5);
        assert_eq!(tree.makespan(), 64 + 8);
    }

    #[test]
    fn uneven_distribution_max_leaf_load() {
        // 5 updates over 4 leaves: loads 2,1,1,1 -> ⌈5/4⌉ = 2.
        let mut g: Dag<(), ()> = Dag::new();
        let hub = g.add_node(());
        for _ in 0..5 {
            let s = g.add_node(());
            g.add_edge(s, hub, ()).unwrap();
        }
        let mut heights = vec![0u32; g.node_count()];
        heights[hub.index()] = 2;
        let exp = expand_reducers(&g, &heights, ReducerVariant::Sibling);
        let leaf_works: Vec<u64> = exp
            .dag
            .node_ids()
            .filter(|&v| exp.dag.node(v).role == Role::Leaf)
            .map(|v| exp.dag.node(v).work)
            .collect();
        assert_eq!(leaf_works.iter().sum::<u64>(), 5);
        assert_eq!(*leaf_works.iter().max().unwrap(), 2);
        assert_eq!(exp.makespan(), 2 + 2 + 1); // ⌈5/4⌉ + h + 1
    }

    #[test]
    #[should_panic(expected = "in-degree 0")]
    fn reducer_on_source_rejected() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        expand_reducers(&g, &[1, 0], ReducerVariant::Sibling);
    }

    #[test]
    fn expansion_preserves_out_side() {
        let (g, [_, _, _, c, d, _]) = figure4();
        let mut heights = [0u32; 6];
        heights[c.index()] = 2;
        let exp = expand_reducers(&g, &heights, ReducerVariant::Sibling);
        // c still feeds d; d's work unchanged.
        assert!(exp.dag.successors(c).any(|w| w == d));
        assert_eq!(exp.dag.node(d).work, 1);
    }
}
