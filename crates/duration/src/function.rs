//! The three duration-function families and their canonical step form.

use crate::{ceil_div, Resource, Time};
use std::fmt;

/// One resource-time tuple `⟨r, t(r)⟩` (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tuple {
    /// Resource level.
    pub resource: Resource,
    /// Duration when given exactly (or at least) this many units.
    pub time: Time,
}

impl Tuple {
    /// Convenience constructor.
    pub fn new(resource: Resource, time: Time) -> Self {
        Tuple { resource, time }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if crate::is_infinite(self.time) {
            write!(f, "<{},inf>", self.resource)
        } else {
            write!(f, "<{},{}>", self.resource, self.time)
        }
    }
}

/// Violations of the Eq. 1 step-function requirements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepError {
    /// The tuple list is empty.
    Empty,
    /// The first tuple must have resource level 0 (`r_{v,1} = 0`).
    FirstNotZero,
    /// Resource levels must be strictly increasing.
    ResourcesNotIncreasing(usize),
    /// Times must be non-increasing.
    TimesIncreasing(usize),
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::Empty => write!(f, "a step function needs at least one tuple"),
            StepError::FirstNotZero => write!(f, "the first tuple must have resource 0"),
            StepError::ResourcesNotIncreasing(i) => {
                write!(f, "resource levels not strictly increasing at tuple {i}")
            }
            StepError::TimesIncreasing(i) => write!(f, "duration increases at tuple {i}"),
        }
    }
}

impl std::error::Error for StepError {}

/// Which family a [`Duration`] belongs to. The single-criteria algorithms
/// of §3.2–3.3 are family-specific, so the tag is retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DurationKind {
    /// General non-increasing step function (Eq. 1).
    Step,
    /// k-way splitting with base duration `d = t_v(0)` (Eq. 2).
    KWay {
        /// Base (zero-resource) duration, i.e. the in-degree `d_in(v)`.
        base: Time,
    },
    /// Recursive binary splitting with base duration `d = t_v(0)` (Eq. 3).
    RecursiveBinary {
        /// Base (zero-resource) duration.
        base: Time,
    },
}

/// A non-increasing duration function `t_v(r)` in canonical step form.
///
/// The canonical breakpoints start at `⟨0, t(0)⟩` and contain exactly the
/// resource levels at which the duration *strictly* drops; therefore
/// `time(r)` is non-increasing by construction for every family,
/// including the slightly bumpy integer versions of Eq. 2/3 (see
/// [`raw_kway_time`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Duration {
    kind: DurationKind,
    /// Canonical breakpoints: `resource` strictly increasing starting at
    /// 0, `time` strictly decreasing.
    tuples: Vec<Tuple>,
}

impl Duration {
    /// General step function from raw tuples (validated per Eq. 1, then
    /// canonicalized by dropping non-improving tuples).
    pub fn step(tuples: Vec<Tuple>) -> Result<Self, StepError> {
        if tuples.is_empty() {
            return Err(StepError::Empty);
        }
        if tuples[0].resource != 0 {
            return Err(StepError::FirstNotZero);
        }
        for i in 1..tuples.len() {
            if tuples[i].resource <= tuples[i - 1].resource {
                return Err(StepError::ResourcesNotIncreasing(i));
            }
            if tuples[i].time > tuples[i - 1].time {
                return Err(StepError::TimesIncreasing(i));
            }
        }
        let mut canon = vec![tuples[0]];
        for t in &tuples[1..] {
            if t.time < canon.last().unwrap().time {
                canon.push(*t);
            }
        }
        Ok(Duration {
            kind: DurationKind::Step,
            tuples: canon,
        })
    }

    /// Constant duration (resources never help).
    pub fn constant(t: Time) -> Self {
        Duration {
            kind: DurationKind::Step,
            tuples: vec![Tuple::new(0, t)],
        }
    }

    /// Zero-duration activity (used for dummy arcs in transformations).
    pub fn zero() -> Self {
        Self::constant(0)
    }

    /// The two-tuple function `{⟨0, t0⟩, ⟨r, t1⟩}` (the shape every arc of
    /// `D''` has after the §3.1 transformation; hardness gadgets use it
    /// with `t1 = 0`).
    pub fn two_point(t0: Time, r: Resource, t1: Time) -> Self {
        assert!(r > 0, "second tuple needs positive resource");
        assert!(t1 <= t0, "duration must be non-increasing");
        Duration::step(vec![Tuple::new(0, t0), Tuple::new(r, t1)]).expect("valid by construction")
    }

    /// k-way splitting duration for a job with base duration `d` (Eq. 2).
    ///
    /// Breakpoints at every useful split arity `k ∈ 2..=⌊√d⌋`.
    pub fn kway(d: Time) -> Self {
        let mut tuples = vec![Tuple::new(0, d)];
        let mut last = d;
        let kmax = isqrt(d);
        for k in 2..=kmax {
            let t = raw_kway_time(d, k);
            if t < last {
                tuples.push(Tuple::new(k, t));
                last = t;
            }
        }
        Duration {
            kind: DurationKind::KWay { base: d },
            tuples,
        }
    }

    /// Recursive binary splitting duration for a job with base duration
    /// `d` (Eq. 3). Breakpoints at `r = 2^i` for heights
    /// `1 ≤ i ≤ k = ⌊log₂ d − log₂ log₂ e⌋` that strictly improve.
    pub fn recursive_binary(d: Time) -> Self {
        let mut tuples = vec![Tuple::new(0, d)];
        let mut last = d;
        for i in 1..=recursive_binary_max_height(d) {
            let t = raw_recursive_binary_time(d, i);
            if t < last {
                tuples.push(Tuple::new(1u64 << i, t));
                last = t;
            }
        }
        Duration {
            kind: DurationKind::RecursiveBinary { base: d },
            tuples,
        }
    }

    /// The family tag.
    #[inline]
    pub fn kind(&self) -> DurationKind {
        self.kind
    }

    /// Duration when `r` units of resource are available:
    /// the time of the largest breakpoint `≤ r`.
    pub fn time(&self, r: Resource) -> Time {
        match self.tuples.binary_search_by(|t| t.resource.cmp(&r)) {
            Ok(i) => self.tuples[i].time,
            Err(0) => unreachable!("first tuple has resource 0"),
            Err(i) => self.tuples[i - 1].time,
        }
    }

    /// `t_v(0)`, the no-resource duration.
    #[inline]
    pub fn base_time(&self) -> Time {
        self.tuples[0].time
    }

    /// The smallest duration achievable with unlimited resources.
    #[inline]
    pub fn min_time(&self) -> Time {
        self.tuples.last().unwrap().time
    }

    /// The largest useful resource level (more units never help).
    #[inline]
    pub fn max_useful_resource(&self) -> Resource {
        self.tuples.last().unwrap().resource
    }

    /// Canonical breakpoints (strictly increasing `r`, strictly
    /// decreasing `t`, first `r = 0`).
    #[inline]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of canonical tuples (`l_v` of Eq. 1 after canonicalization).
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Always false (there is at least the `r = 0` tuple).
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The resource levels worth enumerating in exact search: one per
    /// canonical tuple.
    pub fn useful_levels(&self) -> impl ExactSizeIterator<Item = Resource> + '_ {
        self.tuples.iter().map(|t| t.resource)
    }

    /// Smallest resource level achieving duration `≤ target`, if any.
    pub fn resource_for_time(&self, target: Time) -> Option<Resource> {
        self.tuples
            .iter()
            .find(|t| t.time <= target)
            .map(|t| t.resource)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.kind {
            DurationKind::Step => "step",
            DurationKind::KWay { .. } => "kway",
            DurationKind::RecursiveBinary { .. } => "recbin",
        };
        write!(f, "{tag}[")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

/// Eq. 2 verbatim: duration of a `k`-way split reducer on a job of base
/// duration `d` (`t_v(0) = d`):
///
/// ```text
/// t_v(k) = d                    if k ∈ {0, 1}
///        = ⌈d/k⌉ + k            if 2 ≤ k ≤ ⌊√d⌋
///        = t_v(⌊√d⌋)            if k > ⌊√d⌋
/// ```
pub fn raw_kway_time(d: Time, k: Resource) -> Time {
    if crate::is_infinite(d) {
        return d;
    }
    let kmax = isqrt(d);
    if k <= 1 || kmax < 2 {
        d
    } else {
        let k = k.min(kmax);
        ceil_div(d, k) + k
    }
}

/// Eq. 3 verbatim: duration of a recursive binary split reducer of height
/// `i` (using `2^i` cells) on a job of base duration `d`:
/// `⌈d/2^i⌉ + i + 1`, capped at the optimal height
/// [`recursive_binary_max_height`]. Height 0 means no reducer.
pub fn raw_recursive_binary_time(d: Time, height: u32) -> Time {
    if crate::is_infinite(d) {
        return d;
    }
    let k = recursive_binary_max_height(d);
    if height == 0 || k == 0 {
        return d;
    }
    let i = height.min(k);
    ceil_div(d, 1u64 << i) + u64::from(i) + 1
}

/// `k = ⌊log₂ d − log₂ log₂ e⌋`, the height minimizing Eq. 3
/// (`log₂ log₂ e ≈ 0.5288`); 0 when `d < 2`.
pub fn recursive_binary_max_height(d: Time) -> u32 {
    if d < 2 || crate::is_infinite(d) {
        return 0;
    }
    let v = (d as f64).log2() - std::f64::consts::E.log2().log2();
    if v < 0.0 {
        0
    } else {
        v.floor() as u32
    }
}

/// Integer square root (floor).
fn isqrt(d: u64) -> u64 {
    if d == 0 {
        return 0;
    }
    let mut x = (d as f64).sqrt() as u64;
    // Correct potential float error in either direction; checked
    // arithmetic keeps the loop honest at the top of the u64 range
    // (saturation would make x² == d == u64::MAX look like a fit).
    while x.checked_mul(x).is_none_or(|sq| sq > d) {
        x -= 1;
    }
    while (x + 1).checked_mul(x + 1).is_some_and(|sq| sq <= d) {
        x += 1;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::INF;

    #[test]
    fn step_validation() {
        assert_eq!(Duration::step(vec![]), Err(StepError::Empty));
        assert_eq!(
            Duration::step(vec![Tuple::new(1, 5)]),
            Err(StepError::FirstNotZero)
        );
        assert_eq!(
            Duration::step(vec![Tuple::new(0, 5), Tuple::new(0, 4)]),
            Err(StepError::ResourcesNotIncreasing(1))
        );
        assert_eq!(
            Duration::step(vec![Tuple::new(0, 5), Tuple::new(2, 6)]),
            Err(StepError::TimesIncreasing(1))
        );
    }

    #[test]
    fn step_canonicalization_drops_plateaus() {
        let d = Duration::step(vec![
            Tuple::new(0, 10),
            Tuple::new(1, 10), // useless
            Tuple::new(2, 7),
            Tuple::new(3, 7), // useless
            Tuple::new(5, 1),
        ])
        .unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.time(0), 10);
        assert_eq!(d.time(1), 10);
        assert_eq!(d.time(2), 7);
        assert_eq!(d.time(4), 7);
        assert_eq!(d.time(5), 1);
        assert_eq!(d.time(1_000_000), 1);
        assert_eq!(d.max_useful_resource(), 5);
    }

    #[test]
    fn step_evaluation_between_breakpoints() {
        let d = Duration::two_point(9, 3, 0);
        assert_eq!(d.time(0), 9);
        assert_eq!(d.time(2), 9);
        assert_eq!(d.time(3), 0);
        assert_eq!(d.min_time(), 0);
        assert_eq!(d.resource_for_time(9), Some(0));
        assert_eq!(d.resource_for_time(4), Some(3));
        let c = Duration::constant(4);
        assert_eq!(c.resource_for_time(3), None);
    }

    #[test]
    fn kway_matches_eq2_at_breakpoints() {
        let d = 100;
        let f = Duration::kway(d);
        assert_eq!(f.base_time(), 100);
        // k = 10 = ⌊√100⌋: t = ⌈100/10⌉ + 10 = 20
        assert_eq!(raw_kway_time(d, 10), 20);
        assert_eq!(f.time(10), 20);
        assert_eq!(f.min_time(), 20);
        // beyond √d resources don't help
        assert_eq!(f.time(1000), 20);
        assert_eq!(raw_kway_time(d, 1000), 20);
        // k = 2: ⌈100/2⌉ + 2 = 52
        assert_eq!(f.time(2), 52);
        // k = 0, 1: base
        assert_eq!(f.time(0), 100);
        assert_eq!(f.time(1), 100);
    }

    #[test]
    fn kway_canonical_dominates_raw() {
        // The canonical step function is the monotone envelope of Eq. 2:
        // time(k) <= raw(k) for all k, equality wherever raw is monotone.
        for d in [0u64, 1, 2, 5, 10, 17, 64, 100, 1000, 12345] {
            let f = Duration::kway(d);
            let mut prev = u64::MAX;
            for t in f.tuples() {
                assert!(t.time < prev);
                prev = t.time;
            }
            for k in 0..=(isqrt(d) + 3) {
                assert!(
                    f.time(k) <= raw_kway_time(d, k),
                    "d={d} k={k}: {} > {}",
                    f.time(k),
                    raw_kway_time(d, k)
                );
            }
        }
    }

    #[test]
    fn kway_small_bases_constant() {
        for d in 0..4u64 {
            // √d < 2 so no split is possible
            let f = Duration::kway(d);
            assert_eq!(f.len(), 1);
            assert_eq!(f.time(100), d);
        }
    }

    #[test]
    fn recursive_binary_matches_eq3() {
        // §1: reducer of height h applies n updates in ⌈n/2^h⌉ + h + 1.
        let d = 1024;
        let f = Duration::recursive_binary(d);
        assert_eq!(f.time(0), 1024);
        assert_eq!(f.time(1), 1024);
        // height 1 = 2 cells: ⌈1024/2⌉ + 2 = 514
        assert_eq!(f.time(2), 514);
        assert_eq!(raw_recursive_binary_time(d, 1), 514);
        // height 3 = 8 cells: 128 + 4 = 132
        assert_eq!(f.time(8), 132);
        // r between powers of two uses the lower height
        assert_eq!(f.time(9), 132);
        assert_eq!(f.time(15), 132);
        assert_eq!(f.time(16), raw_recursive_binary_time(d, 4));
    }

    #[test]
    fn recursive_binary_k_formula() {
        // k = ⌊log2 d − log2 log2 e⌋
        assert_eq!(recursive_binary_max_height(1), 0);
        assert_eq!(recursive_binary_max_height(2), 0); // 1 − 0.53 < 1
        assert_eq!(recursive_binary_max_height(4), 1);
        assert_eq!(recursive_binary_max_height(1024), 9); // 10 − 0.53
        // The cap is where t stops decreasing: t_k <= t_{k+1} in raw form.
        for d in [8u64, 100, 1024, 4096, 99999] {
            let k = recursive_binary_max_height(d);
            if k >= 1 {
                let tk = ceil_div(d, 1 << k) + u64::from(k) + 1;
                let tk1 = ceil_div(d, 1 << (k + 1)) + u64::from(k + 1) + 1;
                assert!(tk <= tk1, "d={d}: t_k={tk} > t_(k+1)={tk1}");
            }
        }
    }

    #[test]
    fn recursive_binary_height_capped() {
        let d = 1024;
        let k = recursive_binary_max_height(d);
        let best = raw_recursive_binary_time(d, k);
        assert_eq!(raw_recursive_binary_time(d, k + 5), best);
        let f = Duration::recursive_binary(d);
        assert_eq!(f.min_time(), best);
        assert_eq!(f.time(u64::MAX / 2), best);
    }

    #[test]
    fn infinite_base_stays_infinite() {
        assert!(crate::is_infinite(raw_kway_time(INF, 5)));
        assert!(crate::is_infinite(raw_recursive_binary_time(INF, 5)));
        let f = Duration::step(vec![Tuple::new(0, INF), Tuple::new(1, 3)]).unwrap();
        assert!(crate::is_infinite(f.time(0)));
        assert_eq!(f.time(1), 3);
    }

    #[test]
    fn isqrt_exact() {
        for d in 0..2000u64 {
            let s = isqrt(d);
            assert!(s * s <= d);
            assert!((s + 1) * (s + 1) > d);
        }
        assert_eq!(isqrt(u64::MAX), (1u64 << 32) - 1);
    }

    #[test]
    fn display_formats() {
        let f = Duration::two_point(5, 2, 0);
        assert_eq!(f.to_string(), "step[<0,5> <2,0>]");
        let inf = Duration::constant(INF);
        assert_eq!(inf.to_string(), "step[<0,inf>]");
    }

    #[test]
    fn figure5_supernode_value() {
        // Node c of Figure 4 has in-degree 6; a height-1 reducer (2 units)
        // gives ⌈6/2⌉ + 1 + 1 = 5 (used in the Figure 5 makespan-10 path).
        assert_eq!(raw_recursive_binary_time(6, 1), 5);
        assert_eq!(Duration::recursive_binary(6).time(2), 5);
    }
}
