//! # rtt-race — determinacy races, detection, and race-DAG extraction
//!
//! §1 of the paper defines a *determinacy race*: two logically parallel
//! instructions access the same memory location and at least one writes.
//! This crate supplies the program-analysis substrate the paper's model
//! rests on:
//!
//! * [`program`] — a fork-join (series-parallel) program IR with
//!   explicit memory accesses, exactly the class of computations the
//!   paper's DAG model captures;
//! * [`detect`] — a determinacy-race detector using English-Hebrew
//!   labelling (two linear orders certify logical parallelism in
//!   series-parallel programs);
//! * [`interleave`] — an exhaustive interleaving explorer reproducing
//!   Figure 1: the unsynchronized two-thread increment can print 1
//!   *or* 2;
//! * [`extract`] — builds the race DAG `D(P)` of §1 from a program:
//!   nodes are memory locations, one arc per update from the location
//!   whose value feeds the update, so `w_x = d_in(x)`;
//! * [`footprint`] — per-strand access summaries (sorted,
//!   interval-compressed location runs with read/write masks): the
//!   compact program view the `rtt_analyze` static race analyzer
//!   intersects under the EH labels without materializing accesses;
//! * [`mm`] — the Parallel-MM programs of Figure 3 (safe `k`-serial and
//!   racy `k`-parallel variants);
//! * [`gen`] — seeded random fork-join program generators, so race
//!   workloads can be produced at any scale (the `rtt gen
//!   --kind race-forkjoin` front end).
//!
//! Together with `rtt-core` this closes the loop the paper draws:
//! *detect races → capture them as a DAG → place reducers optimally.*

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detect;
pub mod extract;
pub mod footprint;
pub mod gen;
pub mod interleave;
pub mod mm;
pub mod program;

pub use detect::{detect_races, has_race, Race};
pub use extract::extract_race_dag;
pub use footprint::{footprints, FootprintRun, StrandFootprint};
pub use program::{Loc, Op, Prog};
