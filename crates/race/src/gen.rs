//! Seeded random fork-join programs — race-heavy workload generators.
//!
//! The paper's native input is a *program* whose logically parallel
//! updates race on shared cells (§1), not a hand-built DAG. This module
//! generates such programs: staged fork-join dataflow where every stage
//! forks one strand per update, and several parallel updates target the
//! same cell — determinacy races by construction, with seeded,
//! reproducible contention. Feed the result to
//! [`crate::extract::extract_race_dag`] to obtain `D(P)`.

use crate::program::{Loc, Prog};
use rand::Rng;

/// Generates a random fork-join program of `stages` parallel stages.
///
/// Locations `0..width` are pure inputs (never updated). Each stage
/// defines `width` fresh cells; every cell receives between 1 and
/// `max_contention` updates, each reading a uniformly random location
/// defined in an *earlier* stage — so the update dataflow is acyclic by
/// construction and the extracted race DAG has in-degrees (= works) up
/// to `max_contention`. All updates of a stage run in one `Par` block:
/// any cell with ≥ 2 updates races.
///
/// # Panics
/// If `stages`, `width`, or `max_contention` is zero.
pub fn random_fork_join<R: Rng>(
    rng: &mut R,
    stages: usize,
    width: usize,
    max_contention: usize,
) -> Prog {
    assert!(stages > 0, "need at least one stage");
    assert!(width > 0, "need at least one cell per stage");
    assert!(max_contention > 0, "cells need at least one update");
    // all locations defined so far (inputs first)
    let mut defined: Vec<Loc> = (0..width as Loc).collect();
    let mut blocks: Vec<Prog> = Vec::with_capacity(stages);
    let mut next_loc = width as Loc;
    for _ in 0..stages {
        let mut strands: Vec<Prog> = Vec::new();
        let fresh: Vec<Loc> = (0..width).map(|i| next_loc + i as Loc).collect();
        for &cell in &fresh {
            let updates = rng.random_range(1..=max_contention);
            for _ in 0..updates {
                let from = defined[rng.random_range(0..defined.len())];
                strands.push(Prog::update(cell, Some(from), vec![]));
            }
        }
        next_loc += width as Loc;
        defined.extend(fresh);
        blocks.push(Prog::Par(strands));
    }
    Prog::Seq(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_races;
    use crate::extract::extract_race_dag;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_programs_are_extractable_and_seeded() {
        for seed in [0u64, 7, 42, 1234] {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = random_fork_join(&mut rng, 3, 4, 6);
            let rd = extract_race_dag(&p).expect("staged dataflow is acyclic");
            assert!(rd.dag.edge_count() >= 12, "≥ 1 update per cell per stage");
            // determinism: the same seed reproduces the same DAG
            let mut rng2 = StdRng::seed_from_u64(seed);
            let p2 = random_fork_join(&mut rng2, 3, 4, 6);
            let rd2 = extract_race_dag(&p2).unwrap();
            assert_eq!(rd.dag.node_count(), rd2.dag.node_count());
            assert_eq!(rd.dag.edge_count(), rd2.dag.edge_count());
        }
    }

    #[test]
    fn contention_produces_races() {
        // with contention ≫ 1 some cell almost surely receives ≥ 2
        // parallel updates; check a specific seed so the test is stable
        let mut rng = StdRng::seed_from_u64(3);
        let p = random_fork_join(&mut rng, 2, 3, 8);
        assert!(!detect_races(&p).is_empty(), "contended cells must race");
    }

    #[test]
    fn in_degrees_bounded_by_contention() {
        let mut rng = StdRng::seed_from_u64(11);
        let max_contention = 5;
        let p = random_fork_join(&mut rng, 4, 3, max_contention);
        let rd = extract_race_dag(&p).unwrap();
        for v in rd.dag.node_ids() {
            assert!(rd.dag.in_degree(v) <= max_contention);
        }
    }
}
