//! Per-strand access-footprint summaries: the static analyzer's view
//! of a program.
//!
//! [`detect_races`](crate::detect_races) materializes every concrete
//! access per location — exact, but its cost tracks the *operation*
//! count (Parallel-MM at n touches ~n³ updates). A
//! [`StrandFootprint`] instead compresses a strand's accesses into a
//! sorted list of disjoint location *runs*, each tagged with a
//! read/write mask: the summary's size tracks the strand's *distinct
//! location ranges*, which is what `rtt_analyze` intersects under the
//! EH may-happen-in-parallel relation without ever building
//! per-location access lists.
//!
//! [`footprints`] walks the program tree directly (no
//! [`flatten`](crate::program::flatten) op cloning) and pairs the
//! summaries with the [`EhLabels`] parallelism certificate.

use crate::program::{labels, EhLabels, Loc, Op, Prog};

/// Mask bit: the strand reads somewhere in the run.
pub const READ: u8 = 1;
/// Mask bit: the strand writes somewhere in the run.
pub const WRITE: u8 = 2;

/// A maximal run of contiguous locations a strand accesses with one
/// uniform read/write mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FootprintRun {
    /// First location of the run.
    pub lo: Loc,
    /// Last location of the run (inclusive; `lo == hi` for a single
    /// location).
    pub hi: Loc,
    /// Bitwise OR of [`READ`] / [`WRITE`] over the run's accesses.
    pub mask: u8,
}

/// One strand's access summary: sorted, disjoint, mask-uniform runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrandFootprint {
    /// Runs in increasing location order; adjacent runs differ in mask
    /// (equal-mask neighbours are coalesced).
    pub runs: Vec<FootprintRun>,
}

impl StrandFootprint {
    /// Builds the canonical summary from raw `(location, mask)`
    /// accesses: sort, OR masks per location, coalesce contiguous
    /// equal-mask locations into runs.
    pub fn from_accesses(mut accesses: Vec<(Loc, u8)>) -> Self {
        Self::from_scratch(&mut accesses)
    }

    /// [`from_accesses`](Self::from_accesses) on a caller-owned scratch
    /// buffer, so a loop building many footprints ([`footprints`])
    /// reuses one allocation instead of paying two per strand. Leaves
    /// `accesses` in an unspecified state.
    fn from_scratch(accesses: &mut [(Loc, u8)]) -> Self {
        accesses.sort_unstable();
        // collapse duplicate locations in place, OR-ing their masks
        let mut n = 0usize;
        for i in 0..accesses.len() {
            let (loc, mask) = accesses[i];
            if n > 0 && accesses[n - 1].0 == loc {
                accesses[n - 1].1 |= mask;
            } else {
                accesses[n] = (loc, mask);
                n += 1;
            }
        }
        // interval-compress contiguous equal-mask locations
        let mut runs: Vec<FootprintRun> = Vec::with_capacity(n);
        for &(loc, mask) in &accesses[..n] {
            match runs.last_mut() {
                Some(last)
                    if last.mask == mask && last.hi.checked_add(1) == Some(loc) =>
                {
                    last.hi = loc;
                }
                _ => runs.push(FootprintRun { lo: loc, hi: loc, mask }),
            }
        }
        StrandFootprint { runs }
    }

    /// Whether any run carries the [`WRITE`] bit.
    pub fn writes_anywhere(&self) -> bool {
        self.runs.iter().any(|r| r.mask & WRITE != 0)
    }
}

/// Builds every strand's footprint (in strand-id order — the same
/// left-to-right DFS order [`flatten`](crate::program::flatten) uses)
/// plus the EH labels, walking the tree once without cloning ops.
pub fn footprints(prog: &Prog) -> (Vec<StrandFootprint>, EhLabels) {
    let mut out = Vec::with_capacity(prog.strand_count());
    let mut scratch = Vec::new();
    walk(prog, &mut out, &mut scratch);
    (out, labels(prog))
}

fn walk(prog: &Prog, out: &mut Vec<StrandFootprint>, scratch: &mut Vec<(Loc, u8)>) {
    match prog {
        Prog::Strand(ops) => {
            let accesses = scratch;
            accesses.clear();
            for op in ops {
                match op {
                    Op::Read(l) => accesses.push((*l, READ)),
                    Op::Write(l) => accesses.push((*l, WRITE)),
                    Op::Update {
                        target,
                        from,
                        reads,
                    } => {
                        accesses.push((*target, WRITE));
                        if let Some(f) = from {
                            accesses.push((*f, READ));
                        }
                        for r in reads {
                            accesses.push((*r, READ));
                        }
                    }
                }
            }
            out.push(StrandFootprint::from_scratch(accesses));
        }
        Prog::Seq(children) | Prog::Par(children) => {
            for c in children {
                walk(c, out, scratch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accesses_compress_into_runs() {
        // reads 0,1,2 / writes 3,4 / read+write 6
        let fp = StrandFootprint::from_accesses(vec![
            (2, READ),
            (0, READ),
            (1, READ),
            (4, WRITE),
            (3, WRITE),
            (6, READ),
            (6, WRITE),
        ]);
        assert_eq!(
            fp.runs,
            vec![
                FootprintRun { lo: 0, hi: 2, mask: READ },
                FootprintRun { lo: 3, hi: 4, mask: WRITE },
                FootprintRun { lo: 6, hi: 6, mask: READ | WRITE },
            ]
        );
        assert!(fp.writes_anywhere());
    }

    #[test]
    fn mask_change_splits_a_run() {
        let fp = StrandFootprint::from_accesses(vec![(0, READ), (1, WRITE), (2, READ)]);
        assert_eq!(fp.runs.len(), 3);
        assert!(fp.runs.windows(2).all(|w| w[0].hi < w[1].lo));
    }

    #[test]
    fn footprints_follow_strand_id_order() {
        let p = Prog::Seq(vec![
            Prog::Strand(vec![Op::Write(0)]),
            Prog::Par(vec![
                Prog::update(5, Some(0), vec![1]),
                Prog::Strand(vec![Op::Read(5)]),
            ]),
        ]);
        let (fps, labels) = footprints(&p);
        assert_eq!(fps.len(), 3);
        assert_eq!(fps[0].runs, vec![FootprintRun { lo: 0, hi: 0, mask: WRITE }]);
        assert_eq!(
            fps[1].runs,
            vec![
                FootprintRun { lo: 0, hi: 1, mask: READ },
                FootprintRun { lo: 5, hi: 5, mask: WRITE },
            ]
        );
        assert_eq!(fps[2].runs, vec![FootprintRun { lo: 5, hi: 5, mask: READ }]);
        assert!(labels.parallel(1, 2));
        assert!(!labels.parallel(0, 1));
    }

    #[test]
    fn saturating_boundary_is_not_coalesced_past_loc_max() {
        let fp = StrandFootprint::from_accesses(vec![(Loc::MAX, WRITE), (Loc::MAX - 1, WRITE)]);
        assert_eq!(
            fp.runs,
            vec![FootprintRun { lo: Loc::MAX - 1, hi: Loc::MAX, mask: WRITE }]
        );
    }
}
