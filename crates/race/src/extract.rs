//! Extraction of the race DAG `D(P)` from a program (§1, Figure 4).
//!
//! Nodes are the memory locations touched by updates; each update
//! contributes one arc from the location whose value it consumes to its
//! target, so the in-degree of a node is exactly the number of updates
//! applied to it (`w_x = d_in(x)`). Locations never updated (pure
//! inputs) become sources. The paper assumes no cyclic read-write
//! dependencies; extraction fails if the program violates that.

use crate::program::{flatten, Loc, Op, Prog};
use rtt_dag::{is_acyclic, Dag, NodeId};
use std::collections::HashMap;

/// The extracted race DAG.
#[derive(Debug, Clone)]
pub struct RaceDag {
    /// Nodes carry their location id.
    pub dag: Dag<Loc, ()>,
    /// Location → node mapping.
    pub node_of: HashMap<Loc, NodeId>,
}

/// Extraction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// The read-write dependencies are cyclic (out of the paper's model).
    CyclicDependencies,
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::CyclicDependencies => {
                write!(f, "program has cyclic read-write dependencies")
            }
        }
    }
}

impl std::error::Error for ExtractError {}

/// Builds `D(P)` from the updates of `prog`. `Read`/`Write` ops do not
/// create arcs (they are the "O(1) other operations" of §1); every
/// `Update` contributes one arc `from → target` (updates by constants,
/// `from = None`, only raise the target's implicit work through... no:
/// they are *not representable as arcs*, so they are rejected — give
/// constants a dedicated input location instead).
pub fn extract_race_dag(prog: &Prog) -> Result<RaceDag, ExtractError> {
    let f = flatten(prog);
    let mut dag: Dag<Loc, ()> = Dag::new();
    let mut node_of: HashMap<Loc, NodeId> = HashMap::new();
    let node = |dag: &mut Dag<Loc, ()>, node_of: &mut HashMap<Loc, NodeId>, l: Loc| {
        *node_of.entry(l).or_insert_with(|| dag.add_node(l))
    };
    for ops in &f.strands {
        for op in ops {
            if let Op::Update { target, from, .. } = op {
                let from = from.expect(
                    "updates by constants need a dedicated input location \
                     to be representable in the race DAG",
                );
                let u = node(&mut dag, &mut node_of, from);
                let v = node(&mut dag, &mut node_of, *target);
                dag.add_edge(u, v, ())
                    .map_err(|_| ExtractError::CyclicDependencies)?;
            }
        }
    }
    if !is_acyclic(&dag) {
        return Err(ExtractError::CyclicDependencies);
    }
    Ok(RaceDag { dag, node_of })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_of_updates() {
        // 8 parallel updates of location 100 from inputs 0..8 (Figure 2
        // left: "a memory location with eight updates").
        let p = Prog::Par(
            (0..8)
                .map(|i| Prog::update(100, Some(i), vec![]))
                .collect(),
        );
        let rd = extract_race_dag(&p).unwrap();
        let a = rd.node_of[&100];
        assert_eq!(rd.dag.in_degree(a), 8, "w_a = d_in(a) = 8");
        assert_eq!(rd.dag.node_count(), 9);
    }

    #[test]
    fn chain_of_updates() {
        // x0 -> x1 -> x2: sequential dataflow
        let p = Prog::Seq(vec![
            Prog::update(1, Some(0), vec![]),
            Prog::update(2, Some(1), vec![]),
        ]);
        let rd = extract_race_dag(&p).unwrap();
        assert_eq!(rd.dag.node_count(), 3);
        assert_eq!(rd.dag.in_degree(rd.node_of[&2]), 1);
        assert_eq!(rd.dag.out_degree(rd.node_of[&0]), 1);
    }

    #[test]
    fn parallel_edges_for_repeated_updates() {
        // the same producer updates the same target 3 times
        let p = Prog::Seq(
            (0..3)
                .map(|_| Prog::update(9, Some(1), vec![]))
                .collect(),
        );
        let rd = extract_race_dag(&p).unwrap();
        assert_eq!(rd.dag.in_degree(rd.node_of[&9]), 3);
        assert_eq!(rd.dag.edge_count(), 3);
    }

    #[test]
    fn cyclic_dataflow_rejected() {
        let p = Prog::Seq(vec![
            Prog::update(1, Some(0), vec![]),
            Prog::update(0, Some(1), vec![]),
        ]);
        assert!(matches!(
            extract_race_dag(&p),
            Err(ExtractError::CyclicDependencies)
        ));
    }

    #[test]
    fn reads_do_not_create_arcs() {
        let p = Prog::Strand(vec![
            Op::Read(5),
            Op::Update {
                target: 1,
                from: Some(0),
                reads: vec![5],
            },
        ]);
        let rd = extract_race_dag(&p).unwrap();
        // location 5 is only read: not even a node (never in an update
        // arc) — the race DAG tracks update dataflow only.
        assert!(!rd.node_of.contains_key(&5));
        assert_eq!(rd.dag.edge_count(), 1);
    }
}
