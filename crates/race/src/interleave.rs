//! Exhaustive interleaving exploration for the Figure 1 race.
//!
//! Figure 1 executes `r ← x; r ← r + 1; x ← r` on two parallel threads.
//! The printed value depends on the schedule: sequential execution gives
//! 2, the racy overlap gives 1. This module enumerates *all*
//! interleavings of `t` threads each performing `k` such load-increment-
//! store sequences and returns the set of possible final values —
//! turning the paper's "depends on how the two threads are scheduled"
//! into an exhaustively verified statement.

use std::collections::BTreeSet;

/// One thread's program: `k` repetitions of (load; store).
#[derive(Debug, Clone, Copy)]
struct ThreadState {
    /// Completed increments.
    done: u32,
    /// Register value if mid-increment (loaded but not stored).
    reg: Option<u64>,
}

/// Enumerates all interleavings of `threads` threads each performing
/// `increments` racy `x++` operations (each = one load + one store).
/// Returns the set of possible final values of `x`.
///
/// State space is exponential; keep `threads · increments ≤ ~8`.
pub fn counter_outcomes(threads: usize, increments: u32) -> BTreeSet<u64> {
    let mut outcomes = BTreeSet::new();
    let mut memo = std::collections::HashSet::new();
    let state = vec![
        ThreadState {
            done: 0,
            reg: None
        };
        threads
    ];
    explore(0, &state, increments, &mut outcomes, &mut memo);
    outcomes
}

/// Visited `(cell value, per-thread state)` configurations.
type ExploreMemo = std::collections::HashSet<(u64, Vec<(u32, Option<u64>)>)>;

fn encode(x: u64, st: &[ThreadState]) -> (u64, Vec<(u32, Option<u64>)>) {
    (x, st.iter().map(|t| (t.done, t.reg)).collect())
}

fn explore(
    x: u64,
    st: &[ThreadState],
    k: u32,
    outcomes: &mut BTreeSet<u64>,
    memo: &mut ExploreMemo,
) {
    if !memo.insert(encode(x, st)) {
        return;
    }
    let mut progressed = false;
    for (i, t) in st.iter().enumerate() {
        match t.reg {
            Some(r) => {
                // store step
                let mut next = st.to_vec();
                next[i] = ThreadState {
                    done: t.done + 1,
                    reg: None,
                };
                progressed = true;
                explore(r + 1, &next, k, outcomes, memo);
            }
            None if t.done < k => {
                // load step
                let mut next = st.to_vec();
                next[i] = ThreadState {
                    done: t.done,
                    reg: Some(x),
                };
                progressed = true;
                explore(x, &next, k, outcomes, memo);
            }
            None => {}
        }
    }
    if !progressed {
        outcomes.insert(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_prints_1_or_2() {
        // Two threads, one increment each: exactly {1, 2} — the paper's
        // "will print an incorrect result (either 1 or 2)".
        let outcomes = counter_outcomes(2, 1);
        assert_eq!(outcomes.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn single_thread_deterministic() {
        let outcomes = counter_outcomes(1, 4);
        assert_eq!(outcomes.into_iter().collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn three_threads_lose_up_to_two() {
        let outcomes = counter_outcomes(3, 1);
        // minimum 1 (all read 0), maximum 3 (serialized)
        assert_eq!(outcomes.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn two_threads_two_increments_full_range() {
        let outcomes = counter_outcomes(2, 2);
        // Known result for 2 threads × k increments: k'..=2k possible
        // with enough overlap patterns; at minimum the extremes exist.
        assert!(outcomes.contains(&4), "serialized value present");
        assert!(*outcomes.iter().next().unwrap() < 4, "lost updates exist");
        // final value can never exceed total increments
        assert!(outcomes.iter().all(|&v| (1..=4).contains(&v)));
    }

    #[test]
    fn outcome_count_grows_with_contention() {
        let two = counter_outcomes(2, 1).len();
        let three = counter_outcomes(3, 1).len();
        assert!(three >= two);
    }
}
