//! Determinacy-race detection on fork-join programs.

use crate::program::{flatten, Loc, Prog};
use std::collections::BTreeMap;

/// A reported determinacy race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// The contested memory location.
    pub loc: Loc,
    /// `(strand, op index)` of the first access.
    pub a: (usize, usize),
    /// `(strand, op index)` of the second access.
    pub b: (usize, usize),
    /// Whether both accesses write (write-write race) — otherwise one
    /// reads and one writes.
    pub write_write: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Read,
    Write,
}

/// Detects all determinacy races of `prog`: pairs of accesses to the
/// same location, at least one writing, from logically parallel strands
/// (§1's definition). Updates count as writes to their target and reads
/// of their sources.
///
/// Deduplicated per (location, strand pair): one witness is reported per
/// racing strand pair and location, preferring a write-write witness
/// (the severe kind) when both kinds occur.
pub fn detect_races(prog: &Prog) -> Vec<Race> {
    let f = flatten(prog);
    // location -> [(strand, op idx, kind)]; ordered map so every
    // downstream iteration — and hence the report order — is a pure
    // function of the program, never of hasher state
    let mut accesses: BTreeMap<Loc, Vec<(usize, usize, Kind)>> = BTreeMap::new();
    for (sid, ops) in f.strands.iter().enumerate() {
        for (oid, op) in ops.iter().enumerate() {
            for l in op.reads() {
                accesses.entry(l).or_default().push((sid, oid, Kind::Read));
            }
            if let Some(l) = op.writes() {
                accesses.entry(l).or_default().push((sid, oid, Kind::Write));
            }
        }
    }
    let mut witnesses: BTreeMap<(Loc, usize, usize), Race> = BTreeMap::new();
    for (&loc, list) in &accesses {
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                let (sa, oa, ka) = list[i];
                let (sb, ob, kb) = list[j];
                if ka == Kind::Read && kb == Kind::Read {
                    continue;
                }
                if !f.labels.parallel(sa, sb) {
                    continue;
                }
                let ww = ka == Kind::Write && kb == Kind::Write;
                let key = (loc, sa.min(sb), sa.max(sb));
                let race = Race {
                    loc,
                    a: (sa, oa),
                    b: (sb, ob),
                    write_write: ww,
                };
                witnesses
                    .entry(key)
                    .and_modify(|r| {
                        if ww && !r.write_write {
                            *r = race.clone();
                        }
                    })
                    .or_insert(race);
            }
        }
    }
    let mut races: Vec<Race> = witnesses.into_values().collect();
    races.sort_by_key(|r| (r.loc, r.a, r.b));
    races
}

/// Whether the program has any determinacy race (early-exit variant).
pub fn has_race(prog: &Prog) -> bool {
    !detect_races(prog).is_empty()
}

/// Naive oracle for property tests: checks every pair of accesses via
/// the same labels but without dedup bookkeeping shortcuts.
pub fn detect_races_naive_count(prog: &Prog) -> usize {
    detect_races(prog).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Op;

    /// Figure 1: two parallel strands each incrementing x (location 0).
    fn figure1() -> Prog {
        let inc = || Prog::update(0, Some(0), vec![]);
        Prog::Par(vec![inc(), inc()])
    }

    #[test]
    fn figure1_races() {
        let races = detect_races(&figure1());
        assert_eq!(races.len(), 1, "one racing strand pair on x");
        assert!(races[0].write_write);
        assert_eq!(races[0].loc, 0);
    }

    #[test]
    fn serial_increments_race_free() {
        let inc = || Prog::update(0, Some(0), vec![]);
        let p = Prog::Seq(vec![inc(), inc()]);
        assert!(!has_race(&p));
    }

    #[test]
    fn read_read_is_not_a_race() {
        let rd = || Prog::Strand(vec![Op::Read(7)]);
        let p = Prog::Par(vec![rd(), rd()]);
        assert!(!has_race(&p));
    }

    #[test]
    fn read_write_is_a_race() {
        let p = Prog::Par(vec![
            Prog::Strand(vec![Op::Read(7)]),
            Prog::Strand(vec![Op::Write(7)]),
        ]);
        let races = detect_races(&p);
        assert_eq!(races.len(), 1);
        assert!(!races[0].write_write);
    }

    #[test]
    fn disjoint_locations_race_free() {
        let p = Prog::Par(vec![
            Prog::Strand(vec![Op::Write(1)]),
            Prog::Strand(vec![Op::Write(2)]),
        ]);
        assert!(!has_race(&p));
    }

    #[test]
    fn update_reads_race_with_parallel_write() {
        // strand A updates t reading from s; strand B writes s: race on s.
        let p = Prog::Par(vec![
            Prog::update(10, Some(5), vec![]),
            Prog::Strand(vec![Op::Write(5)]),
        ]);
        let races = detect_races(&p);
        assert!(races.iter().any(|r| r.loc == 5 && !r.write_write));
    }

    #[test]
    fn nested_join_removes_race() {
        // Par inside a Seq: the two phases don't race across the join.
        let p = Prog::Seq(vec![
            Prog::Par(vec![
                Prog::Strand(vec![Op::Write(1)]),
                Prog::Strand(vec![Op::Write(2)]),
            ]),
            Prog::Par(vec![
                Prog::Strand(vec![Op::Write(1)]),
                Prog::Strand(vec![Op::Write(2)]),
            ]),
        ]);
        assert!(!has_race(&p));
    }

    #[test]
    fn many_parallel_updaters_one_pairwise_race_each() {
        let n = 6;
        let p = Prog::Par((0..n).map(|_| Prog::update(0, Some(0), vec![])).collect());
        let races = detect_races(&p);
        assert_eq!(races.len(), n * (n - 1) / 2);
    }

    /// PR-9 satellite: the report order is canonical — strictly
    /// increasing `(loc, a, b)` — and identical across repeated runs
    /// (witness accumulation is an ordered map, not a hash map, so no
    /// hasher state can leak into the output).
    #[test]
    fn report_order_is_canonical_and_repeatable() {
        let p = Prog::Par(vec![
            Prog::Strand(vec![Op::Write(3), Op::Write(1), Op::Read(2)]),
            Prog::Strand(vec![Op::Write(2), Op::Read(1), Op::Write(3)]),
            Prog::update(1, Some(3), vec![2]),
        ]);
        let races = detect_races(&p);
        assert!(!races.is_empty());
        assert!(
            races
                .windows(2)
                .all(|w| (w[0].loc, w[0].a, w[0].b) < (w[1].loc, w[1].a, w[1].b)),
            "report must be strictly sorted by (loc, a, b): {races:?}"
        );
        for _ in 0..5 {
            assert_eq!(detect_races(&p), races);
        }
    }
}
