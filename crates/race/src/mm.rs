//! The Parallel-MM programs of Figure 3.
//!
//! `Parallel-MM(Z, X, Y, n)` parallelizes the `i` and `j` loops; the
//! inner `k` loop updates `Z[i][j]` sequentially — race-free. If the
//! `k` loop is *also* parallelized, all `n` updates to each `Z[i][j]`
//! become logically parallel: data races on every output cell, "giving
//! rise to data races and thus producing potentially incorrect results"
//! (§1). Both variants are built here as [`Prog`]s so the detector and
//! the race-DAG extractor can be demonstrated on the paper's own
//! motivating kernel.

use crate::program::{Op, Prog};

/// Location layout for an n×n Parallel-MM: X, Y, Z matrices row-major.
#[derive(Debug, Clone, Copy)]
pub struct MmLayout {
    /// Matrix dimension.
    pub n: u64,
}

impl MmLayout {
    /// Location of `X[i][k]`.
    pub fn x(&self, i: u64, k: u64) -> u64 {
        i * self.n + k
    }
    /// Location of `Y[k][j]`.
    pub fn y(&self, k: u64, j: u64) -> u64 {
        self.n * self.n + k * self.n + j
    }
    /// Location of `Z[i][j]`.
    pub fn z(&self, i: u64, j: u64) -> u64 {
        2 * self.n * self.n + i * self.n + j
    }
}

fn inner_update(l: MmLayout, i: u64, j: u64, k: u64) -> Prog {
    Prog::Strand(vec![Op::Update {
        target: l.z(i, j),
        from: Some(l.x(i, k)),
        reads: vec![l.y(k, j)],
    }])
}

/// The Figure 3 kernel as written: `i`, `j` parallel; `k` sequential.
/// Race-free.
pub fn parallel_mm(n: u64) -> (Prog, MmLayout) {
    let l = MmLayout { n };
    let cells = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .map(|(i, j)| Prog::Seq((0..n).map(|k| inner_update(l, i, j, k)).collect()))
        .collect();
    (Prog::Par(cells), l)
}

/// The naive "parallelize everything" variant: `k` parallel too.
/// Every `Z[i][j]` races (n parallel updates to the same cell).
pub fn parallel_mm_racy(n: u64) -> (Prog, MmLayout) {
    let l = MmLayout { n };
    let cells = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .map(|(i, j)| Prog::Par((0..n).map(|k| inner_update(l, i, j, k)).collect()))
        .collect();
    (Prog::Par(cells), l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{detect_races, has_race};
    use crate::extract::extract_race_dag;

    #[test]
    fn sequential_k_is_race_free() {
        let (p, _) = parallel_mm(3);
        assert!(!has_race(&p), "Figure 3 as written has no races");
    }

    #[test]
    fn parallel_k_races_on_every_z_cell() {
        let n = 3u64;
        let (p, _l) = parallel_mm_racy(n);
        let races = detect_races(&p);
        assert!(!races.is_empty());
        // every racing location is a Z cell, and every Z cell races
        let z_range = (2 * n * n)..(3 * n * n);
        let mut racy_locs: Vec<u64> = races.iter().map(|r| r.loc).collect();
        racy_locs.sort_unstable();
        racy_locs.dedup();
        assert_eq!(racy_locs.len(), (n * n) as usize);
        assert!(racy_locs.iter().all(|loc| z_range.contains(loc)));
        // n parallel updates per cell -> C(n,2) write-write pairs each
        let per_cell = (n * (n - 1) / 2) as usize;
        assert_eq!(races.len(), per_cell * (n * n) as usize);
    }

    #[test]
    fn extracted_dag_has_indegree_n_per_z() {
        let n = 4u64;
        let (p, l) = parallel_mm_racy(n);
        let rd = extract_race_dag(&p).unwrap();
        for i in 0..n {
            for j in 0..n {
                let z = rd.node_of[&l.z(i, j)];
                assert_eq!(rd.dag.in_degree(z), n as usize, "w_Z = n updates");
            }
        }
        // X cells are sources
        let x00 = rd.node_of[&l.x(0, 0)];
        assert_eq!(rd.dag.in_degree(x00), 0);
        assert_eq!(rd.dag.out_degree(x00), n as usize);
    }

    #[test]
    fn program_sizes() {
        let n = 3u64;
        let (p, _) = parallel_mm(n);
        assert_eq!(p.op_count(), (n * n * n) as usize);
        assert_eq!(p.strand_count(), (n * n * n) as usize);
    }
}
