//! Fork-join program IR.
//!
//! The paper restricts attention to programs whose parallel structure is
//! fork-join (series-parallel): exactly what `spawn`/`sync` (Cilk) or
//! `parallel for` (OpenMP) produce, and the class for which two linear
//! orders certify logical parallelism. A [`Prog`] is a tree of
//! sequential and parallel compositions over *strands* (maximal
//! instruction sequences without parallel control).

/// A memory location identifier.
pub type Loc = u64;

/// One operation of a strand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A plain read of a location.
    Read(Loc),
    /// A plain write (not an accumulation) to a location.
    Write(Loc),
    /// An associative/commutative *update* of `target`, consuming the
    /// value of `from` (the arc source in the race DAG, keeping
    /// `w = d_in`) and reading `reads` besides.
    Update {
        /// The accumulated location.
        target: Loc,
        /// The location whose value flows into the update (`None` for
        /// updates by constants).
        from: Option<Loc>,
        /// Other locations read by the update (O(1) of them, per §1).
        reads: Vec<Loc>,
    },
}

impl Op {
    /// Locations read by this op.
    pub fn reads(&self) -> Vec<Loc> {
        match self {
            Op::Read(l) => vec![*l],
            Op::Write(_) => vec![],
            Op::Update { from, reads, .. } => {
                let mut v = reads.clone();
                if let Some(f) = from {
                    v.push(*f);
                }
                v
            }
        }
    }

    /// Location written by this op, if any.
    pub fn writes(&self) -> Option<Loc> {
        match self {
            Op::Read(_) => None,
            Op::Write(l) => Some(*l),
            Op::Update { target, .. } => Some(*target),
        }
    }
}

/// A fork-join program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Prog {
    /// A strand: straight-line sequence of operations.
    Strand(Vec<Op>),
    /// Sequential composition.
    Seq(Vec<Prog>),
    /// Parallel composition (all children logically parallel).
    Par(Vec<Prog>),
}

impl Prog {
    /// Convenience: a strand with a single update.
    pub fn update(target: Loc, from: Option<Loc>, reads: Vec<Loc>) -> Prog {
        Prog::Strand(vec![Op::Update {
            target,
            from,
            reads,
        }])
    }

    /// Number of strands.
    pub fn strand_count(&self) -> usize {
        match self {
            Prog::Strand(_) => 1,
            Prog::Seq(cs) | Prog::Par(cs) => cs.iter().map(Prog::strand_count).sum(),
        }
    }

    /// Total operation count.
    pub fn op_count(&self) -> usize {
        match self {
            Prog::Strand(ops) => ops.len(),
            Prog::Seq(cs) | Prog::Par(cs) => cs.iter().map(Prog::op_count).sum(),
        }
    }
}

/// English-Hebrew labels: strand `a` is logically parallel to strand `b`
/// iff the two linear orders disagree on them.
#[derive(Debug, Clone)]
pub struct EhLabels {
    /// English (left-to-right everywhere) index per strand.
    pub english: Vec<u32>,
    /// Hebrew (right-to-left under `Par`) index per strand.
    pub hebrew: Vec<u32>,
}

impl EhLabels {
    /// Whether strands `a` and `b` are logically parallel.
    #[inline]
    pub fn parallel(&self, a: usize, b: usize) -> bool {
        a != b
            && (self.english[a] < self.english[b]) != (self.hebrew[a] < self.hebrew[b])
    }
}

/// Flattened program: strands with their operations, plus EH labels.
#[derive(Debug, Clone)]
pub struct Flattened {
    /// Operations per strand, in strand id order.
    pub strands: Vec<Vec<Op>>,
    /// The parallelism certificate.
    pub labels: EhLabels,
}

/// Flattens a program into labelled strands.
pub fn flatten(prog: &Prog) -> Flattened {
    let mut strands = Vec::new();
    collect_strands(prog, &mut strands);
    let n = strands.len();
    let mut english = vec![0u32; n];
    let mut hebrew = vec![0u32; n];
    let mut e_next = 0u32;
    let mut h_next = 0u32;
    let mut idx = 0usize;
    label_english(prog, &mut english, &mut e_next, &mut idx);
    let mut idx = 0usize;
    label_hebrew(prog, &mut hebrew, &mut h_next, &mut idx);
    Flattened {
        strands,
        labels: EhLabels { english, hebrew },
    }
}

/// The EH labels alone, **without** materializing per-strand op
/// vectors. [`flatten`] clones every operation into its `strands`
/// table; callers that only need the may-happen-in-parallel relation
/// (the static analyzer's footprint pass walks the tree itself) get
/// the labels here at O(strands) extra space instead of O(ops).
pub fn labels(prog: &Prog) -> EhLabels {
    let n = prog.strand_count();
    let mut english = vec![0u32; n];
    let mut hebrew = vec![0u32; n];
    let mut e_next = 0u32;
    let mut h_next = 0u32;
    let mut idx = 0usize;
    label_english(prog, &mut english, &mut e_next, &mut idx);
    let mut idx = 0usize;
    label_hebrew(prog, &mut hebrew, &mut h_next, &mut idx);
    EhLabels { english, hebrew }
}

fn collect_strands(prog: &Prog, out: &mut Vec<Vec<Op>>) {
    match prog {
        Prog::Strand(ops) => out.push(ops.clone()),
        Prog::Seq(cs) | Prog::Par(cs) => {
            for c in cs {
                collect_strands(c, out);
            }
        }
    }
}

/// English order: plain left-to-right DFS (strand ids are assigned in
/// the same DFS, so `english[i] == i` — kept explicit for symmetry).
fn label_english(prog: &Prog, out: &mut [u32], next: &mut u32, idx: &mut usize) {
    match prog {
        Prog::Strand(_) => {
            out[*idx] = *next;
            *next += 1;
            *idx += 1;
        }
        Prog::Seq(cs) | Prog::Par(cs) => {
            for c in cs {
                label_english(c, out, next, idx);
            }
        }
    }
}

/// Hebrew order: children of `Par` visited right-to-left; strand ids
/// still advance in English order, so we must walk ids consistently —
/// we walk the tree left-to-right to track ids, but assign the Hebrew
/// *rank* by visiting Par children in reverse.
fn label_hebrew(prog: &Prog, out: &mut [u32], next: &mut u32, idx: &mut usize) {
    // assign ids first (English DFS), then rank in Hebrew order via a
    // second traversal that knows each subtree's id range.
    fn sizes(prog: &Prog) -> usize {
        prog.strand_count()
    }
    match prog {
        Prog::Strand(_) => {
            out[*idx] = *next;
            *next += 1;
            *idx += 1;
        }
        Prog::Seq(cs) => {
            for c in cs {
                label_hebrew(c, out, next, idx);
            }
        }
        Prog::Par(cs) => {
            // children occupy consecutive id ranges starting at *idx
            let base = *idx;
            let mut starts = Vec::with_capacity(cs.len());
            let mut acc = base;
            for c in cs {
                starts.push(acc);
                acc += sizes(c);
            }
            // visit right-to-left, but recurse with the child's own idx
            for (c, &start) in cs.iter().zip(&starts).rev() {
                let mut sub_idx = start;
                label_hebrew(c, out, next, &mut sub_idx);
            }
            *idx = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strand(loc: Loc) -> Prog {
        Prog::Strand(vec![Op::Write(loc)])
    }

    #[test]
    fn seq_strands_are_series() {
        let p = Prog::Seq(vec![strand(0), strand(1), strand(2)]);
        let f = flatten(&p);
        assert_eq!(f.strands.len(), 3);
        for a in 0..3 {
            for b in 0..3 {
                assert!(!f.labels.parallel(a, b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn par_strands_are_parallel() {
        let p = Prog::Par(vec![strand(0), strand(1)]);
        let f = flatten(&p);
        assert!(f.labels.parallel(0, 1));
        assert!(f.labels.parallel(1, 0));
        assert!(!f.labels.parallel(0, 0));
    }

    #[test]
    fn nested_mix() {
        // Seq[ s0, Par[ s1, Seq[s2, s3] ], s4 ]
        let p = Prog::Seq(vec![
            strand(0),
            Prog::Par(vec![strand(1), Prog::Seq(vec![strand(2), strand(3)])]),
            strand(4),
        ]);
        let f = flatten(&p);
        // s1 parallel to s2 and s3; s2 series s3; s0/s4 series everything
        assert!(f.labels.parallel(1, 2));
        assert!(f.labels.parallel(1, 3));
        assert!(!f.labels.parallel(2, 3));
        for x in 1..=3 {
            assert!(!f.labels.parallel(0, x));
            assert!(!f.labels.parallel(x, 4));
        }
    }

    #[test]
    fn deep_nesting_parallelism() {
        // Par[ Par[a, b], Par[c, d] ]: all pairs parallel
        let p = Prog::Par(vec![
            Prog::Par(vec![strand(0), strand(1)]),
            Prog::Par(vec![strand(2), strand(3)]),
        ]);
        let f = flatten(&p);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(f.labels.parallel(a, b), a != b);
            }
        }
    }

    #[test]
    fn seq_of_pars_cross_series() {
        // Seq[ Par[a,b], Par[c,d] ]: a∥b, c∥d, but a,b series to c,d.
        let p = Prog::Seq(vec![
            Prog::Par(vec![strand(0), strand(1)]),
            Prog::Par(vec![strand(2), strand(3)]),
        ]);
        let f = flatten(&p);
        assert!(f.labels.parallel(0, 1));
        assert!(f.labels.parallel(2, 3));
        for a in 0..2 {
            for b in 2..4 {
                assert!(!f.labels.parallel(a, b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn op_accessors() {
        let u = Op::Update {
            target: 9,
            from: Some(1),
            reads: vec![2, 3],
        };
        assert_eq!(u.writes(), Some(9));
        let mut r = u.reads();
        r.sort_unstable();
        assert_eq!(r, vec![1, 2, 3]);
        assert_eq!(Op::Read(5).reads(), vec![5]);
        assert_eq!(Op::Write(5).writes(), Some(5));
    }

    #[test]
    fn labels_only_matches_flatten() {
        let p = Prog::Seq(vec![
            strand(0),
            Prog::Par(vec![strand(1), Prog::Seq(vec![strand(2), strand(3)])]),
            Prog::Par(vec![strand(4), strand(5)]),
        ]);
        let f = flatten(&p);
        let l = labels(&p);
        assert_eq!(f.labels.english, l.english);
        assert_eq!(f.labels.hebrew, l.hebrew);
    }

    #[test]
    fn counts() {
        let p = Prog::Seq(vec![
            Prog::Strand(vec![Op::Read(0), Op::Write(1)]),
            Prog::Par(vec![strand(2), strand(3)]),
        ]);
        assert_eq!(p.strand_count(), 3);
        assert_eq!(p.op_count(), 4);
    }
}
