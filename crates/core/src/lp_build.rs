//! LP 6–10 (§3.1): the linear relaxation of the resource-time tradeoff
//! with resource reuse over paths, modelled as a network-flow LP.
//!
//! Variables: a flow `f_e ≥ 0` per `D''` arc and an event time `T_v ≥ 0`
//! per vertex (with `T_s = 0` eliminated). Constraints:
//!
//! * (6) `f_e ≤ r_e` on two-tuple arcs — the linear duration relaxation
//!   is only valid inside `[0, r_e]`; single-tuple arcs stay *uncapped*
//!   so surplus resource can flow through for reuse down the path.
//!   These are variable bounds, not rows: the default revised engine
//!   handles them implicitly (its row count excludes them entirely —
//!   see [`FractionalSolution::stats`]);
//! * (7) `T_u + t_e(f_e) ≤ T_v` with the Eq. 4/5 relaxation
//!   `t_e(f) = t0 − (t0 − t1)·f/r_e`;
//! * (8) flow conservation at internal vertices;
//! * (9) `Σ f(s,·) ≤ B`.
//!
//! Objective (10): minimize `T_t` — or, for the minimum-resource
//! problem, minimize `Σ f(s,·)` subject to `T_t ≤ T`.
//!
//! ∞-durations (Appendix-A gadgets) are clamped to [`LP_BIG`]; exact
//! solvers handle them natively, the LP only needs relative order.

use crate::transform::TwoTupleInstance;
use rtt_duration::{Resource, Time};
use rtt_lp::{Engine, Outcome, Problem};
use std::fmt;

/// Finite stand-in for `∞` durations inside the LP.
pub const LP_BIG: f64 = 1e12;

/// LP failures surfaced to solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The relaxation is infeasible (only possible for min-resource with
    /// an unachievable target).
    Infeasible,
    /// The relaxation is unbounded (indicates a modelling bug).
    Unbounded,
    /// A cooperative budget check tripped mid-solve (pivot cap,
    /// deadline, or cancellation). Only metered entry points can return
    /// this; the engine maps it onto the request's exhaustion policy.
    Exhausted(rtt_budget::Exhausted),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "LP relaxation infeasible"),
            LpError::Unbounded => write!(f, "LP relaxation unbounded"),
            LpError::Exhausted(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LpError {}

/// A fractional solution of LP 6–10 (or its min-resource dual use).
#[derive(Debug, Clone)]
pub struct FractionalSolution {
    /// Flow per `D''` edge.
    pub flows: Vec<f64>,
    /// Event time per `D''` node (source fixed at 0).
    pub times: Vec<f64>,
    /// `T_t`: the relaxed makespan.
    pub makespan: f64,
    /// Source outflow: the relaxed resource usage.
    pub budget_used: f64,
    /// Simplex pivots (diagnostics).
    pub pivots: usize,
    /// Engine dimensions and pivot phase split (see
    /// [`rtt_lp::LpStats`]) — how many rows/columns the engine
    /// materialized, and for the revised engine the proof that the
    /// per-edge capacity rows (6) were handled implicitly.
    pub stats: rtt_lp::LpStats,
}

fn clamp_time(t: Time) -> f64 {
    if rtt_duration::is_infinite(t) {
        LP_BIG
    } else {
        t as f64
    }
}

struct LpShape {
    problem: Problem,
    n_edges: usize,
    /// variable index of `T_v`, `None` for the source.
    time_var: Vec<Option<usize>>,
    /// row index of each edge's precedence constraint (7), by edge id.
    edge_row: Vec<usize>,
}

/// Shared constraint matrix of LP 6–10 (everything except the
/// objective/budget/target rows).
fn build_shape(tt: &TwoTupleInstance) -> LpShape {
    let d = &tt.dag;
    let n_edges = d.edge_count();
    // variable layout: [flows | times (non-source)]
    let mut time_var: Vec<Option<usize>> = vec![None; d.node_count()];
    let mut next = n_edges;
    for v in d.node_ids() {
        if v != tt.source {
            time_var[v.index()] = Some(next);
            next += 1;
        }
    }
    let mut p = Problem::minimize(next);

    let mut edge_row = vec![usize::MAX; n_edges];
    for e in d.edge_refs() {
        let a = e.weight;
        // (6) capacity on two-tuple arcs
        if let Some((r, _)) = a.buy {
            p.set_upper_bound(e.id.index(), r as f64);
        }
        // (7) precedence: T_v − T_u + slope·f_e ≥ t0
        let t0 = clamp_time(a.t0);
        let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(3);
        if let Some(tv) = time_var[e.dst.index()] {
            coeffs.push((tv, 1.0));
        }
        if let Some(tu) = time_var[e.src.index()] {
            coeffs.push((tu, -1.0));
        }
        if let Some((r, t1)) = a.buy {
            let slope = (t0 - clamp_time(t1)) / r as f64;
            if slope != 0.0 {
                coeffs.push((e.id.index(), slope));
            }
        }
        // The destination is never the source (source has in-degree 0),
        // so `coeffs` always contains T_v.
        edge_row[e.id.index()] = p.n_rows();
        p.add_ge(&coeffs, t0);
    }

    // (8) conservation at internal vertices
    for v in d.node_ids() {
        if v == tt.source || v == tt.sink {
            continue;
        }
        let mut coeffs: Vec<(usize, f64)> = Vec::new();
        for &e in d.out_edges(v) {
            coeffs.push((e.index(), 1.0));
        }
        for &e in d.in_edges(v) {
            coeffs.push((e.index(), -1.0));
        }
        if !coeffs.is_empty() {
            p.add_eq(&coeffs, 0.0);
        }
    }

    LpShape {
        problem: p,
        n_edges,
        time_var,
        edge_row,
    }
}

/// The structural **crash basis** for LP 6–10: at zero flow the
/// longest-path times satisfy every constraint, so phase 1 is
/// unnecessary. Per non-source vertex, `T_v` goes basic in its
/// *critical* (longest-path-tight) incoming precedence row; every other
/// precedence row keeps its surplus basic (slack `= T_v − T_u − t0 ≥
/// 0`), conservation rows keep a degenerate artificial at 0, and the
/// budget row its slack. The revised engine verifies feasibility at
/// install time, so this is an accelerator, never a correctness risk.
fn crash_hints(
    tt: &TwoTupleInstance,
    problem: &Problem,
    time_var: &[Option<usize>],
    edge_row: &[usize],
) -> rtt_lp::Basis {
    use rtt_lp::revised::CrashVar;
    let d = &tt.dag;
    let mut hints = vec![CrashVar::Logical; problem.n_rows()];
    let mut dist: Vec<f64> = vec![0.0; d.node_count()];
    let topo = rtt_dag::topo_order(d).expect("instances are acyclic");
    for &v in &topo {
        let mut best: Option<(f64, rtt_dag::EdgeId)> = None;
        for &e in d.in_edges(v) {
            let t0 = clamp_time(d.edge(e).t0);
            let cand = dist[d.src(e).index()] + t0;
            if best.is_none_or(|(b, _)| cand > b) {
                best = Some((cand, e));
            }
        }
        if let Some((b, e)) = best {
            dist[v.index()] = b;
            if let Some(tv) = time_var[v.index()] {
                hints[edge_row[e.index()]] = CrashVar::Structural(tv);
            }
        }
    }
    rtt_lp::revised::crash_basis(problem, &hints)
}

fn extract(
    tt: &TwoTupleInstance,
    n_edges: usize,
    time_var: &[Option<usize>],
    sol: rtt_lp::Solution,
) -> FractionalSolution {
    let flows: Vec<f64> = sol.x[..n_edges].to_vec();
    let times: Vec<f64> = time_var
        .iter()
        .map(|tv| tv.map_or(0.0, |j| sol.x[j]))
        .collect();
    let makespan = times[tt.sink.index()];
    let budget_used = tt
        .dag
        .out_edges(tt.source)
        .iter()
        .map(|&e| flows[e.index()])
        .sum();
    FractionalSolution {
        flows,
        times,
        makespan,
        budget_used,
        pivots: sol.pivots,
        stats: sol.stats,
    }
}

/// LP 6–10 with the budget row **tagged**: built once per instance,
/// re-solvable at any budget by rewriting a single right-hand side —
/// which is exactly the shape-preserving change the revised engine's
/// [`rtt_lp::Basis`] warm start accepts. A budget sweep through one
/// `MakespanLp` dual-reoptimizes every point after the first instead of
/// cold-starting `|grid|` solves.
#[derive(Debug, Clone)]
pub struct MakespanLp {
    problem: Problem,
    n_edges: usize,
    time_var: Vec<Option<usize>>,
    /// Row index of constraint (9); `None` when the source has no
    /// out-edges (the LP is then budget-independent).
    budget_row: Option<usize>,
    sink: usize,
    /// Row index of each edge's precedence row, for the crash below.
    edge_row: Vec<usize>,
    /// The longest-path crash basis (see [`crash_hints`]) — the revised
    /// engine's start when no warmer basis is available. Lazy: the
    /// dense engines never pay for it.
    crash: std::sync::OnceLock<rtt_lp::Basis>,
}

impl MakespanLp {
    /// Builds the template: shape, objective (10), and the budget row
    /// (9) at a placeholder budget of 0.
    pub fn new(tt: &TwoTupleInstance) -> Self {
        let mut shape = build_shape(tt);
        let budget_coeffs: Vec<(usize, f64)> = tt
            .dag
            .out_edges(tt.source)
            .iter()
            .map(|&e| (e.index(), 1.0))
            .collect();
        let budget_row = if budget_coeffs.is_empty() {
            None
        } else {
            shape.problem.add_le(&budget_coeffs, 0.0);
            Some(shape.problem.n_rows() - 1)
        };
        let t_sink = shape.time_var[tt.sink.index()].expect("sink is not the source");
        shape.problem.set_objective(t_sink, 1.0);
        MakespanLp {
            problem: shape.problem,
            n_edges: shape.n_edges,
            time_var: shape.time_var,
            budget_row,
            sink: tt.sink.index(),
            edge_row: shape.edge_row,
            crash: std::sync::OnceLock::new(),
        }
    }

    /// The longest-path crash basis, computed on first (Revised) use.
    fn crash(&self, tt: &TwoTupleInstance) -> &rtt_lp::Basis {
        self.crash
            .get_or_init(|| crash_hints(tt, &self.problem, &self.time_var, &self.edge_row))
    }

    /// Points the budget row (9) at a new budget. No other row changes,
    /// so a basis from the previous solve stays warm-start valid.
    pub fn set_budget(&mut self, budget: Resource) {
        if let Some(row) = self.budget_row {
            self.problem.set_rhs(row, budget as f64);
        }
    }

    fn extract_at(&self, tt: &TwoTupleInstance, sol: rtt_lp::Solution) -> FractionalSolution {
        debug_assert_eq!(self.sink, tt.sink.index());
        extract(tt, self.n_edges, &self.time_var, sol)
    }

    /// Solves at the budget most recently set, under `engine`. The
    /// revised engine starts from the longest-path crash basis (phase 1
    /// is skipped whenever the crash installs feasibly); the dense
    /// engines run their ordinary two-phase solve.
    pub fn solve_with(
        &self,
        tt: &TwoTupleInstance,
        engine: Engine,
    ) -> Result<FractionalSolution, LpError> {
        self.solve_with_metered(tt, engine, None)
    }

    /// [`MakespanLp::solve_with`] under a cooperative budget meter: the
    /// simplex loops charge one `lp_pivots` unit per pivot, and a
    /// tripped budget surfaces as [`LpError::Exhausted`].
    pub fn solve_with_metered(
        &self,
        tt: &TwoTupleInstance,
        engine: Engine,
        meter: Option<&rtt_budget::BudgetMeter>,
    ) -> Result<FractionalSolution, LpError> {
        if matches!(engine, Engine::Revised) {
            return self.solve_warm_metered(tt, None, meter).map(|(f, _)| f);
        }
        match self.problem.solve_with_metered(engine, meter) {
            Outcome::Optimal(s) => Ok(self.extract_at(tt, s)),
            Outcome::Infeasible => Err(LpError::Infeasible),
            Outcome::Unbounded => Err(LpError::Unbounded),
            Outcome::Exhausted(e) => Err(LpError::Exhausted(e)),
        }
    }

    /// Solves at the budget most recently set with the revised engine,
    /// warm-starting from `warm` (a basis this template returned
    /// earlier; falls back to the longest-path crash basis when
    /// `None`). Returns the solution plus the basis for the next link.
    pub fn solve_warm(
        &self,
        tt: &TwoTupleInstance,
        warm: Option<&rtt_lp::Basis>,
    ) -> Result<(FractionalSolution, Option<rtt_lp::Basis>), LpError> {
        self.solve_warm_metered(tt, warm, None)
    }

    /// [`MakespanLp::solve_warm`] under a cooperative budget meter (see
    /// [`MakespanLp::solve_with_metered`]).
    pub fn solve_warm_metered(
        &self,
        tt: &TwoTupleInstance,
        warm: Option<&rtt_lp::Basis>,
        meter: Option<&rtt_budget::BudgetMeter>,
    ) -> Result<(FractionalSolution, Option<rtt_lp::Basis>), LpError> {
        let (out, basis) = self
            .problem
            .solve_revised_warm_metered(Some(warm.unwrap_or(self.crash(tt))), meter);
        match out {
            Outcome::Optimal(s) => Ok((self.extract_at(tt, s), basis)),
            Outcome::Infeasible => Err(LpError::Infeasible),
            Outcome::Unbounded => Err(LpError::Unbounded),
            Outcome::Exhausted(e) => Err(LpError::Exhausted(e)),
        }
    }

    /// Whether `basis` has the shape this template's revised solves
    /// produce and accept — the pre-check for **cross-template** warm
    /// starts (see [`MakespanLp::solve_delta_metered`]). True exactly
    /// when the donor LP had the same row/column layout: the same DAG
    /// shape after [`crate::transform::expand_two_tuples`], whatever
    /// its durations or budget were.
    pub fn accepts_basis(&self, basis: &rtt_lp::Basis) -> bool {
        rtt_lp::revised::basis_fits(&self.problem, basis)
    }

    /// The **delta-solve** entry point: re-points the tagged budget
    /// row (9) at `budget` and reoptimizes from `warm` — a basis cached
    /// by an earlier solve of this template *or of a shape sibling*
    /// (same expanded DAG with perturbed durations, or the same
    /// instance at another budget). An old optimum stays dual-feasible
    /// under an RHS change, so the usual cost is a handful of dual
    /// pivots instead of a cold two-phase solve; a basis that fails the
    /// [`MakespanLp::accepts_basis`] shape check — or rejects at
    /// install time — falls back to the longest-path crash basis. Cost,
    /// never correctness: the returned objective is a certified optimum
    /// either way.
    pub fn solve_delta(
        &mut self,
        tt: &TwoTupleInstance,
        budget: Resource,
        warm: Option<&rtt_lp::Basis>,
    ) -> Result<(FractionalSolution, Option<rtt_lp::Basis>), LpError> {
        self.solve_delta_metered(tt, budget, warm, None)
    }

    /// [`MakespanLp::solve_delta`] under a cooperative budget meter —
    /// the delta path's pivots are charged to `lp_pivots` like any
    /// other solve, so cached-basis work stays visible to resource
    /// budgeting.
    pub fn solve_delta_metered(
        &mut self,
        tt: &TwoTupleInstance,
        budget: Resource,
        warm: Option<&rtt_lp::Basis>,
        meter: Option<&rtt_budget::BudgetMeter>,
    ) -> Result<(FractionalSolution, Option<rtt_lp::Basis>), LpError> {
        self.set_budget(budget);
        let usable = warm.filter(|b| self.accepts_basis(b));
        self.solve_warm_metered(tt, usable, meter)
    }

    /// Solves a whole budget grid in **one chained solver session**
    /// ([`rtt_lp::revised::solve_rhs_sweep`]): matrix, eta file, and
    /// basis survive across points, so each point after the first costs
    /// only its dual-reoptimization pivots. `start` seeds the first
    /// point (the longest-path crash when `None`). Returns the
    /// per-budget solutions in grid order plus the final basis.
    pub fn solve_sweep(
        &self,
        tt: &TwoTupleInstance,
        budgets: &[Resource],
        start: Option<&rtt_lp::Basis>,
    ) -> Result<(Vec<FractionalSolution>, Option<rtt_lp::Basis>), LpError> {
        self.solve_sweep_metered(tt, budgets, start, None)
    }

    /// [`MakespanLp::solve_sweep`] under a cooperative budget meter. The
    /// meter bounds the *whole sweep*: once it trips, the error carries
    /// the first exhaustion and no further points are solved.
    pub fn solve_sweep_metered(
        &self,
        tt: &TwoTupleInstance,
        budgets: &[Resource],
        start: Option<&rtt_lp::Basis>,
        meter: Option<&rtt_budget::BudgetMeter>,
    ) -> Result<(Vec<FractionalSolution>, Option<rtt_lp::Basis>), LpError> {
        let Some(row) = self.budget_row else {
            // budget-independent LP: every point is the same solve
            let (frac, basis) = self.solve_warm_metered(tt, start, meter)?;
            return Ok((vec![frac; budgets.len()], basis));
        };
        let rhs: Vec<f64> = budgets.iter().map(|&b| b as f64).collect();
        let (outcomes, basis) = rtt_lp::revised::solve_rhs_sweep(
            &self.problem,
            row,
            &rhs,
            rtt_lp::PivotRule::Dantzig,
            Some(start.unwrap_or(self.crash(tt))),
            meter,
        );
        let mut points = Vec::with_capacity(outcomes.len());
        for out in outcomes {
            match out {
                Outcome::Optimal(s) => points.push(self.extract_at(tt, s)),
                Outcome::Infeasible => return Err(LpError::Infeasible),
                Outcome::Unbounded => return Err(LpError::Unbounded),
                Outcome::Exhausted(e) => return Err(LpError::Exhausted(e)),
            }
        }
        Ok((points, basis))
    }
}

/// Solves LP 6–10: minimize the makespan `T_t` under resource budget `B`.
pub fn solve_min_makespan_lp(
    tt: &TwoTupleInstance,
    budget: Resource,
) -> Result<FractionalSolution, LpError> {
    solve_min_makespan_lp_with(tt, budget, Engine::Revised)
}

/// [`solve_min_makespan_lp`] under an explicit simplex [`Engine`]
/// (`Engine::Flat` / `Engine::Reference` reproduce the earlier
/// baselines; used by `rtt_bench`'s differential timing).
pub fn solve_min_makespan_lp_with(
    tt: &TwoTupleInstance,
    budget: Resource,
    engine: Engine,
) -> Result<FractionalSolution, LpError> {
    solve_min_makespan_lp_metered(tt, budget, engine, None)
}

/// [`solve_min_makespan_lp_with`] under a cooperative budget meter (see
/// [`MakespanLp::solve_with_metered`]).
pub fn solve_min_makespan_lp_metered(
    tt: &TwoTupleInstance,
    budget: Resource,
    engine: Engine,
    meter: Option<&rtt_budget::BudgetMeter>,
) -> Result<FractionalSolution, LpError> {
    let mut lp = MakespanLp::new(tt);
    lp.set_budget(budget);
    lp.solve_with_metered(tt, engine, meter)
}

/// Solves LP 6–10 at every budget of `budgets` in **one warm-started
/// chain**: the first point solves cold, each later point
/// dual-reoptimizes from the previous optimal basis (the per-point cost
/// collapses to a handful of pivots on fine grids — see
/// `BENCH_pr3.json`). Results are returned in input order.
pub fn solve_min_makespan_sweep(
    tt: &TwoTupleInstance,
    budgets: &[Resource],
) -> Result<Vec<FractionalSolution>, LpError> {
    let lp = MakespanLp::new(tt);
    lp.solve_sweep(tt, budgets, None).map(|(points, _)| points)
}

/// The minimum-resource twin: minimize `Σ f(s,·)` subject to `T_t ≤ T`.
pub fn solve_min_resource_lp(
    tt: &TwoTupleInstance,
    target: Time,
) -> Result<FractionalSolution, LpError> {
    solve_min_resource_lp_metered(tt, target, None)
}

/// [`solve_min_resource_lp`] under a cooperative budget meter (see
/// [`MakespanLp::solve_with_metered`]).
pub fn solve_min_resource_lp_metered(
    tt: &TwoTupleInstance,
    target: Time,
    meter: Option<&rtt_budget::BudgetMeter>,
) -> Result<FractionalSolution, LpError> {
    let mut shape = build_shape(tt);
    let t_sink = shape.time_var[tt.sink.index()].expect("sink is not the source");
    shape.problem.add_le(&[(t_sink, 1.0)], clamp_time(target));
    for &e in tt.dag.out_edges(tt.source) {
        shape.problem.set_objective(e.index(), 1.0);
    }
    match shape.problem.solve_with_metered(Engine::Revised, meter) {
        Outcome::Optimal(s) => Ok(extract(tt, shape.n_edges, &shape.time_var, s)),
        Outcome::Infeasible => Err(LpError::Infeasible),
        Outcome::Unbounded => Err(LpError::Unbounded),
        Outcome::Exhausted(e) => Err(LpError::Exhausted(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Activity, ArcInstance, Instance, Job};
    use crate::transform::{expand_two_tuples, to_arc_form};
    use rtt_dag::Dag;
    use rtt_duration::Duration;

    /// s -> x -> t with x: {<0,10>, <4,0>}.
    fn single_job() -> TwoTupleInstance {
        let mut g: Dag<Job, ()> = Dag::new();
        let s = g.add_node(Job::new(Duration::zero()));
        let x = g.add_node(Job::new(Duration::two_point(10, 4, 0)));
        let t = g.add_node(Job::new(Duration::zero()));
        g.add_edge(s, x, ()).unwrap();
        g.add_edge(x, t, ()).unwrap();
        let inst = Instance::new(g).unwrap();
        let (arc, _) = to_arc_form(&inst);
        expand_two_tuples(&arc)
    }

    #[test]
    fn lp_interpolates_budget() {
        let tt = single_job();
        // B = 0: makespan 10. B = 4: 0. B = 2: 5 (linear).
        let f0 = solve_min_makespan_lp(&tt, 0).unwrap();
        assert!((f0.makespan - 10.0).abs() < 1e-6, "{}", f0.makespan);
        let f4 = solve_min_makespan_lp(&tt, 4).unwrap();
        assert!(f4.makespan.abs() < 1e-6);
        let f2 = solve_min_makespan_lp(&tt, 2).unwrap();
        assert!((f2.makespan - 5.0).abs() < 1e-6, "{}", f2.makespan);
    }

    #[test]
    fn lp_budget_not_exceeded() {
        let tt = single_job();
        for b in [0u64, 1, 3, 10] {
            let f = solve_min_makespan_lp(&tt, b).unwrap();
            assert!(f.budget_used <= b as f64 + 1e-6);
        }
    }

    #[test]
    fn lp_is_lower_bound_for_integral_solutions() {
        let tt = single_job();
        // With B = 3 integral can't buy the 4-gap: best integral = 10.
        // LP does better (fractional) — that's the relaxation gap.
        let f = solve_min_makespan_lp(&tt, 3).unwrap();
        assert!(f.makespan <= 10.0 + 1e-9);
        assert!((f.makespan - 2.5).abs() < 1e-6, "{}", f.makespan);
    }

    #[test]
    fn min_resource_lp_basics() {
        let tt = single_job();
        // target 10 needs 0 resource; target 0 needs 4; target 5 needs 2.
        let r10 = solve_min_resource_lp(&tt, 10).unwrap();
        assert!(r10.budget_used < 1e-6);
        let r0 = solve_min_resource_lp(&tt, 0).unwrap();
        assert!((r0.budget_used - 4.0).abs() < 1e-6);
        let r5 = solve_min_resource_lp(&tt, 5).unwrap();
        assert!((r5.budget_used - 2.0).abs() < 1e-6, "{}", r5.budget_used);
    }

    /// Reuse over a path: two consecutive jobs can share the same units.
    #[test]
    fn lp_exploits_reuse_over_paths() {
        let mut g: Dag<Job, ()> = Dag::new();
        let s = g.add_node(Job::new(Duration::zero()));
        let x = g.add_node(Job::new(Duration::two_point(10, 3, 0)));
        let y = g.add_node(Job::new(Duration::two_point(10, 3, 0)));
        let t = g.add_node(Job::new(Duration::zero()));
        g.add_edge(s, x, ()).unwrap();
        g.add_edge(x, y, ()).unwrap();
        g.add_edge(y, t, ()).unwrap();
        let inst = Instance::new(g).unwrap();
        let (arc, _) = to_arc_form(&inst);
        let tt = expand_two_tuples(&arc);
        // 3 units kill BOTH jobs (serial path, resource flows through).
        let f = solve_min_makespan_lp(&tt, 3).unwrap();
        assert!(f.makespan.abs() < 1e-6, "{}", f.makespan);
        // and the min-resource LP needs only 3 for target 0
        let r = solve_min_resource_lp(&tt, 0).unwrap();
        assert!((r.budget_used - 3.0).abs() < 1e-6, "{}", r.budget_used);
    }

    /// Parallel jobs cannot share: each branch needs its own units.
    #[test]
    fn lp_does_not_share_across_parallel_branches() {
        let mut g: Dag<Job, ()> = Dag::new();
        let s = g.add_node(Job::new(Duration::zero()));
        let x = g.add_node(Job::new(Duration::two_point(10, 3, 0)));
        let y = g.add_node(Job::new(Duration::two_point(10, 3, 0)));
        let t = g.add_node(Job::new(Duration::zero()));
        g.add_edge(s, x, ()).unwrap();
        g.add_edge(s, y, ()).unwrap();
        g.add_edge(x, t, ()).unwrap();
        g.add_edge(y, t, ()).unwrap();
        let inst = Instance::new(g).unwrap();
        let (arc, _) = to_arc_form(&inst);
        let tt = expand_two_tuples(&arc);
        let r = solve_min_resource_lp(&tt, 0).unwrap();
        assert!((r.budget_used - 6.0).abs() < 1e-6, "{}", r.budget_used);
        // with only 3 units the makespan cannot reach 0
        let f = solve_min_makespan_lp(&tt, 3).unwrap();
        assert!(f.makespan > 4.0, "{}", f.makespan);
    }

    #[test]
    fn min_resource_infeasible_target() {
        // Constant-duration job: target below it is infeasible.
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, Activity::new(Duration::constant(5)))
            .unwrap();
        let arc = ArcInstance::new(g).unwrap();
        let tt = expand_two_tuples(&arc);
        assert!(matches!(
            solve_min_resource_lp(&tt, 4),
            Err(LpError::Infeasible)
        ));
        assert!(solve_min_resource_lp(&tt, 5).is_ok());
    }

    #[test]
    fn sweep_matches_cold_solves_and_is_monotone() {
        let tt = single_job();
        let budgets: Vec<u64> = (0..=4).collect();
        let sweep = solve_min_makespan_sweep(&tt, &budgets).unwrap();
        assert_eq!(sweep.len(), budgets.len());
        let mut prev = f64::INFINITY;
        for (f, &b) in sweep.iter().zip(&budgets) {
            let cold = solve_min_makespan_lp(&tt, b).unwrap();
            assert!(
                (f.makespan - cold.makespan).abs() < 1e-9,
                "budget {b}: sweep {} vs cold {}",
                f.makespan,
                cold.makespan
            );
            assert!(f.makespan <= prev + 1e-9, "curve must be non-increasing");
            prev = f.makespan;
        }
    }

    #[test]
    fn revised_engine_materializes_no_capacity_rows() {
        // Constraint (6) rows exist only for the dense engines: the
        // revised engine's row count must drop by exactly the number of
        // upper-bounded (two-tuple) edges.
        let tt = single_job();
        let rev = solve_min_makespan_lp_with(&tt, 2, Engine::Revised).unwrap();
        let flat = solve_min_makespan_lp_with(&tt, 2, Engine::Flat).unwrap();
        let bounded_edges = tt
            .dag
            .edge_refs()
            .filter(|e| e.weight.buy.is_some())
            .count();
        assert!(bounded_edges > 0, "instance has two-tuple arcs");
        assert_eq!(rev.stats.bound_cols, bounded_edges);
        assert_eq!(rev.stats.bound_rows, 0);
        assert_eq!(flat.stats.bound_rows, bounded_edges);
        assert_eq!(
            flat.stats.rows,
            rev.stats.rows + bounded_edges,
            "implicit bounds must delete one row per bounded edge"
        );
        assert!((rev.makespan - flat.makespan).abs() < 1e-9);
    }

    #[test]
    fn infinite_durations_clamped() {
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(
            s,
            t,
            Activity::new(Duration::two_point(rtt_duration::INF, 2, 0)),
        )
        .unwrap();
        let arc = ArcInstance::new(g).unwrap();
        let tt = expand_two_tuples(&arc);
        let f0 = solve_min_makespan_lp(&tt, 0).unwrap();
        assert!(f0.makespan >= LP_BIG * 0.99);
        let f2 = solve_min_makespan_lp(&tt, 2).unwrap();
        assert!(f2.makespan < 1e-3);
    }
}
