//! Exponential-time exact reference solvers.
//!
//! The approximation-quality experiments (Table 1) need true optima on
//! small instances. W.l.o.g. an optimal solution allocates each job one
//! of its canonical tuple levels, so exhaustive search over level
//! assignments — with min-flow feasibility checks for the routing and
//! longest-path pruning — is exact. Exponential, but fine for the
//! instance sizes where it is used (≲ a dozen improvable jobs).

use crate::instance::ArcInstance;
use crate::solution::Solution;
use rtt_budget::{BudgetMeter, Exhausted};
use rtt_duration::{Resource, Time};
use rtt_flow::{min_flow, BoundedEdge, MinFlowResult};

/// Result of an exact search.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// The certified optimal solution.
    pub solution: Solution,
    /// Per-edge resource levels the optimum assigns (0 on dummies).
    pub levels: Vec<Resource>,
    /// Number of complete assignments evaluated (diagnostics).
    pub explored: u64,
}

fn routing(arc: &ArcInstance, levels: &[Resource]) -> MinFlowResult {
    let d = arc.dag();
    let edges: Vec<BoundedEdge> = d
        .edge_refs()
        .map(|e| BoundedEdge::at_least(e.src.index(), e.dst.index(), levels[e.id.index()]))
        .collect();
    min_flow(
        d.node_count(),
        &edges,
        arc.source().index(),
        arc.sink().index(),
    )
    .expect("lower bounds only: feasible")
}

/// Shared DFS state: the decided-prefix marker and per-edge minimum
/// durations are maintained incrementally instead of being rebuilt at
/// every search node (the search visits millions of nodes on gadget
/// instances).
struct SearchCtx<'a> {
    arc: &'a ArcInstance,
    jobs: Vec<rtt_dag::EdgeId>,
    levels: Vec<Resource>,
    decided: Vec<bool>,
    min_time: Vec<Time>,
}

impl<'a> SearchCtx<'a> {
    fn new(arc: &'a ArcInstance) -> Self {
        let d = arc.dag();
        let jobs = arc.improvable_edges();
        let min_time = d.edge_ids().map(|e| d.edge(e).duration.min_time()).collect();
        SearchCtx {
            arc,
            jobs,
            levels: vec![0; d.edge_count()],
            decided: vec![false; d.edge_count()],
            min_time,
        }
    }

    /// Optimistic completion bound: decided/unimprovable jobs at their
    /// chosen level, undecided jobs at their best conceivable duration.
    fn makespan_lb(&self) -> Time {
        let d = self.arc.dag();
        rtt_dag::longest_path_edges(d, |e| {
            let i = e.index();
            let dur = &d.edge(e).duration;
            if dur.len() < 2 || self.decided[i] {
                dur.time(self.levels[i])
            } else {
                self.min_time[i]
            }
        })
        .expect("acyclic")
        .weight
    }

    fn makespan(&self) -> Time {
        let d = self.arc.dag();
        rtt_dag::longest_path_edges(d, |e| d.edge(e).duration.time(self.levels[e.index()]))
            .expect("acyclic")
            .weight
    }
}

/// Exact minimum-makespan under budget `B` (Question 1.3 semantics:
/// resources reused over source→sink paths).
pub fn solve_exact(arc: &ArcInstance, budget: Resource) -> ExactSolution {
    solve_exact_metered(arc, budget, None).expect("an unmetered search cannot exhaust")
}

/// [`solve_exact`] under a cooperative budget meter: every search node
/// charges one `dp_merge_steps` unit (the combinatorial-work dimension
/// shared with the SP-DP), so the exponential search bails out with a
/// typed [`Exhausted`] instead of running away.
pub fn solve_exact_metered(
    arc: &ArcInstance,
    budget: Resource,
    meter: Option<&BudgetMeter>,
) -> Result<ExactSolution, Exhausted> {
    let d = arc.dag();
    let mut ctx = SearchCtx::new(arc);
    // start from the all-zero allocation: always feasible
    let base = routing(arc, &ctx.levels);

    struct Best {
        makespan: Time,
        levels: Vec<Resource>,
        flow: MinFlowResult,
        explored: u64,
    }

    // `flow_value`: min-flow value of the demands decided so far. Level 0
    // leaves the demands unchanged, so the parent's value carries over —
    // only nonzero levels pay for a flow computation.
    fn dfs(
        ctx: &mut SearchCtx,
        budget: Resource,
        idx: usize,
        flow_value: Resource,
        best: &mut Best,
        meter: Option<&BudgetMeter>,
    ) -> Result<(), Exhausted> {
        if let Some(m) = meter {
            m.charge_merge_steps(1)?;
        }
        if ctx.makespan_lb() >= best.makespan {
            return Ok(()); // cannot beat the incumbent
        }
        if idx == ctx.jobs.len() {
            best.explored += 1;
            let ms = ctx.makespan();
            if ms < best.makespan {
                let r = routing(ctx.arc, &ctx.levels);
                debug_assert!(r.value <= budget);
                best.makespan = ms;
                best.levels = ctx.levels.clone();
                best.flow = r;
            }
            return Ok(());
        }
        let e = ctx.jobs[idx];
        let ei = e.index();
        let options: Vec<Resource> = ctx
            .arc
            .dag()
            .edge(e)
            .duration
            .useful_levels()
            .filter(|&r| r <= budget) // a single job can never use more
            .collect();
        ctx.decided[ei] = true;
        for lvl in options {
            ctx.levels[ei] = lvl;
            let fv = if lvl == 0 {
                flow_value
            } else {
                let r = routing(ctx.arc, &ctx.levels);
                if r.value > budget {
                    continue; // demands are monotone: no deeper level helps
                }
                r.value
            };
            dfs(ctx, budget, idx + 1, fv, best, meter)?;
        }
        ctx.levels[ei] = 0;
        ctx.decided[ei] = false;
        Ok(())
    }

    let mut best = Best {
        makespan: arc.base_makespan(),
        levels: ctx.levels.clone(),
        flow: base,
        explored: 1,
    };
    dfs(&mut ctx, budget, 0, 0, &mut best, meter)?;

    let edge_times: Vec<Time> = d
        .edge_ids()
        .map(|e| d.edge(e).duration.time(best.levels[e.index()]))
        .collect();
    Ok(ExactSolution {
        solution: Solution {
            arc_flows: best.flow.edge_flow.clone(),
            edge_times,
            makespan: best.makespan,
            budget_used: best.flow.value,
        },
        levels: best.levels,
        explored: best.explored,
    })
}

/// Decision procedure: is there a routing within `budget` achieving
/// makespan `≤ target`? Returns a witness solution if so.
///
/// Much faster than [`solve_exact`] for gadget validation because it
/// prunes on *both* criteria: partial makespan lower bounds (optimistic
/// completion) against `target`, and partial min-flow lower bounds
/// (covering only the already-decided demands) against `budget` — the
/// latter cuts over-covering branches early, which is where the
/// hardness-gadget search trees explode.
pub fn decide_feasible(
    arc: &ArcInstance,
    budget: Resource,
    target: Time,
) -> Option<Solution> {
    let d = arc.dag();
    let mut ctx = SearchCtx::new(arc);

    // `flow_value` carries the min-flow of the already-decided demands;
    // choosing level 0 does not change the demands, so the flow is only
    // recomputed on nonzero levels (the search is dominated by zero-heavy
    // subtrees on gadget instances).
    fn dfs(
        ctx: &mut SearchCtx,
        budget: Resource,
        target: Time,
        idx: usize,
        flow_value: Resource,
    ) -> bool {
        if ctx.makespan_lb() > target {
            return false;
        }
        if idx == ctx.jobs.len() {
            return true;
        }
        let e = ctx.jobs[idx];
        let ei = e.index();
        // Prefer cheaper levels first: the zero level often suffices and
        // keeps the flow small.
        let options: Vec<Resource> = ctx
            .arc
            .dag()
            .edge(e)
            .duration
            .useful_levels()
            .filter(|&r| r <= budget)
            .collect();
        ctx.decided[ei] = true;
        for lvl in options {
            ctx.levels[ei] = lvl;
            let fv = if lvl == 0 {
                flow_value
            } else {
                // budget prune: demands decided so far already need this much
                let r = routing(ctx.arc, &ctx.levels);
                if r.value > budget {
                    continue;
                }
                r.value
            };
            if dfs(ctx, budget, target, idx + 1, fv) {
                return true;
            }
        }
        ctx.levels[ei] = 0;
        ctx.decided[ei] = false;
        false
    }

    if !dfs(&mut ctx, budget, target, 0, 0) {
        return None;
    }
    let flow = routing(arc, &ctx.levels);
    debug_assert!(flow.value <= budget);
    let edge_times: Vec<Time> = d
        .edge_ids()
        .map(|e| d.edge(e).duration.time(ctx.levels[e.index()]))
        .collect();
    let makespan = rtt_dag::longest_path_edges(d, |e| edge_times[e.index()])
        .expect("acyclic")
        .weight;
    debug_assert!(makespan <= target);
    Some(Solution {
        arc_flows: flow.edge_flow,
        edge_times,
        makespan,
        budget_used: flow.value,
    })
}

/// Exact minimum-resource: the least budget whose optimal makespan is
/// `≤ target`, or `None` if even unlimited resources cannot reach it.
pub fn solve_exact_min_resource(
    arc: &ArcInstance,
    target: Time,
) -> Option<(Resource, Solution)> {
    solve_exact_min_resource_metered(arc, target, None)
        .expect("an unmetered search cannot exhaust")
}

/// [`solve_exact_min_resource`] under a cooperative budget meter (one
/// `dp_merge_steps` charge per search node, as in [`solve_exact_metered`]).
pub fn solve_exact_min_resource_metered(
    arc: &ArcInstance,
    target: Time,
    meter: Option<&BudgetMeter>,
) -> Result<Option<(Resource, Solution)>, Exhausted> {
    if arc.ideal_makespan() > target {
        return Ok(None);
    }
    let d = arc.dag();
    let mut ctx = SearchCtx::new(arc);
    let mut best: Option<(Resource, Vec<Resource>, MinFlowResult)> = None;

    // `flow_value` carries the partial-demand min-flow (monotone in the
    // demands): subtrees already needing at least the incumbent's budget
    // are cut, and zero levels reuse the parent's value for free.
    fn dfs(
        ctx: &mut SearchCtx,
        target: Time,
        idx: usize,
        flow_value: Resource,
        best: &mut Option<(Resource, Vec<Resource>, MinFlowResult)>,
        meter: Option<&BudgetMeter>,
    ) -> Result<(), Exhausted> {
        if let Some(m) = meter {
            m.charge_merge_steps(1)?;
        }
        if let Some((b, _, _)) = best {
            if flow_value >= *b {
                return Ok(()); // cannot end below the incumbent's budget
            }
        }
        // optimistic makespan must already be reachable
        if ctx.makespan_lb() > target {
            return Ok(());
        }
        if idx == ctx.jobs.len() {
            if ctx.makespan() > target {
                return Ok(());
            }
            let r = routing(ctx.arc, &ctx.levels);
            if best.as_ref().is_none_or(|(b, _, _)| r.value < *b) {
                *best = Some((r.value, ctx.levels.clone(), r));
            }
            return Ok(());
        }
        let e = ctx.jobs[idx];
        let ei = e.index();
        let options: Vec<Resource> = ctx.arc.dag().edge(e).duration.useful_levels().collect();
        ctx.decided[ei] = true;
        for lvl in options {
            ctx.levels[ei] = lvl;
            let fv = if lvl == 0 {
                flow_value
            } else {
                routing(ctx.arc, &ctx.levels).value
            };
            dfs(ctx, target, idx + 1, fv, best, meter)?;
        }
        ctx.levels[ei] = 0;
        ctx.decided[ei] = false;
        Ok(())
    }

    dfs(&mut ctx, target, 0, 0, &mut best, meter)?;
    let Some((value, levels, flow)) = best else {
        return Ok(None);
    };
    let edge_times: Vec<Time> = d
        .edge_ids()
        .map(|e| d.edge(e).duration.time(levels[e.index()]))
        .collect();
    let makespan = rtt_dag::longest_path_edges(d, |e| edge_times[e.index()])
        .expect("acyclic")
        .weight;
    Ok(Some((
        value,
        Solution {
            arc_flows: flow.edge_flow,
            edge_times,
            makespan,
            budget_used: value,
        },
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, Job};
    use crate::solution::validate;
    use crate::transform::to_arc_form;
    use rtt_dag::Dag;
    use rtt_duration::Duration;

    fn serial_chain() -> ArcInstance {
        let mut g: Dag<Job, ()> = Dag::new();
        let s = g.add_node(Job::new(Duration::zero()));
        let x = g.add_node(Job::new(Duration::two_point(10, 4, 0)));
        let y = g.add_node(Job::new(Duration::two_point(8, 4, 2)));
        let t = g.add_node(Job::new(Duration::zero()));
        g.add_edge(s, x, ()).unwrap();
        g.add_edge(x, y, ()).unwrap();
        g.add_edge(y, t, ()).unwrap();
        to_arc_form(&Instance::new(g).unwrap()).0
    }

    fn parallel_pair() -> ArcInstance {
        let mut g: Dag<Job, ()> = Dag::new();
        let s = g.add_node(Job::new(Duration::zero()));
        let x = g.add_node(Job::new(Duration::two_point(10, 4, 0)));
        let y = g.add_node(Job::new(Duration::two_point(10, 4, 0)));
        let t = g.add_node(Job::new(Duration::zero()));
        g.add_edge(s, x, ()).unwrap();
        g.add_edge(s, y, ()).unwrap();
        g.add_edge(x, t, ()).unwrap();
        g.add_edge(y, t, ()).unwrap();
        to_arc_form(&Instance::new(g).unwrap()).0
    }

    #[test]
    fn serial_reuse_found() {
        let arc = serial_chain();
        // 4 units serve both jobs on the path: makespan 0 + 2 = 2.
        let r = solve_exact(&arc, 4);
        assert_eq!(r.solution.makespan, 2);
        assert!(r.solution.budget_used <= 4);
        validate(&arc, &r.solution).unwrap();
    }

    #[test]
    fn parallel_needs_double_budget() {
        let arc = parallel_pair();
        // 4 units can only fix one branch: makespan stays 10.
        assert_eq!(solve_exact(&arc, 4).solution.makespan, 10);
        // 8 units fix both: makespan 0.
        let r8 = solve_exact(&arc, 8);
        assert_eq!(r8.solution.makespan, 0);
        validate(&arc, &r8.solution).unwrap();
    }

    #[test]
    fn budget_zero_is_base_makespan() {
        let arc = serial_chain();
        let r = solve_exact(&arc, 0);
        assert_eq!(r.solution.makespan, arc.base_makespan());
        assert_eq!(r.solution.budget_used, 0);
    }

    #[test]
    fn monotone_in_budget() {
        let arc = serial_chain();
        let mut prev = Time::MAX;
        for b in 0..=8 {
            let ms = solve_exact(&arc, b).solution.makespan;
            assert!(ms <= prev, "budget {b}: {ms} > {prev}");
            prev = ms;
        }
    }

    #[test]
    fn exact_min_resource_inverse_of_makespan() {
        let arc = serial_chain();
        // target 18 (base): 0 units; target 2: 4 units (reuse);
        let (r0, _) = solve_exact_min_resource(&arc, 18).unwrap();
        assert_eq!(r0, 0);
        let (r2, sol2) = solve_exact_min_resource(&arc, 2).unwrap();
        assert_eq!(r2, 4);
        validate(&arc, &sol2).unwrap();
        // unreachable target
        assert!(solve_exact_min_resource(&arc, 1).is_none());
    }

    #[test]
    fn min_resource_parallel_no_reuse() {
        let arc = parallel_pair();
        let (r, sol) = solve_exact_min_resource(&arc, 0).unwrap();
        assert_eq!(r, 8, "parallel branches cannot share units");
        validate(&arc, &sol).unwrap();
    }
}
