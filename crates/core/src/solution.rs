//! Certified solutions on an [`ArcInstance`].

use crate::instance::ArcInstance;
use rtt_duration::{Resource, Time};
use rtt_flow::{decompose_paths, FlowPath};
use std::fmt;
use std::fmt::Write as _;

/// A solution to the resource-time tradeoff on an arc instance:
/// an integral resource routing plus the achieved per-arc durations.
///
/// `arc_flows` is the flow (units of resource) through each `D'` edge;
/// `edge_times` is the duration each activity actually runs at. The two
/// are kept separately because a purchase can be *partial* in terms of
/// the collapsed flow (e.g. resource passing through an arc en route to
/// a later job still shows up in its flow); `edge_times[e]` must simply
/// be achievable with `arc_flows[e]` units, i.e.
/// `duration.time(arc_flows[e]) ≤ edge_times[e] ≤ duration.time(0)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// Integral flow per `D'` edge.
    pub arc_flows: Vec<Resource>,
    /// Achieved duration per `D'` edge.
    pub edge_times: Vec<Time>,
    /// Makespan: longest path of `edge_times`.
    pub makespan: Time,
    /// Total resource leaving the source (the budget actually consumed).
    pub budget_used: Resource,
}

/// Why a claimed solution is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Vector lengths don't match the instance.
    ShapeMismatch,
    /// Flow conservation fails at an internal node.
    NotConserved {
        /// Node index in the arc instance.
        node: usize,
    },
    /// The source emits more than the claimed budget.
    BudgetExceeded {
        /// Source outflow.
        actual: Resource,
        /// Claimed budget.
        claimed: Resource,
    },
    /// An arc claims a duration faster than its flow can buy.
    TimeTooOptimistic {
        /// Edge index.
        edge: usize,
        /// Claimed duration.
        claimed: Time,
        /// Best achievable with the routed flow.
        achievable: Time,
    },
    /// An arc claims a duration slower than its zero-resource time
    /// (impossible: resources never hurt).
    TimeTooPessimistic {
        /// Edge index.
        edge: usize,
    },
    /// The claimed makespan does not equal the longest path of the
    /// claimed durations.
    MakespanMismatch {
        /// Claimed makespan.
        claimed: Time,
        /// Recomputed makespan.
        recomputed: Time,
    },
    /// The flow could not be decomposed into source→sink paths.
    NotRoutable,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::ShapeMismatch => write!(f, "solution shape mismatch"),
            ValidationError::NotConserved { node } => {
                write!(f, "flow not conserved at node {node}")
            }
            ValidationError::BudgetExceeded { actual, claimed } => {
                write!(f, "source emits {actual} > claimed budget {claimed}")
            }
            ValidationError::TimeTooOptimistic {
                edge,
                claimed,
                achievable,
            } => write!(
                f,
                "edge {edge} claims duration {claimed} < achievable {achievable}"
            ),
            ValidationError::TimeTooPessimistic { edge } => {
                write!(f, "edge {edge} claims duration above its zero-resource time")
            }
            ValidationError::MakespanMismatch { claimed, recomputed } => {
                write!(f, "claimed makespan {claimed} != recomputed {recomputed}")
            }
            ValidationError::NotRoutable => {
                write!(f, "flow cannot be decomposed into source-sink paths")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Fully certifies a solution against its instance:
///
/// 1. shapes match;
/// 2. the flow conserves at internal nodes and is path-decomposable
///    (every unit travels a source→sink path — Question 1.3);
/// 3. the source outflow equals `budget_used` (and is the budget the
///    caller should compare against `B`);
/// 4. every claimed duration is achievable: within
///    `[t_e(flow_e), t_e(0)]`;
/// 5. the claimed makespan equals the longest path of claimed durations.
pub fn validate(arc: &ArcInstance, sol: &Solution) -> Result<(), ValidationError> {
    let d = arc.dag();
    if sol.arc_flows.len() != d.edge_count() || sol.edge_times.len() != d.edge_count() {
        return Err(ValidationError::ShapeMismatch);
    }
    // conservation
    let mut net = vec![0i64; d.node_count()];
    for e in d.edge_refs() {
        let f = sol.arc_flows[e.id.index()] as i64;
        net[e.src.index()] -= f;
        net[e.dst.index()] += f;
    }
    for v in d.node_ids() {
        if v != arc.source() && v != arc.sink() && net[v.index()] != 0 {
            return Err(ValidationError::NotConserved { node: v.index() });
        }
    }
    let outflow: Resource = d
        .out_edges(arc.source())
        .iter()
        .map(|&e| sol.arc_flows[e.index()])
        .sum();
    if outflow > sol.budget_used {
        return Err(ValidationError::BudgetExceeded {
            actual: outflow,
            claimed: sol.budget_used,
        });
    }
    // routability (paths)
    let edge_list: Vec<(usize, usize)> = d
        .edge_refs()
        .map(|e| (e.src.index(), e.dst.index()))
        .collect();
    if decompose_paths(
        d.node_count(),
        &edge_list,
        &sol.arc_flows,
        arc.source().index(),
        arc.sink().index(),
    )
    .is_err()
    {
        return Err(ValidationError::NotRoutable);
    }
    // per-edge duration achievability
    for e in d.edge_ids() {
        let i = e.index();
        let best = arc.arc_time(e, sol.arc_flows[i]);
        let worst = arc.arc_time(e, 0);
        if sol.edge_times[i] < best {
            return Err(ValidationError::TimeTooOptimistic {
                edge: i,
                claimed: sol.edge_times[i],
                achievable: best,
            });
        }
        if sol.edge_times[i] > worst {
            return Err(ValidationError::TimeTooPessimistic { edge: i });
        }
    }
    // makespan
    let recomputed = rtt_dag::longest_path_edges(d, |e| sol.edge_times[e.index()])
        .expect("acyclic")
        .weight;
    if recomputed != sol.makespan {
        return Err(ValidationError::MakespanMismatch {
            claimed: sol.makespan,
            recomputed,
        });
    }
    Ok(())
}

/// One route of the plan: `amount` units travelling a source→sink path,
/// together with the jobs they actually expedite on the way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Edge indices of the path, source→sink order.
    pub edges: Vec<usize>,
    /// Units of resource travelling this route together.
    pub amount: Resource,
    /// Indices (into `edges`) of the arcs where the route's units take
    /// part in a purchase — the arc runs faster than its zero-resource
    /// duration in the solution.
    pub serves: Vec<usize>,
}

/// The per-unit routing certificate of Question 1.3: a decomposition of
/// the solution's flow into weighted source→sink paths. Every unit of the
/// consumed budget travels exactly one route and may speed up several
/// jobs along it — this is the object the paper's "space flows along the
/// edges, splitting and merging" story describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingPlan {
    /// The routes; amounts sum to the solution's `budget_used`.
    pub routes: Vec<Route>,
}

impl RoutingPlan {
    /// Total units routed (= the solution's consumed budget).
    pub fn total(&self) -> Resource {
        self.routes.iter().map(|r| r.amount).sum()
    }

    /// Human-readable rendering with arc labels from the instance.
    pub fn render(&self, arc: &ArcInstance) -> String {
        let d = arc.dag();
        let mut out = String::new();
        for (i, r) in self.routes.iter().enumerate() {
            let _ = write!(out, "route {i}: {} unit(s) via ", r.amount);
            for (j, &e) in r.edges.iter().enumerate() {
                if j > 0 {
                    out.push_str(" → ");
                }
                let a = d.edge(rtt_dag::EdgeId(e as u32));
                if a.label.is_empty() {
                    let _ = write!(out, "e{e}");
                } else {
                    out.push_str(&a.label);
                }
                if r.serves.contains(&j) {
                    out.push('*');
                }
            }
            out.push('\n');
        }
        let _ = write!(out, "total routed: {} unit(s); * = expedites the job", self.total());
        out
    }
}

/// Decomposes a (valid) solution's flow into the per-unit routes of
/// Question 1.3. Fails with [`ValidationError::NotRoutable`] if the flow
/// does not conserve or cannot be decomposed (i.e. [`validate`] would
/// reject it too).
pub fn routing_plan(arc: &ArcInstance, sol: &Solution) -> Result<RoutingPlan, ValidationError> {
    let d = arc.dag();
    if sol.arc_flows.len() != d.edge_count() {
        return Err(ValidationError::ShapeMismatch);
    }
    let edge_list: Vec<(usize, usize)> = d
        .edge_refs()
        .map(|e| (e.src.index(), e.dst.index()))
        .collect();
    let paths: Vec<FlowPath> = decompose_paths(
        d.node_count(),
        &edge_list,
        &sol.arc_flows,
        arc.source().index(),
        arc.sink().index(),
    )
    .map_err(|_| ValidationError::NotRoutable)?;
    let routes = paths
        .into_iter()
        .map(|p| {
            let serves = p
                .edges
                .iter()
                .enumerate()
                .filter(|&(_, &e)| {
                    let id = rtt_dag::EdgeId(e as u32);
                    sol.edge_times[e] < arc.arc_time(id, 0)
                })
                .map(|(j, _)| j)
                .collect();
            Route {
                edges: p.edges,
                amount: p.amount,
                serves,
            }
        })
        .collect();
    Ok(RoutingPlan { routes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Activity;
    use rtt_dag::Dag;
    use rtt_duration::Duration;

    /// s -> m -> t; first arc improvable {<0,9>,<2,3>}, second constant 4.
    fn two_arc_instance() -> ArcInstance {
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let m = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, m, Activity::new(Duration::two_point(9, 2, 3)))
            .unwrap();
        g.add_edge(m, t, Activity::new(Duration::constant(4)))
            .unwrap();
        ArcInstance::new(g).unwrap()
    }

    fn good_solution() -> Solution {
        Solution {
            arc_flows: vec![2, 2],
            edge_times: vec![3, 4],
            makespan: 7,
            budget_used: 2,
        }
    }

    #[test]
    fn valid_solution_accepted() {
        let arc = two_arc_instance();
        validate(&arc, &good_solution()).unwrap();
    }

    #[test]
    fn conservation_checked() {
        let arc = two_arc_instance();
        let mut sol = good_solution();
        sol.arc_flows = vec![2, 1];
        assert_eq!(
            validate(&arc, &sol),
            Err(ValidationError::NotConserved { node: 1 })
        );
    }

    #[test]
    fn budget_checked() {
        let arc = two_arc_instance();
        let mut sol = good_solution();
        sol.budget_used = 1;
        assert!(matches!(
            validate(&arc, &sol),
            Err(ValidationError::BudgetExceeded {
                actual: 2,
                claimed: 1
            })
        ));
    }

    #[test]
    fn optimistic_time_rejected() {
        let arc = two_arc_instance();
        let mut sol = good_solution();
        sol.arc_flows = vec![0, 0];
        sol.budget_used = 0;
        // claims duration 3 with zero flow: too optimistic
        assert!(matches!(
            validate(&arc, &sol),
            Err(ValidationError::TimeTooOptimistic { edge: 0, .. })
        ));
    }

    #[test]
    fn pessimistic_time_rejected() {
        let arc = two_arc_instance();
        let mut sol = good_solution();
        sol.edge_times = vec![10, 4];
        sol.makespan = 14;
        assert_eq!(
            validate(&arc, &sol),
            Err(ValidationError::TimeTooPessimistic { edge: 0 })
        );
    }

    #[test]
    fn makespan_mismatch_rejected() {
        let arc = two_arc_instance();
        let mut sol = good_solution();
        sol.makespan = 6;
        assert!(matches!(
            validate(&arc, &sol),
            Err(ValidationError::MakespanMismatch {
                claimed: 6,
                recomputed: 7
            })
        ));
    }

    #[test]
    fn wasteful_but_valid_solution_accepted() {
        let arc = two_arc_instance();
        // routes 2 units but claims the unimproved duration: wasteful, valid
        let sol = Solution {
            arc_flows: vec![2, 2],
            edge_times: vec![9, 4],
            makespan: 13,
            budget_used: 2,
        };
        validate(&arc, &sol).unwrap();
    }

    #[test]
    fn shape_mismatch_rejected() {
        let arc = two_arc_instance();
        let mut sol = good_solution();
        sol.arc_flows.push(0);
        assert_eq!(validate(&arc, &sol), Err(ValidationError::ShapeMismatch));
    }

    #[test]
    fn routing_plan_covers_the_flow() {
        let arc = two_arc_instance();
        let sol = good_solution();
        let plan = routing_plan(&arc, &sol).unwrap();
        assert_eq!(plan.total(), 2);
        // re-accumulate per-edge coverage and compare to the flow
        let mut covered = vec![0u64; sol.arc_flows.len()];
        for r in &plan.routes {
            for &e in &r.edges {
                covered[e] += r.amount;
            }
        }
        assert_eq!(covered, sol.arc_flows);
    }

    #[test]
    fn routing_plan_marks_served_jobs() {
        let arc = two_arc_instance();
        let sol = good_solution();
        let plan = routing_plan(&arc, &sol).unwrap();
        // edge 0 runs at 3 < 9: served; edge 1 is constant: not served
        assert_eq!(plan.routes.len(), 1);
        assert_eq!(plan.routes[0].serves, vec![0]);
        let text = plan.render(&arc);
        assert!(text.contains("2 unit(s)"));
        assert!(text.contains('*'));
    }

    #[test]
    fn routing_plan_rejects_unroutable_flow() {
        let arc = two_arc_instance();
        let mut sol = good_solution();
        sol.arc_flows = vec![2, 1]; // conservation broken at the middle
        assert_eq!(
            routing_plan(&arc, &sol),
            Err(ValidationError::NotRoutable)
        );
    }

    #[test]
    fn routing_plan_empty_for_zero_budget() {
        let arc = two_arc_instance();
        let sol = Solution {
            arc_flows: vec![0, 0],
            edge_times: vec![9, 4],
            makespan: 13,
            budget_used: 0,
        };
        let plan = routing_plan(&arc, &sol).unwrap();
        assert!(plan.routes.is_empty());
        assert_eq!(plan.total(), 0);
    }

    #[test]
    fn routing_plan_on_exact_solver_output() {
        // end to end: solver → plan; amounts must equal the budget used
        use crate::exact::solve_exact;
        use crate::instance::{Instance, Job};
        let mut g: Dag<Job, ()> = Dag::new();
        let s = g.add_node(Job::new(Duration::zero()));
        let x = g.add_node(Job::new(Duration::two_point(10, 4, 0)));
        let y = g.add_node(Job::new(Duration::two_point(8, 4, 2)));
        let t = g.add_node(Job::new(Duration::zero()));
        g.add_edge(s, x, ()).unwrap();
        g.add_edge(x, y, ()).unwrap();
        g.add_edge(y, t, ()).unwrap();
        let (arc, _) = crate::transform::to_arc_form(&Instance::new(g).unwrap());
        let r = solve_exact(&arc, 4);
        let plan = routing_plan(&arc, &r.solution).unwrap();
        assert_eq!(plan.total(), r.solution.budget_used);
        // the same 4 units serve both jobs along one route
        assert_eq!(plan.routes.len(), 1);
        assert_eq!(plan.routes[0].amount, 4);
        assert_eq!(plan.routes[0].serves.len(), 2);
    }
}
