//! Conversion layer: programs with races → solver instances.
//!
//! The paper's arc is *detect races → capture them as the race DAG
//! `D(P)` → place reducers optimally* (§1, Figures 1–3). This module is
//! the middle seam as a first-class API: it turns an extracted
//! [`RaceDag`] (or a whole program) into an [`Instance`] the solver
//! stack serves, with `w_x = d_in(x)` and duration functions drawn from
//! one of the paper's reducer families ([`ReducerFamily`]). Raw race
//! DAGs have arbitrarily many sources (pure inputs) and sinks, so the
//! conversion normalizes through
//! [`Instance::race_dag_normalized`] — the added terminals are
//! zero-work pure precedences (the §2 dummy-arc convention).

use crate::instance::{Instance, InstanceError};
use rtt_duration::{Duration, Time};
use rtt_race::extract::{extract_race_dag, ExtractError, RaceDag};
use rtt_race::program::Prog;
use std::fmt;
use std::str::FromStr;

/// Which reducer family supplies the duration functions `t_v(r)` of a
/// race-derived instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReducerFamily {
    /// k-way splitting (Eq. 2): `⌈d/k⌉ + k` for `2 ≤ k ≤ ⌊√d⌋`.
    KWay,
    /// Recursive binary splitting (Eq. 3): `⌈d/2^h⌉ + h + 1` with `2^h`
    /// cells.
    RecursiveBinary,
}

impl ReducerFamily {
    /// The duration function this family induces on a cell applying
    /// `work` updates.
    pub fn duration(self, work: Time) -> Duration {
        match self {
            ReducerFamily::KWay => Duration::kway(work),
            ReducerFamily::RecursiveBinary => Duration::recursive_binary(work),
        }
    }

    /// Stable lowercase name (`kway` / `recbinary`), matching the CLI's
    /// `--family` values and the instance-schema duration kinds.
    pub fn as_str(self) -> &'static str {
        match self {
            ReducerFamily::KWay => "kway",
            ReducerFamily::RecursiveBinary => "recbinary",
        }
    }
}

impl fmt::Display for ReducerFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ReducerFamily {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "kway" => Ok(ReducerFamily::KWay),
            "recbinary" => Ok(ReducerFamily::RecursiveBinary),
            other => Err(format!(
                "unknown reducer family {other:?} (expected kway or recbinary)"
            )),
        }
    }
}

/// Why a program could not be converted into an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FromRaceError {
    /// Race-DAG extraction failed (cyclic read-write dependencies).
    Extract(ExtractError),
    /// The extracted DAG was rejected by the instance constructor.
    Instance(InstanceError),
}

impl fmt::Display for FromRaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromRaceError::Extract(e) => write!(f, "extracting race DAG: {e}"),
            FromRaceError::Instance(e) => write!(f, "building instance: {e}"),
        }
    }
}

impl std::error::Error for FromRaceError {}

impl From<ExtractError> for FromRaceError {
    fn from(e: ExtractError) -> Self {
        FromRaceError::Extract(e)
    }
}

impl From<InstanceError> for FromRaceError {
    fn from(e: InstanceError) -> Self {
        FromRaceError::Instance(e)
    }
}

/// Builds the solver instance of an extracted race DAG: every memory
/// location becomes a job of work `d_in(x)` (one unit per update, §1)
/// with the family's duration function, and the DAG is normalized to a
/// single zero-work source and sink.
pub fn instance_from_race_dag(
    rd: &RaceDag,
    family: ReducerFamily,
) -> Result<Instance, InstanceError> {
    Instance::race_dag_normalized(&rd.dag, |w| family.duration(w))
}

/// The whole seam in one call: detect-free conversion of a fork-join
/// program into a solver instance via its race DAG. (Race *detection*
/// is diagnostic — extraction consumes every update, racing or not.)
pub fn instance_from_program(
    prog: &Prog,
    family: ReducerFamily,
) -> Result<Instance, FromRaceError> {
    let rd = extract_race_dag(prog)?;
    Ok(instance_from_race_dag(&rd, family)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_race::mm;

    #[test]
    fn racy_mm_converts_with_indegree_works() {
        let n = 3u64;
        let (p, layout) = mm::parallel_mm_racy(n);
        let rd = extract_race_dag(&p).unwrap();
        let inst = instance_from_race_dag(&rd, ReducerFamily::RecursiveBinary).unwrap();
        // 2n² cells (X sources + Z outputs) + the two added terminals
        assert_eq!(inst.job_count(), (2 * n * n + 2) as usize);
        // every Z job has base duration n (= its in-degree)
        let z = rd.node_of[&layout.z(1, 2)];
        assert_eq!(inst.dag().node(z).duration.base_time(), n);
        // base makespan = longest path of works = n (one Z cell)
        assert_eq!(inst.base_makespan(), n);
    }

    #[test]
    fn program_conversion_matches_two_step_conversion() {
        let (p, _) = mm::parallel_mm_racy(2);
        let one = instance_from_program(&p, ReducerFamily::KWay).unwrap();
        let rd = extract_race_dag(&p).unwrap();
        let two = instance_from_race_dag(&rd, ReducerFamily::KWay).unwrap();
        assert_eq!(one.job_count(), two.job_count());
        assert_eq!(one.base_makespan(), two.base_makespan());
    }

    #[test]
    fn cyclic_program_reports_extract_error() {
        let p = Prog::Seq(vec![
            Prog::update(1, Some(0), vec![]),
            Prog::update(0, Some(1), vec![]),
        ]);
        assert!(matches!(
            instance_from_program(&p, ReducerFamily::KWay),
            Err(FromRaceError::Extract(ExtractError::CyclicDependencies))
        ));
    }

    #[test]
    fn family_parsing_round_trips() {
        for f in [ReducerFamily::KWay, ReducerFamily::RecursiveBinary] {
            assert_eq!(f.as_str().parse::<ReducerFamily>().unwrap(), f);
        }
        assert!("exotic".parse::<ReducerFamily>().is_err());
        assert_eq!(ReducerFamily::KWay.duration(100).time(10), 20);
        assert_eq!(ReducerFamily::RecursiveBinary.duration(1024).time(8), 132);
    }
}
