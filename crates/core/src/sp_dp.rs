//! §3.4: pseudo-polynomial exact algorithm for series-parallel DAGs.
//!
//! A series-parallel graph decomposes into a rooted binary tree `T_G` of
//! series and parallel compositions. With `T(v, λ)` = optimal makespan of
//! the sub-DAG `G_v` using `λ` units,
//!
//! ```text
//! T(leaf j, λ)     = t_j(λ)                      (spend what flows through)
//! T(series,  λ)    = T(left, λ) + T(right, λ)    (reuse over the path!)
//! T(parallel, λ)   = min_{0 ≤ i ≤ λ} max(T(left, i), T(right, λ − i))
//! ```
//!
//! — overall `O(m B²)` time, `O(m B)` space. The series rule is where
//! *resource reuse over paths* enters: both children see the full λ.

use crate::instance::ArcInstance;
use crate::solution::Solution;
use rtt_dag::sp::{decompose, SpKind, SpTree};
use rtt_dag::EdgeId;
use rtt_duration::{Duration, Resource, Time};
use rtt_flow::{min_flow, BoundedEdge};

/// Result of the series-parallel DP.
#[derive(Debug, Clone)]
pub struct SpSolution {
    /// Optimal makespan using the full budget.
    pub makespan: Time,
    /// Optimal makespan for *every* budget `0..=B` (root table) — row
    /// `λ` answers "what if the budget were λ", so one DP run yields the
    /// whole tradeoff curve.
    pub curve: Vec<Time>,
    /// Per-edge resource level in an optimal allocation at budget `B`.
    pub levels: Vec<Resource>,
}

/// Runs the DP on an explicit decomposition tree.
///
/// `duration_of(e)` supplies each leaf's duration function; `budget` is
/// `B`. Returns the root table and an optimal allocation.
pub fn solve_sp_tree(
    tree: &SpTree,
    mut duration_of: impl FnMut(EdgeId) -> Duration,
    budget: Resource,
) -> (Vec<Time>, Vec<(EdgeId, Resource)>) {
    let b = budget as usize;
    let order = tree.post_order();
    // tables[node] = Vec<Time> of length b+1
    let mut tables: Vec<Option<Vec<Time>>> = vec![None; tree.len()];
    // split choice for parallel nodes (per λ), for allocation recovery
    let mut splits: Vec<Option<Vec<u32>>> = vec![None; tree.len()];
    // cached durations for leaves (recovery needs them again)
    let mut durs: Vec<Option<Duration>> = vec![None; tree.len()];

    for id in &order {
        let table = match tree.kind(*id) {
            SpKind::Leaf(e) => {
                let dur = duration_of(e);
                let t: Vec<Time> = (0..=b).map(|l| dur.time(l as Resource)).collect();
                durs[id.index()] = Some(dur);
                t
            }
            SpKind::Series(x, y) => {
                let tx = tables[x.index()].as_ref().expect("post-order");
                let ty = tables[y.index()].as_ref().expect("post-order");
                (0..=b)
                    .map(|l| tx[l].saturating_add(ty[l]))
                    .collect()
            }
            SpKind::Parallel(x, y) => {
                let tx = tables[x.index()].as_ref().expect("post-order");
                let ty = tables[y.index()].as_ref().expect("post-order");
                let mut t = vec![Time::MAX; b + 1];
                let mut choice = vec![0u32; b + 1];
                for l in 0..=b {
                    for i in 0..=l {
                        let v = tx[i].max(ty[l - i]);
                        if v < t[l] {
                            t[l] = v;
                            choice[l] = i as u32;
                        }
                    }
                }
                splits[id.index()] = Some(choice);
                t
            }
        };
        tables[id.index()] = Some(table);
    }

    let root_table = tables[tree.root().index()].clone().expect("root computed");

    // ---- allocation recovery (iterative stack walk)
    let mut alloc: Vec<(EdgeId, Resource)> = Vec::new();
    let mut stack = vec![(tree.root(), budget)];
    while let Some((id, lambda)) = stack.pop() {
        match tree.kind(id) {
            SpKind::Leaf(e) => {
                let dur = durs[id.index()].as_ref().expect("leaf evaluated");
                let t = tables[id.index()].as_ref().expect("leaf table")[lambda as usize];
                let spend = dur.resource_for_time(t).unwrap_or(0);
                alloc.push((e, spend));
            }
            SpKind::Series(x, y) => {
                // reuse over the path: both children get the full λ
                stack.push((x, lambda));
                stack.push((y, lambda));
            }
            SpKind::Parallel(x, y) => {
                let i = splits[id.index()].as_ref().expect("parallel split")
                    [lambda as usize] as Resource;
                stack.push((x, i));
                stack.push((y, lambda - i));
            }
        }
    }
    (root_table, alloc)
}

/// Exact minimum-makespan for a series-parallel [`ArcInstance`]:
/// decomposes the DAG, runs the DP, and certifies the allocation by
/// routing it with a min-flow. Returns `None` if the instance is not
/// two-terminal series-parallel.
pub fn solve_sp_exact(arc: &ArcInstance, budget: Resource) -> Option<(SpSolution, Solution)> {
    let d = arc.dag();
    let tree = decompose(d, arc.source(), arc.sink())?;
    let (curve, alloc) = solve_sp_tree(
        &tree,
        |e| d.edge(e).duration.clone(),
        budget,
    );
    let makespan = curve[budget as usize];
    let mut levels = vec![0u64; d.edge_count()];
    for (e, r) in &alloc {
        levels[e.index()] = *r;
    }
    // route the allocation (must fit in the budget by DP correctness)
    let edges: Vec<BoundedEdge> = d
        .edge_refs()
        .map(|e| BoundedEdge::at_least(e.src.index(), e.dst.index(), levels[e.id.index()]))
        .collect();
    let flow = min_flow(
        d.node_count(),
        &edges,
        arc.source().index(),
        arc.sink().index(),
    )
    .expect("lower bounds only");
    debug_assert!(
        flow.value <= budget,
        "DP allocation must be routable within B: {} > {budget}",
        flow.value
    );
    let edge_times: Vec<Time> = d
        .edge_ids()
        .map(|e| d.edge(e).duration.time(levels[e.index()]))
        .collect();
    let recomputed = rtt_dag::longest_path_edges(d, |e| edge_times[e.index()])
        .expect("acyclic")
        .weight;
    debug_assert_eq!(recomputed, makespan, "DP value must match its allocation");
    Some((
        SpSolution {
            makespan,
            curve,
            levels,
        },
        Solution {
            arc_flows: flow.edge_flow,
            edge_times,
            makespan: recomputed,
            budget_used: flow.value,
        },
    ))
}

/// Exact minimum-resource for a series-parallel instance: the smallest
/// `λ ≤ budget_cap` with `T(root, λ) ≤ target` (one DP run gives the
/// whole curve). `None` if unreachable within the cap or not SP.
pub fn sp_min_resource(
    arc: &ArcInstance,
    target: Time,
    budget_cap: Resource,
) -> Option<Resource> {
    let d = arc.dag();
    let tree = decompose(d, arc.source(), arc.sink())?;
    let (curve, _) = solve_sp_tree(&tree, |e| d.edge(e).duration.clone(), budget_cap);
    curve
        .iter()
        .position(|&t| t <= target)
        .map(|i| i as Resource)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use crate::instance::{Activity, Instance, Job};
    use crate::solution::validate;
    use crate::transform::to_arc_form;
    use rtt_dag::Dag;

    fn serial_chain() -> ArcInstance {
        let mut g: Dag<Job, ()> = Dag::new();
        let s = g.add_node(Job::new(Duration::zero()));
        let x = g.add_node(Job::new(Duration::two_point(10, 4, 0)));
        let y = g.add_node(Job::new(Duration::two_point(8, 4, 2)));
        let t = g.add_node(Job::new(Duration::zero()));
        g.add_edge(s, x, ()).unwrap();
        g.add_edge(x, y, ()).unwrap();
        g.add_edge(y, t, ()).unwrap();
        to_arc_form(&Instance::new(g).unwrap()).0
    }

    #[test]
    fn chain_curve_and_reuse() {
        let arc = serial_chain();
        let (sp, sol) = solve_sp_exact(&arc, 6).unwrap();
        // curve: λ=0 → 18; λ=4 → 2 (both jobs share the 4 units).
        assert_eq!(sp.curve[0], 18);
        assert_eq!(sp.curve[4], 2);
        assert_eq!(sp.curve[6], 2);
        validate(&arc, &sol).unwrap();
    }

    #[test]
    fn matches_bruteforce_on_chain() {
        let arc = serial_chain();
        for b in 0..=8u64 {
            let (sp, _) = solve_sp_exact(&arc, b).unwrap();
            let ex = solve_exact(&arc, b);
            assert_eq!(
                sp.makespan, ex.solution.makespan,
                "budget {b}: DP vs brute force"
            );
        }
    }

    #[test]
    fn parallel_split_optimal() {
        // Two parallel improvable activities with different gains.
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, Activity::new(Duration::two_point(10, 2, 1)))
            .unwrap();
        g.add_edge(s, t, Activity::new(Duration::two_point(9, 3, 0)))
            .unwrap();
        let arc = ArcInstance::new(g).unwrap();
        let (sp, sol) = solve_sp_exact(&arc, 5).unwrap();
        // λ=5: split 2/3 → max(1, 0) = 1.
        assert_eq!(sp.makespan, 1);
        assert_eq!(sol.budget_used, 5);
        // λ=4: can only fix one: max(1,9)=9 or max(10,0)=10 → 9.
        assert_eq!(sp.curve[4], 9);
        validate(&arc, &sol).unwrap();
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let arc = serial_chain();
        let (sp, _) = solve_sp_exact(&arc, 10).unwrap();
        for w in sp.curve.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn min_resource_from_curve() {
        let arc = serial_chain();
        assert_eq!(sp_min_resource(&arc, 18, 10), Some(0));
        assert_eq!(sp_min_resource(&arc, 2, 10), Some(4));
        assert_eq!(sp_min_resource(&arc, 1, 10), None);
    }

    #[test]
    fn non_sp_instance_returns_none() {
        // Wheatstone bridge is not series-parallel.
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        for (u, v) in [(s, a), (s, b), (a, b), (a, t), (b, t)] {
            g.add_edge(u, v, Activity::new(Duration::constant(1)))
                .unwrap();
        }
        let arc = ArcInstance::new(g).unwrap();
        assert!(solve_sp_exact(&arc, 3).is_none());
    }

    #[test]
    fn budget_zero_table() {
        let arc = serial_chain();
        let (sp, sol) = solve_sp_exact(&arc, 0).unwrap();
        assert_eq!(sp.makespan, 18);
        assert_eq!(sol.budget_used, 0);
        assert_eq!(sp.curve.len(), 1);
    }
}
