//! §3.4: pseudo-polynomial exact algorithm for series-parallel DAGs.
//!
//! A series-parallel graph decomposes into a rooted binary tree `T_G` of
//! series and parallel compositions. With `T(v, λ)` = optimal makespan of
//! the sub-DAG `G_v` using `λ` units,
//!
//! ```text
//! T(leaf j, λ)     = t_j(λ)                      (spend what flows through)
//! T(series,  λ)    = T(left, λ) + T(right, λ)    (reuse over the path!)
//! T(parallel, λ)   = min_{0 ≤ i ≤ λ} max(T(left, i), T(right, λ − i))
//! ```
//!
//! The series rule is where *resource reuse over paths* enters: both
//! children see the full λ.
//!
//! # The `O(mB)` monotone merge
//!
//! The paper evaluates the parallel rule with an `O(B)` scan per budget,
//! `O(B²)` per parallel node and `O(mB²)` overall. This implementation
//! exploits that every DP table is **nonincreasing in λ** (more budget
//! never hurts) to compute all `B + 1` outputs of a parallel node in a
//! single two-pointer sweep:
//!
//! For fixed `λ`, `f(i) = max(T_x(i), T_y(λ − i))` is the max of a
//! nonincreasing and a nondecreasing sequence in `i`, so it is
//! V-shaped: it equals `T_x(i)` strictly before the *crossing index*
//! `c(λ) = min { i : T_x(i) ≤ T_y(λ − i) }` and `T_y(λ − i)` from `c(λ)`
//! on. The minimum is therefore attained at `c(λ)` or `c(λ) − 1`.
//! Raising `λ` by one only lowers the right-hand side `T_y(λ − i)`, so
//! `c(λ)` is **nondecreasing in λ** — one pointer advancing across the
//! whole sweep visits every crossing index in `O(B)` amortized total
//! steps ([`parallel_merge_monotone`]). That drops the DP to `O(B)` per
//! node and `O(mB)` overall; `tests` and `proptest_invariants.rs` pin it
//! against the naive scan ([`parallel_merge_naive`]).
//!
//! # Table arena
//!
//! Child tables are recycled into an arena the moment their parent's
//! table is computed, so the number of *live* `B + 1`-entry tables is
//! bounded by the decomposition-tree depth (plus the arena's free list
//! reusing their allocations) instead of `m`. [`SpDpStats`] reports
//! cells written, merge steps, and the live-table high-water mark;
//! `rtt_bench`'s `bench-pr1` harness records them in `BENCH_pr1.json`
//! as evidence of the `O(mB)` bound.

use crate::instance::ArcInstance;
use crate::solution::Solution;
use rtt_budget::{BudgetMeter, Exhausted};
use rtt_dag::sp::{decompose, SpKind, SpTree};
use rtt_dag::EdgeId;
use rtt_duration::{Duration, Resource, Time};
use rtt_flow::{min_flow, BoundedEdge};

/// Result of the series-parallel DP.
#[derive(Debug, Clone)]
pub struct SpSolution {
    /// Optimal makespan using the full budget.
    pub makespan: Time,
    /// Optimal makespan for *every* budget `0..=B` (root table) — row
    /// `λ` answers "what if the budget were λ", so one DP run yields the
    /// whole tradeoff curve.
    pub curve: Vec<Time>,
    /// Per-edge resource level in an optimal allocation at budget `B`.
    pub levels: Vec<Resource>,
}

/// Work counters for one DP run (see the module docs; surfaced in
/// `BENCH_pr1.json` to certify the `O(mB)` bound empirically).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpDpStats {
    /// Leaf nodes evaluated.
    pub leaves: usize,
    /// Series compositions merged.
    pub series: usize,
    /// Parallel compositions merged.
    pub parallels: usize,
    /// Table entries written (`(B+1) ·` nodes — the `O(mB)` term).
    pub cells: u64,
    /// Inner-loop steps across all parallel merges (two-pointer sweeps:
    /// `≤ 2(B+1)` per parallel node; the naive scan pays `Θ(B²)`).
    pub merge_steps: u64,
    /// High-water mark of simultaneously live DP tables (bounded by the
    /// decomposition-tree depth thanks to the arena, not by `m`).
    pub peak_live_tables: usize,
}

/// Merges two nonincreasing child tables at a parallel node in one
/// two-pointer sweep: `out[λ] = min_i max(tx[i], ty[λ−i])` for every
/// `λ` at once, `O(B)` amortized (see the module docs for the
/// crossing-index argument). `choice[λ]` records an optimal split `i`.
/// Returns the number of inner-loop steps taken.
pub fn parallel_merge_monotone(
    tx: &[Time],
    ty: &[Time],
    out: &mut Vec<Time>,
    choice: &mut Vec<u32>,
) -> u64 {
    debug_assert_eq!(tx.len(), ty.len());
    debug_assert!(tx.windows(2).all(|w| w[1] <= w[0]), "tx must be nonincreasing");
    debug_assert!(ty.windows(2).all(|w| w[1] <= w[0]), "ty must be nonincreasing");
    out.clear();
    choice.clear();
    let mut i = 0usize;
    let mut steps = 0u64;
    for l in 0..tx.len() {
        // advance to the crossing index c(l) = min { i : tx[i] ≤ ty[l−i] };
        // c is nondecreasing in l, so `i` never moves backwards
        while i < l && tx[i] > ty[l - i] {
            i += 1;
            steps += 1;
        }
        // the V-shape leaves exactly two candidates: c(l) and c(l) − 1
        let mut best = tx[i].max(ty[l - i]);
        let mut split = i;
        if i > 0 {
            let alt = tx[i - 1].max(ty[l - i + 1]);
            if alt < best {
                best = alt;
                split = i - 1;
            }
        }
        out.push(best);
        choice.push(split as u32);
        steps += 1;
    }
    steps
}

/// The paper's direct `O(B²)` parallel-node scan, retained as the
/// differential-testing and benchmarking baseline for
/// [`parallel_merge_monotone`].
pub fn parallel_merge_naive(tx: &[Time], ty: &[Time]) -> (Vec<Time>, Vec<u32>) {
    debug_assert_eq!(tx.len(), ty.len());
    if tx.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let b = tx.len() - 1;
    let mut t = vec![Time::MAX; b + 1];
    let mut choice = vec![0u32; b + 1];
    for l in 0..=b {
        for i in 0..=l {
            let v = tx[i].max(ty[l - i]);
            if v < t[l] {
                t[l] = v;
                choice[l] = i as u32;
            }
        }
    }
    (t, choice)
}

/// Recycles table allocations so at most tree-depth-many are live.
#[derive(Default)]
struct TableArena {
    free: Vec<Vec<Time>>,
    live: usize,
    peak: usize,
}

impl TableArena {
    fn alloc(&mut self) -> Vec<Time> {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        self.free.pop().unwrap_or_default()
    }

    fn recycle(&mut self, mut table: Vec<Time>) {
        table.clear();
        self.live -= 1;
        self.free.push(table);
    }
}

/// Root table, optimal allocation, and work counters from one DP run —
/// what [`solve_sp_tree_with_stats`] and [`solve_sp_tree_metered`]
/// return.
pub type SpDpSolution = (Vec<Time>, Vec<(EdgeId, Resource)>, SpDpStats);

/// Runs the DP on an explicit decomposition tree.
///
/// `duration_of(e)` supplies each leaf's duration function; `budget` is
/// `B`. Returns the root table and an optimal allocation.
pub fn solve_sp_tree(
    tree: &SpTree,
    duration_of: impl FnMut(EdgeId) -> Duration,
    budget: Resource,
) -> (Vec<Time>, Vec<(EdgeId, Resource)>) {
    let (table, alloc, _) = solve_sp_tree_with_stats(tree, duration_of, budget);
    (table, alloc)
}

/// [`solve_sp_tree`] with work counters for benchmarking.
pub fn solve_sp_tree_with_stats(
    tree: &SpTree,
    duration_of: impl FnMut(EdgeId) -> Duration,
    budget: Resource,
) -> SpDpSolution {
    solve_sp_tree_metered(tree, duration_of, budget, None)
        .expect("an unmetered DP cannot exhaust")
}

/// [`solve_sp_tree_with_stats`] under a cooperative budget meter: each
/// parallel merge charges its two-pointer step count to the
/// `dp_merge_steps` dimension (one batched charge per node — the same
/// quantity [`SpDpStats::merge_steps`] reports), so an over-budget DP
/// stops at the next parallel node with a typed [`Exhausted`].
pub fn solve_sp_tree_metered(
    tree: &SpTree,
    mut duration_of: impl FnMut(EdgeId) -> Duration,
    budget: Resource,
    meter: Option<&BudgetMeter>,
) -> Result<SpDpSolution, Exhausted> {
    let b = budget as usize;
    let order = tree.post_order();
    let mut stats = SpDpStats::default();
    let mut arena = TableArena::default();
    // tables[node] = Vec<Time> of length b+1, taken (and recycled) by
    // the parent as soon as it has merged them
    let mut tables: Vec<Option<Vec<Time>>> = vec![None; tree.len()];
    // split choice for parallel nodes (per λ), for allocation recovery
    let mut splits: Vec<Option<Vec<u32>>> = vec![None; tree.len()];
    // cached durations for leaves (recovery needs them again)
    let mut durs: Vec<Option<Duration>> = vec![None; tree.len()];

    for id in &order {
        let table = match tree.kind(*id) {
            SpKind::Leaf(e) => {
                let dur = duration_of(e);
                let mut t = arena.alloc();
                t.extend((0..=b).map(|l| dur.time(l as Resource)));
                durs[id.index()] = Some(dur);
                stats.leaves += 1;
                t
            }
            SpKind::Series(x, y) => {
                let tx = tables[x.index()].take().expect("post-order");
                let ty = tables[y.index()].take().expect("post-order");
                let mut t = arena.alloc();
                t.extend(
                    tx.iter()
                        .zip(&ty)
                        .map(|(&a, &b)| a.saturating_add(b)),
                );
                arena.recycle(tx);
                arena.recycle(ty);
                stats.series += 1;
                t
            }
            SpKind::Parallel(x, y) => {
                let tx = tables[x.index()].take().expect("post-order");
                let ty = tables[y.index()].take().expect("post-order");
                let mut t = arena.alloc();
                let mut choice = Vec::with_capacity(b + 1);
                let steps = parallel_merge_monotone(&tx, &ty, &mut t, &mut choice);
                stats.merge_steps += steps;
                if let Some(m) = meter {
                    m.charge_merge_steps(steps)?;
                }
                arena.recycle(tx);
                arena.recycle(ty);
                splits[id.index()] = Some(choice);
                stats.parallels += 1;
                t
            }
        };
        stats.cells += (b + 1) as u64;
        tables[id.index()] = Some(table);
    }
    stats.peak_live_tables = arena.peak;

    let root_table = tables[tree.root().index()].take().expect("root computed");

    // ---- allocation recovery (iterative stack walk)
    let mut alloc: Vec<(EdgeId, Resource)> = Vec::new();
    let mut stack = vec![(tree.root(), budget)];
    while let Some((id, lambda)) = stack.pop() {
        match tree.kind(id) {
            SpKind::Leaf(e) => {
                // leaf tables were recycled; t(λ) is just the duration
                let dur = durs[id.index()].as_ref().expect("leaf evaluated");
                let t = dur.time(lambda);
                let spend = dur.resource_for_time(t).unwrap_or(0);
                alloc.push((e, spend));
            }
            SpKind::Series(x, y) => {
                // reuse over the path: both children get the full λ
                stack.push((x, lambda));
                stack.push((y, lambda));
            }
            SpKind::Parallel(x, y) => {
                let i = splits[id.index()].as_ref().expect("parallel split")
                    [lambda as usize] as Resource;
                stack.push((x, i));
                stack.push((y, lambda - i));
            }
        }
    }
    Ok((root_table, alloc, stats))
}

/// One subtree's evaluation: its root table plus the per-node
/// artifacts ([`SpDpStats`], parallel-split choices, leaf durations)
/// the caller scatters back into id-indexed slots. Keyed by node id,
/// so merging is independent of which worker produced what.
struct SubEval {
    table: Vec<Time>,
    splits: Vec<(u32, Vec<u32>)>,
    durs: Vec<(u32, Duration)>,
    stats: SpDpStats,
}

/// Post-order of the subtree rooted at `root` (iterative — decomposition
/// trees of long chains are spine-deep).
fn subtree_post_order(tree: &SpTree, root: rtt_dag::sp::SpNodeId) -> Vec<rtt_dag::sp::SpNodeId> {
    let mut out = Vec::new();
    let mut stack = vec![(root, false)];
    while let Some((id, expanded)) = stack.pop() {
        if expanded {
            out.push(id);
            continue;
        }
        stack.push((id, true));
        if let SpKind::Series(x, y) | SpKind::Parallel(x, y) = tree.kind(id) {
            stack.push((y, false));
            stack.push((x, false));
        }
    }
    out
}

/// Serially evaluates one subtree with its own [`TableArena`] (the
/// deterministic per-subtree arena handout: a worker's allocations
/// never depend on what other workers are doing). Tables live on a
/// value stack in post-order, so liveness stays bounded by the subtree
/// depth exactly as in the whole-tree walk.
fn eval_subtree_serial(
    tree: &SpTree,
    duration_of: &(impl Fn(EdgeId) -> Duration + Sync),
    b: usize,
    root: rtt_dag::sp::SpNodeId,
) -> SubEval {
    let mut arena = TableArena::default();
    let mut stats = SpDpStats::default();
    let mut splits = Vec::new();
    let mut durs = Vec::new();
    let mut stack: Vec<Vec<Time>> = Vec::new();
    for id in subtree_post_order(tree, root) {
        let table = match tree.kind(id) {
            SpKind::Leaf(e) => {
                let dur = duration_of(e);
                let mut t = arena.alloc();
                t.extend((0..=b).map(|l| dur.time(l as Resource)));
                durs.push((id.index() as u32, dur));
                stats.leaves += 1;
                t
            }
            SpKind::Series(..) => {
                let ty = stack.pop().expect("post-order");
                let tx = stack.pop().expect("post-order");
                let mut t = arena.alloc();
                t.extend(tx.iter().zip(&ty).map(|(&a, &b)| a.saturating_add(b)));
                arena.recycle(tx);
                arena.recycle(ty);
                stats.series += 1;
                t
            }
            SpKind::Parallel(..) => {
                let ty = stack.pop().expect("post-order");
                let tx = stack.pop().expect("post-order");
                let mut t = arena.alloc();
                let mut choice = Vec::with_capacity(b + 1);
                let steps = parallel_merge_monotone(&tx, &ty, &mut t, &mut choice);
                stats.merge_steps += steps;
                arena.recycle(tx);
                arena.recycle(ty);
                splits.push((id.index() as u32, choice));
                stats.parallels += 1;
                t
            }
        };
        stats.cells += (b + 1) as u64;
        stack.push(table);
    }
    stats.peak_live_tables = arena.peak;
    SubEval {
        table: stack.pop().expect("subtree evaluated"),
        splits,
        durs,
        stats,
    }
}

/// Subtree sizes (node counts), id-indexed.
fn subtree_sizes(tree: &SpTree) -> Vec<u32> {
    let mut sizes = vec![1u32; tree.len()];
    for id in tree.post_order() {
        if let SpKind::Series(x, y) | SpKind::Parallel(x, y) = tree.kind(id) {
            sizes[id.index()] = 1 + sizes[x.index()] + sizes[y.index()];
        }
    }
    sizes
}

/// Don't split a subtree smaller than this (the pieces would be all
/// handout overhead), and stop once the frontier reaches this many
/// pieces (enough slack for [`rtt_par::MAX_THREADS`] without shredding
/// locality).
const SPLIT_MIN_NODES: u32 = 64;
const FRONTIER_TARGET: usize = 32;

/// [`solve_sp_tree_with_stats`] with independent subtrees evaluated
/// concurrently. Bit-identical output at any `threads` value:
///
/// * the tree is cut into a **frontier** of subtrees by repeatedly
///   splitting the largest piece (ties to the smaller node id) — a
///   pure function of the tree, *independent of the thread count*, so
///   even the work counters don't vary with `threads`;
/// * frontier subtrees evaluate in parallel (`rtt_par::map_chunks`,
///   one chunk per subtree, each with its own deterministic
///   [`TableArena`]), producing per-node artifacts keyed by node id;
/// * the **crown** — the internal nodes above the frontier — merges
///   serially in post-order on the calling thread.
///
/// `cells` and `merge_steps` (and therefore any `dp_merge_steps`
/// charging built on them) equal the serial walk's exactly; only
/// `peak_live_tables` differs (the whole frontier is live at the crown,
/// where the serial walk recycles as it goes) — and deterministically
/// so, since the frontier doesn't depend on `threads`. Metered runs
/// stay on the serial walk (see [`solve_sp_exact_with_tree_metered`]):
/// mid-solve exhaustion points must not depend on evaluation order.
pub fn solve_sp_tree_par(
    tree: &SpTree,
    duration_of: impl Fn(EdgeId) -> Duration + Sync,
    budget: Resource,
    threads: usize,
) -> SpDpSolution {
    let b = budget as usize;
    let sizes = subtree_sizes(tree);

    // ---- fixed frontier: split the largest piece until pieces run out
    let mut frontier = vec![tree.root()];
    let mut crown: Vec<bool> = vec![false; tree.len()];
    while frontier.len() < FRONTIER_TARGET {
        let candidate = frontier
            .iter()
            .enumerate()
            .filter(|(_, id)| {
                sizes[id.index()] >= SPLIT_MIN_NODES
                    && !matches!(tree.kind(**id), SpKind::Leaf(_))
            })
            .max_by_key(|(_, id)| (sizes[id.index()], std::cmp::Reverse(id.index())));
        let Some((slot, _)) = candidate else { break };
        let id = frontier.swap_remove(slot);
        crown[id.index()] = true;
        let (SpKind::Series(x, y) | SpKind::Parallel(x, y)) = tree.kind(id) else {
            unreachable!("leaf filtered above");
        };
        frontier.push(x);
        frontier.push(y);
    }
    frontier.sort_by_key(|id| id.index());

    // ---- evaluate the frontier (one chunk per subtree, in order)
    let evals = rtt_par::map_chunks(frontier.len(), 1, threads, |i, _| {
        eval_subtree_serial(tree, &duration_of, b, frontier[i])
    });

    // ---- scatter artifacts; merge the crown serially in post-order
    let mut stats = SpDpStats::default();
    let mut tables: Vec<Option<Vec<Time>>> = vec![None; tree.len()];
    let mut splits: Vec<Option<Vec<u32>>> = vec![None; tree.len()];
    let mut durs: Vec<Option<Duration>> = vec![None; tree.len()];
    let frontier_live = evals.len();
    for (root, eval) in frontier.iter().zip(evals) {
        let SubEval {
            table,
            splits: s,
            durs: d,
            stats: st,
        } = eval;
        tables[root.index()] = Some(table);
        for (idx, choice) in s {
            splits[idx as usize] = Some(choice);
        }
        for (idx, dur) in d {
            durs[idx as usize] = Some(dur);
        }
        stats.leaves += st.leaves;
        stats.series += st.series;
        stats.parallels += st.parallels;
        stats.cells += st.cells;
        stats.merge_steps += st.merge_steps;
        stats.peak_live_tables = stats.peak_live_tables.max(st.peak_live_tables);
    }
    stats.peak_live_tables = stats.peak_live_tables.max(frontier_live);
    for id in tree.post_order() {
        if !crown[id.index()] {
            continue;
        }
        let (SpKind::Series(x, y) | SpKind::Parallel(x, y)) = tree.kind(id) else {
            unreachable!("crown nodes are internal");
        };
        let tx = tables[x.index()].take().expect("crown child evaluated");
        let ty = tables[y.index()].take().expect("crown child evaluated");
        let table = match tree.kind(id) {
            SpKind::Series(..) => {
                stats.series += 1;
                tx.iter()
                    .zip(&ty)
                    .map(|(&a, &b)| a.saturating_add(b))
                    .collect()
            }
            SpKind::Parallel(..) => {
                let mut t = Vec::with_capacity(b + 1);
                let mut choice = Vec::with_capacity(b + 1);
                stats.merge_steps += parallel_merge_monotone(&tx, &ty, &mut t, &mut choice);
                splits[id.index()] = Some(choice);
                stats.parallels += 1;
                t
            }
            SpKind::Leaf(_) => unreachable!("crown nodes are internal"),
        };
        stats.cells += (b + 1) as u64;
        tables[id.index()] = Some(table);
    }

    let root_table = tables[tree.root().index()].take().expect("root computed");

    // ---- allocation recovery: identical to the serial walk's
    let mut alloc: Vec<(EdgeId, Resource)> = Vec::new();
    let mut stack = vec![(tree.root(), budget)];
    while let Some((id, lambda)) = stack.pop() {
        match tree.kind(id) {
            SpKind::Leaf(e) => {
                let dur = durs[id.index()].as_ref().expect("leaf evaluated");
                let t = dur.time(lambda);
                let spend = dur.resource_for_time(t).unwrap_or(0);
                alloc.push((e, spend));
            }
            SpKind::Series(x, y) => {
                stack.push((x, lambda));
                stack.push((y, lambda));
            }
            SpKind::Parallel(x, y) => {
                let i = splits[id.index()].as_ref().expect("parallel split")
                    [lambda as usize] as Resource;
                stack.push((x, i));
                stack.push((y, lambda - i));
            }
        }
    }
    (root_table, alloc, stats)
}

/// The pre-optimization DP (per-node `Vec` tables, naive `O(B²)`
/// parallel scans), retained verbatim so `bench-pr1` can measure the
/// speedup it claims and tests can differential-check the fast path.
pub fn solve_sp_tree_naive(
    tree: &SpTree,
    mut duration_of: impl FnMut(EdgeId) -> Duration,
    budget: Resource,
) -> (Vec<Time>, Vec<(EdgeId, Resource)>) {
    let b = budget as usize;
    let order = tree.post_order();
    let mut tables: Vec<Option<Vec<Time>>> = vec![None; tree.len()];
    let mut splits: Vec<Option<Vec<u32>>> = vec![None; tree.len()];
    let mut durs: Vec<Option<Duration>> = vec![None; tree.len()];

    for id in &order {
        let table = match tree.kind(*id) {
            SpKind::Leaf(e) => {
                let dur = duration_of(e);
                let t: Vec<Time> = (0..=b).map(|l| dur.time(l as Resource)).collect();
                durs[id.index()] = Some(dur);
                t
            }
            SpKind::Series(x, y) => {
                let tx = tables[x.index()].as_ref().expect("post-order");
                let ty = tables[y.index()].as_ref().expect("post-order");
                (0..=b)
                    .map(|l| tx[l].saturating_add(ty[l]))
                    .collect()
            }
            SpKind::Parallel(x, y) => {
                let tx = tables[x.index()].as_ref().expect("post-order");
                let ty = tables[y.index()].as_ref().expect("post-order");
                let (t, choice) = parallel_merge_naive(tx, ty);
                splits[id.index()] = Some(choice);
                t
            }
        };
        tables[id.index()] = Some(table);
    }

    let root_table = tables[tree.root().index()].clone().expect("root computed");

    let mut alloc: Vec<(EdgeId, Resource)> = Vec::new();
    let mut stack = vec![(tree.root(), budget)];
    while let Some((id, lambda)) = stack.pop() {
        match tree.kind(id) {
            SpKind::Leaf(e) => {
                let dur = durs[id.index()].as_ref().expect("leaf evaluated");
                let t = tables[id.index()].as_ref().expect("leaf table")[lambda as usize];
                let spend = dur.resource_for_time(t).unwrap_or(0);
                alloc.push((e, spend));
            }
            SpKind::Series(x, y) => {
                stack.push((x, lambda));
                stack.push((y, lambda));
            }
            SpKind::Parallel(x, y) => {
                let i = splits[id.index()].as_ref().expect("parallel split")
                    [lambda as usize] as Resource;
                stack.push((x, i));
                stack.push((y, lambda - i));
            }
        }
    }
    (root_table, alloc)
}

/// Exact minimum-makespan for a series-parallel [`ArcInstance`]:
/// decomposes the DAG, runs the DP, and certifies the allocation by
/// routing it with a min-flow. Returns `None` if the instance is not
/// two-terminal series-parallel.
pub fn solve_sp_exact(arc: &ArcInstance, budget: Resource) -> Option<(SpSolution, Solution)> {
    let tree = decompose(arc.dag(), arc.source(), arc.sink())?;
    Some(solve_sp_exact_with_tree(arc, &tree, budget))
}

/// [`solve_sp_exact`] on a caller-supplied decomposition tree, so one
/// [`decompose`] run can feed many budgets/solves on the same instance
/// (`rtt_engine` shares it through its preprocessing cache). The tree
/// must come from decomposing `arc` itself.
pub fn solve_sp_exact_with_tree(
    arc: &ArcInstance,
    tree: &SpTree,
    budget: Resource,
) -> (SpSolution, Solution) {
    solve_sp_exact_with_tree_metered(arc, tree, budget, None)
        .expect("an unmetered DP cannot exhaust")
}

/// [`solve_sp_exact_with_tree`] under a cooperative budget meter (see
/// [`solve_sp_tree_metered`] for the charging scheme).
pub fn solve_sp_exact_with_tree_metered(
    arc: &ArcInstance,
    tree: &SpTree,
    budget: Resource,
    meter: Option<&BudgetMeter>,
) -> Result<(SpSolution, Solution), Exhausted> {
    let d = arc.dag();
    // Parallel subtree evaluation only when unmetered: exhaustion
    // stop-points are wire-visible and must not depend on which worker
    // charged first. (`BudgetContext` hands out no meter whenever the
    // request declared no budget — the common case.)
    let (curve, alloc, _) = if meter.is_none() && rtt_par::parallel_enabled() {
        solve_sp_tree_par(
            tree,
            |e| d.edge(e).duration.clone(),
            budget,
            rtt_par::current(),
        )
    } else {
        solve_sp_tree_metered(tree, |e| d.edge(e).duration.clone(), budget, meter)?
    };
    let makespan = curve[budget as usize];
    let mut levels = vec![0u64; d.edge_count()];
    for (e, r) in &alloc {
        levels[e.index()] = *r;
    }
    // route the allocation (must fit in the budget by DP correctness)
    let edges: Vec<BoundedEdge> = d
        .edge_refs()
        .map(|e| BoundedEdge::at_least(e.src.index(), e.dst.index(), levels[e.id.index()]))
        .collect();
    let flow = min_flow(
        d.node_count(),
        &edges,
        arc.source().index(),
        arc.sink().index(),
    )
    .expect("lower bounds only");
    debug_assert!(
        flow.value <= budget,
        "DP allocation must be routable within B: {} > {budget}",
        flow.value
    );
    let edge_times: Vec<Time> = d
        .edge_ids()
        .map(|e| d.edge(e).duration.time(levels[e.index()]))
        .collect();
    let recomputed = rtt_dag::longest_path_edges(d, |e| edge_times[e.index()])
        .expect("acyclic")
        .weight;
    debug_assert_eq!(recomputed, makespan, "DP value must match its allocation");
    Ok((
        SpSolution {
            makespan,
            curve,
            levels,
        },
        Solution {
            arc_flows: flow.edge_flow,
            edge_times,
            makespan: recomputed,
            budget_used: flow.value,
        },
    ))
}

/// Exact minimum-resource for a series-parallel instance: the smallest
/// `λ ≤ budget_cap` with `T(root, λ) ≤ target` (one DP run gives the
/// whole curve). `None` if unreachable within the cap or not SP.
pub fn sp_min_resource(
    arc: &ArcInstance,
    target: Time,
    budget_cap: Resource,
) -> Option<Resource> {
    sp_min_resource_metered(arc, target, budget_cap, None)
        .expect("an unmetered DP cannot exhaust")
}

/// [`sp_min_resource`] under a cooperative budget meter (see
/// [`solve_sp_tree_metered`] for the charging scheme).
pub fn sp_min_resource_metered(
    arc: &ArcInstance,
    target: Time,
    budget_cap: Resource,
    meter: Option<&BudgetMeter>,
) -> Result<Option<Resource>, Exhausted> {
    let d = arc.dag();
    let Some(tree) = decompose(d, arc.source(), arc.sink()) else {
        return Ok(None);
    };
    // same unmetered-only gate as `solve_sp_exact_with_tree_metered`
    let (curve, _, _) = if meter.is_none() && rtt_par::parallel_enabled() {
        solve_sp_tree_par(
            &tree,
            |e| d.edge(e).duration.clone(),
            budget_cap,
            rtt_par::current(),
        )
    } else {
        solve_sp_tree_metered(&tree, |e| d.edge(e).duration.clone(), budget_cap, meter)?
    };
    Ok(curve
        .iter()
        .position(|&t| t <= target)
        .map(|i| i as Resource))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use crate::instance::{Activity, Instance, Job};
    use crate::solution::validate;
    use crate::transform::to_arc_form;
    use rtt_dag::Dag;

    fn serial_chain() -> ArcInstance {
        let mut g: Dag<Job, ()> = Dag::new();
        let s = g.add_node(Job::new(Duration::zero()));
        let x = g.add_node(Job::new(Duration::two_point(10, 4, 0)));
        let y = g.add_node(Job::new(Duration::two_point(8, 4, 2)));
        let t = g.add_node(Job::new(Duration::zero()));
        g.add_edge(s, x, ()).unwrap();
        g.add_edge(x, y, ()).unwrap();
        g.add_edge(y, t, ()).unwrap();
        to_arc_form(&Instance::new(g).unwrap()).0
    }

    #[test]
    fn chain_curve_and_reuse() {
        let arc = serial_chain();
        let (sp, sol) = solve_sp_exact(&arc, 6).unwrap();
        // curve: λ=0 → 18; λ=4 → 2 (both jobs share the 4 units).
        assert_eq!(sp.curve[0], 18);
        assert_eq!(sp.curve[4], 2);
        assert_eq!(sp.curve[6], 2);
        validate(&arc, &sol).unwrap();
    }

    #[test]
    fn matches_bruteforce_on_chain() {
        let arc = serial_chain();
        for b in 0..=8u64 {
            let (sp, _) = solve_sp_exact(&arc, b).unwrap();
            let ex = solve_exact(&arc, b);
            assert_eq!(
                sp.makespan, ex.solution.makespan,
                "budget {b}: DP vs brute force"
            );
        }
    }

    #[test]
    fn parallel_split_optimal() {
        // Two parallel improvable activities with different gains.
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, Activity::new(Duration::two_point(10, 2, 1)))
            .unwrap();
        g.add_edge(s, t, Activity::new(Duration::two_point(9, 3, 0)))
            .unwrap();
        let arc = ArcInstance::new(g).unwrap();
        let (sp, sol) = solve_sp_exact(&arc, 5).unwrap();
        // λ=5: split 2/3 → max(1, 0) = 1.
        assert_eq!(sp.makespan, 1);
        assert_eq!(sol.budget_used, 5);
        // λ=4: can only fix one: max(1,9)=9 or max(10,0)=10 → 9.
        assert_eq!(sp.curve[4], 9);
        validate(&arc, &sol).unwrap();
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let arc = serial_chain();
        let (sp, _) = solve_sp_exact(&arc, 10).unwrap();
        for w in sp.curve.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn min_resource_from_curve() {
        let arc = serial_chain();
        assert_eq!(sp_min_resource(&arc, 18, 10), Some(0));
        assert_eq!(sp_min_resource(&arc, 2, 10), Some(4));
        assert_eq!(sp_min_resource(&arc, 1, 10), None);
    }

    #[test]
    fn non_sp_instance_returns_none() {
        // Wheatstone bridge is not series-parallel.
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        for (u, v) in [(s, a), (s, b), (a, b), (a, t), (b, t)] {
            g.add_edge(u, v, Activity::new(Duration::constant(1)))
                .unwrap();
        }
        let arc = ArcInstance::new(g).unwrap();
        assert!(solve_sp_exact(&arc, 3).is_none());
    }

    #[test]
    fn budget_zero_table() {
        let arc = serial_chain();
        let (sp, sol) = solve_sp_exact(&arc, 0).unwrap();
        assert_eq!(sp.makespan, 18);
        assert_eq!(sol.budget_used, 0);
        assert_eq!(sp.curve.len(), 1);
    }

    /// Deterministic pseudo-random nonincreasing table.
    fn pseudo_table(seed: u64, len: usize, start: Time) -> Vec<Time> {
        let mut t = start;
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let drop = (state >> 60) % 4;
                t = t.saturating_sub(drop);
                t
            })
            .collect()
    }

    #[test]
    fn monotone_merge_matches_naive_on_random_tables() {
        for seed in 0..200u64 {
            let len = 1 + (seed as usize % 40);
            let tx = pseudo_table(seed * 2 + 1, len, 30 + seed % 50);
            let ty = pseudo_table(seed * 2 + 2, len, 25 + seed % 60);
            let (naive, _) = parallel_merge_naive(&tx, &ty);
            let mut fast = Vec::new();
            let mut choice = Vec::new();
            let steps = parallel_merge_monotone(&tx, &ty, &mut fast, &mut choice);
            assert_eq!(fast, naive, "seed {seed}: tables diverge");
            // the recorded split must achieve the table value
            for l in 0..len {
                let i = choice[l] as usize;
                assert!(i <= l);
                assert_eq!(tx[i].max(ty[l - i]), fast[l], "seed {seed}, λ={l}");
            }
            // O(B): one step per λ plus at most len pointer advances
            assert!(steps <= 2 * len as u64, "seed {seed}: {steps} steps");
        }
    }

    #[test]
    fn merges_accept_empty_tables() {
        let (t, c) = parallel_merge_naive(&[], &[]);
        assert!(t.is_empty() && c.is_empty());
        let mut out = vec![1];
        let mut choice = vec![1];
        parallel_merge_monotone(&[], &[], &mut out, &mut choice);
        assert!(out.is_empty() && choice.is_empty());
    }

    #[test]
    fn monotone_merge_handles_infinite_sentinels() {
        let tx = vec![rtt_duration::INF, 5, 5, 0];
        let ty = vec![rtt_duration::INF, rtt_duration::INF, 3, 3];
        let (naive, _) = parallel_merge_naive(&tx, &ty);
        let mut fast = Vec::new();
        let mut choice = Vec::new();
        parallel_merge_monotone(&tx, &ty, &mut fast, &mut choice);
        assert_eq!(fast, naive);
    }

    #[test]
    fn fast_dp_matches_naive_dp_end_to_end() {
        let arc = serial_chain();
        let d = arc.dag();
        let tree = decompose(d, arc.source(), arc.sink()).unwrap();
        for b in 0..=8u64 {
            let (fast, _) = solve_sp_tree(&tree, |e| d.edge(e).duration.clone(), b);
            let (naive, _) = solve_sp_tree_naive(&tree, |e| d.edge(e).duration.clone(), b);
            assert_eq!(fast, naive, "budget {b}");
        }
    }

    #[test]
    fn stats_certify_linear_work_and_bounded_liveness() {
        // A wide parallel bundle: every useful level distinct.
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let t = g.add_node(());
        for i in 0..16u64 {
            g.add_edge(s, t, Activity::new(Duration::two_point(20 + i, 2 + i % 3, 1)))
                .unwrap();
        }
        let arc = ArcInstance::new(g).unwrap();
        let d = arc.dag();
        let tree = decompose(d, arc.source(), arc.sink()).unwrap();
        let budget = 64u64;
        let (_, _, stats) =
            solve_sp_tree_with_stats(&tree, |e| d.edge(e).duration.clone(), budget);
        assert_eq!(stats.leaves, 16);
        assert_eq!(stats.parallels, 15);
        let nodes = (stats.leaves + stats.series + stats.parallels) as u64;
        assert_eq!(stats.cells, nodes * (budget + 1));
        // O(mB): every parallel merge stays within 2(B+1) steps
        assert!(
            stats.merge_steps <= stats.parallels as u64 * 2 * (budget + 1),
            "{stats:?}"
        );
        // the arena keeps liveness near tree depth, far below m
        assert!(stats.peak_live_tables <= 18, "{stats:?}");
    }

    /// Series chain of parallel bundles: SP by construction, and big
    /// enough (stages·width leaves) that the frontier actually splits.
    fn staged_instance(stages: usize, width: u64) -> ArcInstance {
        let mut g: Dag<(), Activity> = Dag::new();
        let mut prev = g.add_node(());
        for s in 0..stages as u64 {
            let next = g.add_node(());
            for i in 0..width {
                let base = 8 + (s * 7 + i * 3) % 13;
                let fast = 1 + (s + i) % 4;
                g.add_edge(
                    prev,
                    next,
                    Activity::new(Duration::two_point(base, fast, (i % 3) as Resource)),
                )
                .unwrap();
            }
            prev = next;
        }
        ArcInstance::new(g).unwrap()
    }

    #[test]
    fn parallel_tree_eval_is_bit_identical_to_serial() {
        let arc = staged_instance(40, 3);
        let d = arc.dag();
        let tree = decompose(d, arc.source(), arc.sink()).unwrap();
        assert!(tree.len() as u32 > 2 * SPLIT_MIN_NODES, "tree too small to split");
        let budget = 24u64;
        let (table, alloc, stats) =
            solve_sp_tree_with_stats(&tree, |e| d.edge(e).duration.clone(), budget);
        for threads in [1usize, 2, 4] {
            let (pt, pa, ps) =
                solve_sp_tree_par(&tree, |e| d.edge(e).duration.clone(), budget, threads);
            assert_eq!(pt, table, "threads={threads}: root table diverged");
            assert_eq!(pa, alloc, "threads={threads}: allocation diverged");
            // work counters are thread-count-independent and equal the
            // serial walk's; only liveness accounting may differ
            assert_eq!(ps.leaves, stats.leaves, "threads={threads}");
            assert_eq!(ps.series, stats.series, "threads={threads}");
            assert_eq!(ps.parallels, stats.parallels, "threads={threads}");
            assert_eq!(ps.cells, stats.cells, "threads={threads}");
            assert_eq!(ps.merge_steps, stats.merge_steps, "threads={threads}");
        }
    }

    #[test]
    fn parallel_tree_eval_handles_small_trees() {
        // below SPLIT_MIN_NODES the frontier is just the root
        let arc = serial_chain();
        let d = arc.dag();
        let tree = decompose(d, arc.source(), arc.sink()).unwrap();
        for b in 0..=8u64 {
            let (st, sa, _) =
                solve_sp_tree_with_stats(&tree, |e| d.edge(e).duration.clone(), b);
            let (pt, pa, _) =
                solve_sp_tree_par(&tree, |e| d.edge(e).duration.clone(), b, 4);
            assert_eq!(pt, st, "budget {b}");
            assert_eq!(pa, sa, "budget {b}");
        }
    }
}
