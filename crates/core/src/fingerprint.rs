//! Canonical instance fingerprinting: a stable content identity for an
//! [`ArcInstance`], so caches can recognize "the same instance" across
//! requests, processes, and node relabelings.
//!
//! # What the fingerprint is
//!
//! [`canonical_form`] relabels the instance's nodes into a **canonical
//! topological order** (see below), serializes the normalized arc form —
//! topology, source/sink, and every arc's full duration content
//! including its family tag (`step` / `kway` / `recbin`) — into a
//! deterministic [`CanonicalForm::key`] string, and hashes that string
//! into a 128-bit FNV-1a [`Fingerprint`]. Two instances with equal keys
//! are byte-for-byte the same computation input for every solver in
//! this repository.
//!
//! # Collision discipline
//!
//! The digest is a convenience handle (display, telemetry, compact map
//! keys); **the key string is the identity**. Caches that could change
//! observable output on a wrong hit must compare the full key, exactly
//! as `rtt_engine::PrepCache` stores its full canonical serialization —
//! a 128-bit hash collision then costs a rebuild, never a wrong answer.
//!
//! # Stability scope — what perturbations hit, what perturbations miss
//!
//! The fingerprint is **invariant** to (these *hit* the cache):
//!
//! * node id / insertion-order relabelings, whenever the canonical
//!   order disambiguates (see the tie rule below);
//! * arc insertion order, including parallel arcs;
//! * cosmetic metadata: activity `label`s and reducer `origin` tags
//!   carry no algorithmic weight and are excluded.
//!
//! The fingerprint **changes** under (these *miss* the cache):
//!
//! * any topology change (adding/removing nodes or arcs, rewiring);
//! * any duration change — a different tuple list, a different family
//!   tag on the same breakpoints, or a perturbed base time. A
//!   duration-perturbed near-duplicate therefore shares nothing at the
//!   instance tier; its reuse channel is the *warm-basis* tier (the
//!   perturbed LP keeps its shape, so a sibling's basis still installs —
//!   see `rtt_core::lp_build` and `rtt_lp::revised::solve_warm`).
//!
//! The request **budget** is deliberately not part of the fingerprint:
//! budgets key the *solution* tier on top of it, and a budget change
//! rewrites one tagged LP row, which is exactly what the delta-solve
//! path reoptimizes across.
//!
//! Stability is scoped to one crate version, not to disk: keys and
//! digests are deterministic across processes and platforms (hand-rolled
//! FNV, no `HashMap` iteration order, no pointer-derived input), but
//! they are **not a persistence format** — the embedded version tags
//! (`rtt-fp-v1` here, `rtt-shape-v1` for [`shape_form`]) change
//! whenever the serialization or the canonical-order rule does, so a
//! future on-disk cache must treat a tag mismatch as a cold miss.
//!
//! # The canonical order and its tie rule
//!
//! Nodes are emitted by Kahn's algorithm; among simultaneously ready
//! nodes the one with the smallest **structural signature** (an FNV
//! hash of in/out degrees and the sorted duration digests of incident
//! arcs, refined twice over neighbor signatures) goes first. Nodes that
//! are structurally indistinguishable at that resolution tie, and ties
//! fall back to input order — so a relabeling that permutes exact
//! structural twins *may* produce a different key. That is a missed
//! dedup opportunity (the twins are typically automorphic anyway),
//! never a wrong hit: the failure mode is recomputation.

use crate::instance::ArcInstance;
use rtt_dag::NodeId;
use std::fmt;

/// 128-bit FNV-1a offset basis.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;
/// 64-bit FNV-1a offset basis (node signatures).
const FNV64_OFFSET: u64 = 0xcbf29ce484222325;
/// 64-bit FNV-1a prime.
const FNV64_PRIME: u64 = 0x100000001b3;

/// The 128-bit content digest of a canonical instance key. Stable
/// across runs and processes (no per-process hash seeding), so it can
/// be logged, compared, and persisted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl Fingerprint {
    /// The first 16 hex digits — a compact display form for logs and
    /// stderr stats (the full digest disambiguates in persisted data).
    pub fn short(&self) -> String {
        format!("{:016x}", (self.0 >> 64) as u64)
    }
}

/// The canonical identity of an instance: the relabel-invariant key
/// string (the true identity — compare it on cache hits) plus its
/// [`Fingerprint`] digest (the compact handle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalForm {
    /// Deterministic serialization of the canonically relabeled arc
    /// form. Equal keys ⇔ identical solver input.
    pub key: String,
    /// 128-bit FNV-1a digest of `key`.
    pub digest: Fingerprint,
}

fn fnv64(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV64_PRIME);
    }
}

fn fnv64_u64(h: &mut u64, v: u64) {
    fnv64(h, &v.to_le_bytes());
}

/// Hashes `key` with 128-bit FNV-1a.
pub fn digest_key(key: &str) -> Fingerprint {
    let mut h = FNV128_OFFSET;
    for &b in key.as_bytes() {
        h ^= b as u128;
        h = h.wrapping_mul(FNV128_PRIME);
    }
    Fingerprint(h)
}

/// A stable serialization of one arc's algorithmic content: family tag
/// plus the full canonical tuple list (labels and reducer origins are
/// cosmetic and excluded — see the module docs on stability scope).
fn duration_string(d: &rtt_duration::Duration) -> String {
    // Duration's Display is already canonical: family tag + the
    // canonical breakpoints, e.g. `kway[<0,9>,<2,5>,<3,4>]`.
    d.to_string()
}

/// The *shape* serialization of one arc: only its tuple count. The
/// two-tuple expansion splits an `l ≥ 2`-tuple arc into `l` chains, so
/// equal tuple counts on an isomorphic DAG mean an identical LP 6–10
/// row/column layout — the equivalence class [`shape_form`] keys.
fn duration_shape_string(d: &rtt_duration::Duration) -> String {
    format!("#{}", d.tuples().len())
}

/// 64-bit digest of one arc's serialized content, for node signatures.
fn duration_digest(s: &str) -> u64 {
    let mut h = FNV64_OFFSET;
    fnv64(&mut h, s.as_bytes());
    h
}

/// Structural node signatures: degrees + sorted incident duration
/// digests, refined `rounds` times over sorted neighbor signatures.
/// `dur_str` picks the serialization resolution — full content for
/// [`canonical_form`], tuple counts only for [`shape_form`] (so the
/// canonical order itself is duration-independent there, and perturbed
/// siblings relabel identically).
fn node_signatures(
    arc: &ArcInstance,
    rounds: usize,
    dur_str: &dyn Fn(&rtt_duration::Duration) -> String,
) -> Vec<u64> {
    let g = arc.dag();
    let n = g.node_count();
    let edge_digest: Vec<u64> = g
        .edge_refs()
        .map(|e| duration_digest(&dur_str(&e.weight.duration)))
        .collect();
    let mut sig = vec![0u64; n];
    for v in g.node_ids() {
        let mut h = FNV64_OFFSET;
        fnv64_u64(&mut h, g.in_degree(v) as u64);
        fnv64_u64(&mut h, g.out_degree(v) as u64);
        let mut incident: Vec<(u64, u64)> = g
            .in_edges(v)
            .iter()
            .map(|&e| (0u64, edge_digest[e.index()]))
            .chain(g.out_edges(v).iter().map(|&e| (1u64, edge_digest[e.index()])))
            .collect();
        incident.sort_unstable();
        for (dir, d) in incident {
            fnv64_u64(&mut h, dir);
            fnv64_u64(&mut h, d);
        }
        // anchor the two distinguished terminals
        fnv64_u64(&mut h, (v == arc.source()) as u64);
        fnv64_u64(&mut h, (v == arc.sink()) as u64);
        sig[v.index()] = h;
    }
    for _ in 0..rounds {
        let mut next = vec![0u64; n];
        for v in g.node_ids() {
            let mut h = sig[v.index()];
            let mut nb: Vec<(u64, u64)> = g
                .in_edges(v)
                .iter()
                .map(|&e| (0u64, sig[g.src(e).index()] ^ edge_digest[e.index()]))
                .chain(g.out_edges(v).iter().map(|&e| {
                    (1u64, sig[g.dst(e).index()] ^ edge_digest[e.index()])
                }))
                .collect();
            nb.sort_unstable();
            for (dir, s) in nb {
                fnv64_u64(&mut h, dir);
                fnv64_u64(&mut h, s);
            }
            next[v.index()] = h;
        }
        sig = next;
    }
    sig
}

/// The canonical node order: Kahn's algorithm with ready nodes popped
/// by `(signature, input index)` — see the module docs for exactly how
/// far that makes the key relabel-invariant.
fn canonical_order(arc: &ArcInstance, sig: &[u64]) -> Vec<NodeId> {
    let g = arc.dag();
    let n = g.node_count();
    let mut indeg: Vec<usize> = g.node_ids().map(|v| g.in_degree(v)).collect();
    let mut ready: Vec<NodeId> = g.node_ids().filter(|v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        // smallest (signature, index) first; the list stays tiny (its
        // length is the antichain width), so a linear scan is fine
        let (pos, _) = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| (sig[v.index()], v.index()))
            .expect("non-empty");
        let v = ready.swap_remove(pos);
        order.push(v);
        for &e in g.out_edges(v) {
            let w = g.dst(e);
            indeg[w.index()] -= 1;
            if indeg[w.index()] == 0 {
                ready.push(w);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "instances are acyclic");
    order
}

/// Shared canonicalization body of [`canonical_form`] / [`shape_form`]:
/// signatures and key both serialized through `dur_str`, prefixed by
/// `version`.
fn form_with(
    arc: &ArcInstance,
    version: &str,
    dur_str: &dyn Fn(&rtt_duration::Duration) -> String,
) -> CanonicalForm {
    let g = arc.dag();
    let sig = node_signatures(arc, 2, dur_str);
    let order = canonical_order(arc, &sig);
    let mut canon = vec![0usize; g.node_count()];
    for (i, v) in order.iter().enumerate() {
        canon[v.index()] = i;
    }
    let mut key = String::with_capacity(32 + 24 * g.edge_count());
    key.push_str(version);
    key.push_str(&format!(
        "|n={}|m={}|src={}|sink={}",
        g.node_count(),
        g.edge_count(),
        canon[arc.source().index()],
        canon[arc.sink().index()],
    ));
    // arcs grouped by canonical source, sorted within the group — this
    // also canonicalizes parallel-arc and insertion order
    for &v in &order {
        let mut outs: Vec<(usize, String)> = g
            .out_edges(v)
            .iter()
            .map(|&e| (canon[g.dst(e).index()], dur_str(&g.edge(e).duration)))
            .collect();
        outs.sort_unstable();
        for (dst, dur) in outs {
            key.push_str(&format!("|{}>{}:{}", canon[v.index()], dst, dur));
        }
    }
    let digest = digest_key(&key);
    CanonicalForm { key, digest }
}

/// Version tag embedded at the head of every [`canonical_form`] key.
/// Bump it whenever the serialization or the canonical-order rule
/// changes; persistence formats that embed canonical keys (the
/// `rtt-cache-v1` spill file) record this tag and treat a mismatch as
/// a cold miss, never a compatible load.
pub const CANONICAL_FORM_TAG: &str = "rtt-fp-v1";

/// Version tag embedded at the head of every [`shape_form`] key — same
/// bump rule as [`CANONICAL_FORM_TAG`].
pub const SHAPE_FORM_TAG: &str = "rtt-shape-v1";

/// Computes the canonical form — relabel-invariant key + digest — of an
/// instance. Cost is `O(m log m)` plus two signature-refinement sweeps;
/// callers that probe caches repeatedly should compute it once per
/// instance (e.g. `rtt_engine::PreparedInstance` memoizes it).
pub fn canonical_form(arc: &ArcInstance) -> CanonicalForm {
    form_with(arc, CANONICAL_FORM_TAG, &duration_string)
}

/// The **shape form**: the canonicalization of [`canonical_form`] with
/// every duration reduced to its tuple count. Two instances with equal
/// shape keys build LP 6–10 problems of identical row/column layout
/// (same expanded DAG under the canonical relabeling), which is the
/// compatibility class for **cross-instance warm-basis reuse**: a
/// duration-perturbed sibling's optimal basis has the right shape to
/// offer `rtt_lp::revised::solve_warm`, which then verifies feasibility
/// and falls back cold if the perturbation moved the optimum too far.
/// Durations are also excluded from the node signatures here, so
/// perturbed siblings canonically relabel the same way whenever the
/// shape-level signatures disambiguate; structural twins tie to input
/// order exactly as in [`canonical_form`] — a missed share, never a
/// wrong one (basis installs are verified).
pub fn shape_form(arc: &ArcInstance) -> CanonicalForm {
    form_with(arc, SHAPE_FORM_TAG, &duration_shape_string)
}

/// The [`Fingerprint`] of an instance (shorthand for
/// [`canonical_form`]`.digest` when the key string is not needed).
pub fn fingerprint(arc: &ArcInstance) -> Fingerprint {
    canonical_form(arc).digest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Activity;
    use rtt_dag::Dag;
    use rtt_duration::Duration;

    /// A diamond with distinguishable branches, built with the node
    /// additions permuted by `perm` (a relabeling of the same instance).
    fn diamond(perm: [usize; 4]) -> ArcInstance {
        let mut g: Dag<(), Activity> = Dag::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        // logical roles: 0 = source, 1 = fast branch, 2 = slow branch, 3 = sink
        let role = |r: usize| ids[perm.iter().position(|&p| p == r).unwrap()];
        let (s, a, b, t) = (role(0), role(1), role(2), role(3));
        g.add_edge(s, a, Activity::new(Duration::two_point(5, 2, 1))).unwrap();
        g.add_edge(s, b, Activity::new(Duration::two_point(9, 3, 2))).unwrap();
        g.add_edge(a, t, Activity::new(Duration::constant(1))).unwrap();
        g.add_edge(b, t, Activity::new(Duration::constant(2))).unwrap();
        ArcInstance::new(g).unwrap()
    }

    #[test]
    fn relabeling_preserves_the_fingerprint() {
        let base = canonical_form(&diamond([0, 1, 2, 3]));
        for perm in [[3, 2, 1, 0], [1, 0, 3, 2], [2, 3, 0, 1], [0, 2, 1, 3]] {
            let relabeled = canonical_form(&diamond(perm));
            assert_eq!(base.key, relabeled.key, "perm {perm:?} changed the key");
            assert_eq!(base.digest, relabeled.digest);
        }
    }

    #[test]
    fn duration_and_topology_changes_change_the_fingerprint() {
        let base = fingerprint(&diamond([0, 1, 2, 3]));
        // perturb one duration
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, Activity::new(Duration::two_point(6, 2, 1))).unwrap();
        g.add_edge(s, b, Activity::new(Duration::two_point(9, 3, 2))).unwrap();
        g.add_edge(a, t, Activity::new(Duration::constant(1))).unwrap();
        g.add_edge(b, t, Activity::new(Duration::constant(2))).unwrap();
        let perturbed = fingerprint(&ArcInstance::new(g).unwrap());
        assert_ne!(base, perturbed, "a base-time perturbation must miss");
    }

    #[test]
    fn family_tag_distinguishes_equal_breakpoints() {
        // kway(4) and recursive_binary(4) can share breakpoints; the
        // family tag must still separate them (the §3.2/§3.3 algorithms
        // are family-specific)
        let mk = |d: Duration| {
            let mut g: Dag<(), Activity> = Dag::new();
            let s = g.add_node(());
            let t = g.add_node(());
            g.add_edge(s, t, Activity::new(d)).unwrap();
            ArcInstance::new(g).unwrap()
        };
        let kw = fingerprint(&mk(Duration::kway(4)));
        let rb = fingerprint(&mk(Duration::recursive_binary(4)));
        assert_ne!(kw, rb);
    }

    #[test]
    fn labels_and_origins_are_cosmetic() {
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, Activity::labeled("alpha", Duration::constant(3))).unwrap();
        let labeled = fingerprint(&ArcInstance::new(g).unwrap());
        let mut g2: Dag<(), Activity> = Dag::new();
        let s2 = g2.add_node(());
        let t2 = g2.add_node(());
        g2.add_edge(s2, t2, Activity::new(Duration::constant(3))).unwrap();
        let bare = fingerprint(&ArcInstance::new(g2).unwrap());
        assert_eq!(labeled, bare, "labels must not affect identity");
    }

    #[test]
    fn parallel_arc_order_is_canonicalized() {
        let mk = |first_slow: bool| {
            let mut g: Dag<(), Activity> = Dag::new();
            let s = g.add_node(());
            let t = g.add_node(());
            let fast = Activity::new(Duration::two_point(4, 2, 1));
            let slow = Activity::new(Duration::two_point(8, 2, 3));
            if first_slow {
                g.add_edge(s, t, slow).unwrap();
                g.add_edge(s, t, fast).unwrap();
            } else {
                g.add_edge(s, t, fast).unwrap();
                g.add_edge(s, t, slow).unwrap();
            }
            ArcInstance::new(g).unwrap()
        };
        assert_eq!(fingerprint(&mk(true)), fingerprint(&mk(false)));
    }

    #[test]
    fn shape_form_merges_perturbed_siblings_and_splits_topologies() {
        // same diamond, one base time perturbed: canonical forms differ,
        // shape forms agree — the warm-basis tier's sharing class
        let base = diamond([0, 1, 2, 3]);
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, Activity::new(Duration::two_point(6, 2, 1))).unwrap();
        g.add_edge(s, b, Activity::new(Duration::two_point(9, 3, 2))).unwrap();
        g.add_edge(a, t, Activity::new(Duration::constant(1))).unwrap();
        g.add_edge(b, t, Activity::new(Duration::constant(2))).unwrap();
        let sibling = ArcInstance::new(g).unwrap();
        assert_ne!(canonical_form(&base).key, canonical_form(&sibling).key);
        assert_eq!(shape_form(&base).key, shape_form(&sibling).key);
        // a topology change splits the shape class too
        let mut g2: Dag<(), Activity> = Dag::new();
        let s2 = g2.add_node(());
        let t2 = g2.add_node(());
        g2.add_edge(s2, t2, Activity::new(Duration::two_point(5, 2, 1))).unwrap();
        let other = ArcInstance::new(g2).unwrap();
        assert_ne!(shape_form(&base).key, shape_form(&other).key);
    }

    #[test]
    fn digest_is_stable_across_runs() {
        // the digest must never depend on process-seeded hashing: pin
        // one concrete value (updating it is a deliberate format bump —
        // bump the `rtt-fp-v1` version tag when the key layout changes)
        let fp = fingerprint(&diamond([0, 1, 2, 3]));
        assert_eq!(fp, digest_key(&canonical_form(&diamond([0, 1, 2, 3])).key));
        assert_eq!(fp.to_string().len(), 32);
        assert_eq!(fp.short().len(), 16);
    }
}
