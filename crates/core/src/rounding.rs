//! α-rounding of the LP solution and min-flow re-routing (§3.1).

use crate::lp_build::FractionalSolution;
use crate::transform::TwoTupleInstance;
use rtt_duration::Resource;
use rtt_flow::{min_flow, BoundedEdge};

/// Rounds the fractional LP durations with threshold `α ∈ (0, 1)`:
/// an arc whose relaxed duration lies in the lower α-fraction of its
/// range `[t1, t0]` is rounded *down* (buy the full `r_e`; requirement
/// `f'_e = r_e`), otherwise *up* (requirement `f'_e = 0`, duration `t0`).
///
/// Returns the integral per-edge resource requirements `f'_e`.
/// Guarantees (Theorem 3.4): rounding up inflates the duration by at most
/// `1/α`; rounding down inflates the resource by at most `1/(1−α)`.
pub fn alpha_round(
    tt: &TwoTupleInstance,
    frac: &FractionalSolution,
    alpha: f64,
) -> Vec<Resource> {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    tt.dag
        .edge_refs()
        .map(|e| {
            let a = e.weight;
            match a.buy {
                None => 0,
                Some((r, t1)) => {
                    // Interpolate on the same clamped scale the LP used
                    // (∞ durations are LP_BIG inside the relaxation).
                    let clamp = |t: rtt_duration::Time| {
                        if rtt_duration::is_infinite(t) {
                            crate::lp_build::LP_BIG
                        } else {
                            t as f64
                        }
                    };
                    let t0f = clamp(a.t0);
                    let t1f = clamp(t1);
                    let frac_bought = (frac.flows[e.id.index()] / r as f64).clamp(0.0, 1.0);
                    let achieved = t0f - (t0f - t1f) * frac_bought;
                    let threshold = t1f + alpha * (t0f - t1f);
                    if achieved < threshold - 1e-9 {
                        r
                    } else {
                        0
                    }
                }
            }
        })
        .collect()
}

/// Routes the rounded requirements with a minimum flow (LP 11–13):
/// the flow on every edge must be `≥ lower[e]`; the result is the least
/// total resource entering at the source that satisfies all requirements
/// simultaneously, reusing units along paths.
///
/// Returns `(budget_needed, per-edge integral flow)`.
pub fn route_min_flow(
    tt: &TwoTupleInstance,
    lower: &[Resource],
) -> (Resource, Vec<Resource>) {
    let d = &tt.dag;
    assert_eq!(lower.len(), d.edge_count());
    let edges: Vec<BoundedEdge> = d
        .edge_refs()
        .map(|e| BoundedEdge::at_least(e.src.index(), e.dst.index(), lower[e.id.index()]))
        .collect();
    let r = min_flow(
        d.node_count(),
        &edges,
        tt.source.index(),
        tt.sink.index(),
    )
    .expect("lower bounds without upper bounds are always feasible");
    (r.value, r.edge_flow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, Job};
    use crate::lp_build::solve_min_makespan_lp;
    use crate::transform::{expand_two_tuples, to_arc_form};
    use rtt_dag::Dag;
    use rtt_duration::Duration;

    fn chain_two_jobs() -> TwoTupleInstance {
        let mut g: Dag<Job, ()> = Dag::new();
        let s = g.add_node(Job::new(Duration::zero()));
        let x = g.add_node(Job::new(Duration::two_point(10, 4, 0)));
        let y = g.add_node(Job::new(Duration::two_point(8, 4, 0)));
        let t = g.add_node(Job::new(Duration::zero()));
        g.add_edge(s, x, ()).unwrap();
        g.add_edge(x, y, ()).unwrap();
        g.add_edge(y, t, ()).unwrap();
        let inst = Instance::new(g).unwrap();
        let (arc, _) = to_arc_form(&inst);
        expand_two_tuples(&arc)
    }

    #[test]
    fn full_budget_rounds_down_everything() {
        let tt = chain_two_jobs();
        let frac = solve_min_makespan_lp(&tt, 4).unwrap();
        assert!(frac.makespan.abs() < 1e-6);
        let lower = alpha_round(&tt, &frac, 0.5);
        // both purchase edges demand their full gap of 4
        let total: u64 = lower.iter().sum();
        assert_eq!(total, 8);
        let (budget, flows) = route_min_flow(&tt, &lower);
        // reuse over the serial path: 4 units serve both jobs
        assert_eq!(budget, 4);
        assert_eq!(tt.makespan_with_flows(&flows), 0);
    }

    #[test]
    fn zero_budget_rounds_up_everything() {
        let tt = chain_two_jobs();
        let frac = solve_min_makespan_lp(&tt, 0).unwrap();
        let lower = alpha_round(&tt, &frac, 0.5);
        assert!(lower.iter().all(|&l| l == 0));
        let (budget, flows) = route_min_flow(&tt, &lower);
        assert_eq!(budget, 0);
        assert_eq!(tt.makespan_with_flows(&flows), 18);
    }

    #[test]
    fn alpha_extremes_change_aggressiveness() {
        let tt = chain_two_jobs();
        // Budget 2: LP buys half of the first job's gap (fractional).
        let frac = solve_min_makespan_lp(&tt, 2).unwrap();
        // α near 1: almost any improvement is kept (round down).
        let aggressive = alpha_round(&tt, &frac, 0.99);
        // α near 0: only near-complete improvements are kept.
        let timid = alpha_round(&tt, &frac, 0.01);
        let sum_a: u64 = aggressive.iter().sum();
        let sum_t: u64 = timid.iter().sum();
        assert!(sum_a >= sum_t);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1)")]
    fn invalid_alpha_rejected() {
        let tt = chain_two_jobs();
        let frac = solve_min_makespan_lp(&tt, 0).unwrap();
        alpha_round(&tt, &frac, 1.0);
    }

    #[test]
    fn min_flow_budget_never_exceeds_sum_of_demands() {
        let tt = chain_two_jobs();
        let frac = solve_min_makespan_lp(&tt, 8).unwrap();
        let lower = alpha_round(&tt, &frac, 0.5);
        let (budget, flows) = route_min_flow(&tt, &lower);
        assert!(budget <= lower.iter().sum());
        for (f, l) in flows.iter().zip(&lower) {
            assert!(f >= l);
        }
    }
}
