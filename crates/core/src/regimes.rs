//! The paper's three resource-reuse regimes side by side.
//!
//! §1 poses three successively more permissive questions about how a
//! budget of `B` resource units may be shared among the jobs of `D(P)`:
//!
//! * **Question 1.1 — no reuse.** Every job keeps its allocation for the
//!   whole execution; the budget constraint is `Σ_v r_v ≤ B`. This is
//!   the classical *discrete time-cost tradeoff* setting (De et al.,
//!   Skutella).
//! * **Question 1.2 — global reuse.** A job allocates right before its
//!   first update and frees right after its last one; freed units return
//!   to a global pool any later job can grab. This is scheduling
//!   *precedence-constrained malleable tasks* (Du–Leung, Jansen–Zhang).
//! * **Question 1.3 — reuse over paths.** The paper's contribution: each
//!   unit flows along one source→sink path and may serve every job it
//!   passes through. Implemented by the rest of this crate.
//!
//! This module implements the first two regimes as executable baselines
//! so that the *reuse advantage* — how much routing buys over dedicated
//! allocations, and how much a global pool would buy over routing — can
//! be measured instead of argued. See [`compare_regimes`].

use crate::instance::ArcInstance;
use crate::lp_build::{FractionalSolution, LpError, LP_BIG};
use crate::transform::{expand_two_tuples, TwoTupleInstance};
use rtt_budget::{BudgetMeter, Exhausted};
use rtt_dag::sp::{decompose, SpKind, SpTree};
use rtt_duration::{Resource, Time};
use rtt_lp::{Engine, Outcome, Problem};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

// ---------------------------------------------------------------------
// Question 1.1 — no reuse (dedicated allocations)
// ---------------------------------------------------------------------

/// A solution in the no-reuse regime: a dedicated resource level per arc
/// whose *sum* is the budget consumed (nothing is routed or shared).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoReuseSolution {
    /// Dedicated resource level per `D'` edge (0 on dummies).
    pub levels: Vec<Resource>,
    /// Achieved duration per `D'` edge.
    pub edge_times: Vec<Time>,
    /// Longest path of `edge_times`.
    pub makespan: Time,
    /// `Σ levels` — the budget this solution consumes.
    pub budget_used: Resource,
}

/// Why a claimed no-reuse solution is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NoReuseError {
    /// Vector lengths don't match the instance.
    ShapeMismatch,
    /// `budget_used` differs from `Σ levels`.
    BudgetMismatch,
    /// An arc claims a duration outside `[t_e(level), t_e(0)]`.
    TimeUnachievable {
        /// Edge index.
        edge: usize,
    },
    /// Claimed makespan differs from the longest path of durations.
    MakespanMismatch,
}

impl fmt::Display for NoReuseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoReuseError::ShapeMismatch => write!(f, "no-reuse solution shape mismatch"),
            NoReuseError::BudgetMismatch => write!(f, "budget_used != sum of levels"),
            NoReuseError::TimeUnachievable { edge } => {
                write!(f, "edge {edge} claims an unachievable duration")
            }
            NoReuseError::MakespanMismatch => write!(f, "claimed makespan inconsistent"),
        }
    }
}

impl std::error::Error for NoReuseError {}

/// Certifies a no-reuse solution: shapes, budget arithmetic, per-edge
/// duration achievability, and the makespan recomputation.
pub fn validate_noreuse(arc: &ArcInstance, sol: &NoReuseSolution) -> Result<(), NoReuseError> {
    let d = arc.dag();
    if sol.levels.len() != d.edge_count() || sol.edge_times.len() != d.edge_count() {
        return Err(NoReuseError::ShapeMismatch);
    }
    if sol.levels.iter().sum::<Resource>() != sol.budget_used {
        return Err(NoReuseError::BudgetMismatch);
    }
    for e in d.edge_ids() {
        let i = e.index();
        let best = arc.arc_time(e, sol.levels[i]);
        let worst = arc.arc_time(e, 0);
        if sol.edge_times[i] < best || sol.edge_times[i] > worst {
            return Err(NoReuseError::TimeUnachievable { edge: i });
        }
    }
    let recomputed = rtt_dag::longest_path_edges(d, |e| sol.edge_times[e.index()])
        .expect("acyclic")
        .weight;
    if recomputed != sol.makespan {
        return Err(NoReuseError::MakespanMismatch);
    }
    Ok(())
}

fn noreuse_solution_from_levels(arc: &ArcInstance, levels: Vec<Resource>) -> NoReuseSolution {
    let d = arc.dag();
    let edge_times: Vec<Time> = d
        .edge_ids()
        .map(|e| arc.arc_time(e, levels[e.index()]))
        .collect();
    let makespan = rtt_dag::longest_path_edges(d, |e| edge_times[e.index()])
        .expect("acyclic")
        .weight;
    let budget_used = levels.iter().sum();
    NoReuseSolution {
        levels,
        edge_times,
        makespan,
        budget_used,
    }
}

/// Exact minimum-makespan in the **no-reuse** regime (Question 1.1):
/// branch-and-bound over canonical levels with `Σ levels ≤ budget`.
/// Exponential — use on the same small instances as
/// [`crate::exact::solve_exact`].
pub fn solve_noreuse_exact(arc: &ArcInstance, budget: Resource) -> NoReuseSolution {
    solve_noreuse_exact_metered(arc, budget, None)
        .expect("an unmetered search cannot exhaust")
}

/// [`solve_noreuse_exact`] under a cooperative budget meter: every
/// branch-and-bound node charges one `dp_merge_steps` unit (the
/// combinatorial-work dimension), so a runaway search bails out with a
/// typed [`Exhausted`] instead of exploring on.
pub fn solve_noreuse_exact_metered(
    arc: &ArcInstance,
    budget: Resource,
    meter: Option<&BudgetMeter>,
) -> Result<NoReuseSolution, Exhausted> {
    let d = arc.dag();
    let jobs = arc.improvable_edges();
    let min_time: Vec<Time> = d.edge_ids().map(|e| d.edge(e).duration.min_time()).collect();

    struct St<'a> {
        arc: &'a ArcInstance,
        jobs: &'a [rtt_dag::EdgeId],
        levels: Vec<Resource>,
        decided: Vec<bool>,
        min_time: &'a [Time],
        best_levels: Vec<Resource>,
        best_makespan: Time,
        meter: Option<&'a BudgetMeter>,
    }

    impl St<'_> {
        fn lb(&self) -> Time {
            let d = self.arc.dag();
            rtt_dag::longest_path_edges(d, |e| {
                let i = e.index();
                let dur = &d.edge(e).duration;
                if dur.len() < 2 || self.decided[i] {
                    dur.time(self.levels[i])
                } else {
                    self.min_time[i]
                }
            })
            .expect("acyclic")
            .weight
        }
    }

    fn dfs(st: &mut St, idx: usize, remaining: Resource) -> Result<(), Exhausted> {
        if let Some(m) = st.meter {
            m.charge_merge_steps(1)?;
        }
        if st.lb() >= st.best_makespan {
            return Ok(());
        }
        if idx == st.jobs.len() {
            let ms = st.lb(); // all decided: lb == actual makespan
            if ms < st.best_makespan {
                st.best_makespan = ms;
                st.best_levels = st.levels.clone();
            }
            return Ok(());
        }
        let e = st.jobs[idx];
        let ei = e.index();
        let options: Vec<Resource> = st
            .arc
            .dag()
            .edge(e)
            .duration
            .useful_levels()
            .filter(|&r| r <= remaining)
            .collect();
        st.decided[ei] = true;
        for lvl in options {
            st.levels[ei] = lvl;
            dfs(st, idx + 1, remaining - lvl)?;
        }
        st.levels[ei] = 0;
        st.decided[ei] = false;
        Ok(())
    }

    let mut st = St {
        arc,
        jobs: &jobs,
        levels: vec![0; d.edge_count()],
        decided: vec![false; d.edge_count()],
        min_time: &min_time,
        best_levels: vec![0; d.edge_count()],
        best_makespan: arc.base_makespan(),
        meter,
    };
    dfs(&mut st, 0, budget)?;
    let levels = std::mem::take(&mut st.best_levels);
    Ok(noreuse_solution_from_levels(arc, levels))
}

/// Exact minimum-resource in the no-reuse regime: the smallest `Σ levels`
/// achieving makespan `≤ target`, or `None` if unreachable.
pub fn solve_noreuse_exact_min_resource(
    arc: &ArcInstance,
    target: Time,
) -> Option<NoReuseSolution> {
    solve_noreuse_exact_min_resource_metered(arc, target, None)
        .expect("an unmetered search cannot exhaust")
}

/// [`solve_noreuse_exact_min_resource`] under a cooperative budget
/// meter (one `dp_merge_steps` charge per search node, as in
/// [`solve_noreuse_exact_metered`]).
pub fn solve_noreuse_exact_min_resource_metered(
    arc: &ArcInstance,
    target: Time,
    meter: Option<&BudgetMeter>,
) -> Result<Option<NoReuseSolution>, Exhausted> {
    if arc.ideal_makespan() > target {
        return Ok(None);
    }
    let d = arc.dag();
    let jobs = arc.improvable_edges();
    let min_time: Vec<Time> = d.edge_ids().map(|e| d.edge(e).duration.min_time()).collect();

    struct St<'a> {
        arc: &'a ArcInstance,
        jobs: &'a [rtt_dag::EdgeId],
        levels: Vec<Resource>,
        decided: Vec<bool>,
        min_time: &'a [Time],
        best: Option<(Resource, Vec<Resource>)>,
        meter: Option<&'a BudgetMeter>,
    }

    impl St<'_> {
        fn lb(&self) -> Time {
            let d = self.arc.dag();
            rtt_dag::longest_path_edges(d, |e| {
                let i = e.index();
                let dur = &d.edge(e).duration;
                if dur.len() < 2 || self.decided[i] {
                    dur.time(self.levels[i])
                } else {
                    self.min_time[i]
                }
            })
            .expect("acyclic")
            .weight
        }
    }

    fn dfs(st: &mut St, target: Time, idx: usize, spent: Resource) -> Result<(), Exhausted> {
        if let Some(m) = st.meter {
            m.charge_merge_steps(1)?;
        }
        if let Some((b, _)) = &st.best {
            if spent >= *b {
                return Ok(());
            }
        }
        if st.lb() > target {
            return Ok(());
        }
        if idx == st.jobs.len() {
            // all decided: lb is the true makespan and it is ≤ target
            st.best = Some((spent, st.levels.clone()));
            return Ok(());
        }
        let e = st.jobs[idx];
        let ei = e.index();
        let options: Vec<Resource> =
            st.arc.dag().edge(e).duration.useful_levels().collect();
        st.decided[ei] = true;
        for lvl in options {
            st.levels[ei] = lvl;
            dfs(st, target, idx + 1, spent + lvl)?;
        }
        st.levels[ei] = 0;
        st.decided[ei] = false;
        Ok(())
    }

    let mut st = St {
        arc,
        jobs: &jobs,
        levels: vec![0; d.edge_count()],
        decided: vec![false; d.edge_count()],
        min_time: &min_time,
        best: None,
        meter,
    };
    dfs(&mut st, target, 0, 0)?;
    let Some((_, levels)) = st.best else {
        return Ok(None);
    };
    Ok(Some(noreuse_solution_from_levels(arc, levels)))
}

/// A no-reuse approximation result with its LP certificates.
#[derive(Debug, Clone)]
pub struct NoReuseApprox {
    /// The certified no-reuse solution.
    pub solution: NoReuseSolution,
    /// LP lower bound on the optimal makespan at this budget.
    pub lp_makespan: f64,
    /// LP resource usage (lower bound for min-resource use).
    pub lp_budget: f64,
}

fn clamp_time(t: Time) -> f64 {
    if rtt_duration::is_infinite(t) {
        LP_BIG
    } else {
        t as f64
    }
}

/// LP relaxation for the no-reuse regime on `D''`: per-arc purchase
/// variables `x_e ∈ [0, r_e]`, precedence rows as in LP 6–10, and the
/// *sum* budget `Σ x_e ≤ B` instead of a source-flow budget. No flow
/// conservation — allocations are dedicated.
struct NoReuseLp {
    problem: Problem,
    n_edges: usize,
    time_var: Vec<Option<usize>>,
}

fn build_noreuse_shape(tt: &TwoTupleInstance) -> NoReuseLp {
    let d = &tt.dag;
    let n_edges = d.edge_count();
    let mut time_var: Vec<Option<usize>> = vec![None; d.node_count()];
    let mut next = n_edges;
    for v in d.node_ids() {
        if v != tt.source {
            time_var[v.index()] = Some(next);
            next += 1;
        }
    }
    let mut p = Problem::minimize(next);
    for e in d.edge_refs() {
        let a = e.weight;
        match a.buy {
            Some((r, t1)) => {
                p.set_upper_bound(e.id.index(), r as f64);
                let t0 = clamp_time(a.t0);
                let slope = (t0 - clamp_time(t1)) / r as f64;
                let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(3);
                if let Some(tv) = time_var[e.dst.index()] {
                    coeffs.push((tv, 1.0));
                }
                if let Some(tu) = time_var[e.src.index()] {
                    coeffs.push((tu, -1.0));
                }
                if slope != 0.0 {
                    coeffs.push((e.id.index(), slope));
                }
                p.add_ge(&coeffs, t0);
            }
            None => {
                // no purchase variable: pin x_e = 0 and add the plain
                // precedence row
                p.set_upper_bound(e.id.index(), 0.0);
                let t0 = clamp_time(a.t0);
                let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(2);
                if let Some(tv) = time_var[e.dst.index()] {
                    coeffs.push((tv, 1.0));
                }
                if let Some(tu) = time_var[e.src.index()] {
                    coeffs.push((tu, -1.0));
                }
                p.add_ge(&coeffs, t0);
            }
        }
    }
    NoReuseLp {
        problem: p,
        n_edges,
        time_var,
    }
}

fn extract_noreuse(
    tt: &TwoTupleInstance,
    shape: &NoReuseLp,
    sol: rtt_lp::Solution,
) -> FractionalSolution {
    let flows: Vec<f64> = sol.x[..shape.n_edges].to_vec();
    let times: Vec<f64> = shape
        .time_var
        .iter()
        .map(|tv| tv.map_or(0.0, |j| sol.x[j]))
        .collect();
    let makespan = times[tt.sink.index()];
    let budget_used = flows.iter().sum();
    FractionalSolution {
        flows,
        times,
        makespan,
        budget_used,
        pivots: sol.pivots,
        stats: sol.stats,
    }
}

/// Solves the no-reuse LP: minimize `T_t` subject to `Σ x_e ≤ B`.
pub fn solve_noreuse_lp(
    tt: &TwoTupleInstance,
    budget: Resource,
) -> Result<FractionalSolution, LpError> {
    solve_noreuse_lp_metered(tt, budget, None)
}

/// [`solve_noreuse_lp`] under a cooperative budget meter (one
/// `lp_pivots` charge per simplex pivot).
pub fn solve_noreuse_lp_metered(
    tt: &TwoTupleInstance,
    budget: Resource,
    meter: Option<&BudgetMeter>,
) -> Result<FractionalSolution, LpError> {
    let mut shape = build_noreuse_shape(tt);
    let buy_coeffs: Vec<(usize, f64)> = tt
        .dag
        .edge_refs()
        .filter(|e| e.weight.buy.is_some())
        .map(|e| (e.id.index(), 1.0))
        .collect();
    if !buy_coeffs.is_empty() {
        shape.problem.add_le(&buy_coeffs, budget as f64);
    }
    let t_sink = shape.time_var[tt.sink.index()].expect("sink is not the source");
    shape.problem.set_objective(t_sink, 1.0);
    match shape.problem.solve_with_metered(Engine::Revised, meter) {
        Outcome::Optimal(s) => Ok(extract_noreuse(tt, &shape, s)),
        Outcome::Infeasible => Err(LpError::Infeasible),
        Outcome::Unbounded => Err(LpError::Unbounded),
        Outcome::Exhausted(e) => Err(LpError::Exhausted(e)),
    }
}

/// Bi-criteria (1/α, 1/(1−α)) approximation in the **no-reuse** regime —
/// Skutella's rounding applied to the sum-budget LP. The makespan bound
/// is relative to the no-reuse OPT at budget `B`; the consumed budget is
/// at most `B/(1−α)`.
pub fn solve_noreuse_bicriteria(
    arc: &ArcInstance,
    budget: Resource,
    alpha: f64,
) -> Result<NoReuseApprox, LpError> {
    let tt = expand_two_tuples(arc);
    solve_noreuse_bicriteria_prepped(arc, &tt, budget, alpha)
}

/// [`solve_noreuse_bicriteria`] on a caller-supplied `D''` expansion.
pub fn solve_noreuse_bicriteria_prepped(
    arc: &ArcInstance,
    tt: &TwoTupleInstance,
    budget: Resource,
    alpha: f64,
) -> Result<NoReuseApprox, LpError> {
    solve_noreuse_bicriteria_metered(arc, tt, budget, alpha, None)
}

/// [`solve_noreuse_bicriteria_prepped`] under a cooperative budget meter.
pub fn solve_noreuse_bicriteria_metered(
    arc: &ArcInstance,
    tt: &TwoTupleInstance,
    budget: Resource,
    alpha: f64,
    meter: Option<&BudgetMeter>,
) -> Result<NoReuseApprox, LpError> {
    let frac = solve_noreuse_lp_metered(tt, budget, meter)?;
    let lower = crate::rounding::alpha_round(tt, &frac, alpha);
    // collapse the per-chain purchases into per-D'-edge levels
    let d = arc.dag();
    let mut levels = vec![0; d.edge_count()];
    for info in &tt.chains {
        levels[info.arc_edge.index()] = info
            .chain_edges
            .iter()
            .map(|ce| lower[ce.index()])
            .sum::<Resource>();
    }
    let solution = noreuse_solution_from_levels(arc, levels);
    Ok(NoReuseApprox {
        solution,
        lp_makespan: frac.makespan,
        lp_budget: frac.budget_used,
    })
}

/// Exact no-reuse DP for series-parallel DAGs — the classical discrete
/// time-cost tradeoff recurrence. Unlike §3.4's DP (where a *series*
/// composition hands the full `λ` to both children because resources
/// flow through), here **both** composition kinds split the budget:
///
/// ```text
/// T(series, λ)   = min_{0 ≤ i ≤ λ}  T(left, i) + T(right, λ − i)
/// T(parallel, λ) = min_{0 ≤ i ≤ λ}  max(T(left, i), T(right, λ − i))
/// ```
///
/// Comparing this curve with [`crate::sp_dp::solve_sp_exact`]'s measures
/// exactly what reuse over paths buys on SP instances.
pub fn solve_sp_tree_noreuse(
    tree: &SpTree,
    mut duration_of: impl FnMut(rtt_dag::EdgeId) -> rtt_duration::Duration,
    budget: Resource,
) -> Vec<Time> {
    let b = budget as usize;
    let order = tree.post_order();
    let mut tables: Vec<Option<Vec<Time>>> = vec![None; tree.len()];
    for id in &order {
        let table = match tree.kind(*id) {
            SpKind::Leaf(e) => {
                let dur = duration_of(e);
                (0..=b).map(|l| dur.time(l as Resource)).collect()
            }
            SpKind::Series(x, y) => {
                let tx = tables[x.index()].as_ref().expect("post-order");
                let ty = tables[y.index()].as_ref().expect("post-order");
                (0..=b)
                    .map(|l| {
                        (0..=l)
                            .map(|i| tx[i].saturating_add(ty[l - i]))
                            .min()
                            .expect("non-empty range")
                    })
                    .collect()
            }
            SpKind::Parallel(x, y) => {
                let tx = tables[x.index()].as_ref().expect("post-order");
                let ty = tables[y.index()].as_ref().expect("post-order");
                (0..=b)
                    .map(|l| {
                        (0..=l)
                            .map(|i| tx[i].max(ty[l - i]))
                            .min()
                            .expect("non-empty range")
                    })
                    .collect()
            }
        };
        tables[id.index()] = Some(table);
    }
    tables[tree.root().index()].take().expect("root computed")
}

/// No-reuse tradeoff curve for a series-parallel [`ArcInstance`]:
/// `curve[λ]` = optimal no-reuse makespan with budget `λ`. `None` if the
/// instance is not two-terminal series-parallel.
pub fn sp_noreuse_curve(arc: &ArcInstance, budget: Resource) -> Option<Vec<Time>> {
    let d = arc.dag();
    let tree = decompose(d, arc.source(), arc.sink())?;
    Some(solve_sp_tree_noreuse(
        &tree,
        |e| d.edge(e).duration.clone(),
        budget,
    ))
}

// ---------------------------------------------------------------------
// Question 1.2 — global reuse (malleable tasks, greedy list scheduling)
// ---------------------------------------------------------------------

/// Start policy of the greedy global-reuse scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalPolicy {
    /// Start every ready job immediately with the best level the pool
    /// can afford right now (never idles; makespan ≤ base makespan).
    Eager,
    /// Hold a ready job until the pool can afford its full useful level
    /// (`min(max_useful, budget)`); resource contention may serialize
    /// parallel jobs, so the makespan can *exceed* the base makespan.
    Patient,
}

/// A feasible global-reuse schedule: start/finish times and the level
/// each arc ran at, with pool usage ≤ budget at every instant.
#[derive(Debug, Clone)]
pub struct GlobalSchedule {
    /// Start time per arc.
    pub start: Vec<Time>,
    /// Finish time per arc (`start + t_e(level)`).
    pub finish: Vec<Time>,
    /// Resource level each arc held while running.
    pub level: Vec<Resource>,
    /// Time the sink event fires.
    pub makespan: Time,
    /// Maximum pool usage observed.
    pub peak_in_use: Resource,
}

/// Greedy list scheduler for the **global-reuse** regime (Question 1.2):
/// jobs allocate from a global pool when they start and free on
/// completion, like the malleable-task model of the related work the
/// paper cites (Lepère–Trystram–Woeginger; Jansen–Zhang). Ready jobs are
/// started in order of decreasing zero-resource tail length (critical
/// path first), with the level chosen per [`GlobalPolicy`].
///
/// This is a *heuristic baseline*, not an approximation algorithm: its
/// makespan is measured, not proved. (Question 1.2 is itself strongly
/// NP-hard, per Du–Leung.)
pub fn global_reuse_schedule(
    arc: &ArcInstance,
    budget: Resource,
    policy: GlobalPolicy,
) -> GlobalSchedule {
    let d = arc.dag();
    let m = d.edge_count();

    // static priority: longest zero-resource path from the arc's head to
    // the sink (the classical critical-path list-scheduling key)
    let tail = {
        let mut tail = vec![0u64; d.node_count()];
        let order = rtt_dag::topo_order(d).expect("acyclic");
        for &v in order.iter().rev() {
            let mut best = 0;
            for &e in d.out_edges(v) {
                let w = d.edge(e).duration.time(0);
                let cand = w.saturating_add(tail[d.endpoints(e).1.index()]);
                best = best.max(cand);
            }
            tail[v.index()] = best;
        }
        tail
    };
    let priority = |e: rtt_dag::EdgeId| {
        let (_, dst) = d.endpoints(e);
        d.edge(e)
            .duration
            .time(0)
            .saturating_add(tail[dst.index()])
    };

    let mut start = vec![Time::MAX; m];
    let mut finish = vec![Time::MAX; m];
    let mut level = vec![0u64; m];
    let mut pool = budget;
    let mut peak = 0u64;

    // node readiness: remaining in-degree; node fire time
    let mut missing: Vec<usize> = d.node_ids().map(|v| d.in_degree(v)).collect();
    let mut fired: Vec<Option<Time>> = vec![None; d.node_count()];

    // events: (finish time, edge) min-heap
    let mut events: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
    let mut ready: Vec<rtt_dag::EdgeId> = Vec::new();

    let fire = |v: rtt_dag::NodeId,
                    t: Time,
                    fired: &mut Vec<Option<Time>>,
                    ready: &mut Vec<rtt_dag::EdgeId>| {
        debug_assert!(fired[v.index()].is_none());
        fired[v.index()] = Some(t);
        for &e in d.out_edges(v) {
            ready.push(e);
        }
    };

    fire(arc.source(), 0, &mut fired, &mut ready);
    let mut now = 0u64;
    loop {
        // start whatever the policy allows, most critical first
        ready.sort_by_key(|&e| Reverse(priority(e)));
        let mut still_ready = Vec::new();
        for &e in &ready {
            let dur = &d.edge(e).duration;
            let max_useful = dur.max_useful_resource().min(budget);
            let want = match policy {
                GlobalPolicy::Eager => {
                    // best canonical level affordable right now
                    dur.useful_levels().filter(|&r| r <= pool).max().unwrap_or(0)
                }
                GlobalPolicy::Patient => {
                    if pool < max_useful {
                        still_ready.push(e);
                        continue;
                    }
                    max_useful
                }
            };
            // don't pay for units that buy nothing
            let want = dur
                .useful_levels()
                .filter(|&r| dur.time(r) == dur.time(want))
                .min()
                .unwrap_or(0)
                .min(want);
            pool -= want;
            peak = peak.max(budget - pool);
            let i = e.index();
            start[i] = now;
            level[i] = want;
            finish[i] = now.saturating_add(dur.time(want));
            events.push(Reverse((finish[i], i)));
        }
        ready = still_ready;

        // advance to the next completion
        let Some(Reverse((t, i))) = events.pop() else {
            break;
        };
        now = t;
        pool += level[i];
        // drain all completions at the same instant
        let mut done = vec![i];
        while let Some(&Reverse((t2, j))) = events.peek() {
            if t2 == now {
                events.pop();
                pool += level[j];
                done.push(j);
            } else {
                break;
            }
        }
        for i in done {
            let (_, dst) = d.endpoints(rtt_dag::EdgeId(i as u32));
            missing[dst.index()] -= 1;
            if missing[dst.index()] == 0 {
                fire(dst, now, &mut fired, &mut ready);
            }
        }
    }

    let makespan = fired[arc.sink().index()].expect("sink fires once all arcs complete");
    GlobalSchedule {
        start,
        finish,
        level,
        makespan,
        peak_in_use: peak,
    }
}

/// Why a claimed global schedule is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlobalScheduleError {
    /// Some arc never ran.
    Unscheduled {
        /// Edge index.
        edge: usize,
    },
    /// An arc started before its predecessors finished.
    PrecedenceViolated {
        /// Edge index.
        edge: usize,
    },
    /// `finish − start` is shorter than the level can buy.
    DurationTooShort {
        /// Edge index.
        edge: usize,
    },
    /// Pool usage exceeded the budget at some instant.
    OverBudget {
        /// The instant of the violation.
        at: Time,
    },
    /// Claimed makespan below the last finish.
    MakespanMismatch,
}

impl fmt::Display for GlobalScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalScheduleError::Unscheduled { edge } => write!(f, "arc {edge} never ran"),
            GlobalScheduleError::PrecedenceViolated { edge } => {
                write!(f, "arc {edge} started before its predecessors finished")
            }
            GlobalScheduleError::DurationTooShort { edge } => {
                write!(f, "arc {edge} ran faster than its level allows")
            }
            GlobalScheduleError::OverBudget { at } => {
                write!(f, "pool usage exceeds the budget at time {at}")
            }
            GlobalScheduleError::MakespanMismatch => write!(f, "makespan inconsistent"),
        }
    }
}

impl std::error::Error for GlobalScheduleError {}

/// Certifies a global-reuse schedule: every arc ran for at least the
/// duration its level buys, after all its predecessors finished, with
/// total in-use resource ≤ budget at every instant, and the makespan is
/// the last finish time.
pub fn verify_global_schedule(
    arc: &ArcInstance,
    budget: Resource,
    s: &GlobalSchedule,
) -> Result<(), GlobalScheduleError> {
    let d = arc.dag();
    let mut last_finish = 0u64;
    for e in d.edge_refs() {
        let i = e.id.index();
        if s.start[i] == Time::MAX || s.finish[i] == Time::MAX {
            return Err(GlobalScheduleError::Unscheduled { edge: i });
        }
        let need = arc.arc_time(e.id, s.level[i]);
        if s.finish[i].saturating_sub(s.start[i]) < need {
            return Err(GlobalScheduleError::DurationTooShort { edge: i });
        }
        // predecessors: every in-arc of the source endpoint
        for &p in d.in_edges(e.src) {
            if s.finish[p.index()] > s.start[i] {
                return Err(GlobalScheduleError::PrecedenceViolated { edge: i });
            }
        }
        last_finish = last_finish.max(s.finish[i]);
    }
    // pool usage sweep: +level at start, −level at finish
    let mut deltas: Vec<(Time, i64)> = Vec::with_capacity(2 * d.edge_count());
    for i in 0..d.edge_count() {
        deltas.push((s.start[i], s.level[i] as i64));
        deltas.push((s.finish[i], -(s.level[i] as i64)));
    }
    // frees apply before grabs at the same instant
    deltas.sort_by_key(|&(t, d)| (t, d));
    let mut in_use = 0i64;
    for (t, delta) in deltas {
        in_use += delta;
        if in_use > budget as i64 {
            return Err(GlobalScheduleError::OverBudget { at: t });
        }
    }
    if s.makespan < last_finish {
        return Err(GlobalScheduleError::MakespanMismatch);
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The three regimes side by side
// ---------------------------------------------------------------------

/// Makespans of the three regimes on one instance at one budget — the
/// measured version of the paper's Question 1.1 → 1.2 → 1.3 hierarchy.
#[derive(Debug, Clone)]
pub struct RegimeComparison {
    /// Question 1.1 — dedicated allocations (exact).
    pub noreuse: Time,
    /// Question 1.3 — reuse over paths (exact; the paper's regime).
    pub path_reuse: Time,
    /// Question 1.2 — global pool, greedy eager policy (heuristic).
    pub global_eager: Time,
    /// Question 1.2 — global pool, greedy patient policy (heuristic).
    pub global_patient: Time,
}

impl RegimeComparison {
    /// Best of the two greedy global policies.
    pub fn global_best(&self) -> Time {
        self.global_eager.min(self.global_patient)
    }
}

/// Computes all three regimes exactly/greedily on a small instance.
/// `noreuse ≥ path_reuse` always (any dedicated allocation is routable);
/// the greedy global numbers are heuristic and carry no ordering
/// guarantee, though the *optimal* global makespan would be ≤ both.
pub fn compare_regimes(arc: &ArcInstance, budget: Resource) -> RegimeComparison {
    let noreuse = solve_noreuse_exact(arc, budget).makespan;
    let path_reuse = crate::exact::solve_exact(arc, budget).solution.makespan;
    let global_eager = global_reuse_schedule(arc, budget, GlobalPolicy::Eager).makespan;
    let global_patient = global_reuse_schedule(arc, budget, GlobalPolicy::Patient).makespan;
    RegimeComparison {
        noreuse,
        path_reuse,
        global_eager,
        global_patient,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Activity, Instance, Job};
    use crate::transform::to_arc_form;
    use rtt_dag::Dag;
    use rtt_duration::Duration;

    /// s → x → y → t: two serial jobs, each 10 → 0 with 4 units.
    fn serial_chain() -> ArcInstance {
        let mut g: Dag<Job, ()> = Dag::new();
        let s = g.add_node(Job::new(Duration::zero()));
        let x = g.add_node(Job::new(Duration::two_point(10, 4, 0)));
        let y = g.add_node(Job::new(Duration::two_point(10, 4, 0)));
        let t = g.add_node(Job::new(Duration::zero()));
        g.add_edge(s, x, ()).unwrap();
        g.add_edge(x, y, ()).unwrap();
        g.add_edge(y, t, ()).unwrap();
        to_arc_form(&Instance::new(g).unwrap()).0
    }

    /// Two parallel jobs, each 10 → 1 with 4 units.
    fn parallel_pair() -> ArcInstance {
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, Activity::new(Duration::two_point(10, 4, 1)))
            .unwrap();
        g.add_edge(s, t, Activity::new(Duration::two_point(10, 4, 1)))
            .unwrap();
        ArcInstance::new(g).unwrap()
    }

    #[test]
    fn noreuse_pays_twice_on_serial_chains() {
        let arc = serial_chain();
        // path reuse: 4 units serve both jobs; no reuse needs 8.
        let nr4 = solve_noreuse_exact(&arc, 4);
        validate_noreuse(&arc, &nr4).unwrap();
        assert_eq!(nr4.makespan, 10, "4 units fix only one job");
        let nr8 = solve_noreuse_exact(&arc, 8);
        assert_eq!(nr8.makespan, 0);
        assert_eq!(nr8.budget_used, 8);
        let path = crate::exact::solve_exact(&arc, 4);
        assert_eq!(path.solution.makespan, 0, "reuse over the path");
    }

    #[test]
    fn noreuse_exact_min_resource_counts_sum() {
        let arc = serial_chain();
        let sol = solve_noreuse_exact_min_resource(&arc, 0).unwrap();
        assert_eq!(sol.budget_used, 8);
        assert!(solve_noreuse_exact_min_resource(&arc, u64::MAX).is_some());
        // parallel pair floor is 1 per branch: target 0 unreachable
        let p = parallel_pair();
        assert!(solve_noreuse_exact_min_resource(&p, 0).is_none());
        let s1 = solve_noreuse_exact_min_resource(&p, 1).unwrap();
        assert_eq!(s1.budget_used, 8);
    }

    #[test]
    fn noreuse_never_beats_path_reuse() {
        let arc = serial_chain();
        for b in 0..=10u64 {
            let nr = solve_noreuse_exact(&arc, b);
            let pr = crate::exact::solve_exact(&arc, b);
            assert!(
                nr.makespan >= pr.solution.makespan,
                "b={b}: no-reuse {} < path-reuse {}",
                nr.makespan,
                pr.solution.makespan
            );
        }
    }

    #[test]
    fn noreuse_lp_counts_sum_budget() {
        let arc = serial_chain();
        let tt = expand_two_tuples(&arc);
        // reuse LP reaches 0 with B=4; no-reuse LP needs 8
        let f4 = solve_noreuse_lp(&tt, 4).unwrap();
        assert!(f4.makespan > 4.9, "B=4 fixes one job fractionally: {}", f4.makespan);
        let f8 = solve_noreuse_lp(&tt, 8).unwrap();
        assert!(f8.makespan.abs() < 1e-6);
    }

    #[test]
    fn noreuse_bicriteria_bounds_hold() {
        let arc = serial_chain();
        for b in [0u64, 2, 4, 8, 12] {
            for alpha in [0.3, 0.5, 0.7] {
                let r = solve_noreuse_bicriteria(&arc, b, alpha).unwrap();
                validate_noreuse(&arc, &r.solution).unwrap();
                assert!(
                    (r.solution.budget_used as f64) <= b as f64 / (1.0 - alpha) + 1e-6,
                    "b={b} α={alpha}: used {}",
                    r.solution.budget_used
                );
                assert!(
                    r.solution.makespan as f64 <= r.lp_makespan / alpha + 1e-6,
                    "b={b} α={alpha}: {} vs LP {}",
                    r.solution.makespan,
                    r.lp_makespan
                );
            }
        }
    }

    #[test]
    fn sp_noreuse_curve_matches_exact() {
        let arc = serial_chain();
        let curve = sp_noreuse_curve(&arc, 10).unwrap();
        for b in 0..=10u64 {
            let ex = solve_noreuse_exact(&arc, b);
            assert_eq!(curve[b as usize], ex.makespan, "budget {b}");
        }
    }

    #[test]
    fn sp_noreuse_vs_reuse_gap_on_chain() {
        let arc = serial_chain();
        let noreuse = sp_noreuse_curve(&arc, 8).unwrap();
        let (reuse, _) = crate::sp_dp::solve_sp_exact(&arc, 8).unwrap();
        // at B=4 reuse reaches 0, no-reuse still 10
        assert_eq!(reuse.curve[4], 0);
        assert_eq!(noreuse[4], 10);
        // both reach 0 eventually
        assert_eq!(noreuse[8], 0);
        // no-reuse is never better
        for (b, (&nr, &r)) in noreuse.iter().zip(&reuse.curve).enumerate() {
            assert!(nr >= r, "budget {b}");
        }
    }

    #[test]
    fn global_eager_never_exceeds_base_makespan() {
        let arc = parallel_pair();
        for b in [0u64, 2, 4, 8] {
            let s = global_reuse_schedule(&arc, b, GlobalPolicy::Eager);
            verify_global_schedule(&arc, b, &s).unwrap();
            assert!(s.makespan <= arc.base_makespan(), "b={b}");
            assert!(s.peak_in_use <= b);
        }
    }

    #[test]
    fn global_patient_beats_path_reuse_on_parallel_structure() {
        // The regime hierarchy in action: with B=4, path reuse cannot
        // help both parallel branches (units cannot leave their path),
        // but the global pool runs them back to back: 1 + 1 = 2 ≪ 10.
        let arc = parallel_pair();
        let s = global_reuse_schedule(&arc, 4, GlobalPolicy::Patient);
        verify_global_schedule(&arc, 4, &s).unwrap();
        assert_eq!(s.makespan, 2);
        let path = crate::exact::solve_exact(&arc, 4).solution.makespan;
        assert_eq!(path, 10, "one branch improved, the other not");
        assert!(s.makespan < path);
    }

    #[test]
    fn global_schedules_are_verified_on_chain() {
        let arc = serial_chain();
        for policy in [GlobalPolicy::Eager, GlobalPolicy::Patient] {
            for b in [0u64, 4, 8] {
                let s = global_reuse_schedule(&arc, b, policy);
                verify_global_schedule(&arc, b, &s).unwrap();
            }
        }
        // with 4 units the pool serves both serial jobs (like the path)
        let s = global_reuse_schedule(&arc, 4, GlobalPolicy::Patient);
        assert_eq!(s.makespan, 0);
    }

    #[test]
    fn verifier_rejects_corrupted_schedules() {
        let arc = serial_chain();
        let good = global_reuse_schedule(&arc, 4, GlobalPolicy::Eager);
        verify_global_schedule(&arc, 4, &good).unwrap();

        // holding 100 units over a positive-length interval must trip the
        // pool sweep (zero-length intervals hold nothing, so stretch one)
        let mut bad = good.clone();
        bad.level.iter_mut().for_each(|l| *l = 100);
        bad.finish.iter_mut().for_each(|f| *f += 1);
        bad.makespan += 1;
        assert!(verify_global_schedule(&arc, 4, &bad).is_err());

        let mut bad = good.clone();
        bad.start[0] = Time::MAX;
        assert!(matches!(
            verify_global_schedule(&arc, 4, &bad),
            Err(GlobalScheduleError::Unscheduled { edge: 0 })
        ));
    }

    #[test]
    fn regime_hierarchy_on_small_instances() {
        for arc in [serial_chain(), parallel_pair()] {
            for b in [0u64, 2, 4, 6, 8] {
                let c = compare_regimes(&arc, b);
                assert!(
                    c.noreuse >= c.path_reuse,
                    "b={b}: noreuse {} < path {}",
                    c.noreuse,
                    c.path_reuse
                );
            }
        }
    }

    #[test]
    fn noreuse_validator_rejects_bad_claims() {
        let arc = serial_chain();
        let good = solve_noreuse_exact(&arc, 8);
        validate_noreuse(&arc, &good).unwrap();
        let mut bad = good.clone();
        bad.budget_used = 0;
        assert_eq!(
            validate_noreuse(&arc, &bad),
            Err(NoReuseError::BudgetMismatch)
        );
        let mut bad = good.clone();
        bad.makespan += 1;
        assert_eq!(
            validate_noreuse(&arc, &bad),
            Err(NoReuseError::MakespanMismatch)
        );
        let mut bad = good;
        bad.levels.pop();
        assert_eq!(
            validate_noreuse(&arc, &bad),
            Err(NoReuseError::ShapeMismatch)
        );
    }
}
