//! The paper's approximation algorithms (§3.1–§3.3).

use crate::instance::ArcInstance;
use crate::lp_build::{
    solve_min_makespan_lp_metered, solve_min_resource_lp_metered, FractionalSolution, LpError,
};
use rtt_budget::BudgetMeter;
use crate::rounding::{alpha_round, route_min_flow};
use crate::solution::Solution;
use crate::transform::{expand_two_tuples, TwoTupleInstance};
use rtt_duration::{DurationKind, Resource, Time};
use rtt_flow::{min_flow, BoundedEdge};
use std::fmt;

/// Solver failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The LP relaxation failed.
    Lp(LpError),
    /// A family-specific solver was applied to the wrong duration family.
    WrongFamily(&'static str),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Lp(e) => write!(f, "LP failure: {e}"),
            SolveError::WrongFamily(need) => {
                write!(f, "this solver requires {need} duration functions")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl From<LpError> for SolveError {
    fn from(e: LpError) -> Self {
        SolveError::Lp(e)
    }
}

/// A solution together with its quality certificates.
#[derive(Debug, Clone)]
pub struct ApproxSolution {
    /// The certified integral solution.
    pub solution: Solution,
    /// LP relaxation makespan — a *lower bound* on the optimal makespan
    /// at the given budget (min-makespan problems).
    pub lp_makespan: f64,
    /// LP resource usage — a lower bound on the optimal resource for the
    /// given target (min-resource problems).
    pub lp_budget: f64,
    /// Guaranteed factor: `solution.makespan ≤ makespan_factor · OPT`
    /// (or `· target` for min-resource).
    pub makespan_factor: f64,
    /// Guaranteed factor: `solution.budget_used ≤ resource_factor · B`
    /// (or `· OPT-resource` for min-resource).
    pub resource_factor: f64,
    /// Simplex pivots the LP relaxation spent (0 for LP-free paths) —
    /// the pipeline's dominant work counter.
    pub lp_pivots: usize,
    /// LP engine dimensions and pivot phase split
    /// ([`rtt_lp::LpStats`]; all-zero for LP-free paths).
    pub lp_stats: rtt_lp::LpStats,
}

impl ApproxSolution {
    /// Observed makespan ratio against the LP lower bound (≥ the true
    /// ratio against OPT; finite only when the LP bound is positive).
    pub fn makespan_ratio_vs_lp(&self) -> f64 {
        if self.lp_makespan <= 0.0 {
            if self.solution.makespan == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.solution.makespan as f64 / self.lp_makespan
        }
    }
}

/// Marker for the makespan-objective pipeline (re-exported for docs).
#[derive(Debug, Clone, Copy)]
pub struct MinMakespan;

// ---------------------------------------------------------------------
// shared pipeline pieces
// ---------------------------------------------------------------------

struct PerJob {
    /// Index into `tt.chains`.
    #[allow(dead_code)]
    chain_idx: usize,
    /// The D' arc of this job.
    arc_edge: rtt_dag::EdgeId,
    /// Rounded purchased resource `r_j` (Σ of bought gaps).
    rounded: Resource,
    /// Fractional flow through the job in the LP, `r*_j` (collapsed).
    fractional: f64,
}

fn per_job_stats(
    tt: &TwoTupleInstance,
    frac: &FractionalSolution,
    lower: &[Resource],
) -> Vec<PerJob> {
    tt.chains
        .iter()
        .enumerate()
        .map(|(i, info)| {
            let rounded = info
                .chain_edges
                .iter()
                .map(|ce| lower[ce.index()])
                .sum::<Resource>();
            let fractional = info
                .chain_edges
                .iter()
                .map(|ce| frac.flows[ce.index()])
                .sum::<f64>();
            PerJob {
                chain_idx: i,
                arc_edge: info.arc_edge,
                rounded,
                fractional,
            }
        })
        .collect()
}

/// Min-flow routing directly on the `D'` arc instance with per-arc lower
/// bounds. Returns `(budget, flows)`.
fn route_on_arc(arc: &ArcInstance, lower: &[Resource]) -> (Resource, Vec<Resource>) {
    let d = arc.dag();
    let edges: Vec<BoundedEdge> = d
        .edge_refs()
        .map(|e| BoundedEdge::at_least(e.src.index(), e.dst.index(), lower[e.id.index()]))
        .collect();
    let r = min_flow(
        d.node_count(),
        &edges,
        arc.source().index(),
        arc.sink().index(),
    )
    .expect("no upper bounds: always feasible");
    (r.value, r.edge_flow)
}

/// Builds a certified `Solution` from per-arc *resource levels* (what
/// each job actually spends) plus the routed flow that covers them.
fn solution_from_levels(
    arc: &ArcInstance,
    levels: &[Resource],
    flows: Vec<Resource>,
    budget: Resource,
) -> Solution {
    let d = arc.dag();
    let edge_times: Vec<Time> = d
        .edge_ids()
        .map(|e| arc.arc_time(e, levels[e.index()]))
        .collect();
    let makespan = rtt_dag::longest_path_edges(d, |e| edge_times[e.index()])
        .expect("acyclic")
        .weight;
    Solution {
        arc_flows: flows,
        edge_times,
        makespan,
        budget_used: budget,
    }
}

// ---------------------------------------------------------------------
// Theorem 3.4: (1/α, 1/(1−α)) bi-criteria, general non-increasing
// ---------------------------------------------------------------------

/// Bi-criteria approximation for general non-increasing duration
/// functions (Theorem 3.4): LP 6–10, α-rounding, min-flow routing.
///
/// Guarantees: makespan ≤ (1/α)·OPT(B) and budget ≤ B/(1−α).
pub fn solve_bicriteria(
    arc: &ArcInstance,
    budget: Resource,
    alpha: f64,
) -> Result<ApproxSolution, SolveError> {
    solve_bicriteria_with(arc, budget, alpha, rtt_lp::Engine::Revised)
}

/// [`solve_bicriteria`] under an explicit simplex engine. The rounding
/// and routing stages are identical; only the LP oracle changes. This is
/// how `rtt_bench`'s `bench-pr1` harness measures the pipeline against
/// the frozen pre-rewrite solver (`Engine::Reference`) in the same
/// binary, so the recorded speedups are reproduced rather than claimed.
pub fn solve_bicriteria_with(
    arc: &ArcInstance,
    budget: Resource,
    alpha: f64,
    engine: rtt_lp::Engine,
) -> Result<ApproxSolution, SolveError> {
    let tt = expand_two_tuples(arc);
    solve_bicriteria_prepped(arc, &tt, budget, alpha, engine)
}

/// [`solve_bicriteria_with`] on a caller-supplied `D''` expansion, so
/// one [`expand_two_tuples`] run can feed many solves on the same
/// instance (`rtt_engine` shares it through its preprocessing cache).
pub fn solve_bicriteria_prepped(
    arc: &ArcInstance,
    tt: &TwoTupleInstance,
    budget: Resource,
    alpha: f64,
    engine: rtt_lp::Engine,
) -> Result<ApproxSolution, SolveError> {
    solve_bicriteria_metered(arc, tt, budget, alpha, engine, None)
}

/// [`solve_bicriteria_prepped`] under a cooperative budget meter: the
/// LP's pivot loops charge it and a tripped budget surfaces as
/// [`SolveError::Lp`] with [`LpError::Exhausted`].
pub fn solve_bicriteria_metered(
    arc: &ArcInstance,
    tt: &TwoTupleInstance,
    budget: Resource,
    alpha: f64,
    engine: rtt_lp::Engine,
    meter: Option<&BudgetMeter>,
) -> Result<ApproxSolution, SolveError> {
    let frac = solve_min_makespan_lp_metered(tt, budget, engine, meter)?;
    Ok(bicriteria_round_prepped(arc, tt, frac, alpha))
}

/// The α-rounding + min-flow routing stage of Theorem 3.4 on a
/// caller-supplied LP solution. Splitting the LP solve from the
/// rounding lets a warm-started budget sweep (one LP chain) feed every
/// point through the same certified rounding path — see
/// `rtt_engine::solve_curve`.
pub fn bicriteria_round_prepped(
    arc: &ArcInstance,
    tt: &TwoTupleInstance,
    frac: FractionalSolution,
    alpha: f64,
) -> ApproxSolution {
    let lower = alpha_round(tt, &frac, alpha);
    let (used, tt_flows) = route_min_flow(tt, &lower);
    finish_on_tt(arc, tt, frac, tt_flows, used, alpha)
}

/// Assembles the bi-criteria result from a `D''` routing.
fn finish_on_tt(
    arc: &ArcInstance,
    tt: &TwoTupleInstance,
    frac: FractionalSolution,
    tt_flows: Vec<Resource>,
    used: Resource,
    alpha: f64,
) -> ApproxSolution {
    let d = arc.dag();
    let arc_flows = tt.collapse_flow(arc, &tt_flows);
    // Achieved duration per D' edge: copied edges evaluate at their own
    // flow; chain bundles take the max over their parallel chains.
    let mut edge_times: Vec<Time> = vec![0; d.edge_count()];
    for (e, img) in tt.copied.iter().enumerate() {
        if let Some(img) = img {
            edge_times[e] = tt.dag.edge(*img).time(tt_flows[img.index()]);
        }
    }
    for info in &tt.chains {
        let dur = info
            .chain_edges
            .iter()
            .map(|ce| tt.dag.edge(*ce).time(tt_flows[ce.index()]))
            .max()
            .expect("chains are non-empty");
        edge_times[info.arc_edge.index()] = dur;
    }
    let makespan = rtt_dag::longest_path_edges(d, |e| edge_times[e.index()])
        .expect("acyclic")
        .weight;
    debug_assert_eq!(
        makespan,
        tt.makespan_with_flows(&tt_flows),
        "D' and D'' makespans must agree"
    );
    ApproxSolution {
        lp_makespan: frac.makespan,
        lp_budget: frac.budget_used,
        lp_pivots: frac.pivots,
        lp_stats: frac.stats,
        solution: Solution {
            arc_flows,
            edge_times,
            makespan,
            budget_used: used,
        },
        makespan_factor: 1.0 / alpha,
        resource_factor: 1.0 / (1.0 - alpha),
    }
}

// ---------------------------------------------------------------------
// Theorem 3.9: 5-approximation for k-way splitting (budget kept)
// ---------------------------------------------------------------------

/// Single-criteria 5-approximation for the minimum-makespan problem with
/// k-way splitting duration functions (Theorem 3.9).
///
/// Pipeline: (2,2) bi-criteria via α = 1/2, then per job shrink the
/// (possibly 2×-inflated) allocation `r_j` back under the LP's
/// fractional `r*_j` — `⌊r_j/2⌋` in general, with the paper's special
/// cases for `r_j ≤ 3` — and re-route with a min-flow, which now fits in
/// the original budget.
pub fn solve_kway_5approx(
    arc: &ArcInstance,
    budget: Resource,
) -> Result<ApproxSolution, SolveError> {
    // reject the wrong family before paying for the D'' expansion
    require_family(arc, "k-way", |k| matches!(k, DurationKind::KWay { .. }))?;
    let tt = expand_two_tuples(arc);
    solve_kway_5approx_prepped(arc, &tt, budget)
}

/// [`solve_kway_5approx`] on a caller-supplied `D''` expansion.
pub fn solve_kway_5approx_prepped(
    arc: &ArcInstance,
    tt: &TwoTupleInstance,
    budget: Resource,
) -> Result<ApproxSolution, SolveError> {
    solve_kway_5approx_metered(arc, tt, budget, None)
}

/// [`solve_kway_5approx_prepped`] under a cooperative budget meter.
pub fn solve_kway_5approx_metered(
    arc: &ArcInstance,
    tt: &TwoTupleInstance,
    budget: Resource,
    meter: Option<&BudgetMeter>,
) -> Result<ApproxSolution, SolveError> {
    require_family(arc, "k-way", |k| matches!(k, DurationKind::KWay { .. }))?;
    let frac = solve_min_makespan_lp_metered(tt, budget, rtt_lp::Engine::Revised, meter)?;
    let lower = alpha_round(tt, &frac, 0.5);
    let jobs = per_job_stats(tt, &frac, &lower);

    let d = arc.dag();
    let mut levels = vec![0; d.edge_count()];
    for j in &jobs {
        let k = if j.rounded == 0 {
            0
        } else if j.rounded > 3 {
            j.rounded / 2
        } else if j.fractional >= 2.0 - 1e-9 {
            2
        } else {
            0
        };
        levels[j.arc_edge.index()] = k;
    }
    let (used, flows) = route_on_arc(arc, &levels);
    debug_assert!(
        used <= budget,
        "Theorem 3.9: the rerouted budget {used} must fit in B = {budget}"
    );
    let solution = solution_from_levels(arc, &levels, flows, used);
    Ok(ApproxSolution {
        solution,
        lp_makespan: frac.makespan,
        lp_budget: frac.budget_used,
        lp_pivots: frac.pivots,
        lp_stats: frac.stats,
        makespan_factor: 5.0,
        resource_factor: 1.0,
    })
}

// ---------------------------------------------------------------------
// Theorem 3.10: 4-approximation for recursive binary splitting
// ---------------------------------------------------------------------

/// Single-criteria 4-approximation for the minimum-makespan problem with
/// recursive binary splitting duration functions (Theorem 3.10).
///
/// After the (2,2) bi-criteria step, any job whose rounded allocation
/// exceeds its fractional LP allocation is halved; halving a power-of-two
/// reducer at most doubles its duration, giving makespan ≤ 4·OPT within
/// the original budget.
pub fn solve_recbinary_4approx(
    arc: &ArcInstance,
    budget: Resource,
) -> Result<ApproxSolution, SolveError> {
    require_family(arc, "recursive-binary", |k| {
        matches!(k, DurationKind::RecursiveBinary { .. })
    })?;
    let tt = expand_two_tuples(arc);
    solve_recbinary_4approx_prepped(arc, &tt, budget)
}

/// [`solve_recbinary_4approx`] on a caller-supplied `D''` expansion.
pub fn solve_recbinary_4approx_prepped(
    arc: &ArcInstance,
    tt: &TwoTupleInstance,
    budget: Resource,
) -> Result<ApproxSolution, SolveError> {
    solve_recbinary_4approx_metered(arc, tt, budget, None)
}

/// [`solve_recbinary_4approx_prepped`] under a cooperative budget meter.
pub fn solve_recbinary_4approx_metered(
    arc: &ArcInstance,
    tt: &TwoTupleInstance,
    budget: Resource,
    meter: Option<&BudgetMeter>,
) -> Result<ApproxSolution, SolveError> {
    require_family(arc, "recursive-binary", |k| {
        matches!(k, DurationKind::RecursiveBinary { .. })
    })?;
    let frac = solve_min_makespan_lp_metered(tt, budget, rtt_lp::Engine::Revised, meter)?;
    let lower = alpha_round(tt, &frac, 0.5);
    let jobs = per_job_stats(tt, &frac, &lower);

    let d = arc.dag();
    let mut levels = vec![0; d.edge_count()];
    for j in &jobs {
        let target = if (j.rounded as f64) <= j.fractional + 1e-9 {
            j.rounded
        } else {
            j.rounded / 2
        };
        // snap to the largest canonical level ≤ target (levels are
        // powers of two for this family)
        let dur = &d.edge(j.arc_edge).duration;
        let lvl = dur
            .useful_levels()
            .filter(|&r| r <= target)
            .max()
            .unwrap_or(0);
        levels[j.arc_edge.index()] = lvl;
    }
    let (used, flows) = route_on_arc(arc, &levels);
    debug_assert!(used <= budget, "Theorem 3.10 keeps the budget");
    let solution = solution_from_levels(arc, &levels, flows, used);
    Ok(ApproxSolution {
        solution,
        lp_makespan: frac.makespan,
        lp_budget: frac.budget_used,
        lp_pivots: frac.pivots,
        lp_stats: frac.stats,
        makespan_factor: 4.0,
        resource_factor: 1.0,
    })
}

// ---------------------------------------------------------------------
// Theorem 3.16: (4/3, 14/5) bi-criteria for recursive binary splitting
// ---------------------------------------------------------------------

/// Improved (4/3, 14/5) bi-criteria approximation for recursive binary
/// splitting (Theorem 3.16).
///
/// Rounds each job's *fractional* LP allocation `r` directly to a power
/// of two: down within `[2^i, 1.5·2^i)`, up within `[1.5·2^i, 2^{i+1})`.
/// Lemma 3.15 bounds the resource inflation by 4/3; Lemmas 3.11–3.14
/// bound the duration inflation by 14/5.
pub fn solve_recbinary_improved(
    arc: &ArcInstance,
    budget: Resource,
) -> Result<ApproxSolution, SolveError> {
    require_family(arc, "recursive-binary", |k| {
        matches!(k, DurationKind::RecursiveBinary { .. })
    })?;
    let tt = expand_two_tuples(arc);
    solve_recbinary_improved_prepped(arc, &tt, budget)
}

/// [`solve_recbinary_improved`] on a caller-supplied `D''` expansion.
pub fn solve_recbinary_improved_prepped(
    arc: &ArcInstance,
    tt: &TwoTupleInstance,
    budget: Resource,
) -> Result<ApproxSolution, SolveError> {
    solve_recbinary_improved_metered(arc, tt, budget, None)
}

/// [`solve_recbinary_improved_prepped`] under a cooperative budget meter.
pub fn solve_recbinary_improved_metered(
    arc: &ArcInstance,
    tt: &TwoTupleInstance,
    budget: Resource,
    meter: Option<&BudgetMeter>,
) -> Result<ApproxSolution, SolveError> {
    require_family(arc, "recursive-binary", |k| {
        matches!(k, DurationKind::RecursiveBinary { .. })
    })?;
    let frac = solve_min_makespan_lp_metered(tt, budget, rtt_lp::Engine::Revised, meter)?;
    let d = arc.dag();
    let mut levels = vec![0; d.edge_count()];
    for info in &tt.chains {
        let r: f64 = info
            .chain_edges
            .iter()
            .map(|ce| frac.flows[ce.index()])
            .sum();
        let rbar: Resource = if r < 1.0 {
            0
        } else {
            let i = r.log2().floor() as u32;
            let lo = (1u64 << i) as f64;
            if r < 1.5 * lo {
                1u64 << i
            } else {
                1u64 << (i + 1)
            }
        };
        // Cap at the largest canonical level (2^k of Eq. 3): beyond it,
        // resources stop helping, so demanding more only wastes budget.
        let cap = d.edge(info.arc_edge).duration.max_useful_resource();
        levels[info.arc_edge.index()] = rbar.min(cap);
    }
    let (used, flows) = route_on_arc(arc, &levels);
    let solution = solution_from_levels(arc, &levels, flows, used);
    Ok(ApproxSolution {
        solution,
        lp_makespan: frac.makespan,
        lp_budget: frac.budget_used,
        lp_pivots: frac.pivots,
        lp_stats: frac.stats,
        makespan_factor: 14.0 / 5.0,
        resource_factor: 4.0 / 3.0,
    })
}

// ---------------------------------------------------------------------
// Minimum-resource problem (bi-criteria via the same machinery)
// ---------------------------------------------------------------------

/// Bi-criteria approximation for the **minimum-resource** problem:
/// minimize the budget subject to a makespan target `T`.
///
/// Solves the min-resource LP (objective Σ f(s,·), constraint
/// `T_t ≤ T`), α-rounds, and re-routes. Guarantees: makespan ≤ T/α and
/// budget ≤ OPT/(1−α).
pub fn min_resource(
    arc: &ArcInstance,
    target: Time,
    alpha: f64,
) -> Result<ApproxSolution, SolveError> {
    let tt = expand_two_tuples(arc);
    min_resource_prepped(arc, &tt, target, alpha)
}

/// [`min_resource`] on a caller-supplied `D''` expansion.
pub fn min_resource_prepped(
    arc: &ArcInstance,
    tt: &TwoTupleInstance,
    target: Time,
    alpha: f64,
) -> Result<ApproxSolution, SolveError> {
    min_resource_metered(arc, tt, target, alpha, None)
}

/// [`min_resource_prepped`] under a cooperative budget meter.
pub fn min_resource_metered(
    arc: &ArcInstance,
    tt: &TwoTupleInstance,
    target: Time,
    alpha: f64,
    meter: Option<&BudgetMeter>,
) -> Result<ApproxSolution, SolveError> {
    let frac = solve_min_resource_lp_metered(tt, target, meter)?;
    let lower = alpha_round(tt, &frac, alpha);
    let (used, tt_flows) = route_min_flow(tt, &lower);
    Ok(finish_on_tt(arc, tt, frac, tt_flows, used, alpha))
}

fn require_family(
    arc: &ArcInstance,
    name: &'static str,
    ok: impl Fn(DurationKind) -> bool,
) -> Result<(), SolveError> {
    let improvable = arc.improvable_edges();
    if improvable
        .iter()
        .all(|&e| ok(arc.dag().edge(e).duration.kind()))
    {
        Ok(())
    } else {
        Err(SolveError::WrongFamily(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, Job};
    use crate::solution::validate;
    use crate::transform::to_arc_form;
    use rtt_dag::Dag;
    use rtt_duration::Duration;

    fn arc_of(inst: &Instance) -> ArcInstance {
        to_arc_form(inst).0
    }

    /// Serial chain of two improvable jobs (reuse pays off).
    fn serial_chain() -> Instance {
        let mut g: Dag<Job, ()> = Dag::new();
        let s = g.add_node(Job::new(Duration::zero()));
        let x = g.add_node(Job::new(Duration::two_point(10, 4, 0)));
        let y = g.add_node(Job::new(Duration::two_point(8, 4, 2)));
        let t = g.add_node(Job::new(Duration::zero()));
        g.add_edge(s, x, ()).unwrap();
        g.add_edge(x, y, ()).unwrap();
        g.add_edge(y, t, ()).unwrap();
        Instance::new(g).unwrap()
    }

    #[test]
    fn bicriteria_on_serial_chain() {
        let inst = serial_chain();
        let arc = arc_of(&inst);
        let res = solve_bicriteria(&arc, 4, 0.5).unwrap();
        validate(&arc, &res.solution).unwrap();
        // 4 units flow through both jobs: makespan 0 + 2 = 2.
        assert_eq!(res.solution.makespan, 2);
        assert!(res.solution.budget_used <= 8, "≤ B/(1-α)");
        assert!(res.lp_makespan <= 2.0 + 1e-6);
    }

    #[test]
    fn bicriteria_budget_zero() {
        let inst = serial_chain();
        let arc = arc_of(&inst);
        let res = solve_bicriteria(&arc, 0, 0.5).unwrap();
        validate(&arc, &res.solution).unwrap();
        assert_eq!(res.solution.makespan, 18);
        assert_eq!(res.solution.budget_used, 0);
    }

    #[test]
    fn bicriteria_respects_guarantee_bounds() {
        let inst = serial_chain();
        let arc = arc_of(&inst);
        for b in 0..=6u64 {
            for &alpha in &[0.25, 0.5, 0.75] {
                let res = solve_bicriteria(&arc, b, alpha).unwrap();
                validate(&arc, &res.solution).unwrap();
                assert!(
                    (res.solution.budget_used as f64) <= b as f64 / (1.0 - alpha) + 1e-6,
                    "b={b} α={alpha}: used {}",
                    res.solution.budget_used
                );
                // makespan ≤ (1/α)·LP can fail only by integrality slack ≤ +max t0;
                // here check against the theorem's bound via the LP value:
                assert!(
                    res.solution.makespan as f64 <= res.lp_makespan / alpha + 1e-6,
                    "b={b} α={alpha}: makespan {} vs LP {}",
                    res.solution.makespan,
                    res.lp_makespan
                );
            }
        }
    }

    fn kway_parallel() -> Instance {
        // Two parallel hot cells with 100 updates each + a cold one.
        let mut g: Dag<(), ()> = Dag::new();
        let s = g.add_node(());
        let x = g.add_node(());
        let y = g.add_node(());
        let z = g.add_node(());
        let t = g.add_node(());
        g.add_parallel_edges(s, x, (), 100).unwrap();
        g.add_parallel_edges(s, y, (), 100).unwrap();
        g.add_parallel_edges(s, z, (), 5).unwrap();
        g.add_edge(x, t, ()).unwrap();
        g.add_edge(y, t, ()).unwrap();
        g.add_edge(z, t, ()).unwrap();
        Instance::race_dag(&g, Duration::kway).unwrap()
    }

    #[test]
    fn kway_5approx_within_budget_and_bound() {
        let inst = kway_parallel();
        let arc = arc_of(&inst);
        for b in [0u64, 2, 5, 10, 20, 40] {
            let res = solve_kway_5approx(&arc, b).unwrap();
            validate(&arc, &res.solution).unwrap();
            assert!(
                res.solution.budget_used <= b,
                "budget kept: {} <= {b}",
                res.solution.budget_used
            );
            assert!(
                res.solution.makespan as f64 <= 5.0 * res.lp_makespan.max(1.0) + 1e-6,
                "b={b}: makespan {} vs 5·LP {}",
                res.solution.makespan,
                5.0 * res.lp_makespan
            );
        }
    }

    #[test]
    fn kway_rejects_other_families() {
        let inst = serial_chain();
        let arc = arc_of(&inst);
        assert!(matches!(
            solve_kway_5approx(&arc, 3),
            Err(SolveError::WrongFamily(_))
        ));
    }

    fn recbinary_instance() -> Instance {
        let mut g: Dag<(), ()> = Dag::new();
        let s = g.add_node(());
        let x = g.add_node(());
        let y = g.add_node(());
        let t = g.add_node(());
        g.add_parallel_edges(s, x, (), 64).unwrap();
        g.add_parallel_edges(x, y, (), 32).unwrap();
        g.add_edge(y, t, ()).unwrap();
        Instance::race_dag(&g, Duration::recursive_binary).unwrap()
    }

    #[test]
    fn recbinary_4approx_within_budget() {
        let inst = recbinary_instance();
        let arc = arc_of(&inst);
        for b in [0u64, 2, 4, 8, 16, 32] {
            let res = solve_recbinary_4approx(&arc, b).unwrap();
            validate(&arc, &res.solution).unwrap();
            assert!(res.solution.budget_used <= b);
            assert!(
                res.solution.makespan as f64 <= 4.0 * res.lp_makespan.max(1.0) + 1e-6,
                "b={b}: {} vs 4·{}",
                res.solution.makespan,
                res.lp_makespan
            );
        }
    }

    #[test]
    fn recbinary_improved_bicriteria_bounds() {
        let inst = recbinary_instance();
        let arc = arc_of(&inst);
        for b in [0u64, 3, 6, 12, 24] {
            let res = solve_recbinary_improved(&arc, b).unwrap();
            validate(&arc, &res.solution).unwrap();
            assert!(
                res.solution.budget_used as f64 <= 4.0 / 3.0 * b as f64 + 1e-6,
                "b={b}: used {}",
                res.solution.budget_used
            );
            assert!(
                res.solution.makespan as f64 <= 14.0 / 5.0 * res.lp_makespan.max(1.0) + 1e-6,
                "b={b}: {} vs 2.8·{}",
                res.solution.makespan,
                res.lp_makespan
            );
        }
    }

    #[test]
    fn min_resource_meets_relaxed_target() {
        let inst = serial_chain();
        let arc = arc_of(&inst);
        let res = min_resource(&arc, 10, 0.5).unwrap();
        validate(&arc, &res.solution).unwrap();
        assert!(
            res.solution.makespan as f64 <= 10.0 / 0.5 + 1e-6,
            "makespan {} ≤ T/α",
            res.solution.makespan
        );
        // resource within 1/(1-α) of the LP bound
        assert!(
            res.solution.budget_used as f64 <= res.lp_budget / 0.5 + 1e-6,
            "{} vs LP {}",
            res.solution.budget_used,
            res.lp_budget
        );
    }

    #[test]
    fn min_resource_infeasible_target_errors() {
        let inst = serial_chain();
        let arc = arc_of(&inst);
        // even with infinite resource the chain takes 2 (y's floor)
        assert!(matches!(
            min_resource(&arc, 1, 0.5),
            Err(SolveError::Lp(LpError::Infeasible))
        ));
    }
}
