//! Problem instances: activity-on-node and activity-on-arc forms.

use rtt_dag::{is_acyclic, Dag, EdgeId, NodeId};
use rtt_duration::{Duration, DurationKind, Resource, Time};
use std::fmt;

/// A job: a named activity with a duration function (activity-on-node).
#[derive(Debug, Clone)]
pub struct Job {
    /// Human-readable label (used in DOT exports and traces).
    pub label: String,
    /// The job's duration function `t_v(r)`.
    pub duration: Duration,
}

impl Job {
    /// Job with an auto-generated label.
    pub fn new(duration: Duration) -> Self {
        Job {
            label: String::new(),
            duration,
        }
    }

    /// Job with an explicit label.
    pub fn labeled(label: impl Into<String>, duration: Duration) -> Self {
        Job {
            label: label.into(),
            duration,
        }
    }
}

/// Errors when constructing an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// The graph contains a cycle.
    Cyclic,
    /// The graph does not have exactly one source.
    NotSingleSource(usize),
    /// The graph does not have exactly one sink.
    NotSingleSink(usize),
    /// The graph is empty.
    Empty,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::Cyclic => write!(f, "instance graph contains a cycle"),
            InstanceError::NotSingleSource(k) => write!(f, "expected 1 source, found {k}"),
            InstanceError::NotSingleSink(k) => write!(f, "expected 1 sink, found {k}"),
            InstanceError::Empty => write!(f, "instance graph is empty"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// An activity-on-node instance: the natural form of a race DAG `D(P)`
/// (§1–2). Nodes are jobs; edges are precedences (parallel edges model
/// repeated updates).
#[derive(Debug, Clone)]
pub struct Instance {
    dag: Dag<Job, ()>,
    source: NodeId,
    sink: NodeId,
}

impl Instance {
    /// Wraps a job DAG, checking it is acyclic with one source and one
    /// sink (§2 assumes this w.l.o.g.; use `rtt_dag::normalize` first if
    /// needed).
    pub fn new(dag: Dag<Job, ()>) -> Result<Self, InstanceError> {
        if dag.node_count() == 0 {
            return Err(InstanceError::Empty);
        }
        if !is_acyclic(&dag) {
            return Err(InstanceError::Cyclic);
        }
        let sources = dag.sources();
        if sources.len() != 1 {
            return Err(InstanceError::NotSingleSource(sources.len()));
        }
        let sinks = dag.sinks();
        if sinks.len() != 1 {
            return Err(InstanceError::NotSingleSink(sinks.len()));
        }
        Ok(Instance {
            source: sources[0],
            sink: sinks[0],
            dag,
        })
    }

    /// Builds the race-DAG instance of §1 from a bare precedence DAG:
    /// every node's work is its in-degree (`w_x = d_in(x)`), and its
    /// duration function is drawn from `family`.
    ///
    /// `family` receives the node's work and returns its duration
    /// function — pass e.g. `Duration::recursive_binary` or
    /// `Duration::kway`, or a closure building step functions.
    pub fn race_dag<N, E>(
        dag: &Dag<N, E>,
        mut family: impl FnMut(Time) -> Duration,
    ) -> Result<Self, InstanceError> {
        let mut out: Dag<Job, ()> = Dag::with_capacity(dag.node_count(), dag.edge_count());
        for v in dag.node_ids() {
            let w = dag.in_degree(v) as Time;
            out.add_node(Job::labeled(format!("{v}"), family(w)));
        }
        for e in dag.edge_refs() {
            out.add_edge(e.src, e.dst, ()).expect("same node set");
        }
        Instance::new(out)
    }

    /// Like [`Instance::race_dag`], but accepts a raw extracted race DAG
    /// with any number of sources/sinks: work values are the in-degrees
    /// *of the input graph* (each arc = one update, §1), and a zero-work
    /// super-source/super-sink is added if needed. The normalization
    /// arcs are pure precedences — they are not updates and add no work
    /// (the dummy-arc convention of §2).
    pub fn race_dag_normalized<N, E>(
        dag: &Dag<N, E>,
        mut family: impl FnMut(Time) -> Duration,
    ) -> Result<Self, InstanceError> {
        if dag.node_count() == 0 {
            return Err(InstanceError::Empty);
        }
        if !is_acyclic(dag) {
            return Err(InstanceError::Cyclic);
        }
        let mut out: Dag<Job, ()> = Dag::with_capacity(dag.node_count() + 2, dag.edge_count() + 2);
        for v in dag.node_ids() {
            let w = dag.in_degree(v) as Time;
            out.add_node(Job::labeled(format!("{v}"), family(w)));
        }
        for e in dag.edge_refs() {
            out.add_edge(e.src, e.dst, ()).expect("same node set");
        }
        rtt_dag::normalize_source_sink(&mut out, Job::labeled("⊥", Duration::zero()), ());
        Instance::new(out)
    }

    /// The underlying DAG.
    pub fn dag(&self) -> &Dag<Job, ()> {
        &self.dag
    }

    /// The unique source.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The unique sink.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// Number of jobs (nodes).
    pub fn job_count(&self) -> usize {
        self.dag.node_count()
    }

    /// Makespan with a fixed per-node resource allocation (no routing
    /// feasibility implied): longest path of `t_v(alloc_v)`.
    pub fn makespan_with(&self, alloc: &[Resource]) -> Time {
        assert_eq!(alloc.len(), self.dag.node_count());
        rtt_dag::longest_path_nodes(&self.dag, |v| {
            self.dag.node(v).duration.time(alloc[v.index()])
        })
        .expect("instance is acyclic")
        .weight
    }

    /// Zero-resource makespan (every job at `t_v(0)`).
    pub fn base_makespan(&self) -> Time {
        self.makespan_with(&vec![0; self.dag.node_count()])
    }

    /// Sum of all maximal useful resources — a trivially sufficient
    /// budget upper bound for experiments.
    pub fn saturation_budget(&self) -> Resource {
        self.dag
            .node_ids()
            .map(|v| self.dag.node(v).duration.max_useful_resource())
            .sum()
    }
}

/// An activity on an arc of an [`ArcInstance`].
#[derive(Debug, Clone)]
pub struct Activity {
    /// Duration function of this activity.
    pub duration: Duration,
    /// The activity-on-node job this arc represents (`None` for dummy
    /// precedence arcs and for arcs built directly, e.g. gadgets).
    pub origin: Option<NodeId>,
    /// Label for exports.
    pub label: String,
}

impl Activity {
    /// A dummy (zero-duration) precedence arc.
    pub fn dummy() -> Self {
        Activity {
            duration: Duration::zero(),
            origin: None,
            label: String::new(),
        }
    }

    /// An activity with the given duration function.
    pub fn new(duration: Duration) -> Self {
        Activity {
            duration,
            origin: None,
            label: String::new(),
        }
    }

    /// An activity with a label.
    pub fn labeled(label: impl Into<String>, duration: Duration) -> Self {
        Activity {
            duration,
            origin: None,
            label: label.into(),
        }
    }

    /// Whether extra resources can ever help this activity.
    pub fn improvable(&self) -> bool {
        self.duration.len() > 1
    }
}

/// An activity-on-arc instance (`D'` of §2/§3.1): durations live on the
/// edges, the makespan is the longest path of arc durations, and the
/// resource is routed as a flow on these same arcs.
#[derive(Debug, Clone)]
pub struct ArcInstance {
    dag: Dag<(), Activity>,
    source: NodeId,
    sink: NodeId,
}

impl ArcInstance {
    /// Wraps an activity DAG (single source/sink, acyclic).
    pub fn new(dag: Dag<(), Activity>) -> Result<Self, InstanceError> {
        if dag.node_count() == 0 {
            return Err(InstanceError::Empty);
        }
        if !is_acyclic(&dag) {
            return Err(InstanceError::Cyclic);
        }
        let sources = dag.sources();
        if sources.len() != 1 {
            return Err(InstanceError::NotSingleSource(sources.len()));
        }
        let sinks = dag.sinks();
        if sinks.len() != 1 {
            return Err(InstanceError::NotSingleSink(sinks.len()));
        }
        Ok(ArcInstance {
            source: sources[0],
            sink: sinks[0],
            dag,
        })
    }

    /// The underlying DAG.
    pub fn dag(&self) -> &Dag<(), Activity> {
        &self.dag
    }

    /// The unique source.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The unique sink.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// Duration of arc `e` when the flow through it is `f` (Question 1.3:
    /// a job may use exactly the resource routed through it).
    pub fn arc_time(&self, e: EdgeId, f: Resource) -> Time {
        self.dag.edge(e).duration.time(f)
    }

    /// Makespan induced by a per-edge flow (longest path of arc
    /// durations). Does *not* check that `flows` is a valid flow — use
    /// [`crate::solution::validate`] for certification.
    pub fn makespan_with_flows(&self, flows: &[Resource]) -> Time {
        assert_eq!(flows.len(), self.dag.edge_count());
        rtt_dag::longest_path_edges(&self.dag, |e| self.arc_time(e, flows[e.index()]))
            .expect("instance is acyclic")
            .weight
    }

    /// Zero-resource makespan.
    pub fn base_makespan(&self) -> Time {
        self.makespan_with_flows(&vec![0; self.dag.edge_count()])
    }

    /// Makespan when every activity gets unlimited resources — the best
    /// conceivably achievable (infinite budget).
    pub fn ideal_makespan(&self) -> Time {
        rtt_dag::longest_path_edges(&self.dag, |e| self.dag.edge(e).duration.min_time())
            .expect("instance is acyclic")
            .weight
    }

    /// Edges whose duration can actually be improved by resources
    /// (the "jobs" the solvers enumerate).
    pub fn improvable_edges(&self) -> Vec<EdgeId> {
        self.dag
            .edge_ids()
            .filter(|&e| self.dag.edge(e).improvable())
            .collect()
    }

    /// Sum of per-edge maximal useful resources (loose budget bound).
    pub fn saturation_budget(&self) -> Resource {
        self.dag
            .edge_ids()
            .map(|e| self.dag.edge(e).duration.max_useful_resource())
            .sum()
    }

    /// The dominant duration-function family among improvable arcs, if
    /// unique. Solver dispatch helpers use this.
    pub fn dominant_kind(&self) -> Option<DurationKind> {
        let mut kinds = self
            .improvable_edges()
            .into_iter()
            .map(|e| self.dag.edge(e).duration.kind());
        let first = kinds.next()?;
        let same = |a: DurationKind, b: DurationKind| {
            matches!(
                (a, b),
                (DurationKind::Step, DurationKind::Step)
                    | (DurationKind::KWay { .. }, DurationKind::KWay { .. })
                    | (
                        DurationKind::RecursiveBinary { .. },
                        DurationKind::RecursiveBinary { .. }
                    )
            )
        };
        kinds.all(|k| same(k, first)).then_some(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_duration::Tuple;

    fn diamond_instance() -> Instance {
        let mut g: Dag<Job, ()> = Dag::new();
        let s = g.add_node(Job::labeled("s", Duration::zero()));
        let a = g.add_node(Job::labeled("a", Duration::two_point(10, 2, 4)));
        let b = g.add_node(Job::labeled("b", Duration::constant(6)));
        let t = g.add_node(Job::labeled("t", Duration::zero()));
        g.add_edge(s, a, ()).unwrap();
        g.add_edge(s, b, ()).unwrap();
        g.add_edge(a, t, ()).unwrap();
        g.add_edge(b, t, ()).unwrap();
        Instance::new(g).unwrap()
    }

    #[test]
    fn construction_checks() {
        let mut g: Dag<Job, ()> = Dag::new();
        assert!(matches!(
            Instance::new(g.clone()),
            Err(InstanceError::Empty)
        ));
        let a = g.add_node(Job::new(Duration::zero()));
        let b = g.add_node(Job::new(Duration::zero()));
        // two sources (and two sinks): source error reported first
        assert!(matches!(
            Instance::new(g.clone()),
            Err(InstanceError::NotSingleSource(2))
        ));
        g.add_edge(a, b, ()).unwrap();
        assert!(Instance::new(g).is_ok());
    }

    #[test]
    fn race_dag_uses_in_degree() {
        let mut g: Dag<(), ()> = Dag::new();
        let s = g.add_node(());
        let x = g.add_node(());
        let t = g.add_node(());
        g.add_parallel_edges(s, x, (), 6).unwrap();
        g.add_edge(x, t, ()).unwrap();
        let inst = Instance::race_dag(&g, Duration::recursive_binary).unwrap();
        // x has work 6: base 6, with 2 units -> ⌈6/2⌉+2 = 5
        assert_eq!(inst.dag().node(x).duration.time(0), 6);
        assert_eq!(inst.dag().node(x).duration.time(2), 5);
        assert_eq!(inst.base_makespan(), 6 + 1);
    }

    #[test]
    fn makespan_with_allocation() {
        let inst = diamond_instance();
        assert_eq!(inst.base_makespan(), 10);
        // give job a two units: t_a = 4, path b now critical (6)
        let mut alloc = vec![0; 4];
        alloc[1] = 2;
        assert_eq!(inst.makespan_with(&alloc), 6);
        assert_eq!(inst.saturation_budget(), 2);
    }

    #[test]
    fn arc_instance_basics() {
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let m = g.add_node(());
        let t = g.add_node(());
        let e1 = g
            .add_edge(s, m, Activity::new(Duration::two_point(8, 3, 1)))
            .unwrap();
        g.add_edge(m, t, Activity::dummy()).unwrap();
        let inst = ArcInstance::new(g).unwrap();
        assert_eq!(inst.base_makespan(), 8);
        assert_eq!(inst.ideal_makespan(), 1);
        assert_eq!(inst.arc_time(e1, 2), 8);
        assert_eq!(inst.arc_time(e1, 3), 1);
        assert_eq!(inst.improvable_edges(), vec![e1]);
        let mut flows = vec![0, 0];
        flows[e1.index()] = 3;
        assert_eq!(inst.makespan_with_flows(&flows), 1);
    }

    #[test]
    fn dominant_kind_detection() {
        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, Activity::new(Duration::kway(100))).unwrap();
        g.add_edge(s, t, Activity::new(Duration::kway(50))).unwrap();
        g.add_edge(s, t, Activity::dummy()).unwrap(); // not improvable
        let inst = ArcInstance::new(g).unwrap();
        assert!(matches!(
            inst.dominant_kind(),
            Some(DurationKind::KWay { .. })
        ));

        let mut g: Dag<(), Activity> = Dag::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, Activity::new(Duration::kway(100))).unwrap();
        g.add_edge(
            s,
            t,
            Activity::new(
                Duration::step(vec![Tuple::new(0, 9), Tuple::new(1, 2)]).unwrap(),
            ),
        )
        .unwrap();
        let inst = ArcInstance::new(g).unwrap();
        assert_eq!(inst.dominant_kind(), None);
    }

    #[test]
    fn cyclic_arc_instance_rejected() {
        let mut g: Dag<(), Activity> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, Activity::dummy()).unwrap();
        g.add_edge(b, c, Activity::dummy()).unwrap();
        g.add_edge(c, b, Activity::dummy()).unwrap();
        assert!(matches!(ArcInstance::new(g), Err(InstanceError::Cyclic)));
    }
}
