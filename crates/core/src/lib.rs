//! # rtt-core — the discrete resource-time tradeoff with reuse over paths
//!
//! This crate implements the primary contribution of the SPAA '19 paper
//! *"Data Races and the Discrete Resource-time Tradeoff Problem with
//! Resource Reuse over Paths"* (Das, Tsai, Duppala, Lynch, Arkin,
//! Chowdhury, Mitchell, Skiena):
//!
//! Given a DAG whose vertices are jobs with non-increasing duration
//! functions `t_v(r)`, route `B` units of a reusable resource along
//! source→sink paths — every unit may speed up *multiple* jobs along its
//! path — to minimize the makespan ([`MinMakespan`]), or conversely use
//! the fewest units to meet a makespan target ([`min_resource`]).
//!
//! ## Pipeline (§3.1)
//!
//! 1. [`Instance`] (activity on *nodes*, the natural race-DAG form) is
//!    reduced to an [`ArcInstance`] (activity on *arcs*) —
//!    [`transform::to_arc_form`];
//! 2. arcs with `l ≥ 2` resource-time tuples are expanded into `l`
//!    parallel two-edge chains with at most two tuples each
//!    ([`transform::expand_two_tuples`], Figures 6–7, Lemma 3.1);
//! 3. the relaxed problem is the linear program **LP 6–10** over flow
//!    variables `f_e` and event times `T_v` ([`lp_build`]), solved with
//!    `rtt-lp`;
//! 4. durations are α-rounded and the integral resource routing is
//!    recovered with a lower-bounded **min-flow** ([`rounding`],
//!    LP 11–13, via `rtt-flow`).
//!
//! ## Solvers
//!
//! | function | guarantee | paper |
//! |---|---|---|
//! | [`solve_bicriteria`] | (1/α, 1/(1−α)) bi-criteria | Thm 3.4 |
//! | [`solve_kway_5approx`] | makespan ≤ 5·OPT, budget kept | Thm 3.9 |
//! | [`solve_recbinary_4approx`] | makespan ≤ 4·OPT, budget kept | Thm 3.10 |
//! | [`solve_recbinary_improved`] | (4/3, 14/5) bi-criteria | Thm 3.16 |
//! | [`sp_dp::solve_sp_exact`] | exact, O(mB²), SP DAGs | §3.4 |
//! | [`exact::solve_exact`] | exact, exponential (reference) | — |
//!
//! Every solver returns a [`Solution`] whose resource routing is a
//! certified integral flow; [`solution::validate`] re-derives the
//! makespan from the flow and checks conservation and the budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod fingerprint;
pub mod from_race;
pub mod instance;
pub mod lp_build;
pub mod regimes;
pub mod rounding;
pub mod solution;
pub mod solvers;
pub mod sp_dp;
pub mod transform;

pub use from_race::{
    instance_from_program, instance_from_race_dag, FromRaceError, ReducerFamily,
};
pub use fingerprint::{
    canonical_form, fingerprint, shape_form, CanonicalForm, Fingerprint, CANONICAL_FORM_TAG,
    SHAPE_FORM_TAG,
};
pub use instance::{ArcInstance, Activity, Instance, InstanceError, Job};
pub use regimes::{
    compare_regimes, global_reuse_schedule, solve_noreuse_bicriteria,
    solve_noreuse_bicriteria_prepped, solve_noreuse_exact, verify_global_schedule, GlobalPolicy,
    GlobalSchedule, NoReuseSolution, RegimeComparison,
};
pub use solution::{routing_plan, validate, Route, RoutingPlan, Solution, ValidationError};
pub use lp_build::{solve_min_makespan_sweep, MakespanLp};
pub use solvers::{
    bicriteria_round_prepped, min_resource, min_resource_prepped, solve_bicriteria,
    solve_bicriteria_prepped, solve_bicriteria_with, solve_kway_5approx,
    solve_kway_5approx_prepped, solve_recbinary_4approx, solve_recbinary_4approx_prepped,
    solve_recbinary_improved, solve_recbinary_improved_prepped, ApproxSolution, MinMakespan,
    SolveError,
};
pub use transform::{expand_two_tuples, to_arc_form, TwoTupleInstance};

pub use rtt_duration::{Duration, Resource, Time, INF};
