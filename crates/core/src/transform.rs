//! DAG transformations of §2 and §3.1 (Figures 6 and 7).

use crate::instance::{Activity, ArcInstance, Instance};
use rtt_dag::{Dag, EdgeId, NodeId};
use rtt_duration::{Resource, Time};

/// Mapping produced by [`to_arc_form`]: where each original job went.
#[derive(Debug, Clone)]
pub struct ArcFormMap {
    /// `job_arc[v]` = the arc of `D'` carrying node `v`'s activity.
    pub job_arc: Vec<EdgeId>,
    /// `(a_v, b_v)` endpoints per original node.
    pub split: Vec<(NodeId, NodeId)>,
}

/// Activity-on-node → activity-on-arc (the `D → D'` reduction of §2).
///
/// Each node `v` becomes an arc `e_v = (a_v, b_v)` carrying `v`'s
/// duration function; each precedence edge `(u, v)` of `D` becomes a
/// zero-duration dummy arc `(b_u, a_v)`.
pub fn to_arc_form(inst: &Instance) -> (ArcInstance, ArcFormMap) {
    let d = inst.dag();
    let mut out: Dag<(), Activity> = Dag::with_capacity(
        2 * d.node_count(),
        d.node_count() + d.edge_count(),
    );
    let mut split = Vec::with_capacity(d.node_count());
    for _v in d.node_ids() {
        let a = out.add_node(());
        let b = out.add_node(());
        split.push((a, b));
    }
    let mut job_arc = Vec::with_capacity(d.node_count());
    for v in d.node_ids() {
        let (a, b) = split[v.index()];
        let job = d.node(v);
        let e = out
            .add_edge(
                a,
                b,
                Activity {
                    duration: job.duration.clone(),
                    origin: Some(v),
                    label: job.label.clone(),
                },
            )
            .expect("fresh nodes");
        job_arc.push(e);
    }
    for e in d.edge_refs() {
        let (_, bu) = split[e.src.index()];
        let (av, _) = split[e.dst.index()];
        out.add_edge(bu, av, Activity::dummy()).expect("fresh nodes");
    }
    let arc = ArcInstance::new(out).expect("transformation preserves the two-terminal DAG shape");
    (arc, ArcFormMap { job_arc, split })
}

/// One arc of the two-tuple form `D''`: `⟨0, t0⟩` plus an optional
/// purchase `⟨r, t1⟩` (buy `r` units through this arc to cut the
/// duration from `t0` to `t1`). §3.1 produces `t1 = 0`, but gadget-built
/// instances may use arbitrary `t1 ≤ t0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoTuple {
    /// Duration with no resource.
    pub t0: Time,
    /// Optional `(resource, improved duration)` pair.
    pub buy: Option<(Resource, Time)>,
}

impl TwoTuple {
    /// A fixed-duration arc.
    pub fn constant(t0: Time) -> Self {
        TwoTuple { t0, buy: None }
    }

    /// Duration at integral flow `f`.
    pub fn time(&self, f: Resource) -> Time {
        match self.buy {
            Some((r, t1)) if f >= r => t1,
            _ => self.t0,
        }
    }

    /// Duration at fractional flow `f` under the §3.1 linear relaxation
    /// (Eq. 4/5): linear interpolation between the two tuples.
    pub fn relaxed_time(&self, f: f64) -> f64 {
        match self.buy {
            None => self.t0 as f64,
            Some((r, t1)) => {
                let frac = (f / r as f64).clamp(0.0, 1.0);
                self.t0 as f64 - (self.t0 as f64 - t1 as f64) * frac
            }
        }
    }
}

/// Provenance of each `D''` job arc back to the `D'` job it came from.
#[derive(Debug, Clone)]
pub struct ChainInfo {
    /// The `D'` edge this chain bundle expands.
    pub arc_edge: EdgeId,
    /// First edges of the parallel chains (the ones carrying tuples);
    /// `chain_edges[i]` corresponds to tuple index `i` of the canonical
    /// duration function.
    pub chain_edges: Vec<EdgeId>,
}

/// The `D''` instance (§3.1): every arc has at most two resource-time
/// tuples; job arcs of `D'` with `l ≥ 2` tuples appear as `l` parallel
/// two-edge chains.
#[derive(Debug, Clone)]
pub struct TwoTupleInstance {
    /// The graph; edge payloads are the two-tuple activities.
    pub dag: Dag<(), TwoTuple>,
    /// Source (same role as in `D'`).
    pub source: NodeId,
    /// Sink.
    pub sink: NodeId,
    /// One entry per improvable `D'` job arc (`l ≥ 2` tuples).
    pub chains: Vec<ChainInfo>,
    /// For each `D'` edge: its identity image in `D''` if it was copied
    /// verbatim (dummies and single-tuple arcs), else `None` (expanded).
    pub copied: Vec<Option<EdgeId>>,
}

impl TwoTupleInstance {
    /// Makespan induced by integral per-edge flows.
    pub fn makespan_with_flows(&self, flows: &[Resource]) -> Time {
        assert_eq!(flows.len(), self.dag.edge_count());
        rtt_dag::longest_path_edges(&self.dag, |e| self.dag.edge(e).time(flows[e.index()]))
            .expect("acyclic")
            .weight
    }

    /// Collapses a `D''` per-edge flow to a `D'` per-edge flow: chain
    /// bundle flows sum onto the original job arc; copied edges map 1:1.
    pub fn collapse_flow(&self, arc: &ArcInstance, flows: &[Resource]) -> Vec<Resource> {
        assert_eq!(flows.len(), self.dag.edge_count());
        let mut out = vec![0; arc.dag().edge_count()];
        for (e, img) in self.copied.iter().enumerate() {
            if let Some(img) = img {
                out[e] = flows[img.index()];
            }
        }
        for info in &self.chains {
            out[info.arc_edge.index()] = info
                .chain_edges
                .iter()
                .map(|ce| flows[ce.index()])
                .sum();
        }
        out
    }
}

/// Expands a `D'` instance into its two-tuple form `D''` (§3.1, Fig. 6).
///
/// For a job with canonical tuples `⟨r_1=0, t_1⟩ … ⟨r_l, t_l⟩` (`l ≥ 2`)
/// between `u` and `v`, we create `l` chains `u → u_i → v`:
///
/// * chain `i < l`: first edge `{⟨0, t_i⟩, ⟨r_{i+1} − r_i, 0⟩}` — paying
///   the tuple-gap resource kills this chain's contribution;
/// * chain `l`: first edge `⟨0, t_l⟩` (cannot be improved further);
/// * second edges `(u_i, v)` are free `⟨0, 0⟩`.
///
/// The max over chains reproduces the original step function under the
/// canonical prefix-purchase mapping (Lemma 3.1), and uncapped chains let
/// surplus resource *pass through* for reuse further down the path.
pub fn expand_two_tuples(arc: &ArcInstance) -> TwoTupleInstance {
    let d = arc.dag();
    let mut out: Dag<(), TwoTuple> = Dag::with_capacity(d.node_count(), d.edge_count());
    for _ in d.node_ids() {
        out.add_node(());
    }
    let mut chains = Vec::new();
    let mut copied = vec![None; d.edge_count()];
    for e in d.edge_refs() {
        let dur = &e.weight.duration;
        let tuples = dur.tuples();
        if tuples.len() < 2 {
            let img = out
                .add_edge(e.src, e.dst, TwoTuple::constant(dur.base_time()))
                .expect("same node set");
            copied[e.id.index()] = Some(img);
            continue;
        }
        let l = tuples.len();
        let mut chain_edges = Vec::with_capacity(l);
        for i in 0..l {
            let mid = out.add_node(());
            let tt = if i + 1 < l {
                TwoTuple {
                    t0: tuples[i].time,
                    buy: Some((tuples[i + 1].resource - tuples[i].resource, 0)),
                }
            } else {
                TwoTuple::constant(tuples[i].time)
            };
            let first = out.add_edge(e.src, mid, tt).expect("fresh node");
            out.add_edge(mid, e.dst, TwoTuple::constant(0))
                .expect("fresh node");
            chain_edges.push(first);
        }
        chains.push(ChainInfo {
            arc_edge: e.id,
            chain_edges,
        });
    }
    TwoTupleInstance {
        dag: out,
        source: arc.source(),
        sink: arc.sink(),
        chains,
        copied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Job;
    use rtt_duration::{Duration, Tuple};

    fn tiny_instance() -> Instance {
        // s -> x -> t, x improvable with 3 tuples.
        let mut g: Dag<Job, ()> = Dag::new();
        let s = g.add_node(Job::labeled("s", Duration::zero()));
        let x = g.add_node(Job::labeled(
            "x",
            Duration::step(vec![
                Tuple::new(0, 10),
                Tuple::new(2, 6),
                Tuple::new(5, 1),
            ])
            .unwrap(),
        ));
        let t = g.add_node(Job::labeled("t", Duration::zero()));
        g.add_edge(s, x, ()).unwrap();
        g.add_edge(x, t, ()).unwrap();
        Instance::new(g).unwrap()
    }

    #[test]
    fn arc_form_shape() {
        let inst = tiny_instance();
        let (arc, map) = to_arc_form(&inst);
        // 3 nodes -> 6 nodes; 3 job arcs + 2 dummies.
        assert_eq!(arc.dag().node_count(), 6);
        assert_eq!(arc.dag().edge_count(), 5);
        assert_eq!(map.job_arc.len(), 3);
        // makespans agree (base)
        assert_eq!(arc.base_makespan(), inst.base_makespan());
        assert_eq!(arc.base_makespan(), 10);
        // job arcs carry the original durations
        let x_arc = map.job_arc[1];
        assert_eq!(arc.dag().edge(x_arc).duration.time(0), 10);
        assert_eq!(arc.dag().edge(x_arc).origin, Some(NodeId(1)));
    }

    #[test]
    fn arc_form_preserves_makespan_under_allocation() {
        let inst = tiny_instance();
        let (arc, map) = to_arc_form(&inst);
        let mut flows = vec![0; arc.dag().edge_count()];
        flows[map.job_arc[1].index()] = 2;
        assert_eq!(arc.makespan_with_flows(&flows), 6);
        flows[map.job_arc[1].index()] = 5;
        assert_eq!(arc.makespan_with_flows(&flows), 1);
    }

    #[test]
    fn two_tuple_expansion_shape() {
        let inst = tiny_instance();
        let (arc, _) = to_arc_form(&inst);
        let tt = expand_two_tuples(&arc);
        // x has 3 tuples -> 3 chains (6 edges) replacing 1 edge;
        // 2 constant job arcs (s, t) + 2 dummies copied verbatim.
        assert_eq!(tt.chains.len(), 1);
        assert_eq!(tt.chains[0].chain_edges.len(), 3);
        assert_eq!(tt.dag.edge_count(), 4 + 6);
        assert_eq!(tt.dag.node_count(), 6 + 3);
        // every edge of D'' has at most two tuples by construction (type-
        // level guarantee); check the chain contents match Fig. 6:
        let ce = &tt.chains[0].chain_edges;
        assert_eq!(
            *tt.dag.edge(ce[0]),
            TwoTuple {
                t0: 10,
                buy: Some((2, 0))
            }
        );
        assert_eq!(
            *tt.dag.edge(ce[1]),
            TwoTuple {
                t0: 6,
                buy: Some((3, 0))
            }
        );
        assert_eq!(*tt.dag.edge(ce[2]), TwoTuple::constant(1));
    }

    #[test]
    fn prefix_purchase_reproduces_step_function_lemma31() {
        // Lemma 3.1's canonical mapping: buying the first i chain gaps
        // yields duration t(r_{i+1}) at cost r_{i+1}.
        let inst = tiny_instance();
        let (arc, _) = to_arc_form(&inst);
        let tt = expand_two_tuples(&arc);
        let ce = &tt.chains[0].chain_edges;
        let mut flows = vec![0; tt.dag.edge_count()];
        // no purchase: max(10, 6, 1) = 10
        assert_eq!(tt.makespan_with_flows(&flows), 10);
        // buy chain 0 (2 units): max(0, 6, 1) = 6
        flows[ce[0].index()] = 2;
        assert_eq!(tt.makespan_with_flows(&flows), 6);
        // buy chains 0 and 1 (2 + 3 = 5 units): max(0, 0, 1) = 1
        flows[ce[1].index()] = 3;
        assert_eq!(tt.makespan_with_flows(&flows), 1);
    }

    #[test]
    fn collapse_flow_sums_chains() {
        let inst = tiny_instance();
        let (arc, map) = to_arc_form(&inst);
        let tt = expand_two_tuples(&arc);
        let ce = &tt.chains[0].chain_edges;
        let mut flows = vec![0; tt.dag.edge_count()];
        flows[ce[0].index()] = 2;
        flows[ce[1].index()] = 3;
        let collapsed = tt.collapse_flow(&arc, &flows);
        assert_eq!(collapsed[map.job_arc[1].index()], 5);
    }

    #[test]
    fn relaxed_time_interpolates() {
        let tt = TwoTuple {
            t0: 10,
            buy: Some((4, 0)),
        };
        assert_eq!(tt.relaxed_time(0.0), 10.0);
        assert_eq!(tt.relaxed_time(2.0), 5.0);
        assert_eq!(tt.relaxed_time(4.0), 0.0);
        assert_eq!(tt.relaxed_time(9.0), 0.0); // clamped
        let c = TwoTuple::constant(7);
        assert_eq!(c.relaxed_time(3.0), 7.0);
        // integral evaluation
        assert_eq!(tt.time(3), 10);
        assert_eq!(tt.time(4), 0);
    }

    #[test]
    fn recursive_binary_expansion_matches_figure7() {
        // Fig. 7: a rec-binary arc with k+1 tuples becomes parallel
        // chains with gaps 2, 2, 4, 8, ... (tuple levels 0,2,4,8,16...).
        let mut g: Dag<Job, ()> = Dag::new();
        let s = g.add_node(Job::new(Duration::zero()));
        let x = g.add_node(Job::new(Duration::recursive_binary(64)));
        let t = g.add_node(Job::new(Duration::zero()));
        g.add_edge(s, x, ()).unwrap();
        g.add_edge(x, t, ()).unwrap();
        let inst = Instance::new(g).unwrap();
        let (arc, _) = to_arc_form(&inst);
        let tt = expand_two_tuples(&arc);
        let gaps: Vec<u64> = tt.chains[0]
            .chain_edges
            .iter()
            .filter_map(|&e| tt.dag.edge(e).buy.map(|(r, _)| r))
            .collect();
        // levels 0,2,4,8,16,32 -> gaps 2,2,4,8,16
        assert_eq!(gaps, vec![2, 2, 4, 8, 16]);
    }
}
