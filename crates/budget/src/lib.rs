//! # rtt-budget — cooperative resource metering for every solver layer
//!
//! The serving engine (`rtt_engine`) admits requests that carry
//! resource budgets: a pivot cap for the simplex loops, a
//! combinatorial-work cap for the SP-DP merge loop and the exact
//! search, an event cap for the Observation 1.1 simulation, a
//! wall-clock deadline, and a queue-depth bound. Enforcement has to be
//! *cooperative and mid-solve* — the long loops live in `rtt_lp`,
//! `rtt_core`, and `rtt_sim`, crates that sit **below** the engine in
//! the dependency order and must not know about requests, policies, or
//! reports. This crate is the seam: a [`BudgetMeter`] carries hard
//! limits, monotone consumption counters, an optional absolute
//! deadline, and a cancellation flag; the compute loops charge it
//! periodically and bail out with a typed [`Exhausted`] error; the
//! engine alone interprets that error against the request's
//! `ExhaustionPolicy` (reject / degrade / warn — see
//! `rtt_engine::budget`).
//!
//! Counter-based dimensions are **deterministic**: the loops charge
//! them at deterministic points, so whether a request exhausts — and
//! the exact `consumed` value it reports — is independent of thread
//! count and machine speed. The wall-clock deadline and the
//! cancellation flag are the two intentionally *non*-deterministic
//! dimensions, and the engine keeps them off the byte-stable wire for
//! exactly that reason (same contract as `deadline_ms` today).
//!
//! A meter without limits never exhausts and costs one relaxed atomic
//! add per charge, so the metered code paths are also the unmetered
//! ones — there is no separate "fast path" to drift out of sync.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// A meterable budget dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dimension {
    /// Wall-clock time from enqueue (non-deterministic by nature; the
    /// engine maps it onto its existing `deadline-expired` status).
    WallClock,
    /// Simplex pivots and bound flips, across every LP the request
    /// solves (the revised *and* flat engines charge it).
    LpPivots,
    /// Combinatorial solver work: SP-DP merge steps and exact-search
    /// nodes both charge this dimension — the same unification as the
    /// wire format's `work` counter.
    DpMergeSteps,
    /// Events of the Observation 1.1 certification simulation.
    SimEvents,
    /// Requests queued ahead at enqueue (engine-side admission only;
    /// nothing charges it through a meter).
    QueueDepth,
    /// Cooperative cancellation (the [`BudgetMeter::cancel`] flag was
    /// raised by another thread).
    Cancelled,
}

impl Dimension {
    /// Stable wire/diagnostic name of the dimension.
    pub fn as_str(self) -> &'static str {
        match self {
            Dimension::WallClock => "wall_clock",
            Dimension::LpPivots => "lp_pivots",
            Dimension::DpMergeSteps => "dp_merge_steps",
            Dimension::SimEvents => "sim_events",
            Dimension::QueueDepth => "queue_depth",
            Dimension::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for Dimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Typed mid-solve budget-exhaustion error: which dimension ran out,
/// its limit, and the consumption at the moment the loop gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhausted {
    /// The dimension that ran out.
    pub dimension: Dimension,
    /// The installed limit (0 for the limitless wall-clock/cancel
    /// dimensions, whose "limit" is an instant or a flag).
    pub limit: u64,
    /// Consumption when the loop bailed out (`> limit` for counters:
    /// the charge that crossed the line is included).
    pub consumed: u64,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dimension {
            Dimension::WallClock => write!(f, "budget exhausted: wall-clock deadline passed"),
            Dimension::Cancelled => write!(f, "budget exhausted: cancelled"),
            d => write!(
                f,
                "budget exhausted: {} {} > limit {}",
                d, self.consumed, self.limit
            ),
        }
    }
}

impl std::error::Error for Exhausted {}

/// Snapshot of a meter's consumption counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Consumed {
    /// Simplex pivots + bound flips charged so far.
    pub lp_pivots: u64,
    /// DP merge steps + exact-search nodes charged so far.
    pub dp_merge_steps: u64,
    /// Simulation events charged so far.
    pub sim_events: u64,
}

/// How often (in charges) the time-based checks run: counter charges
/// are relaxed atomic adds, but `Instant::now()` is a syscall-ish cost
/// the hot loops must not pay per pivot.
const TIME_CHECK_EVERY: u64 = 64;

/// Hard limits, monotone consumption counters, an optional absolute
/// deadline, and a cancellation flag — the object the engine threads
/// down into every compute loop.
///
/// Counters are cumulative across a request's whole solve (all LPs of
/// a sweep, every DP node, …), so a loop that restarts after an
/// exhaustion immediately re-exhausts on its first charge: the cap is a
/// cap on the *request*, not on any single loop.
#[derive(Debug, Default)]
pub struct BudgetMeter {
    lp_pivots: AtomicU64,
    dp_merge_steps: AtomicU64,
    sim_events: AtomicU64,
    lp_pivots_limit: Option<u64>,
    dp_merge_steps_limit: Option<u64>,
    sim_events_limit: Option<u64>,
    deadline: Option<Instant>,
    cancelled: AtomicBool,
    /// Charges since the last deadline/cancel check.
    ticks: AtomicU64,
}

impl BudgetMeter {
    /// A meter with no limits: counts, never exhausts.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A meter enforcing the given per-dimension hard limits (`None` =
    /// unlimited) and, if set, an absolute wall-clock deadline.
    pub fn with_limits(
        lp_pivots: Option<u64>,
        dp_merge_steps: Option<u64>,
        sim_events: Option<u64>,
        deadline: Option<Instant>,
    ) -> Self {
        BudgetMeter {
            lp_pivots_limit: lp_pivots,
            dp_merge_steps_limit: dp_merge_steps,
            sim_events_limit: sim_events,
            deadline,
            ..Self::default()
        }
    }

    /// Raises the cooperative cancellation flag: every metered loop
    /// observes it at its next periodic check and unwinds with
    /// [`Dimension::Cancelled`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`BudgetMeter::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Snapshot of the consumption counters.
    pub fn consumed(&self) -> Consumed {
        Consumed {
            lp_pivots: self.lp_pivots.load(Ordering::Relaxed),
            dp_merge_steps: self.dp_merge_steps.load(Ordering::Relaxed),
            sim_events: self.sim_events.load(Ordering::Relaxed),
        }
    }

    /// The installed limit for a counter dimension (`None` for
    /// unlimited or non-counter dimensions).
    pub fn limit(&self, dim: Dimension) -> Option<u64> {
        match dim {
            Dimension::LpPivots => self.lp_pivots_limit,
            Dimension::DpMergeSteps => self.dp_merge_steps_limit,
            Dimension::SimEvents => self.sim_events_limit,
            _ => None,
        }
    }

    /// The deadline/cancellation check every charge funnels through
    /// (time only every [`TIME_CHECK_EVERY`] charges; the cancel flag
    /// is a relaxed load, checked every time).
    #[inline]
    fn periodic(&self) -> Result<(), Exhausted> {
        if self.is_cancelled() {
            return Err(Exhausted {
                dimension: Dimension::Cancelled,
                limit: 0,
                consumed: 0,
            });
        }
        if let Some(deadline) = self.deadline {
            let t = self.ticks.fetch_add(1, Ordering::Relaxed);
            if t.is_multiple_of(TIME_CHECK_EVERY) && Instant::now() >= deadline {
                return Err(Exhausted {
                    dimension: Dimension::WallClock,
                    limit: 0,
                    consumed: 0,
                });
            }
        }
        Ok(())
    }

    #[inline]
    fn charge(
        counter: &AtomicU64,
        limit: Option<u64>,
        dim: Dimension,
        n: u64,
    ) -> Result<u64, Exhausted> {
        let consumed = counter.fetch_add(n, Ordering::Relaxed) + n;
        match limit {
            Some(limit) if consumed > limit => Err(Exhausted {
                dimension: dim,
                limit,
                consumed,
            }),
            _ => Ok(consumed),
        }
    }

    /// Charges `n` simplex pivots/bound flips.
    #[inline]
    pub fn charge_lp_pivots(&self, n: u64) -> Result<(), Exhausted> {
        self.periodic()?;
        Self::charge(
            &self.lp_pivots,
            self.lp_pivots_limit,
            Dimension::LpPivots,
            n,
        )
        .map(|_| ())
    }

    /// Charges `n` units of combinatorial solver work (DP merge steps,
    /// exact-search nodes).
    #[inline]
    pub fn charge_merge_steps(&self, n: u64) -> Result<(), Exhausted> {
        self.periodic()?;
        Self::charge(
            &self.dp_merge_steps,
            self.dp_merge_steps_limit,
            Dimension::DpMergeSteps,
            n,
        )
        .map(|_| ())
    }

    /// Charges `n` simulation events.
    #[inline]
    pub fn charge_sim_events(&self, n: u64) -> Result<(), Exhausted> {
        self.periodic()?;
        Self::charge(
            &self.sim_events,
            self.sim_events_limit,
            Dimension::SimEvents,
            n,
        )
        .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_meter_counts_and_never_exhausts() {
        let m = BudgetMeter::unlimited();
        for _ in 0..1000 {
            m.charge_lp_pivots(2).unwrap();
            m.charge_merge_steps(3).unwrap();
            m.charge_sim_events(5).unwrap();
        }
        let c = m.consumed();
        assert_eq!((c.lp_pivots, c.dp_merge_steps, c.sim_events), (2000, 3000, 5000));
    }

    #[test]
    fn counter_limits_exhaust_with_the_crossing_charge_included() {
        let m = BudgetMeter::with_limits(Some(10), None, None, None);
        for _ in 0..10 {
            m.charge_lp_pivots(1).unwrap();
        }
        let e = m.charge_lp_pivots(4).unwrap_err();
        assert_eq!(e.dimension, Dimension::LpPivots);
        assert_eq!(e.limit, 10);
        assert_eq!(e.consumed, 14);
        // cumulative: a restarted loop immediately re-exhausts
        assert!(m.charge_lp_pivots(1).is_err());
        // other dimensions stay open
        m.charge_merge_steps(1).unwrap();
    }

    #[test]
    fn cancellation_trips_every_dimension() {
        let m = BudgetMeter::unlimited();
        m.charge_sim_events(1).unwrap();
        m.cancel();
        let e = m.charge_sim_events(1).unwrap_err();
        assert_eq!(e.dimension, Dimension::Cancelled);
        assert_eq!(m.charge_lp_pivots(1).unwrap_err().dimension, Dimension::Cancelled);
    }

    #[test]
    fn past_deadline_exhausts_wall_clock() {
        let m = BudgetMeter::with_limits(None, None, None, Some(Instant::now() - Duration::from_millis(1)));
        // tick 0 of the periodic schedule checks the clock immediately
        let e = m.charge_lp_pivots(1).unwrap_err();
        assert_eq!(e.dimension, Dimension::WallClock);
    }

    #[test]
    fn display_is_structured() {
        let e = Exhausted {
            dimension: Dimension::DpMergeSteps,
            limit: 5,
            consumed: 9,
        };
        assert_eq!(
            e.to_string(),
            "budget exhausted: dp_merge_steps 9 > limit 5"
        );
    }
}
