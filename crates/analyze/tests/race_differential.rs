//! PR-9 differential property test: the static summary-based race
//! analyzer reports **exactly** the dynamic detector's deduplicated
//! witness set — `(loc, min strand, max strand, write_write)` — on
//! seeded random fork-join programs and on the Parallel-MM family.
//! This is the contract that lets the benchmark (and any future
//! admission pre-pass) substitute summaries for concrete accesses.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtt_analyze::race::{analyze_races, dynamic_witness_set, witness_set};
use rtt_race::gen::random_fork_join;
use rtt_race::{detect_races, Prog};

fn assert_witnesses_match(prog: &Prog) {
    let static_w = witness_set(&analyze_races(prog));
    let dynamic_w = dynamic_witness_set(&detect_races(prog));
    assert_eq!(
        static_w, dynamic_w,
        "static summaries must expand to the dynamic witness set"
    );
}

proptest! {
    #[test]
    fn static_matches_dynamic_on_fork_join(
        seed in 0u64..256,
        stages in 1usize..5,
        width in 1usize..6,
        contention in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let prog = random_fork_join(&mut rng, stages, width, contention);
        assert_witnesses_match(&prog);
    }
}

#[test]
fn static_matches_dynamic_on_parallel_mm_racy() {
    for n in [1u64, 2, 3, 4, 6, 8] {
        let (prog, _) = rtt_race::mm::parallel_mm_racy(n);
        assert_witnesses_match(&prog);
        // and the witness count is the closed form the paper implies:
        // C(n,2) write-write pairs per output cell, n² cells
        let sums = analyze_races(&prog);
        let expect = n * (n - 1) / 2 * n * n;
        assert_eq!(rtt_analyze::race::witness_count(&sums), expect, "n={n}");
    }
}

#[test]
fn static_matches_dynamic_on_parallel_mm_safe() {
    for n in [1u64, 2, 4] {
        let (prog, _) = rtt_race::mm::parallel_mm(n);
        assert!(analyze_races(&prog).is_empty(), "safe MM n={n} must be race-free");
        assert_witnesses_match(&prog);
    }
}

#[test]
fn dense_contention_fork_join_pinned_case() {
    // the benchmark's dense-contention shape, pinned at a fixed seed so
    // a regression in either analyzer surfaces as a visible diff here
    let mut rng = StdRng::seed_from_u64(42);
    let prog = random_fork_join(&mut rng, 3, 8, 6);
    let sums = analyze_races(&prog);
    assert!(!sums.is_empty(), "dense contention must race");
    assert_witnesses_match(&prog);
    // repeated runs are byte-identical (detect_races order satellite)
    assert_eq!(analyze_races(&prog), sums);
    assert_eq!(detect_races(&prog), detect_races(&prog));
}
