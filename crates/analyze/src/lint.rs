//! Structured lint diagnostics: the stable `RTT0xx` vocabulary shared
//! by the `rtt lint` corpus/spec linter (CLI layer) and the engine's
//! request-admission hook.
//!
//! Design rules, mirrored from compiler diagnostics:
//!
//! * **Stable codes** — `RTT001`..`RTT013` never change meaning; new
//!   checks get new codes. [`CODES`] is the registry and the
//!   documentation source of truth.
//! * **Severity is part of the contract** — an *error* means the batch
//!   executor would reject the line at admission (`rtt batch` would
//!   fail); a *warning* means the line is admitted but a declared
//!   field is vacuous or will degrade the answer. Lint-clean corpora
//!   cannot fail admission; the agreement is cross-tested.
//! * **Deterministic order** — diagnostics sort by `(line, code,
//!   message)`; rendering never consults a hash map or a clock.
//!
//! Renderings: [`Diagnostic::human`] (`file:line: severity[code]:
//! message`, the compiler-style form) and [`Diagnostic::ndjson`] (one
//! JSON object per line for machine consumption).

use std::fmt;

/// Diagnostic severity. Ordering: errors sort before warnings at equal
/// line/code only through code numbering (error codes are disjoint
/// from warning codes by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The executor rejects this line at admission.
    Error,
    /// The line is admitted, but a declared field is vacuous or the
    /// answer will be degraded.
    Warning,
}

impl Severity {
    /// Stable lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured diagnostic, anchored to a 1-based source line (line
/// 0 for whole-document diagnostics, e.g. a spec file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, `RTT001`..`RTT013` (see [`CODES`]).
    pub code: &'static str,
    /// Whether the executor would reject the line.
    pub severity: Severity,
    /// 1-based line in the linted document (0 = whole document).
    pub line: usize,
    /// Human-readable detail, mirroring the executor's rejection text
    /// where one exists.
    pub message: String,
}

impl Diagnostic {
    /// An error diagnostic.
    pub fn error(code: &'static str, line: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            line,
            message: message.into(),
        }
    }

    /// A warning diagnostic.
    pub fn warning(code: &'static str, line: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            line,
            message: message.into(),
        }
    }

    /// Compiler-style single-line rendering:
    /// `name:line: severity[code]: message`.
    pub fn human(&self, source_name: &str) -> String {
        format!(
            "{}:{}: {}[{}]: {}",
            source_name, self.line, self.severity, self.code, self.message
        )
    }

    /// NDJSON rendering: `{"line":N,"code":"RTTnnn","severity":"...",
    /// "message":"..."}` — insertion-ordered fields, byte-stable.
    pub fn ndjson(&self) -> String {
        let mut out = String::with_capacity(self.message.len() + 64);
        out.push_str("{\"line\":");
        out.push_str(&self.line.to_string());
        out.push_str(",\"code\":\"");
        out.push_str(self.code);
        out.push_str("\",\"severity\":\"");
        out.push_str(self.severity.as_str());
        out.push_str("\",\"message\":\"");
        escape_into(&mut out, &self.message);
        out.push_str("\"}");
        out
    }
}

/// Sorts diagnostics into the canonical report order:
/// `(line, code, message)`.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.line, a.code, &a.message).cmp(&(b.line, b.code, &b.message))
    });
}

/// Whether any diagnostic is an error (→ the corpus cannot be
/// admitted; `rtt lint` exits nonzero).
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Minimal JSON string escaping (the only non-trivial bytes our
/// messages can carry are quotes and backslashes from `{:?}` field
/// echoes, plus control characters from hostile input echoed back).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// The diagnostic code registry: `(code, severity, meaning)`. The
/// one-line meanings here are the documentation source of truth (the
/// `rtt_cli::batch` wire docs repeat them verbatim).
pub const CODES: &[(&str, Severity, &str)] = &[
    ("RTT001", Severity::Error, "malformed JSON or wrong field shape (unparseable line, missing `instance`, mistyped field)"),
    ("RTT002", Severity::Error, "dangling edge endpoint, or an arc-form edge with no duration"),
    ("RTT003", Severity::Error, "the instance graph contains a cycle"),
    ("RTT004", Severity::Error, "instance rejected by construction (empty, or not two-terminal)"),
    ("RTT005", Severity::Error, "invalid duration table (empty, first resource not 0, non-increasing resources, or non-monotone times)"),
    ("RTT006", Severity::Error, "objective conflict (`budgets` vs `budget`/`target`/`objective`, ambiguous or missing objective fields, unknown objective)"),
    ("RTT007", Severity::Error, "bad sweep grid (empty, malformed grid string, or a sweep line naming a non-bicriteria solver)"),
    ("RTT008", Severity::Error, "unknown solver name"),
    ("RTT009", Severity::Error, "bad budget spec (`on_exhaustion` without a `max_*` limit, or an unknown exhaustion policy)"),
    ("RTT010", Severity::Error, "alpha outside the open interval (0, 1)"),
    ("RTT011", Severity::Warning, "zero deadline: the request always expires at dequeue without touching a solver"),
    ("RTT012", Severity::Warning, "queue-depth limit at least the batch size: the bound can never trip"),
    ("RTT013", Severity::Warning, "family-tag mismatch: the named solver does not support this instance"),
];

/// Looks up a code's registered severity and meaning.
pub fn code_info(code: &str) -> Option<(Severity, &'static str)> {
    CODES
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|(_, sev, meaning)| (*sev, *meaning))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_sorted_and_well_formed() {
        for w in CODES.windows(2) {
            assert!(w[0].0 < w[1].0, "codes must be sorted unique");
        }
        for (code, _, meaning) in CODES {
            assert!(code.starts_with("RTT") && code.len() == 6, "{code}");
            assert!(!meaning.is_empty());
        }
        // errors occupy RTT001..RTT010, warnings RTT011..RTT013
        assert_eq!(CODES.iter().filter(|(_, s, _)| *s == Severity::Error).count(), 10);
        assert_eq!(CODES.iter().filter(|(_, s, _)| *s == Severity::Warning).count(), 3);
    }

    #[test]
    fn renderings_are_stable() {
        let d = Diagnostic::error("RTT001", 3, "bad \"x\"\\path");
        assert_eq!(d.human("c.ndjson"), "c.ndjson:3: error[RTT001]: bad \"x\"\\path");
        assert_eq!(
            d.ndjson(),
            "{\"line\":3,\"code\":\"RTT001\",\"severity\":\"error\",\"message\":\"bad \\\"x\\\"\\\\path\"}"
        );
        let w = Diagnostic::warning("RTT011", 1, "zero deadline");
        assert_eq!(w.severity.as_str(), "warning");
    }

    #[test]
    fn sorting_is_by_line_then_code_then_message() {
        let mut ds = vec![
            Diagnostic::warning("RTT011", 2, "b"),
            Diagnostic::error("RTT001", 2, "a"),
            Diagnostic::error("RTT008", 1, "z"),
        ];
        sort_diagnostics(&mut ds);
        assert_eq!(
            ds.iter().map(|d| (d.line, d.code)).collect::<Vec<_>>(),
            vec![(1, "RTT008"), (2, "RTT001"), (2, "RTT011")]
        );
        assert!(has_errors(&ds));
        assert!(!has_errors(&ds[2..3]));
    }

    #[test]
    fn control_characters_escape() {
        let d = Diagnostic::error("RTT001", 1, "a\u{1}b\nc");
        assert!(d.ndjson().contains("a\\u0001b\\nc"));
    }
}
