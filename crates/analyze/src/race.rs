//! Summary-based static race analysis.
//!
//! The dynamic detector ([`rtt_race::detect_races`]) builds a
//! per-location list of every concrete access and compares pairs: cost
//! proportional to accesses per location squared, and memory
//! proportional to the total operation count. This pass never looks at
//! an individual access. It works on [`StrandFootprint`] summaries —
//! sorted, interval-compressed location runs with read/write masks —
//! and intersects them pairwise under the EH may-happen-in-parallel
//! relation:
//!
//! 0. **Prefilter**: a race needs a writer, so every run disjoint from
//!    the merged write intervals is dropped up front — read-mostly
//!    programs shed most of their event volume before the sweep runs.
//! 1. **Sweep**: every run contributes a start/end boundary event; one
//!    pass over the sorted events walks the location axis in *atomic
//!    segments* — maximal ranges on which every strand's mask is
//!    constant — maintaining the ordered set of runs covering the
//!    current segment. No per-segment binary searches, no global
//!    record table to re-sort.
//! 2. **Pair**: per segment, the active set splits into writers and
//!    pure readers; writer×writer pairs race write-write and
//!    writer×reader pairs race write-read, filtered by
//!    [`EhLabels::parallel`]. Segments without a writer are skipped
//!    wholesale — a read-only region can never race, no matter how
//!    many strands touch it — and per-location access lists never
//!    exist.
//! 3. **Coalesce**: each segment's pair keys merge-join against the
//!    location-adjacent previous segment's open summaries, extending a
//!    summary's range while the same (pair, kind) persists and closing
//!    it the moment it does not — maximal [`RaceSummary`] ranges fall
//!    out of the sweep itself, with no post-pass.
//!
//! Soundness *and* completeness versus the dynamic detector is part of
//! the contract: [`witness_set`] expands summaries to the dynamic
//! detector's dedup granularity — `(loc, min strand, max strand,
//! write_write)` — and a differential property test over seeded
//! fork-join programs plus the Parallel-MM family pins equality.

use rtt_race::footprint::{footprints, FootprintRun, StrandFootprint, WRITE};
use rtt_race::program::{EhLabels, Loc, Prog};
use rtt_race::Race;
use std::collections::BTreeSet;

/// A maximal range of locations on which one strand pair races with
/// one kind. The static analogue of a deduplicated [`Race`] witness:
/// expanding `lo..=hi` yields exactly the dynamic witnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceSummary {
    /// First racing location of the range.
    pub lo: Loc,
    /// Last racing location of the range (inclusive).
    pub hi: Loc,
    /// Lower strand id of the racing pair.
    pub a: usize,
    /// Higher strand id of the racing pair (`a < b`).
    pub b: usize,
    /// Whether both strands write in the range (write-write race);
    /// otherwise exactly one writes and the other only reads.
    pub write_write: bool,
}

impl RaceSummary {
    /// Number of distinct racing locations the summary covers.
    pub fn width(&self) -> u64 {
        self.hi - self.lo + 1
    }
}

/// Statically analyzes `prog` for determinacy races via footprint
/// summaries. Returns maximal-range summaries sorted by
/// `(lo, hi, a, b)`; see the module docs for the witness-set contract
/// with [`rtt_race::detect_races`].
pub fn analyze_races(prog: &Prog) -> Vec<RaceSummary> {
    let (fps, labels) = footprints(prog);
    analyze_footprints(&fps, &labels)
}

/// [`analyze_races`] on pre-built summaries (the benchmark harness
/// separates summary construction from intersection).
///
/// Implementation notes: the hot state is packed into machine words so
/// every sort and search touches flat integers — a boundary event's
/// meta word is `sid·4 | start·2 | write`, an active run is
/// `sid·2 | write`, a segment pair key is `(a·2³² | b)·2 | write_write`
/// (strand ids fit `u32` because [`EhLabels`] stores `u32` orders).
/// When every boundary position also fits 32 bits — the overwhelmingly
/// common case — position and meta pack into **one** `u64` per event
/// and the dominant sort runs on plain machine words; wider programs
/// take a `(Loc, meta)` tuple fallback with identical ordering.
pub fn analyze_footprints(fps: &[StrandFootprint], labels: &EhLabels) -> Vec<RaceSummary> {
    assert!(
        fps.len() < (1 << 30),
        "event and pair keys pack strand ids alongside flag bits into 64 bits"
    );
    // 0. write-interval prefilter: a race needs a writer on the
    // location, so any run disjoint from every write interval can be
    // dropped before the sweep sees it — it only ever covers read-only
    // segments, and its boundaries provably cannot fall strictly
    // inside a write interval (that would make it overlap), so no
    // fragmentation a surviving summary depends on is lost. Read-heavy
    // programs shed most of their event volume here.
    let mut write_iv: Vec<(Loc, Loc)> = fps
        .iter()
        .flat_map(|fp| fp.runs.iter())
        .filter(|r| r.mask & WRITE != 0)
        .map(|r| (r.lo, r.hi))
        .collect();
    write_iv.sort_unstable();
    let mut merged: Vec<(Loc, Loc)> = Vec::new();
    for (lo, hi) in write_iv {
        match merged.last_mut() {
            // merging adjacent intervals too keeps the list short and
            // stays exact: their union has no interior gap
            Some(last) if lo <= last.1.saturating_add(1) => last.1 = last.1.max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    let racable = |r: &&FootprintRun| {
        let i = merged.partition_point(|&(_, mhi)| mhi < r.lo);
        i < merged.len() && merged[i].0 <= r.hi
    };
    // 1. sweep events: a start and (unless the run touches Loc::MAX)
    // an end boundary per surviving run
    let runs: usize = fps.iter().map(|fp| fp.runs.len()).sum();
    let narrow = fps.iter().all(|fp| {
        fp.runs
            .iter()
            .all(|r| r.hi.checked_add(1).unwrap_or(r.lo) < (1 << 32))
    });
    if narrow {
        let mut events: Vec<u64> = Vec::with_capacity(2 * runs);
        for (sid, fp) in fps.iter().enumerate() {
            let sid = sid as u64;
            for r in fp.runs.iter().filter(racable) {
                let w = u64::from(r.mask & WRITE != 0);
                events.push(r.lo << 32 | sid << 2 | 1 << 1 | w);
                if let Some(end) = r.hi.checked_add(1) {
                    events.push(end << 32 | sid << 2 | w);
                }
            }
        }
        events.sort_unstable();
        sweep(
            events.iter().map(|&e| (e >> 32, e & u64::from(u32::MAX))),
            labels,
        )
    } else {
        let mut events: Vec<(Loc, u64)> = Vec::with_capacity(2 * runs);
        for (sid, fp) in fps.iter().enumerate() {
            let sid = sid as u64;
            for r in fp.runs.iter().filter(racable) {
                let w = u64::from(r.mask & WRITE != 0);
                events.push((r.lo, sid << 2 | 1 << 1 | w));
                if let Some(end) = r.hi.checked_add(1) {
                    events.push((end, sid << 2 | w));
                }
            }
        }
        events.sort_unstable();
        sweep(events.into_iter(), labels)
    }
}

/// The segment sweep over sorted `(position, sid·4 | start·2 | write)`
/// boundary events; see [`analyze_footprints`] for the event encodings
/// it is instantiated with.
fn sweep(events: impl Iterator<Item = (Loc, u64)>, labels: &EhLabels) -> Vec<RaceSummary> {
    // at equal positions a strand's end event sorts before its start
    // event (the packed layout puts the start bit above the write bit,
    // so ends come first per sid), letting a mask change between
    // adjacent runs swap the entry in place
    let mut events = events.peekable();
    let mut active: Vec<u64> = Vec::new(); // sid << 1 | write, ascending
    let mut writers: Vec<u64> = Vec::new();
    let mut readers: Vec<u64> = Vec::new();
    let mut cur: Vec<u64> = Vec::new(); // this segment's pair keys
    let mut prev: Vec<(u64, u32)> = Vec::new(); // open (key, out index)
    let mut carry: Vec<(u64, u32)> = Vec::new();
    let mut out: Vec<RaceSummary> = Vec::new();

    // 2+3. pair the segment's writers, then merge-join against the
    // adjacent previous segment's open summaries: extend on a key
    // match, open on a new key, close (drop) on a vanished one
    let mut emit = |seg_lo: Loc,
                    seg_hi: Loc,
                    active: &[u64],
                    prev: &mut Vec<(u64, u32)>,
                    out: &mut Vec<RaceSummary>| {
        writers.clear();
        readers.clear();
        for &e in active {
            if e & 1 != 0 {
                writers.push(e >> 1);
            } else {
                readers.push(e >> 1);
            }
        }
        // a strand that both reads and writes a segment is a writer:
        // against another writer the severe write-write witness wins,
        // exactly the dynamic detector's dedup preference
        cur.clear();
        if !writers.is_empty() {
            for (wi, &a) in writers.iter().enumerate() {
                for &b in &writers[wi + 1..] {
                    if labels.parallel(a as usize, b as usize) {
                        cur.push((a << 32 | b) << 1 | 1);
                    }
                }
                for &r in &readers {
                    if labels.parallel(a as usize, r as usize) {
                        cur.push((a.min(r) << 32 | a.max(r)) << 1);
                    }
                }
            }
            cur.sort_unstable();
            cur.dedup();
        }
        carry.clear();
        let mut pi = 0;
        for &key in &cur {
            while pi < prev.len() && prev[pi].0 < key {
                pi += 1; // pair gone: its summary is already complete
            }
            if pi < prev.len() && prev[pi].0 == key {
                let idx = prev[pi].1;
                out[idx as usize].hi = seg_hi;
                carry.push((key, idx));
                pi += 1;
            } else {
                let idx = out.len() as u32;
                out.push(RaceSummary {
                    lo: seg_lo,
                    hi: seg_hi,
                    a: (key >> 33) as usize,
                    b: (key >> 1 & u64::from(u32::MAX)) as usize,
                    write_write: key & 1 != 0,
                });
                carry.push((key, idx));
            }
        }
        std::mem::swap(prev, &mut carry);
    };

    let mut seg_start: Loc = 0;
    while let Some(&(pos, _)) = events.peek() {
        if pos > seg_start {
            if active.is_empty() {
                prev.clear(); // uncovered gap: nothing coalesces across
            } else {
                emit(seg_start, pos - 1, &active, &mut prev, &mut out);
            }
        }
        while let Some(&(p, ev)) = events.peek() {
            if p != pos {
                break;
            }
            let entry = (ev >> 2) << 1 | (ev & 1);
            if ev & 2 != 0 {
                if let Err(i) = active.binary_search(&entry) {
                    active.insert(i, entry);
                }
            } else if let Ok(i) = active.binary_search(&entry) {
                active.remove(i);
            }
            events.next();
        }
        seg_start = pos;
    }
    if !active.is_empty() {
        // only runs ending at Loc::MAX have no end event
        emit(seg_start, Loc::MAX, &active, &mut prev, &mut out);
    }
    out.sort_unstable_by_key(|s| (s.lo, s.hi, s.a, s.b));
    out
}

/// A witness at the dynamic detector's dedup granularity.
pub type Witness = (Loc, usize, usize, bool);

/// Expands static summaries into the dynamic witness set:
/// `(loc, min strand, max strand, write_write)` per racing location.
pub fn witness_set(summaries: &[RaceSummary]) -> BTreeSet<Witness> {
    let mut set = BTreeSet::new();
    for s in summaries {
        for loc in s.lo..=s.hi {
            set.insert((loc, s.a, s.b, s.write_write));
        }
    }
    set
}

/// Projects dynamic [`Race`] reports onto the same witness granularity.
pub fn dynamic_witness_set(races: &[Race]) -> BTreeSet<Witness> {
    races
        .iter()
        .map(|r| {
            (
                r.loc,
                r.a.0.min(r.b.0),
                r.a.0.max(r.b.0),
                r.write_write,
            )
        })
        .collect()
}

/// Total number of `(loc, strand pair)` witnesses the summaries cover,
/// without expanding them.
pub fn witness_count(summaries: &[RaceSummary]) -> u64 {
    summaries.iter().map(RaceSummary::width).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_race::detect_races;
    use rtt_race::program::Op;

    fn assert_matches_dynamic(prog: &Prog) {
        let static_w = witness_set(&analyze_races(prog));
        let dynamic_w = dynamic_witness_set(&detect_races(prog));
        assert_eq!(static_w, dynamic_w);
    }

    #[test]
    fn figure1_two_parallel_increments() {
        let inc = || Prog::update(0, Some(0), vec![]);
        let p = Prog::Par(vec![inc(), inc()]);
        let sums = analyze_races(&p);
        assert_eq!(
            sums,
            vec![RaceSummary { lo: 0, hi: 0, a: 0, b: 1, write_write: true }]
        );
        assert_matches_dynamic(&p);
    }

    #[test]
    fn interval_summaries_coalesce_ranges() {
        // both strands write the whole block 10..=19: one summary
        let block = || Prog::Strand((10..20).map(Op::Write).collect());
        let p = Prog::Par(vec![block(), block()]);
        let sums = analyze_races(&p);
        assert_eq!(
            sums,
            vec![RaceSummary { lo: 10, hi: 19, a: 0, b: 1, write_write: true }]
        );
        assert_eq!(witness_count(&sums), 10);
        assert_matches_dynamic(&p);
    }

    #[test]
    fn partial_overlap_fragments_to_the_intersection() {
        // writer covers 0..=9, reader covers 5..=14: race on 5..=9 only
        let p = Prog::Par(vec![
            Prog::Strand((0..10).map(Op::Write).collect()),
            Prog::Strand((5..15).map(Op::Read).collect()),
        ]);
        let sums = analyze_races(&p);
        assert_eq!(
            sums,
            vec![RaceSummary { lo: 5, hi: 9, a: 0, b: 1, write_write: false }]
        );
        assert_matches_dynamic(&p);
    }

    #[test]
    fn read_only_segments_are_skipped() {
        let p = Prog::Par(vec![
            Prog::Strand((0..100).map(Op::Read).collect()),
            Prog::Strand((0..100).map(Op::Read).collect()),
        ]);
        assert!(analyze_races(&p).is_empty());
        assert_matches_dynamic(&p);
    }

    #[test]
    fn series_composition_suppresses_races() {
        let w = || Prog::Strand(vec![Op::Write(7)]);
        assert!(analyze_races(&Prog::Seq(vec![w(), w()])).is_empty());
        let p = Prog::Seq(vec![
            Prog::Par(vec![w(), Prog::Strand(vec![Op::Write(8)])]),
            Prog::Par(vec![w(), Prog::Strand(vec![Op::Write(8)])]),
        ]);
        assert!(analyze_races(&p).is_empty());
        assert_matches_dynamic(&p);
    }

    #[test]
    fn mixed_read_write_strand_prefers_write_write() {
        // both strands read AND write loc 3: dynamic dedup keeps the
        // write-write witness; the static side must agree
        let rw = || Prog::Strand(vec![Op::Read(3), Op::Write(3)]);
        let p = Prog::Par(vec![rw(), rw()]);
        let sums = analyze_races(&p);
        assert_eq!(sums.len(), 1);
        assert!(sums[0].write_write);
        assert_matches_dynamic(&p);
    }

    #[test]
    fn nested_mix_matches_dynamic() {
        let p = Prog::Seq(vec![
            Prog::Strand(vec![Op::Write(0)]),
            Prog::Par(vec![
                Prog::update(0, Some(1), vec![2]),
                Prog::Seq(vec![
                    Prog::Strand(vec![Op::Write(1)]),
                    Prog::Strand(vec![Op::Read(0), Op::Write(2)]),
                ]),
                Prog::Strand(vec![Op::Read(2)]),
            ]),
            Prog::Strand(vec![Op::Read(0)]),
        ]);
        assert_matches_dynamic(&p);
    }

    #[test]
    fn parallel_mm_racy_witness_count() {
        // Figure 3, racy variant: every z(i,j) is written by the n
        // k-strands — C(n,2) racing pairs per output cell
        let n = 4usize;
        let (p, _layout) = rtt_race::mm::parallel_mm_racy(n as u64);
        let sums = analyze_races(&p);
        assert_eq!(
            witness_count(&sums),
            (n * (n - 1) / 2 * n * n) as u64
        );
        assert!(sums.iter().all(|s| s.write_write));
        assert_matches_dynamic(&p);
    }

    #[test]
    fn parallel_mm_safe_is_race_free() {
        let (p, _layout) = rtt_race::mm::parallel_mm(4);
        assert!(analyze_races(&p).is_empty());
        assert_matches_dynamic(&p);
    }
}
