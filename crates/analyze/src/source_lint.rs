//! The determinism self-lint: a repo-level static pass over the
//! declared **wire-path modules** — the sources that produce
//! wire-visible bytes (batch/curve NDJSON, lint diagnostics, canonical
//! fingerprints, race reports) — hunting the two hazards that have
//! historically broken byte-stability contracts:
//!
//! * **hash-ordered collections** (`HashMap`/`HashSet`): iteration
//!   order depends on hasher state, so any use in a module that feeds
//!   serialization can leak nondeterminism onto the wire. Wire-path
//!   modules must use ordered collections (`BTreeMap`/`BTreeSet`) or
//!   explicit sorts.
//! * **wall-clock reads** (`Instant::now`/`SystemTime`): timing may
//!   flow to stderr or bench documents, never into wire bytes. The
//!   only wire-path file allowed to read the clock is the CLI
//!   entrypoint, which routes timing exclusively to stderr
//!   ([`WALL_CLOCK_ALLOWED`] documents the reason per file).
//! * **unordered parallel reductions** (unscoped `thread::spawn`
//!   joins, nondeterministic channel drains like `try_iter`): results
//!   combined in arrival order can leak scheduling onto the wire. The
//!   wire-reachable parallel paths must go through `rtt_par`'s
//!   fixed-chunk map with ordered reduction (scoped workers, results
//!   scattered back to chunk order) — which is why `crates/par` itself
//!   is on the wire path and scanned by this rule.
//!
//! The scan strips comments first (doc prose may *mention* `HashMap`),
//! then matches tokens. `tests/repo_lint.rs` runs [`lint_workspace`]
//! over the repository in the default `cargo test` pass, so a hazard
//! in a wire-path module fails CI — the "a cache may change what a
//! run costs, never what it emits" contract as a lint, not a review
//! convention.

use std::fmt;
use std::path::Path;

/// Wire-path files, relative to the repository root. A file listed
/// here is scanned by both rules; a listed file that does not exist is
/// itself a finding (the list must track renames).
pub const WIRE_PATH_FILES: &[&str] = &[
    "crates/cli/src/args.rs",
    "crates/cli/src/batch.rs",
    "crates/cli/src/json.rs",
    "crates/cli/src/lib.rs",
    "crates/cli/src/lint.rs",
    "crates/cli/src/main.rs",
    "crates/cli/src/spec.rs",
    "crates/core/src/fingerprint.rs",
    "crates/core/src/sp_dp.rs",
    "crates/engine/src/admission.rs",
    "crates/engine/src/persist.rs",
    "crates/engine/src/registry.rs",
    "crates/engine/src/request.rs",
    "crates/lp/src/revised.rs",
    "crates/par/src/lib.rs",
    "crates/race/src/detect.rs",
    "crates/race/src/footprint.rs",
    "crates/race/src/program.rs",
    "crates/sim/src/model.rs",
];

/// Wire-path directories (every `.rs` file under them is scanned).
pub const WIRE_PATH_DIRS: &[&str] = &["crates/analyze/src"];

/// Per-file wall-clock exemptions: `(file, documented reason)`. The
/// reason is part of the declaration — an exemption without a
/// stderr/bench justification is a review error.
pub const WALL_CLOCK_ALLOWED: &[(&str, &str)] = &[(
    "crates/cli/src/main.rs",
    "renders wall/queue_wait timing to stderr only; stdout is the wire",
)];

/// One self-lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFinding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token (0 for file-level findings).
    pub line: usize,
    /// Which rule fired: `hash-ordered-collection`, `wall-clock`,
    /// `unordered-parallel-reduction`, or `missing-wire-path-file`.
    pub rule: &'static str,
    /// The offending source line, trimmed (or a note for file-level
    /// findings).
    pub snippet: String,
}

impl fmt::Display for SourceFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.snippet
        )
    }
}

/// Scans one wire-path source text. `relpath` selects the wall-clock
/// exemption; comments are stripped before token matching.
pub fn check_source(relpath: &str, text: &str) -> Vec<SourceFinding> {
    // needles assembled at runtime so this file never contains its own
    // forbidden tokens (crates/analyze/src is itself wire-path)
    let hash_needles = [
        ["Hash", "Map"].concat(),
        ["Hash", "Set"].concat(),
    ];
    let clock_needles = [
        ["Instant", "::now"].concat(),
        ["System", "Time"].concat(),
    ];
    // unordered parallel idioms: a free-threaded spawn joins in
    // arrival order, and a channel's try-drain observes scheduling.
    // Scoped workers reduced in chunk order (rtt_par) don't use either.
    let unordered_needles = [
        ["thread", "::spawn"].concat(),
        ["try_", "iter()"].concat(),
    ];
    let clock_allowed = WALL_CLOCK_ALLOWED.iter().any(|(f, _)| *f == relpath);
    let stripped = strip_comments(text);
    let mut findings = Vec::new();
    for (i, line) in stripped.lines().enumerate() {
        let orig = text.lines().nth(i).unwrap_or("").trim().to_string();
        if hash_needles.iter().any(|n| line.contains(n.as_str())) {
            findings.push(SourceFinding {
                file: relpath.to_string(),
                line: i + 1,
                rule: "hash-ordered-collection",
                snippet: orig.clone(),
            });
        }
        if !clock_allowed && clock_needles.iter().any(|n| line.contains(n.as_str())) {
            findings.push(SourceFinding {
                file: relpath.to_string(),
                line: i + 1,
                rule: "wall-clock",
                snippet: orig.clone(),
            });
        }
        if unordered_needles.iter().any(|n| line.contains(n.as_str())) {
            findings.push(SourceFinding {
                file: relpath.to_string(),
                line: i + 1,
                rule: "unordered-parallel-reduction",
                snippet: orig,
            });
        }
    }
    findings
}

/// Runs the self-lint over the whole workspace rooted at `root`.
/// Returns every finding, deterministically ordered (declaration
/// order, then line).
pub fn lint_workspace(root: &Path) -> Vec<SourceFinding> {
    let mut findings = Vec::new();
    fn scan(root: &Path, rel: String, findings: &mut Vec<SourceFinding>) {
        match std::fs::read_to_string(root.join(&rel)) {
            Ok(text) => findings.extend(check_source(&rel, &text)),
            Err(e) => findings.push(SourceFinding {
                file: rel,
                line: 0,
                rule: "missing-wire-path-file",
                snippet: format!("declared wire-path file is unreadable: {e}"),
            }),
        }
    }
    for file in WIRE_PATH_FILES {
        scan(root, (*file).to_string(), &mut findings);
    }
    for dir in WIRE_PATH_DIRS {
        let mut names: Vec<String> = match std::fs::read_dir(root.join(dir)) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.ends_with(".rs"))
                .collect(),
            Err(e) => {
                findings.push(SourceFinding {
                    file: (*dir).to_string(),
                    line: 0,
                    rule: "missing-wire-path-file",
                    snippet: format!("declared wire-path directory is unreadable: {e}"),
                });
                continue;
            }
        };
        names.sort();
        for name in names {
            scan(root, format!("{dir}/{name}"), &mut findings);
        }
    }
    findings
}

/// Replaces comment bytes with spaces (newlines kept, so line numbers
/// survive). Handles line comments, nested block comments, string and
/// char literals (comment markers inside them are not comments), and
/// raw strings.
fn strip_comments(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        // line comment
        if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        // block comment (nested)
        if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let mut depth = 1;
            out.extend_from_slice(b"  ");
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            continue;
        }
        // raw string: r"..." / r#"..."# (copied verbatim)
        if bytes[i] == b'r'
            && i + 1 < bytes.len()
            && (bytes[i + 1] == b'"' || bytes[i + 1] == b'#')
        {
            let start = i;
            let mut j = i + 1;
            let mut hashes = 0;
            while j < bytes.len() && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'"' {
                j += 1;
                'raw: while j < bytes.len() {
                    if bytes[j] == b'"' {
                        let mut k = 0;
                        while k < hashes && j + 1 + k < bytes.len() && bytes[j + 1 + k] == b'#'
                        {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    j += 1;
                }
                out.extend_from_slice(&bytes[start..j]);
                i = j;
                continue;
            }
        }
        // string literal (copied verbatim, escapes honoured)
        if bytes[i] == b'"' {
            out.push(bytes[i]);
            i += 1;
            while i < bytes.len() {
                out.push(bytes[i]);
                if bytes[i] == b'\\' && i + 1 < bytes.len() {
                    out.push(bytes[i + 1]);
                    i += 2;
                    continue;
                }
                if bytes[i] == b'"' {
                    i += 1;
                    break;
                }
                i += 1;
            }
            continue;
        }
        // char literal vs lifetime: a closing quote within 3 bytes (or
        // after an escape) means char literal; otherwise lifetime
        if bytes[i] == b'\'' {
            let lit_end = if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                bytes[i + 2..].iter().take(6).position(|&b| b == b'\'').map(|p| i + 2 + p)
            } else {
                bytes[i + 1..]
                    .iter()
                    .take(4)
                    .position(|&b| b == b'\'')
                    .filter(|&p| p > 0)
                    .map(|p| i + 1 + p)
            };
            if let Some(end) = lit_end {
                out.extend_from_slice(&bytes[i..=end]);
                i = end + 1;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    // the hazard tokens, assembled at runtime for the same reason the
    // production needles are: this file is itself on the wire path, so
    // its test fixtures must not contain them verbatim either
    fn hash_map_token() -> String {
        ["Hash", "Map"].concat()
    }

    fn instant_now_token() -> String {
        ["Instant", "::now"].concat()
    }

    fn system_time_token() -> String {
        ["System", "Time"].concat()
    }

    #[test]
    fn doc_comment_mentions_are_not_findings() {
        let src = format!("//! no `{}` iteration order here\nfn f() {{}}\n", hash_map_token());
        assert!(check_source("x.rs", &src).is_empty());
    }

    #[test]
    fn code_use_is_a_finding_with_the_right_line() {
        let src = format!(
            "fn f() {{\n    let m: std::collections::{}<u32, u32> = Default::default();\n    let _ = m;\n}}\n",
            hash_map_token()
        );
        let f = check_source("x.rs", &src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].rule), (2, "hash-ordered-collection"));
        assert!(f[0].snippet.contains("collections"));
    }

    #[test]
    fn block_comments_and_strings_are_handled() {
        let src = format!(
            "/* {} in a\n   block comment */\nfn f() -> &'static str {{ \"https://not//a//comment\" }}\n",
            hash_map_token()
        );
        assert!(check_source("x.rs", &src).is_empty());
        // a token inside a string literal still counts: wire-path
        // files must not even name the hazard in emitted text
        let s2 = format!("fn f() -> String {{ String::from(\"{}\") }}\n", hash_map_token());
        assert_eq!(check_source("x.rs", &s2).len(), 1);
    }

    #[test]
    fn wall_clock_rule_respects_the_allowlist() {
        let src = format!("fn f() {{ let _t = std::time::{}(); }}\n", instant_now_token());
        let f = check_source("crates/cli/src/spec.rs", &src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
        assert!(check_source("crates/cli/src/main.rs", &src).is_empty());
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_derail_the_lexer() {
        let src = "fn f<'a>(x: &'a str) -> char { let q = '\"'; let s = \"// HashZZZ\"; let _ = s; q }\n";
        assert!(check_source("x.rs", src).is_empty());
    }

    #[test]
    fn nested_block_comments_strip_fully() {
        let src = format!(
            "/* outer /* inner {} */ still comment */ fn g() {{}}\n",
            system_time_token()
        );
        assert!(check_source("x.rs", &src).is_empty());
    }

    #[test]
    fn the_declared_wire_path_set_names_this_crate() {
        assert!(WIRE_PATH_DIRS.contains(&"crates/analyze/src"));
        assert!(WIRE_PATH_FILES.iter().any(|f| f.ends_with("batch.rs")));
    }

    fn thread_spawn_token() -> String {
        ["thread", "::spawn"].concat()
    }

    fn try_iter_token() -> String {
        ["try_", "iter()"].concat()
    }

    #[test]
    fn unscoped_spawn_is_an_unordered_reduction_finding() {
        let src = format!(
            "fn f() {{\n    let h = std::{}(|| 1);\n    let _ = h.join();\n}}\n",
            thread_spawn_token()
        );
        let f = check_source("x.rs", &src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].rule), (2, "unordered-parallel-reduction"));
    }

    #[test]
    fn channel_try_drain_is_an_unordered_reduction_finding() {
        let src = format!(
            "fn f(rx: &std::sync::mpsc::Receiver<u32>) -> u32 {{\n    rx.{}.sum()\n}}\n",
            try_iter_token()
        );
        let f = check_source("x.rs", &src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unordered-parallel-reduction");
    }

    #[test]
    fn scoped_workers_are_not_findings() {
        // the rtt_par idiom: scoped spawn, results scattered to chunk
        // order — `s.spawn` is not the unscoped free-threaded form
        let src = "fn f() { crossbeam::thread::scope(|s| { s.spawn(|| 1); }); }\n";
        assert!(check_source("x.rs", src).is_empty());
    }

    #[test]
    fn the_wire_path_set_names_the_parallel_paths() {
        for f in [
            "crates/par/src/lib.rs",
            "crates/lp/src/revised.rs",
            "crates/core/src/sp_dp.rs",
            "crates/sim/src/model.rs",
        ] {
            assert!(WIRE_PATH_FILES.contains(&f), "{f} must be wire-path");
        }
    }
}
