//! # rtt-analyze — static analysis over programs, specs, and sources
//!
//! The bottom-layer static-analysis substrate (PR 9), three passes:
//!
//! * [`race`] — **summary-based static race analysis**: per-strand
//!   access footprints ([`rtt_race::footprint`]) intersected pairwise
//!   under the English-Hebrew may-happen-in-parallel relation, never
//!   materializing per-location access lists. Reports exactly the
//!   racing `(location, strand pair)` witness set of
//!   [`rtt_race::detect_races`] (a differential property test pins the
//!   equivalence), at summary cost instead of access cost — cf.
//!   digest/abstract-interpretation race analyses, which motivate
//!   cheap sound summaries in front of exact detection.
//! * [`lint`] — the **structured diagnostic vocabulary** shared by the
//!   `rtt lint` corpus/spec linter and the engine's admission hook:
//!   stable `RTT0xx` codes, error/warning severities, deterministic
//!   ordering, and both human and NDJSON renderings.
//! * [`source_lint`] — the **determinism self-lint**: a repo-level
//!   scan of the declared wire-path modules for byte-stability
//!   hazards (hash-ordered collections feeding serialization,
//!   wall-clock reads outside bench/stderr paths), turning the
//!   "a cache may change what a run costs, never what it emits"
//!   contract into a CI-enforced check (`tests/repo_lint.rs`).
//!
//! Layering: this crate sits below the engine and the CLI (it depends
//! only on `rtt_race`), so both can share its diagnostics without a
//! cycle — the CLI mirrors the executor's textual admission checks,
//! the engine lints built requests, and both speak [`lint::Diagnostic`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;
pub mod race;
pub mod source_lint;

pub use lint::{Diagnostic, Severity};
pub use race::{analyze_races, RaceSummary};
pub use source_lint::lint_workspace;
