//! The PR-9 baseline: summary-based **static** race analysis vs the
//! retained dynamic detector, on the same programs in the same binary.
//!
//! `repro bench-pr9 [--out PATH] [--smoke]` drives two workload
//! families through both engines:
//!
//! * the racy Figure 3 Parallel-MM at n ∈ {8, 12, 16} — n³ contending
//!   update strands, C(n,2) racing pairs per output cell;
//! * a dense-contention fork-join corpus
//!   ([`rtt_race::gen::random_fork_join`], eight seeds) — staged
//!   programs whose cells each take many racing updates.
//!
//! For every workload the two witness sets — [`rtt_analyze::race::witness_set`]
//! over the static summaries, [`rtt_analyze::race::dynamic_witness_set`]
//! over [`rtt_race::detect_races`] — are asserted **identical before any
//! timing starts**: a speedup over a detector that finds different races
//! would be meaningless. Only then are both engines timed
//! (median-of-trials), so the committed `BENCH_pr9.json` numbers always
//! describe two provably-equivalent analyses. Like every bench schema
//! since PR 3 the document records `cores` and `trials`.

use rtt_analyze::race::{analyze_races, dynamic_witness_set, witness_count, witness_set};
use rtt_race::detect_races;
use rtt_race::program::Prog;
use std::time::Instant;

/// One program (or program corpus) measured under both engines.
#[derive(Debug, Clone)]
pub struct AnalyzeWorkload {
    /// Workload name (`parallel-mm-<n>` / `forkjoin-corpus`).
    pub name: String,
    /// Total strands across the workload's programs.
    pub strands: usize,
    /// Total concrete operations (what the dynamic detector walks).
    pub ops: usize,
    /// Interval-compressed race summaries the static pass reports.
    pub summaries: usize,
    /// `(loc, strand pair)` witnesses those summaries cover — equal to
    /// the dynamic detector's deduplicated report count by the
    /// pre-timing assertion.
    pub witnesses: u64,
    /// Median wall of the static footprint-summary analysis (ms).
    pub static_ms: f64,
    /// Median wall of the dynamic per-access detector (ms).
    pub dynamic_ms: f64,
}

impl AnalyzeWorkload {
    /// Dynamic-over-static wall ratio (higher = static wins).
    pub fn speedup(&self) -> f64 {
        self.dynamic_ms / self.static_ms.max(1e-9)
    }
}

/// The full PR-9 measurement set.
#[derive(Debug, Clone)]
pub struct AnalyzePerfReport {
    /// Host cores (`std::thread::available_parallelism`).
    pub cores: usize,
    /// Timed iterations per engine (median taken).
    pub trials: usize,
    /// Parallel-MM sweeps, ascending size, then the fork-join corpus.
    pub workloads: Vec<AnalyzeWorkload>,
}

fn median_ms<T>(trials: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..trials.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn op_count(p: &Prog) -> usize {
    match p {
        Prog::Strand(ops) => ops.len(),
        Prog::Seq(children) | Prog::Par(children) => children.iter().map(op_count).sum(),
    }
}

fn measure_workload(name: String, progs: &[Prog], trials: usize) -> AnalyzeWorkload {
    // equivalence first, timing second: every program's static witness
    // set must equal the dynamic one before either engine is clocked
    let mut summaries = 0usize;
    let mut witnesses = 0u64;
    for (i, prog) in progs.iter().enumerate() {
        let sums = analyze_races(prog);
        assert_eq!(
            witness_set(&sums),
            dynamic_witness_set(&detect_races(prog)),
            "{name}: static and dynamic witness sets differ on program {i} — \
             refusing to time non-equivalent analyses"
        );
        summaries += sums.len();
        witnesses += witness_count(&sums);
    }
    let static_ms = median_ms(trials, || {
        progs.iter().map(|p| analyze_races(p).len()).sum::<usize>()
    });
    let dynamic_ms = median_ms(trials, || {
        progs.iter().map(|p| detect_races(p).len()).sum::<usize>()
    });
    AnalyzeWorkload {
        name,
        strands: progs.iter().map(Prog::strand_count).sum(),
        ops: progs.iter().map(op_count).sum(),
        summaries,
        witnesses,
        static_ms,
        dynamic_ms,
    }
}

/// Runs every measurement. Sizes shrink under `smoke` (CI).
pub fn measure(trials: usize, smoke: bool) -> AnalyzePerfReport {
    let mm_sizes: &[u64] = if smoke { &[4, 6] } else { &[8, 12, 16] };
    let mut workloads = Vec::new();
    for &n in mm_sizes {
        let (prog, _layout) = rtt_race::mm::parallel_mm_racy(n);
        workloads.push(measure_workload(
            format!("parallel-mm-{n}"),
            std::slice::from_ref(&prog),
            trials,
        ));
    }
    // the dense-contention corpus: eight seeded fork-join programs,
    // analyzed back to back as one workload
    let (seeds, stages, width, contention) = if smoke {
        (2u64, 2usize, 4usize, 6usize)
    } else {
        (8u64, 4, 8, 12)
    };
    let corpus: Vec<Prog> = (0..seeds)
        .map(|seed| {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(42 + seed);
            rtt_race::gen::random_fork_join(&mut rng, stages, width, contention)
        })
        .collect();
    workloads.push(measure_workload(
        "forkjoin-corpus".to_string(),
        &corpus,
        trials,
    ));

    AnalyzePerfReport {
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        trials,
        workloads,
    }
}

impl AnalyzePerfReport {
    /// Renders the machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"rtt-bench/analyze-v1\",\n");
        out.push_str("  \"pr\": 9,\n");
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str(
            "  \"note\": \"static footprint-summary race analysis (rtt_analyze) vs the dynamic per-access detector (rtt_race) on identical programs; witness sets asserted equal in-binary before timing; see crates/bench/src/analyze_perf.rs\",\n",
        );
        // true by construction — measure_workload asserts it — but
        // recorded so the document is self-describing
        out.push_str("  \"witnesses_identical\": true,\n");
        out.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"strands\": {}, \"ops\": {}, \"summaries\": {}, \"witnesses\": {}, \"static_ms\": {:.3}, \"dynamic_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
                w.name,
                w.strands,
                w.ops,
                w.summaries,
                w.witnesses,
                w.static_ms,
                w.dynamic_ms,
                w.speedup(),
                if i + 1 == self.workloads.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders a human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "==== bench-pr9 (cores = {}, trials = {}) ====\n",
            self.cores, self.trials
        );
        let mut t = crate::table::TextTable::new(&[
            "workload",
            "strands",
            "ops",
            "summaries",
            "witnesses",
            "static ms",
            "dynamic ms",
            "speedup",
        ]);
        for w in &self.workloads {
            t.row(vec![
                w.name.clone(),
                w.strands.to_string(),
                w.ops.to_string(),
                w.summaries.to_string(),
                w.witnesses.to_string(),
                format!("{:.3}", w.static_ms),
                format!("{:.3}", w.dynamic_ms),
                format!("{:.2}x", w.speedup()),
            ]);
        }
        out.push_str(&t.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measurement_is_consistent_and_serializes() {
        let r = measure(1, true);
        assert_eq!(r.workloads.len(), 3, "two MM sizes + the fork-join corpus");
        for w in &r.workloads {
            assert!(w.witnesses > 0, "{}: racy workloads must race", w.name);
            assert!(
                w.summaries as u64 <= w.witnesses,
                "{}: summaries compress witnesses, never exceed them",
                w.name
            );
        }
        // mm-4: C(4,2) racing pairs on each of the 16 output cells
        assert_eq!(r.workloads[0].witnesses, 6 * 16);
        let json = r.to_json();
        assert!(json.contains("\"witnesses_identical\": true"));
        assert!(json.contains("\"cores\""));
        assert!(json.contains("\"trials\""));
        assert!(json.contains("parallel-mm-4"));
        assert!(json.contains("forkjoin-corpus"));
        assert!(json.ends_with("}\n"));
        assert!(r.render().contains("bench-pr9"));
    }
}
