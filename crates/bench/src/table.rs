//! Plain-text table rendering for the `repro` harness.

/// A simple left-padded text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = width[i].saturating_sub(c.chars().count());
                line.push_str(&" ".repeat(pad));
                line.push_str(c);
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["x".into(), "10".into()]);
        t.row(vec!["long-name".into(), "7".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("10"));
        assert!(lines[3].ends_with(" 7"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        TextTable::new(&["a", "b"]).row(vec!["x".into()]);
    }
}
