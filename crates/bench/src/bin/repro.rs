//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all            # everything, in paper order
//! repro table1         # the results matrix, measured
//! repro table2 table3  # gadget timing tables
//! repro fig1 fig2 fig3 fig45 fig67 fig89 fig1011 fig1214 fig1516 fig1718
//! repro spdp lp        # §3.4 DP scaling, §3.1 LP quality
//! repro bench-pr1 [--out PATH] [--smoke]   # perf baseline → BENCH_pr1.json
//! repro bench-pr2 [--out PATH] [--smoke]   # batch engine baseline → BENCH_pr2.json
//! repro bench-pr3 [--out PATH] [--smoke]   # revised simplex + warm sweeps → BENCH_pr3.json
//! repro bench-pr4 [--out PATH] [--smoke]   # race workloads, analytic vs simulated → BENCH_pr4.json
//! repro bench-pr5 [--out PATH] [--smoke]   # event-heap vs tick-loop sim core + certification coverage → BENCH_pr5.json
//! repro bench-pr7 [--out PATH] [--smoke]   # cross-request reuse cache + delta solving → BENCH_pr7.json
//! repro bench-pr8 [--out PATH] [--smoke]   # wire-reachable sweeps + persistent solution cache → BENCH_pr8.json
//! repro bench-pr9 [--out PATH] [--smoke]   # static vs dynamic race analysis → BENCH_pr9.json
//! repro bench-pr10 [--out PATH] [--smoke]  # deterministic intra-solve parallelism → BENCH_pr10.json
//! ```

use rtt_bench::experiments as exp;

/// Parses the shared `[--out PATH] [--smoke]` flags of the bench-pr*
/// subcommands.
fn bench_flags(name: &str, default_out: &str, args: &[String]) -> (String, bool) {
    let mut out_path = default_out.to_string();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown {name} flag: {other}");
                std::process::exit(2);
            }
        }
    }
    (out_path, smoke)
}

fn write_bench(out_path: &str, rendered: &str, json: &str) {
    println!("{rendered}");
    // Every bench schema since PR 3 records `cores` and `trials` so
    // numbers are never quoted without the machine they came from. An
    // emitter that drops either field is schema drift (the original
    // committed BENCH_pr1.json had exactly this bug) — refuse to write.
    match rtt_cli::json::Json::parse(json) {
        Ok(doc) => {
            for field in ["cores", "trials"] {
                if doc.get(field).is_none() {
                    eprintln!(
                        "refusing to write {out_path}: bench document is missing the \
                         uniform `{field}` field (schema drift — fix the emitter)"
                    );
                    std::process::exit(1);
                }
            }
        }
        Err(e) => {
            eprintln!("refusing to write {out_path}: emitter produced invalid JSON: {e}");
            std::process::exit(1);
        }
    }
    if let Err(e) = std::fs::write(out_path, json) {
        eprintln!("writing {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}

/// Runs the PR-4 race-workload baseline and writes the JSON document.
fn run_bench_pr4(args: &[String], trials: usize) {
    let (out_path, smoke) = bench_flags("bench-pr4", "BENCH_pr4.json", args);
    let report = rtt_bench::race_perf::measure(trials, smoke);
    write_bench(&out_path, &report.render(), &report.to_json());
}

/// Runs the PR-5 simulation-core baseline and writes the JSON document.
fn run_bench_pr5(args: &[String], trials: usize) {
    let (out_path, smoke) = bench_flags("bench-pr5", "BENCH_pr5.json", args);
    let report = rtt_bench::sim_perf::measure(trials, smoke);
    write_bench(&out_path, &report.render(), &report.to_json());
}

/// Runs the PR-1 perf baseline and writes the JSON document.
fn run_bench_pr1(args: &[String], trials: usize) {
    let (out_path, smoke) = bench_flags("bench-pr1", "BENCH_pr1.json", args);
    let report = rtt_bench::perf::measure(trials, smoke);
    write_bench(&out_path, &report.render(), &report.to_json());
}

/// Runs the PR-2 batch-engine baseline and writes the JSON document.
fn run_bench_pr2(args: &[String], trials: usize) {
    let (out_path, smoke) = bench_flags("bench-pr2", "BENCH_pr2.json", args);
    let report = rtt_bench::batch_perf::measure(trials, smoke);
    write_bench(&out_path, &report.render(), &report.to_json());
}

/// Runs the PR-7 cross-request reuse baseline and writes the JSON
/// document.
fn run_bench_pr7(args: &[String], trials: usize) {
    let (out_path, smoke) = bench_flags("bench-pr7", "BENCH_pr7.json", args);
    let report = rtt_bench::reuse_perf::measure(trials, smoke);
    write_bench(&out_path, &report.render(), &report.to_json());
}

/// Runs the PR-8 wire-sweep + persistence baseline and writes the JSON
/// document.
fn run_bench_pr8(args: &[String], trials: usize) {
    let (out_path, smoke) = bench_flags("bench-pr8", "BENCH_pr8.json", args);
    let report = rtt_bench::sweep_perf::measure(trials, smoke);
    write_bench(&out_path, &report.render(), &report.to_json());
}

/// Runs the PR-9 static-vs-dynamic race-analysis baseline and writes
/// the JSON document.
fn run_bench_pr9(args: &[String], trials: usize) {
    let (out_path, smoke) = bench_flags("bench-pr9", "BENCH_pr9.json", args);
    let report = rtt_bench::analyze_perf::measure(trials, smoke);
    write_bench(&out_path, &report.render(), &report.to_json());
}

/// Runs the PR-10 intra-solve-parallelism baseline and writes the JSON
/// document.
fn run_bench_pr10(args: &[String], trials: usize) {
    let (out_path, smoke) = bench_flags("bench-pr10", "BENCH_pr10.json", args);
    let report = rtt_bench::par_perf::measure(trials, smoke);
    write_bench(&out_path, &report.render(), &report.to_json());
}

/// Runs the PR-3 revised-simplex/warm-sweep baseline and writes the
/// JSON document.
fn run_bench_pr3(args: &[String], trials: usize) {
    let (out_path, smoke) = bench_flags("bench-pr3", "BENCH_pr3.json", args);
    let report = rtt_bench::curve_perf::measure(trials, smoke);
    write_bench(&out_path, &report.render(), &report.to_json());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: repro [all|table1|table2|table3|fig1|fig2|fig3|fig45|fig67|fig89|fig1011|fig1214|fig1516|fig1718|spdp|lp|regimes|alpha|bench-pr1|bench-pr2|bench-pr3|bench-pr4|bench-pr5|bench-pr7|bench-pr8|bench-pr9|bench-pr10] ..."
        );
        std::process::exit(2);
    }
    let trials = std::env::var("REPRO_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4usize);
    // bench-pr* are standalone subcommands (they take their own flags),
    // not combinable experiment names.
    if args[0] == "bench-pr1" {
        run_bench_pr1(&args[1..], trials);
        return;
    }
    if args[0] == "bench-pr2" {
        run_bench_pr2(&args[1..], trials);
        return;
    }
    if args[0] == "bench-pr3" {
        run_bench_pr3(&args[1..], trials);
        return;
    }
    if args[0] == "bench-pr4" {
        run_bench_pr4(&args[1..], trials);
        return;
    }
    if args[0] == "bench-pr5" {
        run_bench_pr5(&args[1..], trials);
        return;
    }
    if args[0] == "bench-pr7" {
        run_bench_pr7(&args[1..], trials);
        return;
    }
    if args[0] == "bench-pr8" {
        run_bench_pr8(&args[1..], trials);
        return;
    }
    if args[0] == "bench-pr9" {
        run_bench_pr9(&args[1..], trials);
        return;
    }
    if args[0] == "bench-pr10" {
        run_bench_pr10(&args[1..], trials);
        return;
    }
    if args
        .iter()
        .any(|a| a.starts_with("bench-pr"))
    {
        eprintln!("bench-pr* must be the first argument (they take their own flags)");
        std::process::exit(2);
    }
    for arg in &args {
        let reports = match arg.as_str() {
            "all" => exp::all_experiments(trials),
            "table1" => vec![exp::table1(trials)],
            "table2" => vec![exp::table2()],
            "table3" => vec![exp::table3()],
            "fig1" => vec![exp::fig1()],
            "fig2" => vec![exp::fig2()],
            "fig3" => vec![exp::fig3()],
            "fig45" => vec![exp::fig45()],
            "fig67" => vec![exp::fig67()],
            "fig89" => vec![exp::fig89()],
            "fig1011" => vec![exp::fig1011()],
            "fig1214" => vec![exp::fig1214()],
            "fig1516" => vec![exp::fig1516()],
            "fig1718" => vec![exp::fig1718()],
            "spdp" => vec![exp::spdp()],
            "lp" => vec![exp::lp_quality()],
            "regimes" => vec![exp::regimes(trials)],
            "alpha" => vec![exp::ablation_alpha(trials)],
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        };
        for r in reports {
            println!("{}", r.render());
        }
    }
}
