//! The PR-2 batch-engine baseline: machine-readable evidence for the
//! `rtt_engine` serving layer.
//!
//! `repro bench-pr2 [--out PATH] [--smoke]` measures, **in the same
//! binary**:
//!
//! * batch throughput (requests/sec) of [`rtt_engine::run_batch`] over
//!   a ≥ 200-request corpus at 1/2/4/8 worker threads, with a byte
//!   -stability check: the rendered NDJSON report stream must be
//!   identical at every thread count;
//! * the preprocessing cache: instance-level hit rate and artifact
//!   (two-tuple expansion / SP decomposition / topo order) reuse rate,
//!   plus a *sharing-disabled* control run — the same corpus with one
//!   private [`PreparedInstance`] per request — so the cache's benefit
//!   is measured against a baseline in the same binary, per the
//!   ROADMAP perf protocol;
//! * single-request latency parity: the Theorem 3.4 pipeline through
//!   the engine ([`rtt_engine::execute_one`]) vs the direct PR-1 free
//!   function (`rtt_core::solve_bicriteria`), medians over the same
//!   instance.
//!
//! The host's core count is recorded: thread scaling is only
//! meaningful when `cores > 1`, and single-core containers (like the
//! one PR 2 was authored in) will legitimately show ~1× thread
//! speedups while the determinism and cache numbers stand.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtt_core::instance::ArcInstance;
use rtt_dag::gen;
use rtt_duration::Duration;
use rtt_engine::{
    execute_one, run_batch, CacheStats, PrepCache, PreparedInstance, Registry, SolveRequest,
};
use std::sync::Arc;
use std::time::Instant;

/// One thread-count measurement.
#[derive(Debug, Clone)]
pub struct ThreadPoint {
    /// Worker threads.
    pub threads: usize,
    /// Wall time of the whole batch (ms).
    pub wall_ms: f64,
    /// Requests per second.
    pub req_per_sec: f64,
    /// Speedup vs the 1-thread run of the same sweep.
    pub speedup_vs_1t: f64,
}

/// Latency-parity measurement (medians, ms).
#[derive(Debug, Clone)]
pub struct ParityPoint {
    /// Theorem 3.4 pipeline through the engine adapter.
    pub engine_ms: f64,
    /// Same pipeline via the PR-1 free function.
    pub direct_ms: f64,
    /// `engine_ms / direct_ms` (1.0 = no adapter overhead).
    pub ratio: f64,
}

/// Resident engine vs one-process-per-query (the PR-1 serving model:
/// the binary could only solve one instance per invocation).
#[derive(Debug, Clone)]
pub struct OneShotPoint {
    /// Requests in the comparison.
    pub requests: usize,
    /// Total wall of spawning `rtt solve` once per request (ms).
    pub process_ms: f64,
    /// Total wall of the same requests through the resident batch
    /// engine, 1 thread (ms).
    pub engine_ms: f64,
    /// `process_ms / engine_ms`.
    pub speedup: f64,
}

/// The full PR-2 measurement set.
#[derive(Debug, Clone)]
pub struct BatchPerfReport {
    /// Host cores (`std::thread::available_parallelism`).
    pub cores: usize,
    /// Timed iterations per point (median taken) — recorded uniformly
    /// across bench schemas since PR 3.
    pub trials: usize,
    /// Distinct instances in the corpus.
    pub instances: usize,
    /// Requests per batch run.
    pub requests: usize,
    /// Reports per batch run (requests × supporting solvers).
    pub reports: usize,
    /// Thread sweep, ascending thread count.
    pub threads: Vec<ThreadPoint>,
    /// Whether every thread count produced byte-identical NDJSON.
    pub deterministic: bool,
    /// Prep-cache statistics of the shared 1-thread run.
    pub cache: CacheStats,
    /// Wall time with prep sharing disabled (one private
    /// `PreparedInstance` per request), 1 thread (ms).
    pub nocache_wall_ms: f64,
    /// `nocache_wall_ms / threads[1t].wall_ms` — what sharing buys.
    pub cache_speedup: f64,
    /// Engine-vs-direct single-solve latency.
    pub parity: ParityPoint,
    /// Resident engine vs process-per-query (`None` when the `rtt`
    /// binary is not next to `repro`).
    pub one_shot: Option<OneShotPoint>,
}

/// Deterministic corpus instance `i` (same generator family as the
/// CLI's `rtt gen`).
fn corpus_instance(i: usize) -> ArcInstance {
    let seed = i as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = 5 + i % 5;
    let tt = match i % 4 {
        0 => gen::random_sp(&mut rng, nodes).tt,
        1 => gen::layered(&mut rng, 3, nodes.div_ceil(3).max(1), 0.4),
        2 => gen::chain(nodes),
        _ => gen::random_race_dag(&mut rng, nodes, nodes),
    };
    let fam: fn(u64) -> Duration = if i.is_multiple_of(2) {
        Duration::recursive_binary
    } else {
        Duration::kway
    };
    let inst = rtt_core::Instance::race_dag(&tt.dag, fam).expect("generated DAG is valid");
    rtt_core::to_arc_form(&inst).0
}

/// Builds the corpus: `n_instances` distinct instances, two budgets
/// each, every supporting solver per request. `shared = false` gives
/// every request a private `PreparedInstance` (the no-cache control).
fn build_corpus(
    n_instances: usize,
    shared: bool,
) -> (PrepCache, Vec<SolveRequest>) {
    let cache = PrepCache::new();
    let mut requests = Vec::with_capacity(2 * n_instances);
    for i in 0..n_instances {
        for (j, budget) in [4u64, 12].into_iter().enumerate() {
            let prepared = if shared {
                cache.get_or_insert(&format!("inst-{i}"), || corpus_instance(i))
            } else {
                Arc::new(PreparedInstance::new(corpus_instance(i)))
            };
            requests.push(SolveRequest::min_makespan(
                format!("i{i}b{j}"),
                prepared,
                budget,
            ));
        }
    }
    (cache, requests)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Runs every measurement. Sizes shrink under `smoke` (CI).
pub fn measure(trials: usize, smoke: bool) -> BatchPerfReport {
    let registry = Registry::standard();
    let n_instances = if smoke { 12 } else { 120 };
    let thread_counts = [1usize, 2, 4, 8];

    // --- thread sweep; each run rebuilds its cache so every thread
    // count performs identical total work (prep included)
    let mut points: Vec<ThreadPoint> = Vec::new();
    let mut rendered_streams: Vec<String> = Vec::new();
    let mut requests_n = 0;
    let mut reports_n = 0;
    let mut cache_stats = CacheStats::default();
    for &threads in &thread_counts {
        let mut walls = Vec::new();
        let mut rendered = String::new();
        for trial in 0..trials.max(1) {
            let (cache, requests) = build_corpus(n_instances, true);
            requests_n = requests.len();
            let started = Instant::now();
            let out = run_batch(&registry, requests, threads);
            walls.push(started.elapsed().as_secs_f64() * 1e3);
            reports_n = out.reports.len();
            if trial == 0 {
                rendered = out
                    .reports
                    .iter()
                    .map(rtt_cli::report_line)
                    .collect::<Vec<_>>()
                    .join("\n");
                if threads == 1 {
                    cache_stats = cache.stats();
                }
            }
        }
        let wall_ms = median(&mut walls);
        points.push(ThreadPoint {
            threads,
            wall_ms,
            req_per_sec: requests_n as f64 / (wall_ms / 1e3).max(1e-9),
            speedup_vs_1t: 0.0, // filled below
        });
        rendered_streams.push(rendered);
    }
    let one_t = points[0].wall_ms;
    for p in &mut points {
        p.speedup_vs_1t = one_t / p.wall_ms.max(1e-9);
    }
    let deterministic = rendered_streams.iter().all(|s| *s == rendered_streams[0]);

    // --- prep-sharing control: same corpus, private prep per request
    let mut walls = Vec::new();
    for _ in 0..trials.max(1) {
        let (_cache, requests) = build_corpus(n_instances, false);
        let started = Instant::now();
        let out = run_batch(&registry, requests, 1);
        walls.push(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!(out.reports.len(), reports_n, "control must do the same work");
    }
    let nocache_wall_ms = median(&mut walls);

    // --- single-solve latency parity (engine adapter vs PR-1 path)
    let arc = corpus_instance(3); // layered kway instance, mid-size
    let budget = 8u64;
    let parity_trials = if smoke { 5 } else { 31 };
    let mut engine_samples = Vec::new();
    let mut direct_samples = Vec::new();
    for _ in 0..parity_trials {
        let prepared = Arc::new(PreparedInstance::new(arc.clone()));
        let req =
            SolveRequest::min_makespan("parity", prepared, budget).with_solver("bicriteria");
        let started = Instant::now();
        let reports = execute_one(&registry, &req, Instant::now());
        engine_samples.push(started.elapsed().as_secs_f64() * 1e3);
        assert!(reports[0].makespan.is_some());

        let started = Instant::now();
        let direct = rtt_core::solve_bicriteria(&arc, budget, 0.5).expect("solves");
        direct_samples.push(started.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(direct);
    }
    let engine_ms = median(&mut engine_samples);
    let direct_ms = median(&mut direct_samples);

    let one_shot = measure_one_shot(&registry, if smoke { 6 } else { 20 });

    BatchPerfReport {
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        trials: trials.max(1),
        instances: n_instances,
        requests: requests_n,
        reports: reports_n,
        threads: points,
        deterministic,
        cache: cache_stats,
        nocache_wall_ms,
        cache_speedup: nocache_wall_ms / one_t.max(1e-9),
        parity: ParityPoint {
            engine_ms,
            direct_ms,
            ratio: engine_ms / direct_ms.max(1e-9),
        },
        one_shot,
    }
}

/// Times `n_instances` bicriteria solves as one-process-per-query
/// (spawning the sibling `rtt` binary, the only serving model PR 1
/// had) against the same requests through the resident engine. `None`
/// when the binary is missing (e.g. `repro` run from an exotic
/// location).
fn measure_one_shot(registry: &Registry, n_instances: usize) -> Option<OneShotPoint> {
    let rtt = std::env::current_exe().ok()?.with_file_name("rtt");
    if !rtt.exists() {
        return None;
    }
    let dir = std::env::temp_dir().join(format!("rtt-bench-pr2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).ok()?;
    let budget = 8u64;

    let mut paths = Vec::new();
    for i in 0..n_instances {
        let arc = corpus_instance(i);
        let path = dir.join(format!("i{i}.json"));
        std::fs::write(
            &path,
            rtt_cli::InstanceSpec::from_arc(&arc).to_json_string(),
        )
        .ok()?;
        paths.push(path);
    }

    let started = Instant::now();
    for path in &paths {
        let out = std::process::Command::new(&rtt)
            .args(["solve", path.to_str()?, "--budget", &budget.to_string()])
            .output()
            .ok()?;
        if !out.status.success() {
            return None;
        }
    }
    let process_ms = started.elapsed().as_secs_f64() * 1e3;

    let cache = PrepCache::new();
    let requests: Vec<SolveRequest> = (0..n_instances)
        .map(|i| {
            let prepared = cache.get_or_insert(&format!("inst-{i}"), || corpus_instance(i));
            SolveRequest::min_makespan(format!("os{i}"), prepared, budget)
                .with_solver("bicriteria")
        })
        .collect();
    let started = Instant::now();
    let out = run_batch(registry, requests, 1);
    let engine_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(out.reports.len(), n_instances);

    std::fs::remove_dir_all(&dir).ok();
    Some(OneShotPoint {
        requests: n_instances,
        process_ms,
        engine_ms,
        speedup: process_ms / engine_ms.max(1e-9),
    })
}

impl BatchPerfReport {
    /// Renders the machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"rtt-bench/batch-v1\",\n");
        out.push_str("  \"pr\": 2,\n");
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str(
            "  \"note\": \"thread scaling is bounded by cores; determinism, cache, and parity are measured in the same binary (crates/bench/src/batch_perf.rs)\",\n",
        );
        out.push_str("  \"corpus\": {");
        out.push_str(&format!(
            "\"instances\": {}, \"requests\": {}, \"reports\": {}",
            self.instances, self.requests, self.reports
        ));
        out.push_str("},\n");
        out.push_str("  \"threads\": [\n");
        for (i, p) in self.threads.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"threads\": {}, \"wall_ms\": {:.3}, \"req_per_sec\": {:.1}, \"speedup_vs_1t\": {:.2}}}{}\n",
                p.threads,
                p.wall_ms,
                p.req_per_sec,
                p.speedup_vs_1t,
                if i + 1 == self.threads.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"deterministic_across_threads\": {},\n",
            self.deterministic
        ));
        out.push_str(&format!(
            "  \"prep_cache\": {{\"instance_hits\": {}, \"instance_misses\": {}, \"instance_hit_rate\": {:.3}, \"artifact_reuses\": {}, \"artifact_computes\": {}, \"artifact_reuse_rate\": {:.3}}},\n",
            self.cache.instance_hits,
            self.cache.instance_misses,
            self.cache.instance_hit_rate(),
            self.cache.artifact_reuses,
            self.cache.artifact_computes,
            self.cache.artifact_reuse_rate(),
        ));
        out.push_str(&format!(
            "  \"prep_sharing\": {{\"shared_1t_ms\": {:.3}, \"private_1t_ms\": {:.3}, \"speedup\": {:.2}}},\n",
            self.threads[0].wall_ms, self.nocache_wall_ms, self.cache_speedup
        ));
        out.push_str(&format!(
            "  \"single_solve_parity\": {{\"engine_ms\": {:.4}, \"direct_ms\": {:.4}, \"ratio\": {:.2}}},\n",
            self.parity.engine_ms, self.parity.direct_ms, self.parity.ratio
        ));
        match &self.one_shot {
            Some(p) => out.push_str(&format!(
                "  \"resident_vs_process_per_query\": {{\"requests\": {}, \"process_ms\": {:.1}, \"engine_ms\": {:.1}, \"speedup\": {:.1}}}\n",
                p.requests, p.process_ms, p.engine_ms, p.speedup
            )),
            None => out
                .push_str("  \"resident_vs_process_per_query\": null\n"),
        }
        out.push_str("}\n");
        out
    }

    /// Renders a human-readable summary table.
    pub fn render(&self) -> String {
        let mut t = crate::table::TextTable::new(&[
            "threads",
            "wall ms",
            "req/s",
            "speedup vs 1t",
        ]);
        for p in &self.threads {
            t.row(vec![
                p.threads.to_string(),
                format!("{:.1}", p.wall_ms),
                format!("{:.0}", p.req_per_sec),
                format!("{:.2}x", p.speedup_vs_1t),
            ]);
        }
        format!(
            "==== bench-pr2 (cores = {}, corpus = {} requests -> {} reports) ====\n{}\
             deterministic across threads: {}\n\
             prep cache: {:.0}% instance hits, {:.0}% artifact reuses; sharing speedup {:.2}x (vs {:.1} ms private)\n\
             single-solve parity: engine {:.3} ms vs direct {:.3} ms ({:.2}x)\n",
            self.cores,
            self.requests,
            self.reports,
            t.render(),
            self.deterministic,
            self.cache.instance_hit_rate() * 100.0,
            self.cache.artifact_reuse_rate() * 100.0,
            self.cache_speedup,
            self.nocache_wall_ms,
            self.parity.engine_ms,
            self.parity.direct_ms,
            self.parity.ratio,
        ) + &match &self.one_shot {
            Some(p) => format!(
                "resident engine vs process-per-query: {:.1} ms vs {:.1} ms over {} requests ({:.1}x)\n",
                p.engine_ms, p.process_ms, p.requests, p.speedup
            ),
            None => "resident engine vs process-per-query: skipped (rtt binary not found)\n".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measurement_is_consistent_and_serializes() {
        let r = measure(1, true);
        assert!(r.requests >= 24);
        assert_eq!(r.threads.len(), 4);
        assert!(r.deterministic, "batch output must not depend on threads");
        assert!(
            r.cache.instance_hit_rate() > 0.0,
            "two budgets per instance must hit the cache: {:?}",
            r.cache
        );
        assert!(r.cache.artifact_reuses > 0);
        let json = r.to_json();
        assert!(json.contains("\"deterministic_across_threads\": true"));
        assert!(json.contains("\"prep_cache\""));
        assert!(json.ends_with("}\n"));
        assert!(r.render().contains("bench-pr2"));
    }
}
