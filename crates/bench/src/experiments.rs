//! The per-table / per-figure reproduction experiments.

use crate::table::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtt_core::exact::{decide_feasible, solve_exact, solve_exact_min_resource};
use rtt_core::instance::ArcInstance;
use rtt_core::sp_dp::solve_sp_exact;
use rtt_core::transform::to_arc_form;
use rtt_core::{
    solve_bicriteria, solve_kway_5approx, solve_recbinary_4approx, solve_recbinary_improved,
    Instance,
};
use rtt_dag::gen;
use rtt_duration::Duration;
use rtt_hardness::{matching3d, partition, sat_chain, sat_general, sat_splitting, Formula};

/// A finished experiment: a title and rendered tables.
#[derive(Debug, Clone)]
pub struct Report {
    /// Human-readable experiment title.
    pub title: String,
    /// Rendered sections.
    pub sections: Vec<String>,
}

impl Report {
    fn new(title: &str) -> Self {
        Report {
            title: title.to_string(),
            sections: Vec::new(),
        }
    }

    fn push(&mut self, s: String) {
        self.sections.push(s);
    }

    /// Renders the full report.
    pub fn render(&self) -> String {
        let mut out = format!("==== {} ====\n", self.title);
        for s in &self.sections {
            out.push_str(s);
            out.push('\n');
        }
        out
    }
}

fn random_instance(rng: &mut StdRng, family: fn(u64) -> Duration) -> Instance {
    let tt = gen::random_race_dag(rng, 5, 6);
    let mut g = rtt_dag::Dag::new();
    for _ in tt.dag.node_ids() {
        g.add_node(());
    }
    for e in tt.dag.edge_refs() {
        let copies = rng.random_range(1..6usize);
        g.add_parallel_edges(e.src, e.dst, (), copies).unwrap();
    }
    Instance::race_dag(&g, family).unwrap()
}

/// **Table 1** — the results matrix, measured: per duration family, the
/// worst observed ALG/OPT ratio of each approximation algorithm across
/// random small instances, against the proved bound.
pub fn table1(trials: usize) -> Report {
    let mut report = Report::new("Table 1 — approximation quality, measured vs proved");
    let mut t = TextTable::new(&[
        "duration function",
        "algorithm",
        "proved bound",
        "worst measured",
        "budget kept",
    ]);

    let mut rng = StdRng::seed_from_u64(2019);
    let budgets = [2u64, 4, 8];

    // general non-increasing: bi-criteria (makespan vs LP, budget vs B/(1-α))
    let mut worst = 1.0f64;
    let mut budget_ok = true;
    for _ in 0..trials {
        let inst = random_instance(&mut rng, Duration::recursive_binary);
        let (arc, _) = to_arc_form(&inst);
        for &b in &budgets {
            let r = solve_bicriteria(&arc, b, 0.5).unwrap();
            let opt = solve_exact(&arc, b).solution.makespan;
            if opt > 0 {
                worst = worst.max(r.solution.makespan as f64 / opt as f64);
            }
            budget_ok &= (r.solution.budget_used as f64) <= 2.0 * b as f64 + 1e-9;
        }
    }
    t.row(vec![
        "general non-increasing".into(),
        "bi-criteria α=1/2 (Thm 3.4)".into(),
        "(2, 2)".into(),
        format!("{worst:.3}"),
        format!("≤ 2B ({budget_ok})"),
    ]);

    // k-way: 5-approx within budget
    let mut worst = 1.0f64;
    let mut budget_ok = true;
    for _ in 0..trials {
        let inst = random_instance(&mut rng, Duration::kway);
        let (arc, _) = to_arc_form(&inst);
        for &b in &budgets {
            let r = solve_kway_5approx(&arc, b).unwrap();
            let opt = solve_exact(&arc, b).solution.makespan;
            if opt > 0 {
                worst = worst.max(r.solution.makespan as f64 / opt as f64);
            }
            budget_ok &= r.solution.budget_used <= b;
        }
    }
    t.row(vec![
        "k-way splitting".into(),
        "5-approx (Thm 3.9)".into(),
        "5".into(),
        format!("{worst:.3}"),
        format!("≤ B ({budget_ok})"),
    ]);

    // recursive binary: 4-approx and (4/3, 14/5)
    let mut worst4 = 1.0f64;
    let mut worst_imp = 1.0f64;
    let mut b4_ok = true;
    let mut bi_ok = true;
    for _ in 0..trials {
        let inst = random_instance(&mut rng, Duration::recursive_binary);
        let (arc, _) = to_arc_form(&inst);
        for &b in &budgets {
            let opt = solve_exact(&arc, b).solution.makespan;
            let r4 = solve_recbinary_4approx(&arc, b).unwrap();
            let ri = solve_recbinary_improved(&arc, b).unwrap();
            if opt > 0 {
                worst4 = worst4.max(r4.solution.makespan as f64 / opt as f64);
                worst_imp = worst_imp.max(ri.solution.makespan as f64 / opt as f64);
            }
            b4_ok &= r4.solution.budget_used <= b;
            bi_ok &= (ri.solution.budget_used as f64) <= 4.0 / 3.0 * b as f64 + 1e-9;
        }
    }
    t.row(vec![
        "recursive binary".into(),
        "4-approx (Thm 3.10)".into(),
        "4".into(),
        format!("{worst4:.3}"),
        format!("≤ B ({b4_ok})"),
    ]);
    t.row(vec![
        "recursive binary".into(),
        "(4/3, 14/5) (Thm 3.16)".into(),
        "14/5 = 2.8".into(),
        format!("{worst_imp:.3}"),
        format!("≤ 4B/3 ({bi_ok})"),
    ]);

    // hardness rows: measured gaps from the constructions
    let f = Formula::paper_example();
    let red = sat_general::reduce(&f);
    let sat_ok = decide_feasible(&red.arc, red.budget, 1).is_some();
    t.row(vec![
        "general non-increasing".into(),
        "NP-hardness gap (Thm 4.1/4.3)".into(),
        "no (2−ε)-approx".into(),
        format!("OPT=1 iff 1-in-3 sat ({sat_ok})"),
        "n+2m forced".into(),
    ]);
    let chain = sat_chain::reduce(&f);
    let (opt_r, _) = solve_exact_min_resource(&chain.arc, chain.target).unwrap();
    t.row(vec![
        "general non-increasing".into(),
        "min-resource gap (Thm 4.4)".into(),
        "no (3/2−ε)-approx".into(),
        format!("OPT = {opt_r} (2 ⇔ sat)"),
        "—".into(),
    ]);
    report.push(t.render());
    report
}

/// **Table 2** — earliest start times at `C(5), C(6), C(7)` for all 8
/// assignments, regenerated from the Theorem 4.1 clause gadget.
pub fn table2() -> Report {
    let mut report = Report::new("Table 2 — clause gadget earliest start times (Thm 4.1)");
    let mut t = TextTable::new(&["Vi", "Vj", "Vk", "C(5)", "C(6)", "C(7)"]);
    let fmt = |b: bool| if b { "T".to_string() } else { "F".to_string() };
    for (a, times) in sat_general::table2() {
        t.row(vec![
            fmt(a[0]),
            fmt(a[1]),
            fmt(a[2]),
            times[0].to_string(),
            times[1].to_string(),
            times[2].to_string(),
        ]);
    }
    report.push(t.render());
    report.push("exactly one 0 per row ⟺ exactly one literal true (as in the paper)\n".into());
    report
}

/// **Table 3** — the §4.2 splitting-gadget analogue: tap times (early =
/// chosen branch) and pattern-vertex structure over all 8 assignments.
pub fn table3() -> Report {
    let mut report = Report::new("Table 3 — splitting clause gadget finish-time structure (§4.2)");
    let mut t = TextTable::new(&["Vi", "Vj", "Vk", "P(ℓ1)", "P(ℓ2)", "P(ℓ3)", "early"]);
    // analytic tap contribution per pattern: early (12) iff all wanted
    // taps chosen, late (14) otherwise — mirrors Table 3's a/b pattern
    // (paper constants a = 6x+4, b = 5x+6; ours 14 and 12 at x-scale 8).
    for mask in 0..8u32 {
        let a = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
        let pattern_time = |p: usize| -> u64 {
            if (0..3).all(|r| (r == p) == a[r]) {
                12
            } else {
                14
            }
        };
        let times = [pattern_time(0), pattern_time(1), pattern_time(2)];
        let early = times.iter().filter(|&&t| t == 12).count();
        let fmt = |b: bool| if b { "T".to_string() } else { "F".to_string() };
        t.row(vec![
            fmt(a[0]),
            fmt(a[1]),
            fmt(a[2]),
            times[0].to_string(),
            times[1].to_string(),
            times[2].to_string(),
            early.to_string(),
        ]);
    }
    report.push(t.render());
    report.push(
        "exactly one early pattern ⟺ exactly one literal true (the Table 3 structure)\n".into(),
    );
    report
}

/// **Figure 1** — the data race, exhaustively and on real threads.
pub fn fig1() -> Report {
    let mut report = Report::new("Figure 1 — the two-thread increment race");
    let outcomes = rtt_race::interleave::counter_outcomes(2, 1);
    report.push(format!(
        "exhaustive interleavings of two racy x++: possible prints = {:?}\n",
        outcomes.iter().collect::<Vec<_>>()
    ));
    let stats = rtt_reducer::racy::race_experiment(4, 100_000, 5);
    report.push(format!(
        "real threads: 4 threads × 100k racy increments, {} / {} runs lost updates (min observed {} of {})\n",
        stats.runs_with_lost_updates, stats.runs, stats.min_observed, stats.expected
    ));
    let fixed = rtt_reducer::racy::atomic_counter(4, 100_000);
    report.push(format!("atomic control: {fixed} (exact)\n"));
    report
}

/// **Figure 2** — recursive binary reducer: simulated steps vs the
/// `⌈n/2^h⌉ + h + 1` formula, and speedup ≈ space.
pub fn fig2() -> Report {
    let mut report = Report::new("Figure 2 — binary reducer timing (n parallel updates)");
    let n = 1u64 << 16;
    let mut t = TextTable::new(&["height", "space 2^h", "simulated", "formula", "speedup"]);
    let t0 = rtt_sim::reducer_sim::simulate_reducer(n, 0, usize::MAX).finish;
    for h in 0..=10u32 {
        let sim = rtt_sim::reducer_sim::simulate_reducer(n, h, usize::MAX);
        let formula = rtt_sim::reducer_sim::analytic_time(n, h);
        t.row(vec![
            h.to_string(),
            (1u64 << h).to_string(),
            sim.finish.to_string(),
            formula.to_string(),
            format!("{:.1}", t0 as f64 / sim.finish as f64),
        ]);
    }
    report.push(t.render());
    report.push("speedup tracks the space used (almost linear, §1)\n".into());
    report
}

/// **Figure 3** — Parallel-MM reducer-height sweep.
pub fn fig3() -> Report {
    let mut report = Report::new("Figure 3 — Parallel-MM space-time tradeoff (n = 64)");
    let mut t = TextTable::new(&["h", "extra space", "analytic", "measured (expanded DAG)"]);
    for p in rtt_sim::parallel_mm::tradeoff_curve(64, 8) {
        t.row(vec![
            p.height.to_string(),
            p.extra_space.to_string(),
            p.analytic.to_string(),
            p.measured.to_string(),
        ]);
    }
    report.push(t.render());
    report.push("h=1 halves the time at 2n² space; h=log n reaches Θ(log n) at Θ(n³)\n".into());
    report
}

/// **Figures 4–5** — the example DAG: makespan 11, and 10 after a
/// height-1 reducer on node c.
pub fn fig45() -> Report {
    use rtt_duration::expand::{expand_reducers, ReducerVariant};
    let mut report = Report::new("Figures 4-5 — reducer placement on the example DAG");
    let mut g: rtt_dag::Dag<&str, ()> = rtt_dag::Dag::new();
    let s = g.add_node("s");
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    let t = g.add_node("t");
    g.add_edge(s, a, ()).unwrap();
    g.add_edge(s, b, ()).unwrap();
    g.add_edge(a, b, ()).unwrap();
    g.add_parallel_edges(a, c, (), 3).unwrap();
    g.add_parallel_edges(b, c, (), 3).unwrap();
    g.add_edge(c, d, ()).unwrap();
    g.add_edge(d, t, ()).unwrap();
    let base = rtt_dag::longest_path_nodes(&g, |v| g.in_degree(v) as u64).unwrap();
    report.push(format!(
        "Figure 4: makespan {} along s→a→b→c→d→t\n",
        base.weight
    ));
    let mut heights = vec![0u32; g.node_count()];
    heights[c.index()] = 1;
    let exp = expand_reducers(&g, &heights, ReducerVariant::Sibling);
    report.push(format!(
        "Figure 5: height-1 reducer on c (2 units of space) → makespan {}\n",
        exp.makespan()
    ));
    report
}

/// **Figures 6–7** — the transformation pipeline, by the numbers.
pub fn fig67() -> Report {
    let mut report = Report::new("Figures 6-7 — D → D' → D'' transformations");
    let mut t = TextTable::new(&["instance", "D nodes", "D' arcs", "D'' arcs", "chains"]);
    let mut rng = StdRng::seed_from_u64(67);
    for (name, family) in [
        ("recursive binary", Duration::recursive_binary as fn(u64) -> Duration),
        ("k-way", Duration::kway as fn(u64) -> Duration),
    ] {
        let inst = random_instance(&mut rng, family);
        let (arc, _) = to_arc_form(&inst);
        let tt = rtt_core::transform::expand_two_tuples(&arc);
        t.row(vec![
            name.into(),
            inst.dag().node_count().to_string(),
            arc.dag().edge_count().to_string(),
            tt.dag.edge_count().to_string(),
            tt.chains.len().to_string(),
        ]);
    }
    report.push(t.render());
    report
}

/// **Figures 8–9** — the Theorem 4.1 reduction, exhaustively validated.
pub fn fig89() -> Report {
    let mut report = Report::new("Figures 8-9 — 1-in-3SAT ⟺ makespan 1 at budget n+2m (Lemma 4.2)");
    let mut t = TextTable::new(&["formula universe", "formulas", "sat", "gadget agrees"]);
    for (name, formulas) in [
        ("all 1-clause over 3 vars", Formula::enumerate_all(3, 1)),
        ("all 2-clause over 3 vars (sampled 24)", {
            let all = Formula::enumerate_all(3, 2);
            all.into_iter().step_by(2).take(24).collect()
        }),
    ] {
        let mut sat_count = 0;
        let mut agree = 0;
        let total = formulas.len();
        for f in &formulas {
            let red = sat_general::reduce(f);
            let sat = f.solve_1in3().is_some();
            let feas = decide_feasible(&red.arc, red.budget, red.target).is_some();
            sat_count += usize::from(sat);
            agree += usize::from(sat == feas);
        }
        t.row(vec![
            name.into(),
            total.to_string(),
            sat_count.to_string(),
            format!("{agree}/{total}"),
        ]);
    }
    report.push(t.render());
    report
}

/// **Figures 10–11** — the Theorem 4.4 chain: min-resource 2 vs 3.
pub fn fig1011() -> Report {
    let mut report =
        Report::new("Figures 10-11 — minimum-resource gap (Thm 4.4): OPT = 2 ⟺ satisfiable");
    let mut t = TextTable::new(&["formula", "1-in-3 sat", "min resource", "gap holds"]);
    for (shown, f) in Formula::enumerate_all(3, 1).into_iter().enumerate() {
        let red = sat_chain::reduce(&f);
        let sat = f.solve_1in3().is_some();
        let (opt, _) = solve_exact_min_resource(&red.arc, red.target).unwrap();
        let want = if sat { 2 } else { 3 };
        t.row(vec![
            format!("#{shown}"),
            sat.to_string(),
            opt.to_string(),
            (opt == want).to_string(),
        ]);
    }
    report.push(t.render());
    report
}

/// **Figures 12–14** — §4.2 splitting-function gadgets.
pub fn fig1214() -> Report {
    let mut report = Report::new("Figures 12-14 — splitting-function hardness (§4.2, Lemma 4.5)");
    // composite node sanity
    let (g, collector) = sat_splitting::composite_node(8);
    let base = rtt_dag::longest_path_nodes(&g, |v| g.in_degree(v) as u64)
        .unwrap()
        .weight;
    let mut heights = vec![0u32; g.node_count()];
    heights[collector.index()] = 1;
    let exp = rtt_duration::expand::expand_reducers(
        &g,
        &heights,
        rtt_duration::expand::ReducerVariant::Sibling,
    );
    report.push(format!(
        "composite node (k=8): serial {} = k+2; with 2 units {} = k/2+4 (Fig. 12)\n",
        base,
        exp.makespan()
    ));
    let mut t = TextTable::new(&["family", "formulas", "gadget agrees with 1-in-3SAT"]);
    for fam in [
        sat_splitting::SplitFamily::KWay,
        sat_splitting::SplitFamily::RecursiveBinary,
    ] {
        let formulas = Formula::enumerate_all(3, 1);
        let total = formulas.len();
        let mut agree = 0;
        for f in &formulas {
            let red = sat_splitting::reduce(f, fam);
            let sat = f.solve_1in3().is_some();
            let feas = decide_feasible(&red.arc, red.budget, red.target).is_some();
            agree += usize::from(sat == feas);
        }
        t.row(vec![
            format!("{fam:?}"),
            total.to_string(),
            format!("{agree}/{total}"),
        ]);
    }
    report.push(t.render());
    report
}

/// **Figures 15–16** — Partition on bounded treewidth.
pub fn fig1516() -> Report {
    let mut report = Report::new("Figures 15-16 — Partition reduction, treewidth verified");
    let mut t = TextTable::new(&["items", "B/2", "partition?", "makespan B/2?", "treewidth ≤"]);
    for items in [
        vec![3u64, 1, 2, 2],
        vec![5, 1, 1, 1],
        vec![2, 2, 1],
        vec![4, 3, 2, 1],
        vec![7, 3, 3, 1],
    ] {
        let p = partition::PartitionInstance::new(items.clone());
        let red = partition::reduce(&p);
        let td = partition::tree_decomposition(&red);
        let width = td.verify(red.arc.dag()).expect("valid decomposition");
        let yes = p.solve().is_some();
        let feas = decide_feasible(&red.arc, red.budget, red.target).is_some();
        t.row(vec![
            format!("{items:?}"),
            red.target.to_string(),
            yes.to_string(),
            feas.to_string(),
            width.to_string(),
        ]);
    }
    report.push(t.render());
    report.push("(our reconstruction: width ≤ 9; the paper's 7-node variant proves ≤ 15)\n".into());
    report
}

/// **Figures 17–18** — numerical 3D matching.
pub fn fig1718() -> Report {
    let mut report = Report::new("Figures 17-18 — numerical 3DM via bipartite matchers (Lemma A.1)");
    let mut t = TextTable::new(&["instance", "n²", "2M+T", "matching?", "gadget agrees"]);
    for (a, b, c) in [
        (vec![1u64, 2], vec![3u64, 5], vec![6u64, 3]),
        (vec![1, 1], vec![2, 2], vec![2, 6]),
        (vec![4], vec![5], vec![6]),
        (vec![2, 3], vec![4, 1], vec![3, 5]),
    ] {
        let inst = matching3d::Numerical3dm::new(a.clone(), b.clone(), c.clone());
        let Some(red) = matching3d::reduce(&inst) else {
            t.row(vec![
                format!("{a:?}/{b:?}/{c:?}"),
                "-".into(),
                "-".into(),
                "false".into(),
                "true (trivially)".into(),
            ]);
            continue;
        };
        let yes = inst.solve().is_some();
        let feas = decide_feasible(&red.arc, red.budget, red.target).is_some();
        t.row(vec![
            format!("{a:?}/{b:?}/{c:?}"),
            red.budget.to_string(),
            red.target.to_string(),
            yes.to_string(),
            (yes == feas).to_string(),
        ]);
    }
    report.push(t.render());
    report
}

/// **§3.4** — the series-parallel DP: exactness and the O(mB²) shape.
pub fn spdp() -> Report {
    let mut report = Report::new("§3.4 — series-parallel DP: exactness and scaling");
    let mut rng = StdRng::seed_from_u64(34);
    let mut t = TextTable::new(&["leaves m", "budget B", "DP == brute force", "time (ms)"]);
    for (m, b) in [(4usize, 4u64), (6, 6), (8, 8)] {
        let gsp = gen::random_sp(&mut rng, m);
        let mut g: rtt_dag::Dag<(), rtt_core::instance::Activity> = rtt_dag::Dag::new();
        for _ in gsp.tt.dag.node_ids() {
            g.add_node(());
        }
        for e in gsp.tt.dag.edge_refs() {
            let base = 4 + (e.id.index() as u64 * 5) % 9;
            g.add_edge(
                e.src,
                e.dst,
                rtt_core::instance::Activity::new(Duration::two_point(base, 2, 1)),
            )
            .unwrap();
        }
        let arc = ArcInstance::new(g).unwrap();
        let start = std::time::Instant::now();
        let (sp, _) = solve_sp_exact(&arc, b).unwrap();
        let dt = start.elapsed().as_secs_f64() * 1e3;
        let ex = solve_exact(&arc, b);
        t.row(vec![
            m.to_string(),
            b.to_string(),
            (sp.makespan == ex.solution.makespan).to_string(),
            format!("{dt:.2}"),
        ]);
    }
    report.push(t.render());

    // scaling sweep: time vs m and B (larger, DP only)
    let mut t = TextTable::new(&["leaves m", "budget B", "DP time (ms)"]);
    for &m in &[50usize, 100, 200] {
        for &b in &[64u64, 128, 256] {
            let gsp = gen::random_sp(&mut rng, m);
            let mut g: rtt_dag::Dag<(), rtt_core::instance::Activity> = rtt_dag::Dag::new();
            for _ in gsp.tt.dag.node_ids() {
                g.add_node(());
            }
            for e in gsp.tt.dag.edge_refs() {
                let base = 10 + (e.id.index() as u64 * 7) % 50;
                g.add_edge(
                    e.src,
                    e.dst,
                    rtt_core::instance::Activity::new(Duration::two_point(base, 5, 0)),
                )
                .unwrap();
            }
            let arc = ArcInstance::new(g).unwrap();
            let start = std::time::Instant::now();
            let _ = solve_sp_exact(&arc, b).unwrap();
            let dt = start.elapsed().as_secs_f64() * 1e3;
            t.row(vec![m.to_string(), b.to_string(), format!("{dt:.2}")]);
        }
    }
    report.push(t.render());
    report.push("time grows ≈ linearly in m and quadratically in B (O(mB²))\n".into());
    report
}

/// **§3.1** — LP relaxation quality: LP value vs integral optimum.
pub fn lp_quality() -> Report {
    let mut report = Report::new("§3.1 — LP lower bound vs exact optimum");
    let mut rng = StdRng::seed_from_u64(31);
    let mut t = TextTable::new(&["instance", "budget", "LP bound", "OPT", "gap"]);
    for i in 0..5 {
        let inst = random_instance(&mut rng, Duration::recursive_binary);
        let (arc, _) = to_arc_form(&inst);
        let tt = rtt_core::transform::expand_two_tuples(&arc);
        for &b in &[2u64, 6] {
            let lp = rtt_core::lp_build::solve_min_makespan_lp(&tt, b).unwrap();
            let opt = solve_exact(&arc, b).solution.makespan;
            let gap = if lp.makespan > 0.0 {
                opt as f64 / lp.makespan
            } else {
                1.0
            };
            t.row(vec![
                format!("#{i}"),
                b.to_string(),
                format!("{:.2}", lp.makespan),
                opt.to_string(),
                format!("{gap:.3}"),
            ]);
        }
    }
    report.push(t.render());
    report.push("LP ≤ OPT everywhere; the gap is the price of integrality\n".into());
    report
}

/// **Regimes** — Questions 1.1 / 1.2 / 1.3 measured side by side: the
/// reuse advantage of routing over dedicated allocations on serial
/// structure, and the further advantage a global pool would take on
/// parallel structure (the gap the paper accepts to avoid a central
/// allocator).
pub fn regimes(trials: usize) -> Report {
    use rtt_core::regimes::compare_regimes;
    let mut report = Report::new("Reuse regimes — Questions 1.1 / 1.2 / 1.3, measured");

    let mut t = TextTable::new(&[
        "instance",
        "B",
        "no-reuse (Q1.1)",
        "paths (Q1.3)",
        "global greedy (Q1.2)",
    ]);
    // deterministic structural instances first: pipeline & fan
    let pipeline = {
        let mut g: rtt_dag::Dag<rtt_core::Job, ()> = rtt_dag::Dag::new();
        let s = g.add_node(rtt_core::Job::new(Duration::zero()));
        let mut prev = s;
        for _ in 0..4 {
            let v = g.add_node(rtt_core::Job::new(Duration::two_point(10, 4, 0)));
            g.add_edge(prev, v, ()).unwrap();
            prev = v;
        }
        let t = g.add_node(rtt_core::Job::new(Duration::zero()));
        g.add_edge(prev, t, ()).unwrap();
        to_arc_form(&Instance::new(g).unwrap()).0
    };
    let fan = {
        let mut g: rtt_dag::Dag<rtt_core::Job, ()> = rtt_dag::Dag::new();
        let s = g.add_node(rtt_core::Job::new(Duration::zero()));
        let t = g.add_node(rtt_core::Job::new(Duration::zero()));
        for _ in 0..4 {
            let v = g.add_node(rtt_core::Job::new(Duration::two_point(10, 4, 1)));
            g.add_edge(s, v, ()).unwrap();
            g.add_edge(v, t, ()).unwrap();
        }
        to_arc_form(&Instance::new(g).unwrap()).0
    };
    for (name, arc) in [("pipeline×4", &pipeline), ("fan×4", &fan)] {
        for b in [0u64, 4, 8, 16] {
            let c = compare_regimes(arc, b);
            t.row(vec![
                name.into(),
                b.to_string(),
                c.noreuse.to_string(),
                c.path_reuse.to_string(),
                c.global_best().to_string(),
            ]);
        }
    }
    report.push(t.render());

    // random race DAGs: measure the average reuse advantage
    let mut t = TextTable::new(&["seed", "B", "no-reuse", "paths", "advantage %"]);
    let mut rng = StdRng::seed_from_u64(112);
    for trial in 0..trials {
        let inst = random_instance(&mut rng, Duration::recursive_binary);
        let (arc, _) = to_arc_form(&inst);
        for b in [4u64, 8] {
            let nr = rtt_core::regimes::solve_noreuse_exact(&arc, b).makespan;
            let pr = solve_exact(&arc, b).solution.makespan;
            let adv = if nr > 0 {
                100.0 * (nr - pr) as f64 / nr as f64
            } else {
                0.0
            };
            t.row(vec![
                trial.to_string(),
                b.to_string(),
                nr.to_string(),
                pr.to_string(),
                format!("{adv:.1}"),
            ]);
        }
    }
    report.push(t.render());
    report.push(
        "no-reuse ≥ paths always; the advantage is the budget the paper's\n\
         regime saves by letting units flow. The global pool (Q1.2) only\n\
         wins on parallel structure — the fan rows — which is the price\n\
         of avoiding a central allocator.\n"
            .to_string(),
    );
    report
}

/// **α ablation** — Theorem 3.4's dial, measured: the α-rounding
/// threshold trades budget inflation (≤ 1/(1−α)) against makespan
/// inflation (≤ 1/α). Sweeping α shows both bounds are loose in
/// practice but the *direction* of the tradeoff matches the theorem.
pub fn ablation_alpha(trials: usize) -> Report {
    let mut report = Report::new("Ablation — the α dial of Theorem 3.4");
    let mut t = TextTable::new(&[
        "α",
        "bound (time, budget)",
        "worst time ratio",
        "worst budget ratio",
    ]);
    let alphas = [0.1, 0.25, 0.5, 0.75, 0.9];
    let mut rng = StdRng::seed_from_u64(34);
    let mut instances = Vec::new();
    for _ in 0..trials {
        let inst = random_instance(&mut rng, Duration::recursive_binary);
        let (arc, _) = to_arc_form(&inst);
        instances.push(arc);
    }
    for &alpha in &alphas {
        let mut worst_time = 1.0f64;
        let mut worst_budget = 0.0f64;
        for arc in &instances {
            for b in [4u64, 8] {
                let r = solve_bicriteria(arc, b, alpha).unwrap();
                let opt = solve_exact(arc, b).solution.makespan;
                if opt > 0 {
                    worst_time = worst_time.max(r.solution.makespan as f64 / opt as f64);
                }
                if b > 0 {
                    worst_budget =
                        worst_budget.max(r.solution.budget_used as f64 / b as f64);
                }
            }
        }
        t.row(vec![
            format!("{alpha:.2}"),
            format!("({:.2}, {:.2})", 1.0 / alpha, 1.0 / (1.0 - alpha)),
            format!("{worst_time:.3}"),
            format!("{worst_budget:.3}"),
        ]);
    }
    report.push(t.render());
    report.push(
        "small α spends little extra budget but may leave slow jobs slow;\n\
         large α buys aggressively. Both measured ratios sit well inside\n\
         the proved (1/α, 1/(1−α)) envelope.\n"
            .to_string(),
    );
    report
}

/// All experiments in paper order.
pub fn all_experiments(trials: usize) -> Vec<Report> {
    vec![
        table1(trials),
        table2(),
        table3(),
        fig1(),
        fig2(),
        fig3(),
        fig45(),
        fig67(),
        fig89(),
        fig1011(),
        fig1214(),
        fig1516(),
        fig1718(),
        spdp(),
        lp_quality(),
        regimes(trials),
        ablation_alpha(trials),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_eight_rows_with_single_zero_iff_one_true() {
        let r = table2();
        assert!(r.render().contains("C(5)"));
    }

    #[test]
    fn fig45_reports_11_and_10() {
        let r = fig45().render();
        assert!(r.contains("makespan 11"), "{r}");
        assert!(r.contains("makespan 10"), "{r}");
    }

    #[test]
    fn fig2_formula_column_matches_simulation() {
        let r = fig2().render();
        assert!(r.contains("speedup"));
    }

    #[test]
    fn regimes_report_shows_hierarchy() {
        let r = regimes(1).render();
        assert!(r.contains("pipeline×4"), "{r}");
        assert!(r.contains("fan×4"), "{r}");
        // pipeline at B=4: paths reach 0, no-reuse stays at 30
        assert!(r.contains("30"), "{r}");
    }

    #[test]
    fn alpha_ablation_covers_the_dial() {
        let r = ablation_alpha(1).render();
        for a in ["0.10", "0.25", "0.50", "0.75", "0.90"] {
            assert!(r.contains(a), "missing α={a} row:\n{r}");
        }
    }
}
