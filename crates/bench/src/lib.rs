//! # rtt-bench — the reproduction harness
//!
//! One function per table/figure of the paper; each returns the rows it
//! printed so tests can assert on them. The `repro` binary dispatches to
//! these; `EXPERIMENTS.md` records their output. Criterion benches for
//! the substrates and solvers live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze_perf;
pub mod batch_perf;
pub mod curve_perf;
pub mod experiments;
pub mod par_perf;
pub mod perf;
pub mod race_perf;
pub mod reuse_perf;
pub mod sim_perf;
pub mod sweep_perf;
pub mod table;

pub use experiments::*;
