//! The PR-3 perf baseline: machine-readable evidence for the sparse
//! revised simplex and warm-started budget sweeps.
//!
//! `repro bench-pr3 [--out PATH] [--smoke]` measures, **in the same
//! binary** (all three engines stay in-tree, per the ROADMAP perf
//! protocol):
//!
//! * the `bicriteria_thm34` pipeline (LP 6–10 → α-rounding → min-flow)
//!   under `Engine::Revised` vs `Engine::Flat` vs `Engine::Reference`,
//!   per size, with pivot counts, **materialized row counts** (the
//!   revised engine handles per-edge capacity bounds implicitly and
//!   must show the row deletion), and pairwise objective deltas;
//! * a ≥16-point budget **sweep** on the largest instance: one
//!   warm-started chain ([`rtt_core::solve_min_makespan_sweep`]) vs the
//!   same grid as independent cold solves, with per-point objective
//!   agreement and total pivot counts.
//!
//! The output lands in `BENCH_pr3.json` at the repo root. Like every
//! bench schema since PR 3, the document records `cores` and `trials`.

use crate::perf::race_instance;
use rtt_core::lp_build::{solve_min_makespan_lp_with, solve_min_makespan_sweep};
use rtt_core::solve_bicriteria_with;
use rtt_core::transform::expand_two_tuples;
use rtt_lp::Engine;
use std::time::Instant;

/// One engine-comparison size point.
#[derive(Debug, Clone)]
pub struct EnginePoint {
    /// Race-DAG node count before normalization.
    pub nodes: usize,
    /// `D''` LP variable count (flows + times).
    pub lp_vars: usize,
    /// Median pipeline wall-time per engine (ms).
    pub revised_ms: f64,
    /// See [`EnginePoint::revised_ms`].
    pub flat_ms: f64,
    /// See [`EnginePoint::revised_ms`].
    pub reference_ms: f64,
    /// Simplex work per engine (pivots incl. bound flips for revised).
    pub pivots_revised: usize,
    /// See [`EnginePoint::pivots_revised`].
    pub pivots_flat: usize,
    /// Constraint rows the revised engine materialized.
    pub rows_revised: usize,
    /// Constraint rows the flat engine materialized (`rows_revised` +
    /// one per bounded edge).
    pub rows_flat: usize,
    /// Upper-bounded columns (= deleted bound rows).
    pub bound_cols: usize,
    /// Max pairwise LP-objective delta across the three engines.
    pub objective_delta: f64,
}

/// The warm-vs-cold sweep measurement.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Node count of the swept instance.
    pub nodes: usize,
    /// Number of grid points.
    pub grid: usize,
    /// Median wall of the grid as independent cold solves (ms).
    pub cold_ms: f64,
    /// Median wall of the grid as one warm-started chain (ms).
    pub warm_ms: f64,
    /// Total simplex pivots, cold grid.
    pub cold_pivots: usize,
    /// Total simplex pivots, warm chain.
    pub warm_pivots: usize,
    /// Max per-point |warm − cold| LP objective delta.
    pub max_objective_delta: f64,
}

/// The full PR-3 measurement set.
#[derive(Debug, Clone)]
pub struct CurvePerfReport {
    /// Host cores (`std::thread::available_parallelism`).
    pub cores: usize,
    /// Timed iterations per point (median taken).
    pub trials: usize,
    /// Engine comparison, ascending size.
    pub engines: Vec<EnginePoint>,
    /// Warm-vs-cold sweep.
    pub sweep: SweepPoint,
}

fn median_ms<T>(trials: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..trials.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Runs every measurement. Sizes shrink under `smoke` (CI).
pub fn measure(trials: usize, smoke: bool) -> CurvePerfReport {
    let node_sizes: &[usize] = if smoke { &[8] } else { &[8, 16, 32] };
    let budget = 16u64;
    let mut engines = Vec::new();
    for &nodes in node_sizes {
        let arc = race_instance(nodes as u64, nodes);
        let tt = expand_two_tuples(&arc);
        let rev = solve_min_makespan_lp_with(&tt, budget, Engine::Revised).expect("LP feasible");
        let flat = solve_min_makespan_lp_with(&tt, budget, Engine::Flat).expect("LP feasible");
        let refr =
            solve_min_makespan_lp_with(&tt, budget, Engine::Reference).expect("LP feasible");
        let objective_delta = (rev.makespan - flat.makespan)
            .abs()
            .max((rev.makespan - refr.makespan).abs())
            .max((flat.makespan - refr.makespan).abs());
        let time = |engine: Engine| {
            median_ms(trials, || {
                solve_bicriteria_with(&arc, budget, 0.5, engine).unwrap()
            })
        };
        engines.push(EnginePoint {
            nodes,
            lp_vars: tt.dag.edge_count() + tt.dag.node_count() - 1,
            revised_ms: time(Engine::Revised),
            flat_ms: time(Engine::Flat),
            reference_ms: time(Engine::Reference),
            pivots_revised: rev.pivots,
            pivots_flat: flat.pivots,
            rows_revised: rev.stats.rows,
            rows_flat: flat.stats.rows,
            bound_cols: rev.stats.bound_cols,
            objective_delta,
        });
    }

    // --- warm-vs-cold sweep on the largest size
    let nodes = *node_sizes.last().expect("non-empty sizes");
    let arc = race_instance(nodes as u64, nodes);
    let tt = expand_two_tuples(&arc);
    let grid: Vec<u64> = (0..16).map(|i| i * 2).collect();
    let warm_res = solve_min_makespan_sweep(&tt, &grid).expect("sweep feasible");
    let cold_res: Vec<_> = grid
        .iter()
        .map(|&b| solve_min_makespan_lp_with(&tt, b, Engine::Revised).expect("LP feasible"))
        .collect();
    let max_objective_delta = warm_res
        .iter()
        .zip(&cold_res)
        .map(|(w, c)| (w.makespan - c.makespan).abs())
        .fold(0.0f64, f64::max);
    let warm_ms = median_ms(trials, || solve_min_makespan_sweep(&tt, &grid).unwrap());
    let cold_ms = median_ms(trials, || {
        grid.iter()
            .map(|&b| solve_min_makespan_lp_with(&tt, b, Engine::Revised).unwrap())
            .collect::<Vec<_>>()
    });
    let sweep = SweepPoint {
        nodes,
        grid: grid.len(),
        cold_ms,
        warm_ms,
        cold_pivots: cold_res.iter().map(|f| f.pivots).sum(),
        warm_pivots: warm_res.iter().map(|f| f.pivots).sum(),
        max_objective_delta,
    };

    CurvePerfReport {
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        trials,
        engines,
        sweep,
    }
}

impl CurvePerfReport {
    /// Renders the machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"rtt-bench/curve-v1\",\n");
        out.push_str("  \"pr\": 3,\n");
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str(
            "  \"note\": \"revised vs flat vs reference measured in the same binary; see crates/bench/src/curve_perf.rs\",\n",
        );
        let rev_total: f64 = self.engines.iter().map(|p| p.revised_ms).sum();
        let flat_total: f64 = self.engines.iter().map(|p| p.flat_ms).sum();
        out.push_str(&format!(
            "  \"bicriteria_thm34_group_speedup_vs_flat\": {:.2},\n",
            flat_total / rev_total.max(1e-9)
        ));
        out.push_str("  \"bicriteria_thm34\": [\n");
        for (i, p) in self.engines.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"nodes\": {}, \"lp_vars\": {}, \"revised_ms\": {:.3}, \"flat_ms\": {:.3}, \"reference_ms\": {:.3}, \"speedup_vs_flat\": {:.2}, \"speedup_vs_reference\": {:.2}, \"pivots_revised\": {}, \"pivots_flat\": {}, \"rows_revised\": {}, \"rows_flat\": {}, \"bound_cols\": {}, \"objective_delta\": {:.2e}}}{}\n",
                p.nodes,
                p.lp_vars,
                p.revised_ms,
                p.flat_ms,
                p.reference_ms,
                p.flat_ms / p.revised_ms.max(1e-9),
                p.reference_ms / p.revised_ms.max(1e-9),
                p.pivots_revised,
                p.pivots_flat,
                p.rows_revised,
                p.rows_flat,
                p.bound_cols,
                p.objective_delta,
                if i + 1 == self.engines.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        let s = &self.sweep;
        out.push_str(&format!(
            "  \"budget_sweep\": {{\"nodes\": {}, \"grid_points\": {}, \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"speedup\": {:.2}, \"cold_pivots\": {}, \"warm_pivots\": {}, \"max_objective_delta\": {:.2e}}}\n",
            s.nodes,
            s.grid,
            s.cold_ms,
            s.warm_ms,
            s.cold_ms / s.warm_ms.max(1e-9),
            s.cold_pivots,
            s.warm_pivots,
            s.max_objective_delta,
        ));
        out.push_str("}\n");
        out
    }

    /// Renders a human-readable summary table.
    pub fn render(&self) -> String {
        let mut t = crate::table::TextTable::new(&[
            "nodes",
            "revised ms",
            "flat ms",
            "reference ms",
            "vs flat",
            "rows (rev/flat)",
            "pivots (rev/flat)",
        ]);
        for p in &self.engines {
            t.row(vec![
                p.nodes.to_string(),
                format!("{:.3}", p.revised_ms),
                format!("{:.3}", p.flat_ms),
                format!("{:.3}", p.reference_ms),
                format!("{:.2}x", p.flat_ms / p.revised_ms.max(1e-9)),
                format!("{}/{}", p.rows_revised, p.rows_flat),
                format!("{}/{}", p.pivots_revised, p.pivots_flat),
            ]);
        }
        let s = &self.sweep;
        format!(
            "==== bench-pr3 (cores = {}, trials = {}) ====\n{}\
             sweep ({} nodes, {} points): warm {:.2} ms vs cold {:.2} ms ({:.2}x); \
             pivots {} vs {}; max objective delta {:.2e}\n",
            self.cores,
            self.trials,
            t.render(),
            s.nodes,
            s.grid,
            s.warm_ms,
            s.cold_ms,
            s.cold_ms / s.warm_ms.max(1e-9),
            s.warm_pivots,
            s.cold_pivots,
            s.max_objective_delta,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measurement_is_consistent_and_serializes() {
        let r = measure(1, true);
        assert!(!r.engines.is_empty());
        for p in &r.engines {
            assert!(p.objective_delta < 1e-9, "engines disagree: {p:?}");
            assert_eq!(
                p.rows_flat,
                p.rows_revised + p.bound_cols,
                "implicit bounds must delete one row per bounded edge: {p:?}"
            );
            assert!(p.bound_cols > 0, "race instances have two-tuple arcs");
        }
        assert!(
            r.sweep.max_objective_delta < 1e-9,
            "warm and cold sweeps must agree: {:?}",
            r.sweep
        );
        assert!(
            r.sweep.warm_pivots < r.sweep.cold_pivots,
            "the warm chain must pivot less: {:?}",
            r.sweep
        );
        let json = r.to_json();
        assert!(json.contains("\"bicriteria_thm34\""));
        assert!(json.contains("\"budget_sweep\""));
        assert!(json.contains("\"cores\""));
        assert!(json.ends_with("}\n"));
        assert!(r.render().contains("bench-pr3"));
    }
}
