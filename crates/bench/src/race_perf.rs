//! The PR-4 baseline: race-derived workloads served end to end, with
//! analytic vs **simulated** tradeoff curves.
//!
//! `repro bench-pr4 [--out PATH] [--smoke]` drives the paper's
//! motivating workload — the racy Figure 3 Parallel-MM, generated from
//! the actual program via `rtt_race` → `rtt_core::from_race` — through
//! the engine's warm-started curve service (the PR-3 path), and checks
//! every analytic point against the §1 execution model:
//!
//! * per budget: the LP envelope, the rounded analytic makespan, and
//!   the **simulated** finish of the reducer-expanded DAG
//!   (`rtt_sim::exec::simulate_works`, Observation 1.1 — the engine's
//!   certificate, surfaced as data);
//! * warm-chain vs independent cold solves: wall and pivot counts, so
//!   the PR-3 reuse claim is re-measured on the new workload;
//! * a fork-join race program where staggered updates **pipeline**: the
//!   simulated curve runs strictly below the analytic one
//!   (`max_pipelining_gain > 0`), showing the certificate is not
//!   vacuous. On Parallel-MM the two coincide — all output cells run in
//!   one parallel layer, which is exactly where Observation 1.1 is
//!   tight.
//!
//! The output lands in `BENCH_pr4.json` at the repo root. Like every
//! bench schema since PR 3 the document records `cores` and `trials`.

use rtt_core::ReducerFamily;
use rtt_engine::{solve_curve, PreparedInstance};
use rtt_lp::Engine;
use std::time::Instant;

/// One budget point: the analytic bound next to the simulated finish.
#[derive(Debug, Clone)]
pub struct RaceCurvePoint {
    /// Budget of this grid point.
    pub budget: u64,
    /// LP relaxation makespan (lower envelope).
    pub lp_makespan: f64,
    /// Rounded analytic makespan (the certified upper bound).
    pub makespan: u64,
    /// Simulated finish of the reducer-expanded DAG (Observation 1.1:
    /// `≤ makespan`).
    pub simulated: u64,
    /// Simplex pivots this point cost on the warm chain.
    pub pivots: usize,
}

/// One workload's measurements.
#[derive(Debug, Clone)]
pub struct RaceWorkload {
    /// Workload name (`parallel-mm-<n>` / `forkjoin-<seed>`).
    pub name: String,
    /// Job count of the instance (arc-form activities).
    pub jobs: usize,
    /// Curve points, in grid order.
    pub points: Vec<RaceCurvePoint>,
    /// Median wall of the warm-chained curve (ms).
    pub warm_ms: f64,
    /// Median wall of the same grid as independent cold solves (ms).
    pub cold_ms: f64,
    /// Total pivots, warm chain.
    pub warm_pivots: usize,
    /// Total pivots, cold grid.
    pub cold_pivots: usize,
    /// Largest `makespan − simulated` over the grid (update pipelining
    /// below the analytic bound).
    pub max_pipelining_gain: u64,
}

/// The full PR-4 measurement set.
#[derive(Debug, Clone)]
pub struct RacePerfReport {
    /// Host cores (`std::thread::available_parallelism`).
    pub cores: usize,
    /// Timed iterations per point (median taken).
    pub trials: usize,
    /// Parallel-MM sweeps, ascending size, then the fork-join workload.
    pub workloads: Vec<RaceWorkload>,
}

fn median_ms<T>(trials: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..trials.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn measure_workload(
    name: String,
    arc: rtt_core::ArcInstance,
    grid: &[u64],
    trials: usize,
) -> RaceWorkload {
    let jobs = arc.dag().edge_count();
    let prep = PreparedInstance::new(arc.clone());
    let curve = solve_curve(&prep, grid, 0.5).expect("race curve LP feasible");
    let points: Vec<RaceCurvePoint> = curve
        .iter()
        .map(|p| {
            let sim = p.sim.expect("race workloads are finite and simulable");
            assert!(
                sim.simulated <= p.makespan,
                "{name}: Observation 1.1 violated at budget {}",
                p.budget
            );
            RaceCurvePoint {
                budget: p.budget,
                lp_makespan: p.lp_makespan,
                makespan: p.makespan,
                simulated: sim.simulated,
                pivots: p.pivots,
            }
        })
        .collect();
    let warm_pivots: usize = points.iter().map(|p| p.pivots).sum();
    // fresh PreparedInstance per timed run: the parked basis must not
    // leak a warm start into the "cold" baseline or double-warm the
    // chain being measured
    let warm_ms = median_ms(trials, || {
        solve_curve(&PreparedInstance::new(arc.clone()), grid, 0.5).unwrap()
    });
    let tt = rtt_core::expand_two_tuples(&arc);
    let cold = |b: u64| {
        let sol = rtt_core::solve_bicriteria_with(&arc, b, 0.5, Engine::Revised).unwrap();
        rtt_engine::certify_solution(&arc, &sol.solution).expect("simulable");
        sol
    };
    let cold_pivots: usize = grid
        .iter()
        .map(|&b| {
            rtt_core::lp_build::solve_min_makespan_lp_with(&tt, b, Engine::Revised)
                .expect("LP feasible")
                .pivots
        })
        .sum();
    let cold_ms = median_ms(trials, || grid.iter().map(|&b| cold(b)).collect::<Vec<_>>());
    let max_pipelining_gain = points
        .iter()
        .map(|p| p.makespan - p.simulated)
        .max()
        .unwrap_or(0);
    RaceWorkload {
        name,
        jobs,
        points,
        warm_ms,
        cold_ms,
        warm_pivots,
        cold_pivots,
        max_pipelining_gain,
    }
}

/// Runs every measurement. Sizes shrink under `smoke` (CI).
pub fn measure(trials: usize, smoke: bool) -> RacePerfReport {
    let mm_sizes: &[u64] = if smoke { &[4] } else { &[4, 8, 12] };
    let mut workloads = Vec::new();
    for &n in mm_sizes {
        let arc = rtt_cli::race_mm_spec(n, ReducerFamily::RecursiveBinary)
            .expect("n ≥ 1")
            .build()
            .expect("race-mm builds");
        // height-1 reducers on every Z cell cost 2n²; sweep past it
        let full = 2 * n * n;
        let step = (full / 8).max(1);
        let grid: Vec<u64> = (0..=full + step).step_by(step as usize).collect();
        workloads.push(measure_workload(format!("parallel-mm-{n}"), arc, &grid, trials));
    }
    // the pipelining witness: staged fork-join contention
    let (fj_seed, fj_stages, fj_width) = if smoke { (5u64, 2, 3) } else { (5u64, 4, 6) };
    let arc = rtt_cli::race_forkjoin_spec(fj_seed, fj_stages, fj_width, 12, ReducerFamily::RecursiveBinary)
        .expect("valid shape")
        .build()
        .expect("race-forkjoin builds");
    let sat = arc.saturation_budget();
    let step = (sat / 8).max(1);
    let grid: Vec<u64> = (0..=sat).step_by(step as usize).collect();
    workloads.push(measure_workload(
        format!("forkjoin-{fj_seed}"),
        arc,
        &grid,
        trials,
    ));

    RacePerfReport {
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        trials,
        workloads,
    }
}

impl RacePerfReport {
    /// Renders the machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"rtt-bench/race-v1\",\n");
        out.push_str("  \"pr\": 4,\n");
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str(
            "  \"note\": \"race-program workloads through the engine curve service; simulated = rtt_sim on the reducer expansion (Observation 1.1); see crates/bench/src/race_perf.rs\",\n",
        );
        let all_hold = self
            .workloads
            .iter()
            .all(|w| w.points.iter().all(|p| p.simulated <= p.makespan));
        out.push_str(&format!("  \"sim_le_bound\": {all_hold},\n"));
        out.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"jobs\": {}, \"grid_points\": {}, \"warm_ms\": {:.3}, \"cold_ms\": {:.3}, \"warm_speedup\": {:.2}, \"warm_pivots\": {}, \"cold_pivots\": {}, \"max_pipelining_gain\": {}, \"curve\": [\n",
                w.name,
                w.jobs,
                w.points.len(),
                w.warm_ms,
                w.cold_ms,
                w.cold_ms / w.warm_ms.max(1e-9),
                w.warm_pivots,
                w.cold_pivots,
                w.max_pipelining_gain,
            ));
            for (j, p) in w.points.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"budget\": {}, \"lp_makespan\": {:.3}, \"makespan\": {}, \"simulated\": {}, \"pivots\": {}}}{}\n",
                    p.budget,
                    p.lp_makespan,
                    p.makespan,
                    p.simulated,
                    p.pivots,
                    if j + 1 == w.points.len() { "" } else { "," }
                ));
            }
            out.push_str(&format!(
                "    ]}}{}\n",
                if i + 1 == self.workloads.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders a human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "==== bench-pr4 (cores = {}, trials = {}) ====\n",
            self.cores, self.trials
        );
        for w in &self.workloads {
            let mut t = crate::table::TextTable::new(&[
                "budget",
                "lp",
                "analytic",
                "simulated",
                "pivots",
            ]);
            for p in &w.points {
                t.row(vec![
                    p.budget.to_string(),
                    format!("{:.2}", p.lp_makespan),
                    p.makespan.to_string(),
                    p.simulated.to_string(),
                    p.pivots.to_string(),
                ]);
            }
            out.push_str(&format!(
                "-- {} ({} jobs): warm {:.2} ms vs cold {:.2} ms ({:.2}x); pivots {} vs {}; max pipelining gain {}\n{}",
                w.name,
                w.jobs,
                w.warm_ms,
                w.cold_ms,
                w.cold_ms / w.warm_ms.max(1e-9),
                w.warm_pivots,
                w.cold_pivots,
                w.max_pipelining_gain,
                t.render(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measurement_is_consistent_and_serializes() {
        let r = measure(1, true);
        assert_eq!(r.workloads.len(), 2, "one MM size + the fork-join witness");
        for w in &r.workloads {
            assert!(!w.points.is_empty());
            for p in &w.points {
                assert!(p.simulated <= p.makespan, "{}: {p:?}", w.name);
            }
            // the LP envelope itself is non-increasing in the budget
            // (the rounded points may wiggle — rounding can overshoot
            // the budget by 1/(1−α), so only the envelope is monotone)
            let mut prev = f64::INFINITY;
            for p in &w.points {
                assert!(p.lp_makespan <= prev + 1e-9, "{}: {p:?}", w.name);
                prev = p.lp_makespan;
            }
            assert!(
                w.warm_pivots <= w.cold_pivots,
                "{}: warm chain must not pivot more",
                w.name
            );
        }
        let fj = r.workloads.last().unwrap();
        assert!(
            fj.max_pipelining_gain > 0,
            "fork-join stagger must pipeline below the analytic bound: {fj:?}"
        );
        let json = r.to_json();
        assert!(json.contains("\"workloads\""));
        assert!(json.contains("\"sim_le_bound\": true"));
        assert!(json.contains("\"cores\""));
        assert!(json.contains("parallel-mm-4"));
        assert!(json.ends_with("}\n"));
        assert!(r.render().contains("bench-pr4"));
    }
}
