//! The PR-5 baseline: the event-heap simulation core against the
//! tick-loop baseline, plus registry-wide certification coverage.
//!
//! `repro bench-pr5 [--out PATH] [--smoke]` measures, in one binary:
//!
//! * **heap vs tick loop** (`rtt_sim::ExecModel::run_event` vs
//!   `run_ticks`, both kept in-tree per the perf-PR protocol) on the
//!   shapes where the engines' complexity classes diverge —
//!   long-makespan chains and high-fanout stars, where the tick loop
//!   pays Θ(makespan · nodes) while the heap pays `O((V+E) log V)` —
//!   and on a realistic reducer expansion (Parallel-MM), where the
//!   makespan is short and the gap is honest but modest. Every timed
//!   pair is checked for *identical* results first;
//! * **certification coverage**: every registry pipeline solved through
//!   the executor must emit an Observation 1.1 `sim_makespan`
//!   certificate — the PR-5 universality claim as a measured count
//!   (9/9), not an assertion in prose.
//!
//! The output lands in `BENCH_pr5.json` at the repo root. Like every
//! bench schema since PR 3 the document records `cores` and `trials`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtt_dag::{gen, Dag};
use rtt_engine::{execute_one, PreparedInstance, Registry, SolveRequest, Status};
use rtt_sim::{ExecModel, UNBOUNDED};
use std::sync::Arc;
use std::time::Instant;

/// One heap-vs-tick measurement group.
#[derive(Debug, Clone)]
pub struct EngineGroup {
    /// Workload name.
    pub name: String,
    /// Cells of the model.
    pub nodes: usize,
    /// Events one heap run processes (cells + update arcs).
    pub events: u64,
    /// Total updates applied (what the tick loop's outer loop spans).
    pub updates: u64,
    /// Simulated finish (identical across engines, asserted).
    pub finish: u64,
    /// Median wall of the event engine (ms).
    pub event_ms: f64,
    /// Median wall of the tick baseline (ms).
    pub tick_ms: f64,
    /// `tick_ms / event_ms`.
    pub speedup: f64,
}

/// One registry pipeline's certification status.
#[derive(Debug, Clone)]
pub struct CoverageRow {
    /// Registry name.
    pub solver: &'static str,
    /// Solution form the report carried (`routed`/`noreuse`/`schedule`).
    pub form: &'static str,
    /// Whether the solved report carried a `sim_makespan` certificate.
    pub certified: bool,
}

/// The full PR-5 measurement set.
#[derive(Debug, Clone)]
pub struct SimPerfReport {
    /// Host cores (`std::thread::available_parallelism`).
    pub cores: usize,
    /// Timed iterations per engine (median taken).
    pub trials: usize,
    /// Heap-vs-tick groups.
    pub groups: Vec<EngineGroup>,
    /// Registered pipelines (from the registry itself, so a pipeline
    /// that never solved a coverage instance shows as a gap, not as a
    /// smaller denominator).
    pub registry_size: usize,
    /// Per-pipeline certification coverage.
    pub coverage: Vec<CoverageRow>,
}

fn median_ms<T>(trials: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..trials.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// A chain of `cells` gated cells of `work` updates each: makespan
/// `cells · work`, but only `2·cells − 1` events.
pub fn long_chain_model(cells: usize, work: u64) -> ExecModel {
    let mut g: Dag<(), ()> = Dag::new();
    let mut prev = g.add_node(());
    let mut works = vec![work];
    for _ in 1..cells {
        let v = g.add_node(());
        g.add_edge(prev, v, ()).unwrap();
        works.push(work);
        prev = v;
    }
    ExecModel::from_works(&g, &works)
}

/// `fanout` sources racing on one hub cell (the §1 lock shape): the
/// tick loop rescans all `fanout + 1` cells for each of the `fanout`
/// ticks the hub serializes — Θ(fanout²) — while the heap processes
/// `2·fanout + 1` events.
pub fn fanout_star_model(fanout: usize) -> ExecModel {
    let mut g: Dag<(), ()> = Dag::new();
    let hub = g.add_node(());
    for _ in 0..fanout {
        let s = g.add_node(());
        g.add_edge(s, hub, ()).unwrap();
    }
    ExecModel::race_dag(&g)
}

/// The reducer expansion of n×n Parallel-MM with height-`h` reducers on
/// every output cell — the certify-path shape at realistic (short)
/// makespans.
pub fn mm_expansion_model(n: usize, h: u32) -> ExecModel {
    rtt_sim::parallel_mm::expansion_model(n, h).1
}

fn measure_group(name: &str, model: ExecModel, trials: usize) -> EngineGroup {
    let event = model.run_event();
    let ticks = model.run_ticks(UNBOUNDED);
    assert_eq!(event, ticks, "{name}: engines disagree");
    let event_ms = median_ms(trials, || model.run_event());
    let tick_ms = median_ms(trials, || model.run_ticks(UNBOUNDED));
    EngineGroup {
        name: name.to_string(),
        nodes: model.node_count(),
        events: model.event_count(),
        updates: model.update_count(),
        finish: event.finish,
        event_ms,
        tick_ms,
        speedup: tick_ms / event_ms.max(1e-9),
    }
}

/// Runs the registry over instances that together exercise all nine
/// pipelines, recording whether each solved report certified.
fn measure_coverage() -> Vec<CoverageRow> {
    let registry = Registry::standard();
    let mut rows: Vec<CoverageRow> = Vec::new();
    let instances: Vec<rtt_core::ArcInstance> = {
        let mut v = Vec::new();
        for family in [
            rtt_core::ReducerFamily::RecursiveBinary,
            rtt_core::ReducerFamily::KWay,
        ] {
            let mut rng = StdRng::seed_from_u64(17);
            let race = gen::random_race_dag(&mut rng, 6, 8);
            let inst =
                rtt_core::Instance::race_dag(&race.dag, |w| family.duration(w)).unwrap();
            v.push(rtt_core::to_arc_form(&inst).0);
            let mut rng = StdRng::seed_from_u64(23);
            let sp = gen::random_sp(&mut rng, 5).tt;
            let inst =
                rtt_core::Instance::race_dag(&sp.dag, |w| family.duration(w)).unwrap();
            v.push(rtt_core::to_arc_form(&inst).0);
        }
        v
    };
    for (i, arc) in instances.into_iter().enumerate() {
        let prep = Arc::new(PreparedInstance::new(arc));
        let req = SolveRequest::min_makespan(format!("cov-{i}"), prep, 4);
        for report in execute_one(&registry, &req, Instant::now()) {
            if report.status != Status::Solved {
                continue;
            }
            // a pipeline counts as certified if ANY of its solved
            // reports carried a certificate (a single skipped
            // simulation must not mask certification elsewhere)
            if let Some(row) = rows.iter_mut().find(|r| r.solver == report.solver) {
                row.certified |= report.sim.is_some();
                continue;
            }
            let form = registry
                .get(report.solver)
                .expect("report names a registered solver")
                .solution_form()
                .as_str();
            rows.push(CoverageRow {
                solver: report.solver,
                form,
                certified: report.sim.is_some(),
            });
        }
    }
    // report in registry order
    let order = registry.names();
    rows.sort_by_key(|r| order.iter().position(|&n| n == r.solver));
    rows
}

/// Runs every measurement. Sizes shrink under `smoke` (CI).
pub fn measure(trials: usize, smoke: bool) -> SimPerfReport {
    let (chain_cells, chain_work) = if smoke { (16, 1_000) } else { (64, 20_000) };
    let fanout = if smoke { 800 } else { 6_000 };
    let (mm_n, mm_h) = if smoke { (6, 1) } else { (16, 2) };
    let groups = vec![
        measure_group(
            &format!("long-chain-{chain_cells}x{chain_work}"),
            long_chain_model(chain_cells, chain_work),
            trials,
        ),
        measure_group(
            &format!("fanout-star-{fanout}"),
            fanout_star_model(fanout),
            trials,
        ),
        measure_group(
            &format!("parallel-mm-{mm_n}-h{mm_h}"),
            mm_expansion_model(mm_n, mm_h),
            trials,
        ),
    ];
    SimPerfReport {
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        trials,
        groups,
        registry_size: Registry::standard().len(),
        coverage: measure_coverage(),
    }
}

impl SimPerfReport {
    /// Pipelines whose reports certified.
    pub fn certified_count(&self) -> usize {
        self.coverage.iter().filter(|r| r.certified).count()
    }

    /// Renders the machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"rtt-bench/sim-v1\",\n");
        out.push_str("  \"pr\": 5,\n");
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str(
            "  \"note\": \"event-heap vs tick-loop simulation core (same binary, results asserted identical) + registry certification coverage; see crates/bench/src/sim_perf.rs\",\n",
        );
        out.push_str(&format!(
            "  \"registry_size\": {},\n  \"certified_solvers\": {},\n",
            self.registry_size,
            self.certified_count()
        ));
        out.push_str("  \"groups\": [\n");
        for (i, g) in self.groups.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"nodes\": {}, \"events\": {}, \"updates\": {}, \"finish\": {}, \"event_ms\": {:.3}, \"tick_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
                g.name,
                g.nodes,
                g.events,
                g.updates,
                g.finish,
                g.event_ms,
                g.tick_ms,
                g.speedup,
                if i + 1 == self.groups.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"coverage\": [\n");
        for (i, r) in self.coverage.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"solver\": \"{}\", \"form\": \"{}\", \"certified\": {}}}{}\n",
                r.solver,
                r.form,
                r.certified,
                if i + 1 == self.coverage.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders a human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "==== bench-pr5 (cores = {}, trials = {}) ====\n",
            self.cores, self.trials
        );
        let mut t = crate::table::TextTable::new(&[
            "workload", "nodes", "events", "updates", "finish", "event ms", "tick ms", "speedup",
        ]);
        for g in &self.groups {
            t.row(vec![
                g.name.clone(),
                g.nodes.to_string(),
                g.events.to_string(),
                g.updates.to_string(),
                g.finish.to_string(),
                format!("{:.3}", g.event_ms),
                format!("{:.3}", g.tick_ms),
                format!("{:.2}x", g.speedup),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "certification coverage: {}/{} pipelines emit sim_makespan (",
            self.certified_count(),
            self.registry_size
        ));
        out.push_str(
            &self
                .coverage
                .iter()
                .map(|r| format!("{}:{}", r.solver, r.form))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str(")\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measurement_is_consistent_and_serializes() {
        let r = measure(1, true);
        assert_eq!(r.groups.len(), 3);
        for g in &r.groups {
            assert!(g.events > 0 && g.updates > 0 && g.finish > 0, "{g:?}");
        }
        // the asymptotic gap is asserted on *counters*, not wall-clock
        // (the perf_guard convention — a preempted microsecond sample
        // must not fail the suite): the shapes are built so the tick
        // loop's work, makespan × nodes, dwarfs the heap's event count
        let chain = &r.groups[0];
        assert!(
            chain.finish * chain.nodes as u64 > 1_000 * chain.events,
            "long-chain tick work no longer dwarfs the event count: {chain:?}"
        );
        let star = &r.groups[1];
        assert!(
            star.finish * star.nodes as u64 > 10 * star.events,
            "fanout-star tick work no longer dwarfs the event count: {star:?}"
        );
        // universality: every registered pipeline solved AND certified
        assert_eq!(r.registry_size, Registry::standard().len());
        assert_eq!(r.coverage.len(), r.registry_size, "{:?}", r.coverage);
        assert_eq!(r.certified_count(), r.registry_size, "{:?}", r.coverage);
        let json = r.to_json();
        assert!(json.contains("\"groups\""));
        assert!(json.contains("\"certified_solvers\": 9"));
        assert!(json.contains("\"cores\""));
        assert!(json.contains("long-chain"));
        assert!(json.ends_with("}\n"));
        assert!(r.render().contains("bench-pr5"));
    }
}
