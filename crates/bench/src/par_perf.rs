//! The PR-10 intra-solve parallelism baseline: machine-readable
//! evidence that the deterministic parallel paths — chunked pricing in
//! `rtt_lp::revised`, subtree-parallel SP-DP in `rtt_core::sp_dp`, and
//! sharded certification replay in `rtt_sim` — never move a wire byte,
//! plus honest wall-clock numbers for what they cost and buy.
//!
//! `repro bench-pr10 [--out PATH] [--smoke]` measures, **in the same
//! binary**, over a mixed corpus (pricing-heavy race instances and
//! SP-DP-heavy series-parallel instances, as single solves, min-resource
//! searches, and `budgets` sweeps):
//!
//! * **byte identity first** — the batch NDJSON stream is asserted
//!   identical across intra-solve threads {1, 2, 4} × batch workers
//!   {1, 2} *before any number below is recorded*; no timing is
//!   reported from a configuration whose bytes were not proven equal;
//! * **serial baseline** — the untouched serial path (`intra_threads`
//!   unset, no chunking), through the real executor;
//! * **1-thread overhead bound** — the same solves down the chunked
//!   parallel path with forced chunking and one thread (no workers
//!   spawned): the pure bookkeeping cost of chunk/scatter/ordered-fold,
//!   which the acceptance gate bounds at ~5% over serial;
//! * **2/4-thread walls** — the parallel path with real scoped workers.
//!
//! Scaling claims gate on `cores > 1`: on a 1-core host the 2/4-thread
//! walls only bound oversubscription overhead (they are expected to be
//! ≥ the serial wall there), while the forced-chunking run is the
//! meaningful overhead bound. The report records `cores` so readers
//! can tell which regime produced the numbers.

use crate::perf::{race_instance, sp_instance};
use rtt_cli::spec::InstanceSpec;
use rtt_engine::{execute_one, run_batch_cached, PrepCache, Registry};
use std::time::Instant;

/// The mixed corpus: per base, a pricing-heavy race solve, an SP solve
/// (large enough in the full run that the SP-DP frontier actually
/// splits), a min-resource search, and a `budgets` sweep — every wire
/// form the executor can emit, all certification-replayed.
fn corpus(n_bases: usize, big_sp: bool) -> String {
    let mut lines = Vec::with_capacity(4 * n_bases);
    for i in 0..n_bases {
        let race = InstanceSpec::from_arc(&race_instance(3000 + i as u64, 8 + i % 5))
            .to_json()
            .compact();
        // one base carries a deep SP instance so `solve_sp_tree_par`'s
        // frontier split (>= 64-node subtrees) genuinely fires
        let leaves = if big_sp && i == 0 { 96 } else { 5 + i % 7 };
        let sp = InstanceSpec::from_arc(&sp_instance(3000 + i as u64, leaves))
            .to_json()
            .compact();
        lines.push(format!(
            r#"{{"id":"r{i}-mm","instance":{race},"budget":{}}}"#,
            2 + i % 6
        ));
        lines.push(format!(
            r#"{{"id":"s{i}-mm","instance":{sp},"budget":{}}}"#,
            2 + i % 6
        ));
        lines.push(format!(
            r#"{{"id":"r{i}-mr","instance":{race},"target":{}}}"#,
            3 + i % 4
        ));
        lines.push(format!(
            r#"{{"id":"s{i}-sw","instance":{sp},"budgets":[0,2,4,6]}}"#
        ));
    }
    lines.join("\n")
}

/// One batch run through the real CLI pipeline with an explicit
/// intra-solve thread count on every request (exactly what
/// `rtt batch --solve-threads N` does). Returns the rendered NDJSON.
fn render_batch(corpus: &str, workers: usize, intra: Option<usize>) -> String {
    let registry = Registry::standard();
    let cache = PrepCache::with_capacity(256);
    let mut requests = rtt_cli::batch::build_requests(corpus, &cache, None, &registry)
        .expect("corpus parses");
    if let Some(n) = intra {
        for req in &mut requests {
            req.intra_threads = Some(n);
        }
    }
    let out = run_batch_cached(&registry, requests, workers, None);
    let mut rendered = String::new();
    for r in &out.reports {
        rendered.push_str(&rtt_cli::report_line(r));
        rendered.push('\n');
    }
    rendered
}

/// Wall (ms) of solving the whole corpus on the calling thread —
/// which is what lets `rtt_par::with_forced_chunking` /
/// `rtt_par::with_threads` scopes reach the solves (they are
/// thread-local by design; batch workers would not inherit them).
fn solve_wall(corpus: &str) -> f64 {
    let registry = Registry::standard();
    let cache = PrepCache::with_capacity(256);
    let requests = rtt_cli::batch::build_requests(corpus, &cache, None, &registry)
        .expect("corpus parses");
    let started = Instant::now();
    for req in &requests {
        std::hint::black_box(execute_one(&registry, req, Instant::now()));
    }
    started.elapsed().as_secs_f64() * 1e3
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The full PR-10 measurement set.
#[derive(Debug, Clone)]
pub struct ParPerfReport {
    /// Host cores as `rtt_par` sees them (`available_parallelism`).
    pub cores: usize,
    /// Timed iterations per point (median taken).
    pub trials: usize,
    /// Base instances in the corpus.
    pub bases: usize,
    /// Request lines in the corpus.
    pub requests: usize,
    /// Whether the batch NDJSON stream was identical across intra-solve
    /// threads {1, 2, 4} × batch workers {1, 2} — asserted in-binary
    /// *before* any wall below was recorded.
    pub byte_identical: bool,
    /// Median wall (ms) of the serial path (no chunking, no workers).
    pub serial_wall_ms: f64,
    /// Median wall (ms) of the chunked path at 1 thread (forced
    /// chunking, no workers spawned) — the parallel-path overhead.
    pub forced_wall_ms: f64,
    /// `forced_wall_ms / serial_wall_ms` (acceptance bound ~1.05).
    pub overhead_ratio: f64,
    /// Median wall (ms) at 2 intra-solve threads (real scoped workers).
    pub par2_wall_ms: f64,
    /// Median wall (ms) at 4 intra-solve threads.
    pub par4_wall_ms: f64,
    /// `serial_wall_ms / par2_wall_ms` — only meaningful when
    /// `cores > 1`.
    pub speedup_2t: f64,
    /// `serial_wall_ms / par4_wall_ms` — only meaningful when
    /// `cores > 1`.
    pub speedup_4t: f64,
}

/// Runs every measurement. Sizes shrink under `smoke` (CI).
pub fn measure(trials: usize, smoke: bool) -> ParPerfReport {
    let n_bases = if smoke { 3 } else { 8 };
    let corpus = corpus(n_bases, !smoke);

    // the byte-identity grid comes FIRST: no wall is reported from a
    // configuration whose bytes were not proven equal
    let baseline = render_batch(&corpus, 1, None);
    let mut byte_identical = true;
    for intra in [1usize, 2, 4] {
        for workers in [1usize, 2] {
            byte_identical &= render_batch(&corpus, workers, Some(intra)) == baseline;
        }
    }
    assert!(
        byte_identical,
        "intra-solve thread grid changed the batch wire bytes"
    );

    let mut serial_walls = Vec::new();
    let mut forced_walls = Vec::new();
    let mut par2_walls = Vec::new();
    let mut par4_walls = Vec::new();
    for _ in 0..trials.max(1) {
        serial_walls.push(solve_wall(&corpus));
        forced_walls.push(rtt_par::with_forced_chunking(|| solve_wall(&corpus)));
        par2_walls.push(rtt_par::with_threads(2, || solve_wall(&corpus)));
        par4_walls.push(rtt_par::with_threads(4, || solve_wall(&corpus)));
    }

    let serial_wall_ms = median(&mut serial_walls);
    let forced_wall_ms = median(&mut forced_walls);
    let par2_wall_ms = median(&mut par2_walls);
    let par4_wall_ms = median(&mut par4_walls);
    ParPerfReport {
        cores: rtt_par::available(),
        trials: trials.max(1),
        bases: n_bases,
        requests: corpus.lines().count(),
        byte_identical,
        serial_wall_ms,
        forced_wall_ms,
        overhead_ratio: forced_wall_ms / serial_wall_ms.max(1e-9),
        par2_wall_ms,
        par4_wall_ms,
        speedup_2t: serial_wall_ms / par2_wall_ms.max(1e-9),
        speedup_4t: serial_wall_ms / par4_wall_ms.max(1e-9),
    }
}

impl ParPerfReport {
    /// Renders the machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"rtt-bench/par-v1\",\n");
        out.push_str("  \"pr\": 10,\n");
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str(
            "  \"note\": \"byte_identical covers intra-solve threads 1/2/4 x batch workers 1/2 and is asserted in-binary before any wall is recorded; scaling claims gate on cores > 1 — on a 1-core host the 2/4-thread walls only bound oversubscription overhead, and the forced-chunking run is the meaningful bound on the parallel path's 1-thread overhead (crates/bench/src/par_perf.rs)\",\n",
        );
        out.push_str(&format!(
            "  \"corpus\": {{\"bases\": {}, \"requests\": {}}},\n",
            self.bases, self.requests
        ));
        out.push_str(&format!(
            "  \"byte_identical\": {},\n",
            self.byte_identical
        ));
        out.push_str(&format!(
            "  \"serial\": {{\"wall_ms\": {:.3}}},\n",
            self.serial_wall_ms
        ));
        out.push_str(&format!(
            "  \"forced_chunking_1t\": {{\"wall_ms\": {:.3}, \"overhead_ratio\": {:.4}}},\n",
            self.forced_wall_ms, self.overhead_ratio
        ));
        out.push_str(&format!(
            "  \"threads_2\": {{\"wall_ms\": {:.3}, \"speedup\": {:.3}}},\n",
            self.par2_wall_ms, self.speedup_2t
        ));
        out.push_str(&format!(
            "  \"threads_4\": {{\"wall_ms\": {:.3}, \"speedup\": {:.3}}}\n",
            self.par4_wall_ms, self.speedup_4t
        ));
        out.push_str("}\n");
        out
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "==== bench-pr10 (cores = {}, corpus = {} requests over {} bases) ====\n\
             byte-identical across intra-solve threads 1/2/4 x batch workers 1/2: {}\n\
             serial path:            {:.1} ms\n\
             chunked path, 1 thread: {:.1} ms ({:.2}x serial — the overhead bound)\n\
             2 intra-solve threads:  {:.1} ms ({:.2}x speedup)\n\
             4 intra-solve threads:  {:.1} ms ({:.2}x speedup)\n\
             (speedups are only meaningful when cores > 1)\n",
            self.cores,
            self.requests,
            self.bases,
            self.byte_identical,
            self.serial_wall_ms,
            self.forced_wall_ms,
            self.overhead_ratio,
            self.par2_wall_ms,
            self.speedup_2t,
            self.par4_wall_ms,
            self.speedup_4t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measure_is_byte_identical_and_well_formed() {
        let report = measure(1, true);
        assert!(report.byte_identical);
        assert!(report.requests >= 12);
        let json = report.to_json();
        let doc = rtt_cli::json::Json::parse(&json).expect("emits valid JSON");
        for field in ["schema", "pr", "cores", "trials", "byte_identical"] {
            assert!(doc.get(field).is_some(), "missing uniform field {field}");
        }
    }
}
