//! The PR-8 wire-sweep + persistence baseline: machine-readable
//! evidence that the delta tier serves real batch traffic and survives
//! restarts.
//!
//! `repro bench-pr8 [--out PATH] [--smoke]` measures, **in the same
//! binary**, over a sweep-heavy redundant corpus (each base appears as
//! a `budgets` sweep line, its exact duplicate, and a relabeling)
//! flowing through the real batch path (parse → prep cache → executor
//! → rendered NDJSON):
//!
//! * **cold batch** — the same curve points requested as independent
//!   per-point `budget` lines, cache off: what serving a sweep cost
//!   before the wire learned the `budgets` field;
//! * **wire sweep** — the sweep corpus, cache off: one self-contained
//!   chained delta session per line (crash start, then per-point dual
//!   reoptimization), with full per-point certification;
//! * **warm restart** — the sweep corpus primed with the reuse cache
//!   on, spilled to a `rtt-cache-v1` file, then served by a *fresh*
//!   cache loaded from that file: the loaded solution tier must answer
//!   at least half the corpus (it answers all of it — duplicates and
//!   relabelings share the canonical key).
//!
//! Before any number is reported, the byte-identity grid is asserted
//! in-binary: the sweep corpus's NDJSON stream is identical across
//! cache {off, on} × {no spill, loaded spill} × 1/2/4/8 threads.
//! The pinned chain-pivot count for `race_instance(16, 16)` over the
//! 0..16 grid is also recorded as the CI envelope evidence
//! (`crates/bench/tests/perf_guard.rs` enforces the [20, 300] window).

use crate::perf::race_instance;
use rtt_cli::spec::{EdgeSpec, InstanceSpec};
use rtt_engine::{
    persist, run_batch_cached, PrepCache, PreparedInstance, Registry, ReuseCache, ReuseStats,
    SolveRequest,
};
use std::path::PathBuf;
use std::time::Instant;

/// A node/arc relabeling of `spec` (same instance up to isomorphism,
/// different document), deterministic in `seed`. Self-contained
/// SplitMix64 Fisher–Yates, like `reuse_perf`'s.
fn relabel(spec: &InstanceSpec, seed: u64) -> InstanceSpec {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let n = spec.nodes.len();
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    let mut edges: Vec<EdgeSpec> = spec
        .edges
        .iter()
        .map(|e| EdgeSpec {
            src: perm[e.src],
            dst: perm[e.dst],
            duration: e.duration.clone(),
            label: e.label.clone(),
        })
        .collect();
    for i in (1..edges.len()).rev() {
        edges.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    InstanceSpec {
        form: spec.form,
        nodes: spec.nodes.clone(),
        edges,
    }
}

/// The budget grid every sweep in the corpus uses.
fn grid(len: u64) -> Vec<u64> {
    (0..len).map(|i| i * 2).collect()
}

/// The sweep corpus: each base contributes its sweep, an exact
/// duplicate, and a relabeled twin — all answerable from one cached
/// report vector.
fn sweep_corpus(n_bases: usize, grid_len: u64) -> String {
    let g: Vec<String> = grid(grid_len).iter().map(u64::to_string).collect();
    let g = format!("[{}]", g.join(","));
    let mut lines = Vec::with_capacity(3 * n_bases);
    for i in 0..n_bases {
        let spec = InstanceSpec::from_arc(&race_instance(2000 + i as u64, 6 + i % 5));
        let doc = spec.to_json().compact();
        let rel = relabel(&spec, i as u64).to_json().compact();
        lines.push(format!(
            r#"{{"id":"s{i}-orig","instance":{doc},"budgets":{g}}}"#
        ));
        lines.push(format!(
            r#"{{"id":"s{i}-dup","instance":{doc},"budgets":{g}}}"#
        ));
        lines.push(format!(
            r#"{{"id":"s{i}-rel","instance":{rel},"budgets":{g}}}"#
        ));
    }
    lines.join("\n")
}

/// The cold comparator: the *same* curve points as independent
/// per-point `budget` lines (what a sweep cost before PR 8 made the
/// chain wire-reachable).
fn pointwise_corpus(n_bases: usize, grid_len: u64) -> String {
    let mut lines = Vec::new();
    for i in 0..n_bases {
        let spec = InstanceSpec::from_arc(&race_instance(2000 + i as u64, 6 + i % 5));
        let doc = spec.to_json().compact();
        let rel = relabel(&spec, i as u64).to_json().compact();
        for (tag, body) in [("orig", &doc), ("dup", &doc), ("rel", &rel)] {
            for b in grid(grid_len) {
                lines.push(format!(
                    r#"{{"id":"s{i}-{tag}-b{b}","instance":{body},"budget":{b},"solver":"bicriteria"}}"#
                ));
            }
        }
    }
    lines.join("\n")
}

/// One batch run through the real CLI pipeline. `spill`: a
/// `rtt-cache-v1` file to pre-load into a fresh reuse cache (implies
/// the cache is on, as the CLI flags do). Returns the NDJSON stream,
/// the wall time (ms), the summed per-report `work` (simplex pivots on
/// the wire), and the reuse stats.
fn run_once(
    corpus: &str,
    threads: usize,
    cached: bool,
    spill: Option<&PathBuf>,
) -> (String, f64, u64, Option<ReuseStats>) {
    let registry = Registry::standard();
    let cache = PrepCache::with_capacity(1024);
    let reuse = (cached || spill.is_some()).then(|| ReuseCache::new(1024));
    if let (Some(path), Some(reuse)) = (spill, &reuse) {
        persist::load(reuse, path, &registry).expect("spill loads");
    }
    let requests = rtt_cli::batch::build_requests(corpus, &cache, None, &registry)
        .expect("corpus parses");
    let started = Instant::now();
    let out = run_batch_cached(&registry, requests, threads, reuse.as_ref());
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let mut rendered = String::new();
    let mut pivots = 0u64;
    for r in &out.reports {
        pivots += r.work;
        rendered.push_str(&rtt_cli::report_line(r));
        rendered.push('\n');
    }
    (rendered, wall_ms, pivots, reuse.map(|c| c.stats()))
}

/// The pinned chain-pivot evidence behind the CI envelope: the summed
/// per-point `work` of the wire sweep on `race_instance(16, 16)` over
/// the 0..16 grid — the PR-3 warm-sweep guard's exact grid, so the two
/// counters are comparable (deterministic — a pure function of the
/// request).
pub fn pinned_chain_pivots() -> u64 {
    let registry = Registry::standard();
    let prep = std::sync::Arc::new(PreparedInstance::new(race_instance(16, 16)));
    let req = SolveRequest::sweep("pin", prep, (0..16).collect());
    rtt_engine::execute_one(&registry, &req, Instant::now())
        .iter()
        .map(|r| r.work)
        .sum()
}

/// The full PR-8 measurement set.
#[derive(Debug, Clone)]
pub struct SweepPerfReport {
    /// Host cores (`std::thread::available_parallelism`).
    pub cores: usize,
    /// Timed iterations per point (median taken).
    pub trials: usize,
    /// Base instances in the corpus.
    pub bases: usize,
    /// Grid points per sweep.
    pub grid_len: usize,
    /// Lines in the sweep corpus (3 × bases).
    pub sweep_requests: usize,
    /// Lines in the per-point cold comparator corpus.
    pub point_requests: usize,
    /// Whether the sweep NDJSON stream was identical across cache
    /// {off, on} × {no spill, loaded spill} × 1/2/4/8 threads —
    /// asserted in-binary *before* any number below was recorded.
    pub byte_identical: bool,
    /// Median wall (ms) of the per-point cold comparator, 1 thread.
    pub cold_wall_ms: f64,
    /// Summed wire pivots of the per-point comparator.
    pub cold_pivots: u64,
    /// Median wall (ms) of the wire-sweep corpus, cache off, 1 thread.
    pub wire_wall_ms: f64,
    /// Summed wire pivots of the wire-sweep corpus.
    pub wire_pivots: u64,
    /// `cold_wall_ms / wire_wall_ms`.
    pub wall_speedup: f64,
    /// Median wall (ms) of the warm restart (fresh cache, loaded spill).
    pub restart_wall_ms: f64,
    /// Reuse stats of the warm-restart run.
    pub restart: ReuseStats,
    /// Fraction of the restart corpus served from the loaded tier.
    pub restart_hit_rate: f64,
    /// The pinned chain pivots (CI envelope evidence, window [20, 300]).
    pub pinned_pivots: u64,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Runs every measurement. Sizes shrink under `smoke` (CI).
pub fn measure(trials: usize, smoke: bool) -> SweepPerfReport {
    let n_bases = if smoke { 6 } else { 24 };
    let grid_len = if smoke { 5u64 } else { 9 };
    let sweeps = sweep_corpus(n_bases, grid_len);
    let points = pointwise_corpus(n_bases, grid_len);

    // prime + spill once: the restart runs load this file
    let spill = std::env::temp_dir().join(format!("rtt-bench-pr8-{}.cache", std::process::id()));
    {
        let registry = Registry::standard();
        let cache = PrepCache::with_capacity(1024);
        let reuse = ReuseCache::new(1024);
        let requests = rtt_cli::batch::build_requests(&sweeps, &cache, None, &registry)
            .expect("corpus parses");
        run_batch_cached(&registry, requests, 1, Some(&reuse));
        persist::save(&reuse, &spill).expect("spill saves");
    }

    // the byte-identity grid comes FIRST: no number is reported from a
    // configuration whose bytes were not proven equal
    let (baseline, _, _, _) = run_once(&sweeps, 1, false, None);
    let mut byte_identical = true;
    for threads in [1usize, 2, 4, 8] {
        for (cached, load) in [(false, false), (true, false), (true, true)] {
            let spill_ref = load.then_some(&spill);
            let (rendered, _, _, _) = run_once(&sweeps, threads, cached, spill_ref);
            byte_identical &= rendered == baseline;
        }
    }
    assert!(
        byte_identical,
        "cache/spill/thread grid changed the sweep wire bytes"
    );

    let mut cold_walls = Vec::new();
    let mut wire_walls = Vec::new();
    let mut restart_walls = Vec::new();
    let mut cold_pivots = 0;
    let mut wire_pivots = 0;
    let mut restart = ReuseStats::default();
    for _ in 0..trials.max(1) {
        let (_, wall, pivots, _) = run_once(&points, 1, false, None);
        cold_walls.push(wall);
        cold_pivots = pivots;
        let (_, wall, pivots, _) = run_once(&sweeps, 1, false, None);
        wire_walls.push(wall);
        wire_pivots = pivots;
        let (_, wall, _, stats) = run_once(&sweeps, 1, false, Some(&spill));
        restart_walls.push(wall);
        restart = stats.expect("restart run has reuse stats");
    }
    std::fs::remove_file(&spill).ok();

    let sweep_requests = sweeps.lines().count();
    let cold_wall_ms = median(&mut cold_walls);
    let wire_wall_ms = median(&mut wire_walls);
    SweepPerfReport {
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        trials: trials.max(1),
        bases: n_bases,
        grid_len: grid_len as usize,
        sweep_requests,
        point_requests: points.lines().count(),
        byte_identical,
        cold_wall_ms,
        cold_pivots,
        wire_wall_ms,
        wire_pivots,
        wall_speedup: cold_wall_ms / wire_wall_ms.max(1e-9),
        restart_wall_ms: median(&mut restart_walls),
        restart_hit_rate: restart.solution_hits as f64 / sweep_requests.max(1) as f64,
        restart,
        pinned_pivots: pinned_chain_pivots(),
    }
}

impl SweepPerfReport {
    /// Renders the machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"rtt-bench/sweep-v1\",\n");
        out.push_str("  \"pr\": 8,\n");
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str(
            "  \"note\": \"cold per-point comparator, wire-sweep chain, and spilled-cache warm restart run the same curve points in the same binary; byte_identical covers cache off/on x no-spill/loaded-spill x 1/2/4/8 threads and is asserted before any number is recorded (crates/bench/src/sweep_perf.rs)\",\n",
        );
        out.push_str(&format!(
            "  \"corpus\": {{\"bases\": {}, \"grid_len\": {}, \"sweep_requests\": {}, \"point_requests\": {}}},\n",
            self.bases, self.grid_len, self.sweep_requests, self.point_requests
        ));
        out.push_str(&format!(
            "  \"byte_identical\": {},\n",
            self.byte_identical
        ));
        out.push_str(&format!(
            "  \"cold\": {{\"wall_ms\": {:.3}, \"pivots\": {}}},\n",
            self.cold_wall_ms, self.cold_pivots
        ));
        out.push_str(&format!(
            "  \"wire_sweep\": {{\"wall_ms\": {:.3}, \"pivots\": {}, \"wall_speedup\": {:.2}}},\n",
            self.wire_wall_ms, self.wire_pivots, self.wall_speedup
        ));
        out.push_str(&format!(
            "  \"warm_restart\": {{\"wall_ms\": {:.3}, \"solution_hits\": {}, \"solution_misses\": {}, \"hit_rate\": {:.3}, \"pivots_saved\": {}}},\n",
            self.restart_wall_ms,
            self.restart.solution_hits,
            self.restart.solution_misses,
            self.restart_hit_rate,
            self.restart.pivots_saved,
        ));
        out.push_str(&format!(
            "  \"pinned_chain\": {{\"instance\": \"race_instance(16, 16)\", \"grid\": \"0..16\", \"pivots\": {}, \"envelope\": [20, 300]}}\n",
            self.pinned_pivots
        ));
        out.push_str("}\n");
        out
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "==== bench-pr8 (cores = {}, corpus = {} sweeps x {} points over {} bases) ====\n\
             byte-identical across cache off/on x no-spill/loaded-spill x 1/2/4/8 threads: {}\n\
             cold per-point ({} lines): {:.1} ms, {} pivots\n\
             wire sweep 1t: {:.1} ms, {} pivots ({:.2}x wall vs cold)\n\
             warm restart from spill: {:.1} ms, {}/{} solution hits ({:.0}% of corpus), {} pivots saved\n\
             pinned chain race_instance(16,16) 0..16: {} pivots (envelope [20, 300])\n",
            self.cores,
            self.sweep_requests,
            self.grid_len,
            self.bases,
            self.byte_identical,
            self.point_requests,
            self.cold_wall_ms,
            self.cold_pivots,
            self.wire_wall_ms,
            self.wire_pivots,
            self.wall_speedup,
            self.restart_wall_ms,
            self.restart.solution_hits,
            self.restart.solution_hits + self.restart.solution_misses,
            self.restart_hit_rate * 100.0,
            self.restart.pivots_saved,
            self.pinned_pivots,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measurement_is_consistent_and_serializes() {
        let r = measure(1, true);
        assert!(r.byte_identical, "caches and spills must never change bytes");
        assert!(
            r.wire_pivots < r.cold_pivots,
            "the chained sweep ({}) must beat per-point cold ({}) on pivots",
            r.wire_pivots,
            r.cold_pivots
        );
        assert!(
            r.restart_hit_rate >= 0.5,
            "the loaded tier must serve at least half the corpus: {:?}",
            r.restart
        );
        assert!(
            (20..=300).contains(&r.pinned_pivots),
            "pinned chain pivots {} outside the CI envelope",
            r.pinned_pivots
        );
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"rtt-bench/sweep-v1\""));
        assert!(json.contains("\"byte_identical\": true"));
        assert!(json.ends_with("}\n"));
        assert!(r.render().contains("bench-pr8"));
    }
}
