//! The PR-1 perf baseline: machine-readable evidence for the two
//! hot-path overhauls (flat-tableau simplex, `O(mB)` SP-DP merge).
//!
//! `repro bench-pr1 [--out PATH]` measures, **in the same binary**:
//!
//! * the `bicriteria_thm34` pipeline (LP 6–10 → α-rounding → min-flow)
//!   under the flat simplex vs. the frozen pre-rewrite reference engine,
//!   with per-size simplex pivot counts;
//! * the §3.4 series-parallel DP under the monotone two-pointer merge
//!   vs. the retained naive `O(B²)` scan, with cell / merge-step
//!   counters certifying the `O(mB)` work bound.
//!
//! The output lands in `BENCH_pr1.json` (committed at the repo root) so
//! every future perf PR has a trajectory to beat. All instances are
//! seeded and identical to the criterion groups in `benches/solvers.rs`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtt_core::instance::{Activity, ArcInstance};
use rtt_core::sp_dp::{solve_sp_tree_naive, solve_sp_tree_with_stats, SpDpStats};
use rtt_core::transform::{expand_two_tuples, to_arc_form};
use rtt_core::{solve_bicriteria_with, Instance};
use rtt_dag::gen;
use rtt_dag::sp::decompose;
use rtt_duration::Duration;
use rtt_lp::Engine;
use std::time::Instant;

/// One `bicriteria_thm34` size point.
#[derive(Debug, Clone)]
pub struct BicriteriaPoint {
    /// Race-DAG node count before normalization.
    pub nodes: usize,
    /// `D''` LP variable count (flows + times).
    pub lp_vars: usize,
    /// Median wall-time of the full pipeline, flat engine (ms).
    pub flat_ms: f64,
    /// Median wall-time of the full pipeline, reference engine (ms).
    pub reference_ms: f64,
    /// Simplex pivots under the flat engine.
    pub pivots_flat: usize,
    /// Simplex pivots under the reference engine.
    pub pivots_reference: usize,
    /// LP objective agreement check (must be ~0).
    pub objective_delta: f64,
}

/// One SP-DP size point.
#[derive(Debug, Clone)]
pub struct SpDpPoint {
    /// Decomposition-tree leaves (edges of the SP DAG).
    pub m: usize,
    /// Budget `B`.
    pub budget: u64,
    /// Median wall-time, monotone `O(mB)` DP (ms).
    pub monotone_ms: f64,
    /// Median wall-time, naive `O(mB²)` DP (ms).
    pub naive_ms: f64,
    /// DP work counters from the monotone run.
    pub stats: SpDpStats,
}

/// The full PR-1 measurement set.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Host cores (`std::thread::available_parallelism`) — recorded in
    /// every bench schema since PR 3 so numbers are never quoted
    /// without the machine's core count.
    pub cores: usize,
    /// Timed iterations per point (median taken).
    pub trials: usize,
    /// Pipeline measurements.
    pub bicriteria: Vec<BicriteriaPoint>,
    /// DP measurements.
    pub sp_dp: Vec<SpDpPoint>,
}

/// Median wall-time of `f` over `trials` runs, in milliseconds.
fn median_ms<T>(trials: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..trials.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Same construction as `benches/solvers.rs::race_instance`. Public:
/// `curve_perf` (bench-pr3) and the deterministic perf-guard test pin
/// their counters to these exact seeded instances.
pub fn race_instance(seed: u64, nodes: usize) -> ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tt = gen::random_race_dag(&mut rng, nodes, nodes * 2);
    let mut g = rtt_dag::Dag::new();
    for _ in tt.dag.node_ids() {
        g.add_node(());
    }
    for e in tt.dag.edge_refs() {
        let copies = rng.random_range(1..8usize);
        g.add_parallel_edges(e.src, e.dst, (), copies).unwrap();
    }
    let inst = Instance::race_dag(&g, Duration::recursive_binary).unwrap();
    to_arc_form(&inst).0
}

/// Same construction as `benches/solvers.rs::sp_instance` (public for
/// the same reasons as [`race_instance`]).
pub fn sp_instance(seed: u64, leaves: usize) -> ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let gsp = gen::random_sp(&mut rng, leaves);
    let mut g: rtt_dag::Dag<(), Activity> = rtt_dag::Dag::new();
    for _ in gsp.tt.dag.node_ids() {
        g.add_node(());
    }
    for e in gsp.tt.dag.edge_refs() {
        let base = 10 + (e.id.index() as u64 * 7) % 40;
        g.add_edge(e.src, e.dst, Activity::new(Duration::two_point(base, 4, 0)))
            .unwrap();
    }
    ArcInstance::new(g).unwrap()
}

/// Runs every measurement. `trials` timed iterations per point; sizes
/// shrink automatically when `smoke` (CI) is set.
pub fn measure(trials: usize, smoke: bool) -> PerfReport {
    let node_sizes: &[usize] = if smoke { &[8] } else { &[8, 16, 32] };
    let budget = 16u64;
    let mut bicriteria = Vec::new();
    for &nodes in node_sizes {
        let arc = race_instance(nodes as u64, nodes);
        let tt = expand_two_tuples(&arc);
        let flat_lp = rtt_core::lp_build::solve_min_makespan_lp_with(&tt, budget, Engine::Flat)
            .expect("LP feasible");
        let ref_lp =
            rtt_core::lp_build::solve_min_makespan_lp_with(&tt, budget, Engine::Reference)
                .expect("LP feasible");
        let flat_ms = median_ms(trials, || {
            solve_bicriteria_with(&arc, budget, 0.5, Engine::Flat).unwrap()
        });
        let reference_ms = median_ms(trials, || {
            solve_bicriteria_with(&arc, budget, 0.5, Engine::Reference).unwrap()
        });
        bicriteria.push(BicriteriaPoint {
            nodes,
            lp_vars: tt.dag.edge_count() + tt.dag.node_count() - 1,
            flat_ms,
            reference_ms,
            pivots_flat: flat_lp.pivots,
            pivots_reference: ref_lp.pivots,
            objective_delta: (flat_lp.makespan - ref_lp.makespan).abs(),
        });
    }

    let (m_sizes, budgets): (&[usize], &[u64]) = if smoke {
        (&[50], &[64, 128])
    } else {
        (&[50, 100, 200], &[64, 128, 256, 512])
    };
    let mut sp_dp = Vec::new();
    for &m in m_sizes {
        let arc = sp_instance(m as u64, m);
        let d = arc.dag();
        let tree = decompose(d, arc.source(), arc.sink()).expect("generated SP");
        for &b in budgets {
            let (_, _, stats) =
                solve_sp_tree_with_stats(&tree, |e| d.edge(e).duration.clone(), b);
            let monotone_ms = median_ms(trials, || {
                solve_sp_tree_with_stats(&tree, |e| d.edge(e).duration.clone(), b)
            });
            let naive_ms = median_ms(trials, || {
                solve_sp_tree_naive(&tree, |e| d.edge(e).duration.clone(), b)
            });
            sp_dp.push(SpDpPoint {
                m,
                budget: b,
                monotone_ms,
                naive_ms,
                stats,
            });
        }
    }

    PerfReport {
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        trials,
        bicriteria,
        sp_dp,
    }
}

impl PerfReport {
    /// Renders the machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"rtt-bench/perf-v1\",\n");
        out.push_str("  \"pr\": 1,\n");
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str(
            "  \"note\": \"flat vs reference measured in the same binary; see crates/bench/src/perf.rs\",\n",
        );
        let flat_total: f64 = self.bicriteria.iter().map(|p| p.flat_ms).sum();
        let ref_total: f64 = self.bicriteria.iter().map(|p| p.reference_ms).sum();
        out.push_str(&format!(
            "  \"bicriteria_thm34_group_speedup\": {:.2},\n",
            ref_total / flat_total.max(1e-9)
        ));
        out.push_str("  \"bicriteria_thm34\": [\n");
        for (i, p) in self.bicriteria.iter().enumerate() {
            let speedup = p.reference_ms / p.flat_ms.max(1e-9);
            out.push_str(&format!(
                "    {{\"nodes\": {}, \"lp_vars\": {}, \"flat_ms\": {:.3}, \"reference_ms\": {:.3}, \"speedup\": {:.2}, \"pivots_flat\": {}, \"pivots_reference\": {}, \"objective_delta\": {:.2e}}}{}\n",
                p.nodes,
                p.lp_vars,
                p.flat_ms,
                p.reference_ms,
                speedup,
                p.pivots_flat,
                p.pivots_reference,
                p.objective_delta,
                if i + 1 == self.bicriteria.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"sp_dp_section34\": [\n");
        for (i, p) in self.sp_dp.iter().enumerate() {
            let s = &p.stats;
            let nodes = (s.leaves + s.series + s.parallels) as u64;
            // total work per (node · budget-level): ~constant iff O(mB)
            let work = s.cells + s.merge_steps;
            let work_per_cell = work as f64 / (nodes * (p.budget + 1)) as f64;
            out.push_str(&format!(
                "    {{\"m\": {}, \"budget\": {}, \"monotone_ms\": {:.3}, \"naive_ms\": {:.3}, \"speedup\": {:.2}, \"cells\": {}, \"merge_steps\": {}, \"work_per_cell\": {:.3}, \"peak_live_tables\": {}, \"tree_nodes\": {}}}{}\n",
                p.m,
                p.budget,
                p.monotone_ms,
                p.naive_ms,
                p.naive_ms / p.monotone_ms.max(1e-9),
                s.cells,
                s.merge_steps,
                work_per_cell,
                s.peak_live_tables,
                nodes,
                if i + 1 == self.sp_dp.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders a human-readable summary table.
    pub fn render(&self) -> String {
        let mut t = crate::table::TextTable::new(&[
            "bicriteria nodes",
            "flat ms",
            "reference ms",
            "speedup",
            "pivots (flat/ref)",
        ]);
        for p in &self.bicriteria {
            t.row(vec![
                p.nodes.to_string(),
                format!("{:.3}", p.flat_ms),
                format!("{:.3}", p.reference_ms),
                format!("{:.2}x", p.reference_ms / p.flat_ms.max(1e-9)),
                format!("{}/{}", p.pivots_flat, p.pivots_reference),
            ]);
        }
        let mut out = format!("==== bench-pr1 (trials = {}) ====\n{}", self.trials, t.render());
        let mut t = crate::table::TextTable::new(&[
            "sp-dp m",
            "B",
            "monotone ms",
            "naive ms",
            "speedup",
            "merge steps",
            "peak tables",
        ]);
        for p in &self.sp_dp {
            t.row(vec![
                p.m.to_string(),
                p.budget.to_string(),
                format!("{:.3}", p.monotone_ms),
                format!("{:.3}", p.naive_ms),
                format!("{:.2}x", p.naive_ms / p.monotone_ms.max(1e-9)),
                p.stats.merge_steps.to_string(),
                p.stats.peak_live_tables.to_string(),
            ]);
        }
        out.push_str(&t.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measurement_is_consistent_and_serializes() {
        let r = measure(1, true);
        assert!(!r.bicriteria.is_empty() && !r.sp_dp.is_empty());
        for p in &r.bicriteria {
            assert!(p.objective_delta < 1e-6, "engines disagree: {p:?}");
            assert!(p.flat_ms > 0.0 && p.reference_ms > 0.0);
        }
        for p in &r.sp_dp {
            let s = &p.stats;
            // O(mB): merge steps bounded by 2(B+1) per parallel node
            assert!(s.merge_steps <= 2 * (p.budget + 1) * s.parallels as u64, "{p:?}");
            assert!(s.peak_live_tables < s.leaves + 2, "{p:?}");
        }
        let json = r.to_json();
        assert!(json.contains("\"bicriteria_thm34\""));
        assert!(json.contains("\"sp_dp_section34\""));
        // the JSON must at least be parseable by the cli's reader — keep
        // it syntactically boring (checked structurally by eyeballs and
        // by the smoke run in CI)
        assert!(json.ends_with("}\n"));
        assert!(r.render().contains("bicriteria nodes"));
    }
}
