//! The PR-7 cross-request reuse baseline: machine-readable evidence
//! for the fingerprint/solution-cache/delta-solve stack.
//!
//! `repro bench-pr7 [--out PATH] [--smoke]` measures, **in the same
//! binary**:
//!
//! * batch wall time over a redundant ≥ 240-request corpus — ~40 base
//!   instances, each appearing as an exact duplicate, a node/arc
//!   *relabeling*, a budget perturbation, and a duration perturbation
//!   — with the reuse cache **off** (the baseline) and **on**, so the
//!   cache's benefit is measured against the same corpus in the same
//!   binary, per the ROADMAP perf protocol;
//! * the byte-purity contract: the rendered NDJSON stream must be
//!   identical across cache on/off and 1/2/4/8 worker threads
//!   (`cache may change cost, never bytes`);
//! * reuse-cache effectiveness: solution hits, warm-basis hits, and
//!   the simplex pivots the hits avoided re-spending;
//! * the delta-solve microbench on a pinned instance pair: crash-basis
//!   (cold) pivots vs delta pivots when reoptimizing a
//!   duration-perturbed sibling from the donor's parked basis, and the
//!   same comparison for a pure budget delta.

use crate::perf::race_instance;
use rtt_core::instance::{Activity, ArcInstance};
use rtt_dag::Dag;
use rtt_duration::{Duration, Tuple};
use rtt_engine::{
    run_batch_cached, solve_delta_point, CacheStats, PrepCache, PreparedInstance, Registry,
    ReuseCache, ReuseStats,
};
use rtt_cli::spec::{EdgeSpec, InstanceSpec};
use std::time::Instant;

/// A node/arc relabeling of `spec`: the same instance up to
/// isomorphism, a different document. Deterministic in `seed`.
fn relabel(spec: &InstanceSpec, seed: u64) -> InstanceSpec {
    // SplitMix64-driven Fisher–Yates, self-contained so the corpus is
    // a pure function of the seed
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let n = spec.nodes.len();
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    let mut edges: Vec<EdgeSpec> = spec
        .edges
        .iter()
        .map(|e| EdgeSpec {
            src: perm[e.src],
            dst: perm[e.dst],
            duration: e.duration.clone(),
            label: e.label.clone(),
        })
        .collect();
    for i in (1..edges.len()).rev() {
        edges.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    InstanceSpec {
        form: spec.form,
        nodes: spec.nodes.clone(),
        edges,
    }
}

/// A duration-perturbed **shape sibling**: identical topology, every
/// finite tuple time shifted by one — same tuple counts, so the
/// instance shares the donor's LP shape but not its fingerprint.
pub fn perturb_durations(arc: &ArcInstance) -> ArcInstance {
    let d = arc.dag();
    let mut g: Dag<(), Activity> = Dag::new();
    for _ in d.node_ids() {
        g.add_node(());
    }
    for e in d.edge_refs() {
        let tuples: Vec<Tuple> = e
            .weight
            .duration
            .tuples()
            .iter()
            .map(|t| {
                let time = if rtt_duration::is_infinite(t.time) {
                    t.time
                } else {
                    t.time + 1
                };
                Tuple::new(t.resource, time)
            })
            .collect();
        let dur = Duration::step(tuples).expect("uniform shift keeps the step form valid");
        g.add_edge(e.src, e.dst, Activity::new(dur)).unwrap();
    }
    ArcInstance::new(g).unwrap()
}

/// Base instance `i` of the corpus (deterministic; mixed topologies).
fn base_instance(i: usize) -> ArcInstance {
    race_instance(1000 + i as u64, 6 + i % 5)
}

/// The redundant NDJSON corpus: each base contributes six requests —
/// the original, an exact duplicate, a relabeling, the relabeling at a
/// perturbed budget, and a duration-perturbed sibling at two budgets.
fn build_corpus(n_bases: usize) -> Vec<String> {
    let mut lines = Vec::with_capacity(6 * n_bases);
    for i in 0..n_bases {
        let budget = 4 + (i as u64) % 8;
        let arc = base_instance(i);
        let spec = InstanceSpec::from_arc(&arc);
        let doc = spec.to_json().compact();
        let rel = relabel(&spec, i as u64).to_json().compact();
        let per = InstanceSpec::from_arc(&perturb_durations(&arc))
            .to_json()
            .compact();
        lines.push(format!(
            r#"{{"id":"b{i}-orig","instance":{doc},"budget":{budget}}}"#
        ));
        lines.push(format!(
            r#"{{"id":"b{i}-dup","instance":{doc},"budget":{budget}}}"#
        ));
        lines.push(format!(
            r#"{{"id":"b{i}-rel","instance":{rel},"budget":{budget}}}"#
        ));
        lines.push(format!(
            r#"{{"id":"b{i}-relb","instance":{rel},"budget":{}}}"#,
            budget + 1
        ));
        lines.push(format!(
            r#"{{"id":"b{i}-per","instance":{per},"budget":{budget}}}"#
        ));
        lines.push(format!(
            r#"{{"id":"b{i}-perb","instance":{per},"budget":{}}}"#,
            budget + 1
        ));
    }
    lines
}

/// One batch run through the real CLI pipeline (parse → canonical prep
/// cache → executor → rendered reports). Returns the NDJSON stream,
/// the wall time, and the cache statistics.
fn run_once(
    corpus: &str,
    threads: usize,
    cached: bool,
) -> (String, f64, CacheStats, Option<ReuseStats>) {
    let registry = Registry::standard();
    let cache = PrepCache::with_capacity(1024);
    let reuse = cached.then(|| ReuseCache::new(1024));
    let requests = rtt_cli::batch::build_requests(corpus, &cache, Some("bicriteria"), &registry)
        .expect("corpus parses");
    let started = Instant::now();
    let out = run_batch_cached(&registry, requests, threads, reuse.as_ref());
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let mut rendered = String::new();
    for r in &out.reports {
        rendered.push_str(&rtt_cli::report_line(r));
        rendered.push('\n');
    }
    (rendered, wall_ms, cache.stats(), reuse.map(|c| c.stats()))
}

/// The delta-solve microbench on a pinned pair: cold crash-basis
/// pivots vs warm delta pivots, for a duration-perturbed sibling and
/// for a budget step.
#[derive(Debug, Clone)]
pub struct DeltaPoint {
    /// Pivots of the cold crash-basis solve of the perturbed sibling.
    pub cold_pivots: u64,
    /// Pivots when the sibling reoptimizes from the donor's basis.
    pub sibling_delta_pivots: u64,
    /// Pivots when the donor re-solves one budget step away from its
    /// own parked basis.
    pub budget_delta_pivots: u64,
    /// Median cold wall time (ms).
    pub cold_ms: f64,
    /// Median sibling-delta wall time (ms).
    pub delta_ms: f64,
}

/// Measures the pinned delta microbench (deterministic pivot counts;
/// wall times are medians over `trials`).
pub fn measure_delta(trials: usize) -> DeltaPoint {
    let donor = race_instance(16, 16);
    let sibling = perturb_durations(&donor);
    let budget = 16u64;

    // cold: fresh cache, no parked basis anywhere
    let cold_once = || {
        let cache = ReuseCache::new(4);
        let prep = PreparedInstance::new(sibling.clone());
        let started = Instant::now();
        let frac = solve_delta_point(&prep, &cache, budget).expect("cold point solves");
        (frac.pivots as u64, started.elapsed().as_secs_f64() * 1e3)
    };
    // sibling delta: the donor parks its basis under the shared shape
    // key, the sibling reoptimizes from it
    let delta_once = || {
        let cache = ReuseCache::new(4);
        let donor_prep = PreparedInstance::new(donor.clone());
        solve_delta_point(&donor_prep, &cache, budget).expect("donor point solves");
        let prep = PreparedInstance::new(sibling.clone());
        let started = Instant::now();
        let frac = solve_delta_point(&prep, &cache, budget).expect("delta point solves");
        (frac.pivots as u64, started.elapsed().as_secs_f64() * 1e3)
    };

    let mut cold_walls = Vec::new();
    let mut delta_walls = Vec::new();
    let mut cold_pivots = 0;
    let mut sibling_delta_pivots = 0;
    for _ in 0..trials.max(1) {
        let (p, w) = cold_once();
        cold_pivots = p;
        cold_walls.push(w);
        let (p, w) = delta_once();
        sibling_delta_pivots = p;
        delta_walls.push(w);
    }

    // budget delta: same instance, one budget step from its own basis
    let cache = ReuseCache::new(4);
    let prep = PreparedInstance::new(donor.clone());
    solve_delta_point(&prep, &cache, budget).expect("seed point solves");
    let budget_delta_pivots = solve_delta_point(&prep, &cache, budget + 1)
        .expect("budget delta solves")
        .pivots as u64;

    cold_walls.sort_by(f64::total_cmp);
    delta_walls.sort_by(f64::total_cmp);
    DeltaPoint {
        cold_pivots,
        sibling_delta_pivots,
        budget_delta_pivots,
        cold_ms: cold_walls[cold_walls.len() / 2],
        delta_ms: delta_walls[delta_walls.len() / 2],
    }
}

/// The full PR-7 measurement set.
#[derive(Debug, Clone)]
pub struct ReusePerfReport {
    /// Host cores (`std::thread::available_parallelism`).
    pub cores: usize,
    /// Timed iterations per point (median taken).
    pub trials: usize,
    /// Base instances in the corpus.
    pub bases: usize,
    /// Requests per batch run.
    pub requests: usize,
    /// Reports per batch run.
    pub reports: usize,
    /// Median cache-off wall, 1 thread (ms) — the baseline.
    pub off_wall_ms: f64,
    /// Median cache-on wall, 1 thread (ms).
    pub on_wall_ms: f64,
    /// `off_wall_ms / on_wall_ms`.
    pub speedup: f64,
    /// Whether every (cache, threads) combination produced the same
    /// NDJSON bytes.
    pub byte_identical: bool,
    /// Prep-cache statistics of the cache-on run (canonical keying).
    pub prep: CacheStats,
    /// Reuse-cache statistics of the cache-on run.
    pub reuse: ReuseStats,
    /// The pinned delta microbench.
    pub delta: DeltaPoint,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Runs every measurement. Sizes shrink under `smoke` (CI).
pub fn measure(trials: usize, smoke: bool) -> ReusePerfReport {
    let n_bases = if smoke { 8 } else { 40 };
    let corpus = build_corpus(n_bases).join("\n");

    // timed runs, 1 thread: off is the baseline, on is the candidate
    let mut off_walls = Vec::new();
    let mut on_walls = Vec::new();
    let mut requests = 0;
    let mut reports = 0;
    let mut baseline = String::new();
    let mut prep = CacheStats::default();
    let mut reuse = ReuseStats::default();
    for trial in 0..trials.max(1) {
        let (rendered, wall, _, _) = run_once(&corpus, 1, false);
        off_walls.push(wall);
        if trial == 0 {
            requests = corpus.lines().filter(|l| !l.trim().is_empty()).count();
            reports = rendered.lines().count();
            baseline = rendered;
        }
        let (rendered, wall, p, r) = run_once(&corpus, 1, true);
        on_walls.push(wall);
        if trial == 0 {
            assert_eq!(rendered, baseline, "cache-on must not change bytes");
            prep = p;
            reuse = r.expect("cache-on run has reuse stats");
        }
    }

    // byte purity across the full (cache × threads) grid
    let mut byte_identical = true;
    for threads in [2usize, 4, 8] {
        for cached in [false, true] {
            let (rendered, _, _, _) = run_once(&corpus, threads, cached);
            byte_identical &= rendered == baseline;
        }
    }

    let off_wall_ms = median(&mut off_walls);
    let on_wall_ms = median(&mut on_walls);
    ReusePerfReport {
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        trials: trials.max(1),
        bases: n_bases,
        requests,
        reports,
        off_wall_ms,
        on_wall_ms,
        speedup: off_wall_ms / on_wall_ms.max(1e-9),
        byte_identical,
        prep,
        reuse,
        delta: measure_delta(trials),
    }
}

impl ReusePerfReport {
    /// Renders the machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"rtt-bench/reuse-v1\",\n");
        out.push_str("  \"pr\": 7,\n");
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str(
            "  \"note\": \"cache-off baseline and cache-on candidate run the same corpus in the same binary; byte_identical covers cache on/off at 1/2/4/8 threads (crates/bench/src/reuse_perf.rs)\",\n",
        );
        out.push_str(&format!(
            "  \"corpus\": {{\"bases\": {}, \"requests\": {}, \"reports\": {}}},\n",
            self.bases, self.requests, self.reports
        ));
        out.push_str(&format!(
            "  \"batch\": {{\"off_wall_ms\": {:.3}, \"on_wall_ms\": {:.3}, \"speedup\": {:.2}}},\n",
            self.off_wall_ms, self.on_wall_ms, self.speedup
        ));
        out.push_str(&format!(
            "  \"byte_identical\": {},\n",
            self.byte_identical
        ));
        out.push_str(&format!(
            "  \"prep_cache\": {{\"instance_hits\": {}, \"instance_misses\": {}, \"instance_hit_rate\": {:.3}, \"evicted\": {}}},\n",
            self.prep.instance_hits,
            self.prep.instance_misses,
            self.prep.instance_hit_rate(),
            self.prep.evicted,
        ));
        out.push_str(&format!(
            "  \"reuse_cache\": {{\"solution_hits\": {}, \"solution_misses\": {}, \"warm_hits\": {}, \"warm_misses\": {}, \"delta_solves\": {}, \"evictions\": {}, \"pivots_saved\": {}}},\n",
            self.reuse.solution_hits,
            self.reuse.solution_misses,
            self.reuse.warm_hits,
            self.reuse.warm_misses,
            self.reuse.delta_solves,
            self.reuse.evictions,
            self.reuse.pivots_saved,
        ));
        out.push_str(&format!(
            "  \"delta\": {{\"cold_pivots\": {}, \"sibling_delta_pivots\": {}, \"budget_delta_pivots\": {}, \"cold_ms\": {:.4}, \"delta_ms\": {:.4}}}\n",
            self.delta.cold_pivots,
            self.delta.sibling_delta_pivots,
            self.delta.budget_delta_pivots,
            self.delta.cold_ms,
            self.delta.delta_ms,
        ));
        out.push_str("}\n");
        out
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "==== bench-pr7 (cores = {}, corpus = {} requests -> {} reports over {} bases) ====\n\
             batch 1t: cache-off {:.1} ms, cache-on {:.1} ms ({:.2}x)\n\
             byte-identical across cache on/off x 1/2/4/8 threads: {}\n\
             prep cache: {}/{} instance hits, {} evicted\n\
             reuse cache: {}/{} solution hits, {} pivots saved; {}/{} warm hits, {} delta solves\n\
             delta microbench: cold {} pivots vs sibling-delta {} / budget-delta {} ({:.4} ms vs {:.4} ms)\n",
            self.cores,
            self.requests,
            self.reports,
            self.bases,
            self.off_wall_ms,
            self.on_wall_ms,
            self.speedup,
            self.byte_identical,
            self.prep.instance_hits,
            self.prep.instance_hits + self.prep.instance_misses,
            self.prep.evicted,
            self.reuse.solution_hits,
            self.reuse.solution_hits + self.reuse.solution_misses,
            self.reuse.pivots_saved,
            self.reuse.warm_hits,
            self.reuse.warm_hits + self.reuse.warm_misses,
            self.reuse.delta_solves,
            self.delta.cold_pivots,
            self.delta.sibling_delta_pivots,
            self.delta.budget_delta_pivots,
            self.delta.cold_ms,
            self.delta.delta_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measurement_is_consistent_and_serializes() {
        let r = measure(1, true);
        assert!(r.requests >= 48, "redundant corpus: {} requests", r.requests);
        assert!(r.byte_identical, "cache must never change bytes");
        assert!(
            r.reuse.solution_hits > 0,
            "duplicates and relabelings must hit the solution cache: {:?}",
            r.reuse
        );
        assert!(r.reuse.pivots_saved > 0);
        assert!(
            r.prep.instance_hits > 0,
            "canonical keying must dedupe relabelings: {:?}",
            r.prep
        );
        assert!(
            r.delta.sibling_delta_pivots < r.delta.cold_pivots,
            "delta ({}) must beat cold ({})",
            r.delta.sibling_delta_pivots,
            r.delta.cold_pivots
        );
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"rtt-bench/reuse-v1\""));
        assert!(json.contains("\"byte_identical\": true"));
        assert!(json.ends_with("}\n"));
        assert!(r.render().contains("bench-pr7"));
    }
}
