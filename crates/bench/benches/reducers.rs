//! Criterion benches for the concurrent reducers (Figure 2's claim on
//! real hardware) and the Sibling-vs-Tree expansion ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtt_duration::expand::{expand_reducers, ReducerVariant};
use rtt_reducer::{BinaryReducer, KWayReducer, LockCell, SlowAdd};
use std::sync::atomic::{AtomicU64, Ordering};

const N_UPDATES: u64 = 1 << 14;
const SPIN: u32 = 64; // make each update "significantly dominate"

fn drive<R: Sync>(r: &R, threads: usize, f: impl Fn(&R, u64) + Sync) {
    let counter = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= N_UPDATES {
                    break;
                }
                f(r, i);
            });
        }
    });
}

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4)
}

/// The paper's baseline: one lock serializes everything.
fn bench_lock_baseline(c: &mut Criterion) {
    let t = threads();
    c.bench_function("reducer/lock_baseline", |b| {
        b.iter(|| {
            let cell = LockCell::new(SlowAdd { spin: SPIN });
            drive(&cell, t, |c, x| c.update(x));
            cell.into_value()
        });
    });
}

/// Figure 2: binary reducer throughput vs height (space = 2^h).
fn bench_binary_heights(c: &mut Criterion) {
    let t = threads();
    let mut group = c.benchmark_group("reducer/binary_height");
    for &h in &[0u32, 1, 2, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            b.iter(|| {
                let r = BinaryReducer::new(SlowAdd { spin: SPIN }, h, N_UPDATES);
                drive(&r, t, |r, x| r.update(x));
                r.into_value()
            });
        });
    }
    group.finish();
}

/// Eq. 2: k-way split reducer throughput vs width.
fn bench_kway_widths(c: &mut Criterion) {
    let t = threads();
    let mut group = c.benchmark_group("reducer/kway_width");
    for &k in &[1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let r = KWayReducer::new(SlowAdd { spin: SPIN }, k);
                drive(&r, t, |r, x| r.update(x));
                r.into_value()
            });
        });
    }
    group.finish();
}

/// Ablation: the §1 sibling trick vs the naive full tree — same height,
/// different space and critical path (construction + makespan eval).
fn bench_expansion_ablation(c: &mut Criterion) {
    let mut g: rtt_dag::Dag<(), ()> = rtt_dag::Dag::new();
    let hub = g.add_node(());
    for _ in 0..4096 {
        let s = g.add_node(());
        g.add_edge(s, hub, ()).unwrap();
    }
    let mut heights = vec![0u32; g.node_count()];
    heights[hub.index()] = 6;
    let mut group = c.benchmark_group("reducer/expansion_ablation");
    for (name, variant) in [
        ("sibling", ReducerVariant::Sibling),
        ("tree", ReducerVariant::Tree),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let exp = expand_reducers(&g, &heights, variant);
                (exp.extra_space, exp.makespan())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lock_baseline,
    bench_binary_heights,
    bench_kway_widths,
    bench_expansion_ablation
);
criterion_main!(benches);
