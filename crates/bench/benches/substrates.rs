//! Criterion benches for the substrate crates: LP simplex, network
//! flows, series-parallel decomposition, longest paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtt_dag::gen;
use rtt_flow::{max_flow, min_flow, BoundedEdge};
use rtt_lp::Problem;

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_simplex");
    for &n in &[10usize, 30, 60] {
        // a transportation-like LP: n supply rows, n demand rows,
        // n² route variables
        group.bench_with_input(BenchmarkId::new("transport", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let costs: Vec<f64> = (0..n * n).map(|_| rng.random_range(1.0..10.0)).collect();
            b.iter(|| {
                let mut p = Problem::minimize(n * n);
                for (j, &cst) in costs.iter().enumerate() {
                    p.set_objective(j, cst);
                }
                for i in 0..n {
                    let row: Vec<(usize, f64)> =
                        (0..n).map(|j| (i * n + j, 1.0)).collect();
                    p.add_eq(&row, 5.0);
                    let col: Vec<(usize, f64)> =
                        (0..n).map(|j| (j * n + i, 1.0)).collect();
                    p.add_eq(&col, 5.0);
                }
                p.solve().expect_optimal("transport LP is feasible")
            });
        });
    }
    group.finish();
}

fn bench_flows(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_flow");
    for &n in &[50usize, 200, 800] {
        // layered random networks
        let mut rng = StdRng::seed_from_u64(n as u64);
        let tt = gen::layered(&mut rng, 8, n / 8, 0.3);
        let edges: Vec<(usize, usize, u64)> = tt
            .dag
            .edge_refs()
            .map(|e| (e.src.index(), e.dst.index(), 1 + (e.id.index() as u64 % 10)))
            .collect();
        let nn = tt.dag.node_count();
        let (s, t) = (tt.source.index(), tt.sink.index());
        group.bench_with_input(BenchmarkId::new("dinic_max_flow", n), &edges, |b, edges| {
            b.iter(|| max_flow(nn, edges, s, t));
        });
        let bounded: Vec<BoundedEdge> = edges
            .iter()
            .map(|&(u, v, c)| BoundedEdge::at_least(u, v, c % 4))
            .collect();
        group.bench_with_input(BenchmarkId::new("min_flow_lb", n), &bounded, |b, bounded| {
            b.iter(|| min_flow(nn, bounded, s, t).expect("feasible"));
        });
    }
    group.finish();
}

fn bench_sp_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("sp_decompose");
    for &m in &[100usize, 1000, 5000] {
        let mut rng = StdRng::seed_from_u64(m as u64);
        let gsp = gen::random_sp(&mut rng, m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &gsp, |b, gsp| {
            b.iter(|| {
                rtt_dag::sp::decompose(&gsp.tt.dag, gsp.tt.source, gsp.tt.sink)
                    .expect("generated SP")
            });
        });
    }
    group.finish();
}

fn bench_longest_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("longest_path");
    for &n in &[1_000usize, 10_000] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let tt = gen::random_race_dag(&mut rng, n, 2 * n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &tt, |b, tt| {
            b.iter(|| {
                rtt_dag::longest_path_nodes(&tt.dag, |v| tt.dag.in_degree(v) as u64)
                    .unwrap()
                    .weight
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lp,
    bench_flows,
    bench_sp_decompose,
    bench_longest_path
);
criterion_main!(benches);
