//! Criterion benches for the reuse-regime baselines (Questions 1.1/1.2)
//! against the paper's path-reuse solvers (Question 1.3), plus the
//! series-parallel DP ablation: the §3.4 series rule is O(B) per node
//! while the classical no-reuse rule is O(B²) — reuse over paths makes
//! the DP *cheaper*, not just the schedules faster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtt_core::instance::{Activity, ArcInstance};
use rtt_core::regimes::{global_reuse_schedule, sp_noreuse_curve, GlobalPolicy};
use rtt_core::sp_dp::solve_sp_exact;
use rtt_core::transform::to_arc_form;
use rtt_core::Instance;
use rtt_dag::gen;
use rtt_duration::Duration;

fn race_instance(seed: u64, nodes: usize) -> ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tt = gen::random_race_dag(&mut rng, nodes, nodes * 2);
    let mut g = rtt_dag::Dag::new();
    for _ in tt.dag.node_ids() {
        g.add_node(());
    }
    for e in tt.dag.edge_refs() {
        let copies = rng.random_range(1..8usize);
        g.add_parallel_edges(e.src, e.dst, (), copies).unwrap();
    }
    let inst = Instance::race_dag(&g, Duration::recursive_binary).unwrap();
    to_arc_form(&inst).0
}

fn sp_instance(seed: u64, leaves: usize) -> ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let gsp = gen::random_sp(&mut rng, leaves);
    let mut g: rtt_dag::Dag<(), Activity> = rtt_dag::Dag::new();
    for _ in gsp.tt.dag.node_ids() {
        g.add_node(());
    }
    for e in gsp.tt.dag.edge_refs() {
        let base = 10 + (e.id.index() as u64 * 7) % 40;
        g.add_edge(e.src, e.dst, Activity::new(Duration::two_point(base, 4, 0)))
            .unwrap();
    }
    ArcInstance::new(g).unwrap()
}

/// The greedy global-pool scheduler scales near-linearly in |E|.
fn bench_global_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("regimes/global_scheduler");
    for &nodes in &[16usize, 64, 256] {
        let arc = race_instance(nodes as u64, nodes);
        group.bench_with_input(BenchmarkId::new("eager", nodes), &arc, |b, arc| {
            b.iter(|| global_reuse_schedule(arc, 32, GlobalPolicy::Eager));
        });
        group.bench_with_input(BenchmarkId::new("patient", nodes), &arc, |b, arc| {
            b.iter(|| global_reuse_schedule(arc, 32, GlobalPolicy::Patient));
        });
    }
    group.finish();
}

/// DP ablation: reuse-over-paths DP (§3.4, series = O(B)) vs classical
/// no-reuse DP (series = O(B²)) on the same instances — the asymptotic
/// gap shows up as B grows at fixed m.
fn bench_sp_dp_regimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("regimes/sp_dp");
    group.sample_size(10);
    let arc = sp_instance(7, 100);
    for &budget in &[64u64, 128, 256] {
        group.bench_with_input(
            BenchmarkId::new("reuse_paths", budget),
            &budget,
            |b, &budget| {
                b.iter(|| solve_sp_exact(&arc, budget).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("no_reuse", budget),
            &budget,
            |b, &budget| {
                b.iter(|| sp_noreuse_curve(&arc, budget).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_global_scheduler, bench_sp_dp_regimes);
criterion_main!(benches);
