//! Criterion benches for the paper's solvers: the LP+rounding pipeline
//! (Thm 3.4), the family-specific approximations, the §3.4 DP (the
//! O(mB²) claim), and the exact reference solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtt_core::instance::{Activity, ArcInstance};
use rtt_core::sp_dp::solve_sp_exact;
use rtt_core::transform::to_arc_form;
use rtt_core::{solve_bicriteria, solve_kway_5approx, solve_recbinary_4approx, Instance};
use rtt_dag::gen;
use rtt_duration::Duration;

fn race_instance(seed: u64, nodes: usize, family: fn(u64) -> Duration) -> ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tt = gen::random_race_dag(&mut rng, nodes, nodes * 2);
    let mut g = rtt_dag::Dag::new();
    for _ in tt.dag.node_ids() {
        g.add_node(());
    }
    for e in tt.dag.edge_refs() {
        let copies = rng.random_range(1..8usize);
        g.add_parallel_edges(e.src, e.dst, (), copies).unwrap();
    }
    let inst = Instance::race_dag(&g, family).unwrap();
    to_arc_form(&inst).0
}

fn bench_bicriteria_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("bicriteria_thm34");
    group.sample_size(10);
    for &nodes in &[8usize, 16, 32] {
        let arc = race_instance(nodes as u64, nodes, Duration::recursive_binary);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &arc, |b, arc| {
            b.iter(|| solve_bicriteria(arc, 16, 0.5).unwrap());
        });
    }
    group.finish();
}

fn bench_single_criteria(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_criteria");
    group.sample_size(10);
    let kway = race_instance(99, 16, Duration::kway);
    group.bench_function("kway_5approx_thm39", |b| {
        b.iter(|| solve_kway_5approx(&kway, 16).unwrap());
    });
    let recb = race_instance(77, 16, Duration::recursive_binary);
    group.bench_function("recbinary_4approx_thm310", |b| {
        b.iter(|| solve_recbinary_4approx(&recb, 16).unwrap());
    });
    group.finish();
}

fn sp_instance(seed: u64, leaves: usize) -> ArcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let gsp = gen::random_sp(&mut rng, leaves);
    let mut g: rtt_dag::Dag<(), Activity> = rtt_dag::Dag::new();
    for _ in gsp.tt.dag.node_ids() {
        g.add_node(());
    }
    for e in gsp.tt.dag.edge_refs() {
        let base = 10 + (e.id.index() as u64 * 7) % 40;
        g.add_edge(e.src, e.dst, Activity::new(Duration::two_point(base, 4, 0)))
            .unwrap();
    }
    ArcInstance::new(g).unwrap()
}

/// The O(mB²) claim: time should scale ~linearly in m at fixed B and
/// ~quadratically in B at fixed m.
fn bench_sp_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("sp_dp_section34");
    group.sample_size(10);
    for &m in &[50usize, 100, 200] {
        let arc = sp_instance(m as u64, m);
        group.bench_with_input(BenchmarkId::new("vary_m_B128", m), &arc, |b, arc| {
            b.iter(|| solve_sp_exact(arc, 128).unwrap());
        });
    }
    let arc = sp_instance(4242, 100);
    for &budget in &[64u64, 128, 256] {
        group.bench_with_input(
            BenchmarkId::new("vary_B_m100", budget),
            &budget,
            |b, &budget| {
                b.iter(|| solve_sp_exact(&arc, budget).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_exact_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_reference");
    group.sample_size(10);
    for &nodes in &[4usize, 5, 6] {
        let arc = race_instance(nodes as u64 * 3, nodes, Duration::recursive_binary);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &arc, |b, arc| {
            b.iter(|| rtt_core::exact::solve_exact(arc, 6));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bicriteria_pipeline,
    bench_single_criteria,
    bench_sp_dp,
    bench_exact_reference
);
criterion_main!(benches);
