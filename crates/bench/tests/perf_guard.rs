//! Deterministic perf-guard: pins **work counters** (never wall-clock,
//! so it is stable on shared CI runners) on fixed seeded instances.
//!
//! The envelopes are committed bands around the values measured when
//! the counters were introduced (PR 3). A counter drifting outside its
//! band means an algorithmic regression (or an intentional change —
//! re-measure and update the band in the same PR, with the new numbers
//! in the commit message).

use rtt_bench::perf::{race_instance, sp_instance};
use rtt_core::lp_build::{solve_min_makespan_lp_with, solve_min_makespan_sweep};
use rtt_core::sp_dp::solve_sp_tree_with_stats;
use rtt_core::transform::expand_two_tuples;
use rtt_dag::sp::decompose;
use rtt_lp::Engine;

/// Asserts `value` lies in `[lo, hi]` with a named label.
fn within(label: &str, value: u64, lo: u64, hi: u64) {
    assert!(
        (lo..=hi).contains(&value),
        "{label}: {value} outside committed envelope [{lo}, {hi}]"
    );
}

#[test]
fn lp_pivot_counts_stay_in_envelope() {
    // race_instance(16, 16) at budget 16 — the bench-pr3 mid-size point.
    let arc = race_instance(16, 16);
    let tt = expand_two_tuples(&arc);
    let rev = solve_min_makespan_lp_with(&tt, 16, Engine::Revised).unwrap();
    let flat = solve_min_makespan_lp_with(&tt, 16, Engine::Flat).unwrap();

    // determinism first: the counters must reproduce exactly
    let rev2 = solve_min_makespan_lp_with(&tt, 16, Engine::Revised).unwrap();
    assert_eq!(rev.pivots, rev2.pivots, "revised solve must be deterministic");

    // measured at commit time: revised 97 (crash-started phase 2 only),
    // flat 552 (two-phase over bound rows)
    within("revised pivots", rev.pivots as u64, 30, 300);
    within("flat pivots", flat.pivots as u64, 300, 1100);
    assert_eq!(rev.stats.phase1_pivots, 0, "the crash basis must skip phase 1");
    // the revised engine must do structurally less work per pivot AND
    // materialize fewer rows
    assert_eq!(rev.stats.bound_rows, 0);
    assert_eq!(flat.stats.rows, rev.stats.rows + rev.stats.bound_cols);
    assert!((rev.makespan - flat.makespan).abs() < 1e-9);
}

#[test]
fn warm_sweep_pivots_stay_in_envelope() {
    let arc = race_instance(16, 16);
    let tt = expand_two_tuples(&arc);
    let grid: Vec<u64> = (0..16).collect();
    let warm = solve_min_makespan_sweep(&tt, &grid).unwrap();
    let warm_total: u64 = warm.iter().map(|f| f.pivots as u64).sum();
    let cold_total: u64 = grid
        .iter()
        .map(|&b| {
            solve_min_makespan_lp_with(&tt, b, Engine::Revised)
                .unwrap()
                .pivots as u64
        })
        .sum();
    // the warm chain must spend at most half the cold grid's pivots
    assert!(
        warm_total * 2 <= cold_total,
        "warm chain {warm_total} vs cold grid {cold_total}"
    );
    // measured at commit time: 81 chained pivots over the 16-point grid
    within("warm sweep pivots", warm_total, 20, 300);
}

#[test]
fn wire_sweep_pivots_stay_in_envelope() {
    // The PR-8 wire-reachable sweep: a batch `budgets` request answered
    // by one self-contained chained delta session. Its summed per-point
    // `work` on the pinned instance/grid must cost no more than the
    // PR-3 warm-sweep counter it is built on (same chain, behind the
    // executor), and stay inside the same committed envelope.
    let arc = race_instance(16, 16);
    let tt = expand_two_tuples(&arc);
    let grid: Vec<u64> = (0..16).collect();
    let warm = solve_min_makespan_sweep(&tt, &grid).unwrap();
    let warm_total: u64 = warm.iter().map(|f| f.pivots as u64).sum();

    let wire_total = rtt_bench::sweep_perf::pinned_chain_pivots();
    // determinism: the wire counter is a pure function of the request
    assert_eq!(
        wire_total,
        rtt_bench::sweep_perf::pinned_chain_pivots(),
        "wire sweep must be deterministic"
    );
    assert!(
        wire_total <= warm_total,
        "wire sweep {wire_total} pivots exceeds the warm-sweep chain {warm_total}"
    );
    // measured at commit time: 132 chained pivots (BENCH_pr8.json's
    // pinned_chain evidence)
    within("wire sweep pivots", wire_total, 20, 300);
}

#[test]
fn delta_solve_pivots_stay_in_envelope() {
    // The PR-7 delta path on the pinned bench pair: race_instance(16, 16)
    // as the donor, its duration-perturbed shape sibling as the target.
    // Reoptimizing the sibling from the donor's parked basis must cost a
    // small fraction of the crash-basis solve — and land on the same
    // objective (the "cost, never correctness" half of the contract).
    use rtt_bench::reuse_perf::perturb_durations;
    use rtt_engine::{solve_delta_point, PreparedInstance, ReuseCache};

    let donor = race_instance(16, 16);
    let sibling = perturb_durations(&donor);
    let budget = 16u64;

    let cold_cache = ReuseCache::new(4);
    let cold_prep = PreparedInstance::new(sibling.clone());
    let cold = solve_delta_point(&cold_prep, &cold_cache, budget).unwrap();

    let cache = ReuseCache::new(4);
    let donor_prep = PreparedInstance::new(donor);
    solve_delta_point(&donor_prep, &cache, budget).unwrap();
    let prep = PreparedInstance::new(sibling);
    let warm = solve_delta_point(&prep, &cache, budget).unwrap();

    assert!(
        (warm.makespan - cold.makespan).abs() < 1e-9,
        "delta objective {} != cold objective {}",
        warm.makespan,
        cold.makespan
    );
    // measured at commit time: cold 93 crash-basis pivots, sibling
    // delta 6, budget delta 0 — the delta must stay well under half
    // the cold cost
    assert!(
        (warm.pivots as u64) * 2 < cold.pivots as u64,
        "sibling delta {} vs cold {} pivots",
        warm.pivots,
        cold.pivots
    );
    within("cold crash-basis pivots", cold.pivots as u64, 30, 300);
    within("sibling delta pivots", warm.pivots as u64, 1, 60);

    // a pure budget delta from the instance's own basis is cheaper still
    let next = solve_delta_point(&prep, &cache, budget + 1).unwrap();
    within("budget delta pivots", next.pivots as u64, 0, 40);
}

#[test]
fn sim_event_counts_stay_in_envelope() {
    // The bench-pr5 shapes' event counts are exact functions of the
    // model — if one moves, the event engine's cost model changed.
    let chain = rtt_bench::sim_perf::long_chain_model(64, 20_000);
    assert_eq!(chain.event_count(), 127, "chain: cells + arcs");
    assert_eq!(chain.update_count(), 1_280_000);
    let star = rtt_bench::sim_perf::fanout_star_model(6_000);
    assert_eq!(star.event_count(), 12_001, "star: cells + arcs");

    // The certify path: the routed solution of the fixed bench-pr3
    // instance expands within a pinned event envelope (counters, not
    // wall-clock — measured 553 events / 85 cells at commit time), far
    // below the engine's soft guard.
    let arc = race_instance(16, 16);
    let sol =
        rtt_core::solve_bicriteria_with(&arc, 16, 0.5, Engine::Revised).unwrap();
    let (g, works) = rtt_engine::expand_solution(&arc, &sol.solution);
    let model = rtt_sim::ExecModel::from_works(&g, &works);
    within("certify expansion events", model.event_count(), 300, 1200);
    assert!(model.event_count() < rtt_engine::SIM_EVENT_GUARD / 1000);
    // and the engines must agree bit for bit on the expansion
    assert_eq!(model.run_event(), model.run_ticks(rtt_sim::UNBOUNDED));
}

#[test]
fn sp_dp_counters_stay_in_envelope() {
    // sp_instance(50, 50) at B = 128 — a BENCH_pr1 point. The monotone
    // merge's counters are exact functions of the instance.
    let arc = sp_instance(50, 50);
    let d = arc.dag();
    let tree = decompose(d, arc.source(), arc.sink()).expect("generated SP");
    let (_, _, stats) = solve_sp_tree_with_stats(&tree, |e| d.edge(e).duration.clone(), 128);
    // committed exact values from BENCH_pr1.json (m=50, B=128)
    assert_eq!(stats.cells, 12771, "DP cell count changed");
    assert_eq!(stats.merge_steps, 3888, "merge-step count changed");
    let nodes = (stats.leaves + stats.series + stats.parallels) as u64;
    let work_per_cell = (stats.cells + stats.merge_steps) as f64 / (nodes * 129) as f64;
    assert!(
        work_per_cell < 1.5,
        "work per (node·budget) {work_per_cell} implies the O(mB) bound broke"
    );
    assert!(
        (stats.peak_live_tables as u64) < stats.leaves as u64 + 2,
        "table arena is no longer bounding live tables"
    );
}
