//! Schema guard for the committed bench documents: every `BENCH_*.json`
//! at the repo root must carry the uniform `cores` and `trials` fields
//! (the PR-3 rule; the originally committed `BENCH_pr1.json` predated
//! it, which is exactly the drift this test now forbids). The `repro`
//! emitters additionally refuse to *write* a drifted document — this
//! test catches hand-edits and stale commits.

use rtt_cli::json::Json;

#[test]
fn committed_bench_documents_carry_cores_and_trials() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let mut found = 0usize;
    for entry in std::fs::read_dir(root).expect("repo root readable") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        found += 1;
        let text = std::fs::read_to_string(&path).expect("bench doc readable");
        let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: invalid JSON: {e}"));
        for field in ["schema", "pr", "cores", "trials"] {
            assert!(
                doc.get(field).is_some(),
                "{name}: missing uniform field `{field}` (schema drift — \
                 regenerate with `repro bench-pr<n>`)"
            );
        }
    }
    assert!(
        found >= 9,
        "expected the committed BENCH_pr1..pr5 and BENCH_pr7..pr10 documents, found {found}"
    );
}
