//! Differential property test for sharded certification replay: on
//! random multi-component models — mixed pipelined/gated/zero-work
//! cells, interleaved component ids, parallel arcs — the sharded event
//! engine must reproduce the serial engine's [`SimResult`] **bit for
//! bit** at every thread count (finish, per-cell finish times, update
//! count, and peak parallelism from the merged busy-interval sweep).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtt_dag::Dag;
use rtt_duration::Time;
use rtt_sim::ExecModel;

/// `components` small random DAGs in one model. Nodes are added
/// round-robin across components so shard ids interleave (the scatter
/// paths cannot get away with assuming contiguous components).
fn random_multi_component(rng: &mut StdRng, components: usize) -> ExecModel {
    let sizes: Vec<usize> = (0..components).map(|_| rng.random_range(2..7)).collect();
    let mut g: Dag<(), ()> = Dag::new();
    // nodes[c][k] = global id of component c's k-th node
    let mut nodes: Vec<Vec<rtt_dag::NodeId>> = vec![Vec::new(); components];
    let max = *sizes.iter().max().unwrap();
    for k in 0..max {
        for c in 0..components {
            if k < sizes[c] {
                nodes[c].push(g.add_node(()));
            }
        }
    }
    for (c, comp) in nodes.iter().enumerate() {
        // forward edges only (acyclic), occasionally parallel
        for k in 1..comp.len() {
            let src = comp[rng.random_range(0..k)];
            let multiplicity = if rng.random_bool(0.2) { 2 } else { 1 };
            g.add_parallel_edges(src, comp[k], (), multiplicity).unwrap();
            if rng.random_bool(0.3) && k >= 2 {
                let extra = comp[rng.random_range(0..k - 1)];
                if extra != src {
                    g.add_edge(extra, comp[k], ()).unwrap();
                }
            }
        }
        let _ = c;
    }
    let works: Vec<Time> = (0..g.node_count())
        .map(|i| {
            if rng.random_bool(0.4) {
                // pipelined: work == in-degree (race-DAG convention)
                g.in_degree(rtt_dag::NodeId(i as u32)) as Time
            } else {
                // gated (or zero-work source/sink)
                rng.random_range(0..5)
            }
        })
        .collect();
    ExecModel::from_works(&g, &works)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_replay_matches_serial_bit_for_bit(
        seed in 0u64..10_000,
        components in 1usize..7,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = random_multi_component(&mut rng, components);
        let serial = model.run_event();
        for threads in [1usize, 2, 4] {
            prop_assert_eq!(
                &model.run_event_sharded(threads),
                &serial,
                "seed {} components {} diverged at {} threads",
                seed, components, threads
            );
        }
    }
}
