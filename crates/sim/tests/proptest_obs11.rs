//! Property test for Observation 1.1: on random series-parallel race
//! DAGs (parallel edges modelling repeated updates), the update-granular
//! simulation with unbounded processors never exceeds the DAG makespan
//! `Σ d_in` along the longest path — plus a pinned case where staggered
//! updates pipeline and the simulation strictly beats the bound.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtt_dag::{gen, Dag};
use rtt_sim::{simulate, simulate_works, simulate_works_ticks, ExecModel, UNBOUNDED};

/// Random two-terminal SP DAG whose edges are multiplied into parallel
/// update bundles — the §1 race-DAG shape, guaranteed series-parallel.
fn sp_race_dag(seed: u64, leaves: usize, max_copies: usize) -> Dag<(), ()> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = gen::random_sp(&mut rng, leaves).tt;
    let mut g: Dag<(), ()> = Dag::new();
    for _ in base.dag.node_ids() {
        g.add_node(());
    }
    for e in base.dag.edge_refs() {
        let copies = rng.random_range(1..=max_copies);
        g.add_parallel_edges(e.src, e.dst, (), copies).unwrap();
    }
    g
}

fn makespan_bound(g: &Dag<(), ()>) -> u64 {
    rtt_dag::longest_path_nodes(g, |v| g.in_degree(v) as u64)
        .expect("generated DAG is acyclic")
        .weight
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unbounded_simulation_never_exceeds_the_makespan(
        seed in 0u64..10_000,
        leaves in 1usize..20,
        max_copies in 1usize..8,
    ) {
        let g = sp_race_dag(seed, leaves, max_copies);
        let bound = makespan_bound(&g);
        let r = simulate(&g, UNBOUNDED);
        prop_assert!(
            r.finish <= bound,
            "Observation 1.1: simulated {} > makespan {bound}",
            r.finish
        );
        prop_assert_eq!(r.updates_applied, g.edge_count() as u64);
    }

    #[test]
    fn bounded_processors_respect_work_and_obs11(
        seed in 0u64..10_000,
        leaves in 1usize..12,
        processors in 1usize..5,
    ) {
        let g = sp_race_dag(seed, leaves, 4);
        let bound = makespan_bound(&g);
        let work = g.edge_count() as u64;
        let r = simulate(&g, processors);
        // work law + the unbounded bound both upper-bound greedy lists
        prop_assert!(r.finish <= work + bound);
        prop_assert!(r.finish >= work.div_ceil(processors as u64));
        prop_assert!(r.peak_parallelism <= processors);
        // adding processors never hurts, down to the unbounded finish
        prop_assert!(simulate(&g, UNBOUNDED).finish <= r.finish);
    }

    /// Differential: the event-heap engine must be **bit-identical** to
    /// the tick-loop baseline on random SP race DAGs (works = d_in, all
    /// cells pipelined) — finish, per-node finishes, update counts, and
    /// peak parallelism alike.
    #[test]
    fn event_engine_equals_tick_loop_on_race_dags(
        seed in 0u64..10_000,
        leaves in 1usize..20,
        max_copies in 1usize..8,
    ) {
        let g = sp_race_dag(seed, leaves, max_copies);
        let works: Vec<u64> = g
            .node_ids()
            .map(|v| g.in_degree(v) as u64)
            .collect();
        let event = simulate_works(&g, &works, UNBOUNDED);
        let ticks = simulate_works_ticks(&g, &works, UNBOUNDED);
        prop_assert_eq!(event, ticks);
    }

    /// Differential with *mixed release rules*: random per-node works
    /// (pipelined where the draw hits d_in, gated bundles and zero-work
    /// junctions elsewhere) — the certify-path shape.
    #[test]
    fn event_engine_equals_tick_loop_on_mixed_works(
        seed in 0u64..10_000,
        leaves in 1usize..16,
        max_copies in 1usize..6,
    ) {
        let g = sp_race_dag(seed, leaves, max_copies);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let works: Vec<u64> = g
            .node_ids()
            .map(|v| match rng.random_range(0..4u32) {
                0 => g.in_degree(v) as u64,       // pipelined
                1 => 0,                            // junction
                _ => rng.random_range(1..=9u64),   // gated bundle
            })
            .collect();
        let event = simulate_works(&g, &works, UNBOUNDED);
        let ticks = simulate_works_ticks(&g, &works, UNBOUNDED);
        prop_assert_eq!(event, ticks);
    }

    /// Differential on the Figure 2 reducer gadget itself — the shape
    /// every certification expansion is built from.
    #[test]
    fn event_engine_equals_tick_loop_on_reducer_models(
        n in 0u64..600,
        height in 0u32..7,
    ) {
        let model = ExecModel::reducer(n, height);
        prop_assert_eq!(model.run_event(), model.run_ticks(UNBOUNDED));
    }
}

/// Pinned pipelining witness: an SP DAG where the simulation strictly
/// beats the makespan bound because one parallel branch finishes early
/// and the join cell starts applying its updates while the slower
/// branch is still running.
///
/// Shape (series-parallel): `P( S(s→a1, a1→a2, 3×(a2→t)), S(s→b, 3×(b→t)) )`.
#[test]
fn pinned_staggered_updates_pipeline_below_the_bound() {
    let mut g: Dag<(), ()> = Dag::new();
    let s = g.add_node(());
    let a1 = g.add_node(());
    let a2 = g.add_node(());
    let b = g.add_node(());
    let t = g.add_node(());
    g.add_edge(s, a1, ()).unwrap();
    g.add_edge(a1, a2, ()).unwrap();
    g.add_parallel_edges(a2, t, (), 3).unwrap();
    g.add_edge(s, b, ()).unwrap();
    g.add_parallel_edges(b, t, (), 3).unwrap();

    // bound: s(0) → a1(1) → a2(1) → t(6) = 8
    let bound = makespan_bound(&g);
    assert_eq!(bound, 8);

    // simulation: b completes at tick 1 and t starts draining b's three
    // updates at tick 2, overlapping a2's work — strictly below 8
    let r = simulate(&g, UNBOUNDED);
    assert_eq!(r.finish, 7, "pipelined execution beats the bound");
    assert!(r.finish < bound);
}

/// And the boundary case Observation 1.1 is tight on: chains cannot
/// pipeline, so simulation equals the makespan exactly.
#[test]
fn pinned_chain_is_tight() {
    let mut g: Dag<(), ()> = Dag::new();
    let a = g.add_node(());
    let b = g.add_node(());
    let c = g.add_node(());
    g.add_parallel_edges(a, b, (), 5).unwrap();
    g.add_parallel_edges(b, c, (), 3).unwrap();
    let r = simulate(&g, UNBOUNDED);
    assert_eq!(r.finish, makespan_bound(&g));
    assert_eq!(r.finish, 8);
}
