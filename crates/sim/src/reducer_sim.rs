//! Step simulation of the Figure 2 recursive binary reducer.
//!
//! A reducer of height `h` has `2^h` leaf cells; `n` updates are split
//! evenly across the leaves and applied serially per cell (one tick
//! each). When a cell finishes, it merges into its sibling's survivor
//! (§1's "a node can become its own parent" trick: each pairwise merge
//! is one extra update). §1 claims completion in `⌈n/2^h⌉ + h + 1`
//! ticks given at least `2^h` processors; this module replays the
//! protocol tick-by-tick and also measures the degradation with fewer
//! processors.

use rtt_duration::{ceil_div, Time};

/// Outcome of a reducer simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReducerSim {
    /// Tick at which the root variable holds the final value.
    pub finish: Time,
    /// Total updates applied (leaf updates + merges + final root update).
    pub total_updates: u64,
    /// Processors actually used at peak.
    pub peak_parallelism: usize,
}

/// Simulates a height-`h` sibling reducer applying `n` updates with `p`
/// processors (use `usize::MAX` for unbounded).
///
/// Protocol per tick: every live cell with pending work and a processor
/// applies one update. When all leaf updates of a pair are done, the
/// later-finishing sibling spends one update merging into the survivor;
/// survivors pair up recursively; the last survivor spends one final
/// update writing the shared variable.
pub fn simulate_reducer(n: u64, height: u32, p: usize) -> ReducerSim {
    assert!(p > 0);
    if height == 0 {
        // plain lock-serialized cell: n updates, one at a time.
        return ReducerSim {
            finish: n,
            total_updates: n,
            peak_parallelism: 1.min(n as usize),
        };
    }
    let leaves = 1usize << height;
    // Tournament in heap layout: internal pairs 1..L, leaves L..2L.
    // pending[i] = updates the cell at heap position i still has to
    // apply (leaf shares; merges appear as one pending update when both
    // children complete; position 0 models the final root update).
    let mut pending: Vec<u64> = vec![0; 2 * leaves];
    for i in 0..leaves {
        pending[leaves + i] =
            n / leaves as u64 + u64::from((i as u64) < n % leaves as u64);
    }
    // children_left[pos] = children of internal pair `pos` still running
    let mut children_left: Vec<u8> = vec![2; leaves];
    children_left[0] = 1; // "pair" 0 is the root variable: one child (pos 1)

    // Leaves with no updates at all complete immediately.
    let mut completions: Vec<usize> = (0..leaves)
        .filter(|&i| pending[leaves + i] == 0)
        .map(|i| leaves + i)
        .collect();

    let mut tick: Time = 0;
    let mut total: u64 = 0;
    let mut peak = 0usize;
    let mut done = false;
    while !done {
        // completions of the previous tick unlock their parent merge
        for pos in std::mem::take(&mut completions) {
            let parent = pos / 2;
            children_left[parent] -= 1;
            if children_left[parent] == 0 {
                pending[parent] = 1; // the merge (or root write) itself
            }
        }
        // one update per busy cell per tick, at most p cells
        let busy: Vec<usize> = (0..2 * leaves).filter(|&i| pending[i] > 0).collect();
        if busy.is_empty() {
            done = pending.iter().all(|&w| w == 0) && children_left[0] == 0;
            debug_assert!(done, "reducer execution stalled");
            break;
        }
        tick += 1;
        let used = busy.len().min(p);
        peak = peak.max(used);
        for &i in busy.iter().take(used) {
            pending[i] -= 1;
            total += 1;
            if pending[i] == 0 {
                if i == 0 {
                    done = true; // root variable written
                } else {
                    completions.push(i);
                }
            }
        }
    }

    ReducerSim {
        finish: tick,
        total_updates: total,
        peak_parallelism: peak.max(1),
    }
}

/// §1's analytic claim: `⌈n/2^h⌉ + h + 1` (for `h ≥ 1`, `n ≥ 2^h`).
pub fn analytic_time(n: u64, height: u32) -> Time {
    if height == 0 {
        n
    } else {
        ceil_div(n, 1 << height) + Time::from(height) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_analytic_formula_with_enough_processors() {
        for n in [8u64, 64, 100, 1000, 4096] {
            for h in 1..=6u32 {
                if n < (1 << h) {
                    continue;
                }
                let sim = simulate_reducer(n, h, usize::MAX);
                assert_eq!(
                    sim.finish,
                    analytic_time(n, h),
                    "n={n} h={h}: simulation vs ⌈n/2^h⌉+h+1"
                );
            }
        }
    }

    #[test]
    fn height_zero_serializes() {
        let sim = simulate_reducer(100, 0, usize::MAX);
        assert_eq!(sim.finish, 100);
        assert_eq!(sim.total_updates, 100);
    }

    #[test]
    fn update_count_accounts_merges() {
        // n leaf updates + (2^h - 1) merges + 1 root update
        let sim = simulate_reducer(64, 3, usize::MAX);
        assert_eq!(sim.total_updates, 64 + 7 + 1);
    }

    #[test]
    fn fewer_processors_degrade_gracefully() {
        let n = 256u64;
        let h = 4u32; // 16 leaves
        let full = simulate_reducer(n, h, 16).finish;
        let half = simulate_reducer(n, h, 8).finish;
        let one = simulate_reducer(n, h, 1).finish;
        assert_eq!(full, analytic_time(n, h));
        assert!(half > full, "8 processors must be slower: {half} vs {full}");
        // work law: with 1 processor it is at least total work
        assert!(one >= n + 16 + 1 - 1);
        assert!(half >= n / 8);
    }

    #[test]
    fn speedup_nearly_linear_in_space() {
        // §1: "the speedup achieved by a reducer is almost linear in the
        // amount of extra space used" for large n.
        let n = 1 << 16;
        let t0 = simulate_reducer(n, 0, usize::MAX).finish as f64;
        for h in [2u32, 4, 6, 8] {
            let th = simulate_reducer(n, h, usize::MAX).finish as f64;
            let speedup = t0 / th;
            let space = (1u64 << h) as f64;
            assert!(
                speedup > 0.8 * space && speedup <= space,
                "h={h}: speedup {speedup:.1} vs space {space}"
            );
        }
    }

    #[test]
    fn uneven_split_uses_ceiling() {
        // n=5, h=1: leaves get 3 and 2: finish = 3 + 1 + 1.
        let sim = simulate_reducer(5, 1, usize::MAX);
        assert_eq!(sim.finish, 5);
        assert_eq!(analytic_time(5, 1), 5);
    }
}
