//! Replay of the Figure 2 recursive binary reducer — a thin front end
//! of [`crate::model::ExecModel::reducer`].
//!
//! A reducer of height `h` has `2^h` leaf cells; `n` updates are split
//! evenly across the leaves and applied serially per cell (one tick
//! each). When a cell finishes, it merges into its sibling's survivor
//! (§1's "a node can become its own parent" trick: each pairwise merge
//! is one extra update). §1 claims completion in `⌈n/2^h⌉ + h + 1`
//! ticks given at least `2^h` processors; this module replays the
//! protocol on the shared execution core — the event-heap engine for
//! unbounded processors, the tick baseline when a processor limit
//! makes the greedy per-tick choice matter — and measures the
//! degradation with fewer processors. (The bespoke tournament loop this
//! module used to carry is gone: the reducer is just an [`ExecModel`].)

use crate::exec::UNBOUNDED;
use crate::model::ExecModel;
use rtt_duration::{ceil_div, Time};

/// Outcome of a reducer simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReducerSim {
    /// Tick at which the root variable holds the final value.
    pub finish: Time,
    /// Total updates applied (leaf updates + merges + final root update).
    pub total_updates: u64,
    /// Processors actually used at peak.
    pub peak_parallelism: usize,
}

/// Simulates a height-`h` sibling reducer applying `n` updates with `p`
/// processors (use `usize::MAX` for unbounded).
///
/// The protocol is the [`ExecModel::reducer`] gadget: every live cell
/// with released work and a processor applies one update per tick;
/// when both leaves of a pair are done, the merge applies one update;
/// survivors pair up recursively; the last survivor spends one final
/// update writing the shared variable. Under contention (`p < 2^h`)
/// the tick engine's most-loaded-first greedy decides who runs.
pub fn simulate_reducer(n: u64, height: u32, p: usize) -> ReducerSim {
    assert!(p > 0);
    let model = ExecModel::reducer(n, height);
    let r = if p == UNBOUNDED {
        model.run_event()
    } else {
        model.run_ticks(p)
    };
    ReducerSim {
        finish: r.finish,
        total_updates: r.updates_applied,
        peak_parallelism: r.peak_parallelism,
    }
}

/// §1's analytic claim: `⌈n/2^h⌉ + h + 1` (for `h ≥ 1`, `n ≥ 2^h`).
pub fn analytic_time(n: u64, height: u32) -> Time {
    if height == 0 {
        n
    } else {
        ceil_div(n, 1 << height) + Time::from(height) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_analytic_formula_with_enough_processors() {
        for n in [8u64, 64, 100, 1000, 4096] {
            for h in 1..=6u32 {
                if n < (1 << h) {
                    continue;
                }
                let sim = simulate_reducer(n, h, usize::MAX);
                assert_eq!(
                    sim.finish,
                    analytic_time(n, h),
                    "n={n} h={h}: simulation vs ⌈n/2^h⌉+h+1"
                );
            }
        }
    }

    #[test]
    fn height_zero_serializes() {
        let sim = simulate_reducer(100, 0, usize::MAX);
        assert_eq!(sim.finish, 100);
        assert_eq!(sim.total_updates, 100);
    }

    #[test]
    fn update_count_accounts_merges() {
        // n leaf updates + (2^h - 1) merges + 1 root update
        let sim = simulate_reducer(64, 3, usize::MAX);
        assert_eq!(sim.total_updates, 64 + 7 + 1);
    }

    #[test]
    fn exactly_2h_processors_suffice() {
        // the §1 claim needs only 2^h processors, not unbounded ones:
        // the tick engine at p = 2^h must match the event engine at ∞
        for (n, h) in [(64u64, 3u32), (256, 4), (100, 2)] {
            let full = simulate_reducer(n, h, 1 << h);
            let unbounded = simulate_reducer(n, h, usize::MAX);
            assert_eq!(full.finish, unbounded.finish, "n={n} h={h}");
            assert_eq!(full.finish, analytic_time(n, h));
        }
    }

    #[test]
    fn fewer_processors_degrade_gracefully() {
        let n = 256u64;
        let h = 4u32; // 16 leaves
        let full = simulate_reducer(n, h, 16).finish;
        let half = simulate_reducer(n, h, 8).finish;
        let one = simulate_reducer(n, h, 1).finish;
        assert_eq!(full, analytic_time(n, h));
        assert!(half > full, "8 processors must be slower: {half} vs {full}");
        // work law: with 1 processor it is at least total work
        assert!(one >= n + 16 + 1 - 1);
        assert!(half >= n / 8);
    }

    #[test]
    fn speedup_nearly_linear_in_space() {
        // §1: "the speedup achieved by a reducer is almost linear in the
        // amount of extra space used" for large n.
        let n = 1 << 16;
        let t0 = simulate_reducer(n, 0, usize::MAX).finish as f64;
        for h in [2u32, 4, 6, 8] {
            let th = simulate_reducer(n, h, usize::MAX).finish as f64;
            let speedup = t0 / th;
            let space = (1u64 << h) as f64;
            assert!(
                speedup > 0.8 * space && speedup <= space,
                "h={h}: speedup {speedup:.1} vs space {space}"
            );
        }
    }

    #[test]
    fn uneven_split_uses_ceiling() {
        // n=5, h=1: leaves get 3 and 2: finish = 3 + 1 + 1.
        let sim = simulate_reducer(5, 1, usize::MAX);
        assert_eq!(sim.finish, 5);
        assert_eq!(analytic_time(5, 1), 5);
    }
}
