//! # rtt-sim — discrete-event execution of race DAGs
//!
//! The paper's model (§1–2) executes a race DAG `D(P)` on a parallel
//! machine: every memory cell `x` applies its `d_in(x)` incoming updates
//! one at a time (a lock and a wait queue serialize them), and the
//! updates along `x`'s outgoing edges trigger as soon as `x` is fully
//! updated. Observation 1.1 states the running time with unbounded
//! processors is *at most* the makespan of `D(P)`.
//!
//! Since PR 5 the crate is built around **one execution core**,
//! [`model::ExecModel`] — a unified model of work-aware cells (release
//! rules: per-update pipelining, gated bundles, zero-work junctions;
//! see the module docs for the contract) with two engines:
//!
//! * [`model::ExecModel::run_event`] — the binary-heap **event
//!   simulator**: completions pop off a min-heap, each cell advances a
//!   single-server recurrence, cost `O((V + E) log V)` — independent of
//!   the makespan, which is what lets the engine certify long-running
//!   schedules without a cost cap;
//! * [`model::ExecModel::run_ticks`] — the tick-loop baseline
//!   (Θ(makespan · V)), kept measurable per the perf-PR protocol
//!   (`bench-pr5` compares the two in one binary) and serving bounded
//!   processor counts, where the greedy most-loaded-first choice is
//!   inherently per-tick.
//!
//! The front ends are thin views of that core:
//!
//! * [`exec::simulate`] / [`exec::simulate_works`] — update-granular
//!   simulation of a (work-annotated) DAG with `P` processors (use
//!   [`exec::UNBOUNDED`] for ∞), reproducing and *refining*
//!   Observation 1.1 (staggered updates can pipeline, so the simulated
//!   time can beat the makespan bound);
//! * [`reducer_sim`] — replay of the Figure 2 binary reducer
//!   ([`model::ExecModel::reducer`]), validating `⌈n/2^h⌉ + h + 1` and
//!   its degradation when fewer than `2^h` processors are available;
//! * [`parallel_mm`] — the Parallel-MM motivating workload (Figure 3):
//!   the race DAG of the `Z[i][j] += X[i][k]·Y[k][j]` inner loop, the
//!   `Θ(n/2^h + h)` per-cell tradeoff, and budget sweeps with both the
//!   longest-path and the executed finish per point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod model;
pub mod parallel_mm;
pub mod reducer_sim;

pub use exec::{simulate, simulate_works, simulate_works_ticks, SimResult, UNBOUNDED};
pub use model::ExecModel;
