//! # rtt-sim — discrete-event execution of race DAGs
//!
//! The paper's model (§1–2) executes a race DAG `D(P)` on a parallel
//! machine: every memory cell `x` applies its `d_in(x)` incoming updates
//! one at a time (a lock and a wait queue serialize them), and the
//! updates along `x`'s outgoing edges trigger as soon as `x` is fully
//! updated. Observation 1.1 states the running time with unbounded
//! processors is *at most* the makespan of `D(P)`.
//!
//! This crate executes that model tick-by-tick instead of trusting the
//! longest-path formula:
//!
//! * [`exec::simulate`] — update-granular simulation with `P` processors
//!   (use [`exec::UNBOUNDED`] for ∞), reproducing and *refining*
//!   Observation 1.1 (staggered updates can pipeline, so the simulated
//!   time can beat the makespan bound);
//! * [`reducer_sim`] — step simulation of the Figure 2 binary reducer,
//!   validating `⌈n/2^h⌉ + h + 1` and its degradation when fewer than
//!   `2^h` processors are available;
//! * [`parallel_mm`] — the Parallel-MM motivating workload (Figure 3):
//!   the race DAG of the `Z[i][j] += X[i][k]·Y[k][j]` inner loop, the
//!   `Θ(n/2^h + h)` per-cell tradeoff, and budget sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod parallel_mm;
pub mod reducer_sim;

pub use exec::{simulate, simulate_works, SimResult, UNBOUNDED};
