//! The Parallel-MM motivating workload (Figure 3 and the §1 analysis).
//!
//! `Parallel-MM` multiplies two n×n matrices with the `i`/`j` loops
//! parallel and the `k` loop racing on `Z[i][j]`: every output cell
//! receives `n` updates. Locking each `Z[i][j]` costs `Θ(n)` time even
//! with unbounded processors; a reducer of height `h` on each cell drops
//! the time to `Θ(n/2^h + h)` at `n²·2^h` extra space:
//!
//! * `h = 1` nearly halves the running time using `2n²` extra space;
//! * `h = ⌊log₂ n⌋` reaches `Θ(log n)` using `Θ(n³)` extra space.
//!
//! This module builds the actual race DAG of the kernel, applies the
//! physical reducer expansion of `rtt-duration`, and measures both the
//! longest path *and* the executed finish time — the expansion runs on
//! the shared [`ExecModel`] core (event-heap engine), so the analytic
//! curve is reproduced end to end and checked against the §1 execution
//! in one sweep.

use crate::model::ExecModel;
use rtt_dag::{Dag, NodeId};
use rtt_duration::expand::{expand_reducers, reducer_time, ReducerVariant};
use rtt_duration::Time;

/// The race DAG of Parallel-MM for n×n matrices.
///
/// Structure: a virtual source (the fork of the parallel loops) updates
/// every input cell `X[i][k]` once; output cell `Z[i][j]` receives one
/// update per `k` (routed from `X[i][k]`; the symmetric `Y[k][j]` read
/// joins the same update, so one arc per update keeps `w = d_in`).
/// The `Z` cells are the sinks — the kernel is done when all are final.
pub struct MmRaceDag {
    /// The DAG (one source, `n²` X cells, `n²` Z sinks).
    pub dag: Dag<(), ()>,
    /// The source node.
    pub source: NodeId,
    /// The `Z[i][j]` cells, row-major.
    pub z_cells: Vec<NodeId>,
}

/// Builds the race DAG (use small `n`; the graph has `Θ(n³)` edges).
pub fn race_dag(n: usize) -> MmRaceDag {
    assert!(n >= 1);
    let mut dag: Dag<(), ()> = Dag::with_capacity(1 + 2 * n * n, n * n + n * n * n);
    let source = dag.add_node(());
    let x: Vec<NodeId> = (0..n * n).map(|_| dag.add_node(())).collect();
    for &xc in &x {
        dag.add_edge(source, xc, ()).unwrap();
    }
    let mut z_cells = Vec::with_capacity(n * n);
    for i in 0..n {
        for _j in 0..n {
            let z = dag.add_node(());
            for k in 0..n {
                dag.add_edge(x[i * n + k], z, ()).unwrap();
            }
            z_cells.push(z);
        }
    }
    MmRaceDag {
        dag,
        source,
        z_cells,
    }
}

/// Analytic completion time with per-cell reducers of height `h`
/// (unbounded processors): 1 tick for the X update, then the reducer.
pub fn analytic_time(n: u64, h: u32) -> Time {
    1 + reducer_time(n, h, ReducerVariant::Sibling)
}

/// The reducer expansion of the n×n kernel with height-`h` reducers on
/// every `Z` cell, built once: its longest-path makespan and the
/// executable [`ExecModel`]. The single construction behind
/// [`measured_time`], [`simulated_time`], and the bench harness (the
/// race DAG has Θ(n³) edges — don't build it twice per curve point).
pub fn expansion_model(n: usize, h: u32) -> (Time, ExecModel) {
    let mm = race_dag(n);
    let mut heights = vec![0u32; mm.dag.node_count()];
    for z in &mm.z_cells {
        heights[z.index()] = h;
    }
    let exp = expand_reducers(&mm.dag, &heights, ReducerVariant::Sibling);
    let works: Vec<Time> = exp.dag.node_ids().map(|v| exp.dag.node(v).work).collect();
    (exp.makespan(), ExecModel::from_works(&exp.dag, &works))
}

/// Measured completion time: build the race DAG, physically expand a
/// height-`h` reducer on every `Z` cell, and take the longest path.
pub fn measured_time(n: usize, h: u32) -> Time {
    expansion_model(n, h).0
}

/// Executed completion time: the same reducer expansion replayed on the
/// event-heap core with unbounded processors. Observation 1.1
/// guarantees `simulated_time ≤ measured_time`; on Parallel-MM the two
/// coincide (all `Z` cells sit in one parallel layer, exactly where the
/// bound is tight).
pub fn simulated_time(n: usize, h: u32) -> Time {
    expansion_model(n, h).1.run_event().finish
}

/// One point of the Figure 3 tradeoff curve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MmCurvePoint {
    /// Reducer height on every `Z[i][j]`.
    pub height: u32,
    /// Total extra space (`n² · 2^h`; 0 for `h = 0`).
    pub extra_space: u64,
    /// Analytic time `1 + ⌈n/2^h⌉ + h + 1`.
    pub analytic: Time,
    /// Longest path of the physically expanded DAG.
    pub measured: Time,
    /// Executed finish of the expansion on the event core
    /// (Observation 1.1: `≤ measured`; equal on this workload).
    pub simulated: Time,
}

/// Sweeps reducer heights `0..=h_max` for n×n Parallel-MM.
pub fn tradeoff_curve(n: usize, h_max: u32) -> Vec<MmCurvePoint> {
    (0..=h_max)
        .map(|h| {
            let (measured, model) = expansion_model(n, h);
            MmCurvePoint {
                height: h,
                extra_space: if h == 0 {
                    0
                } else {
                    (n * n) as u64 * (1u64 << h)
                },
                analytic: analytic_time(n as u64, h),
                measured,
                simulated: model.run_event().finish,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{simulate, UNBOUNDED};

    #[test]
    fn race_dag_shape() {
        let mm = race_dag(4);
        assert_eq!(mm.dag.node_count(), 1 + 16 + 16);
        assert_eq!(mm.dag.edge_count(), 16 + 64);
        for &z in &mm.z_cells {
            assert_eq!(mm.dag.in_degree(z), 4, "each Z gets n updates");
            assert_eq!(mm.dag.out_degree(z), 0, "Z cells are sinks");
        }
    }

    #[test]
    fn lock_only_time_is_theta_n() {
        // Without reducers each Z serializes its n updates: 1 + n.
        for n in [2usize, 4, 8] {
            assert_eq!(measured_time(n, 0), 1 + n as u64);
            let mm = race_dag(n);
            let sim = simulate(&mm.dag, UNBOUNDED);
            assert_eq!(sim.finish, 1 + n as u64);
        }
    }

    #[test]
    fn height_one_nearly_halves() {
        // §1: h = 1 almost halves the running time (2n² extra space).
        let n = 64;
        let t0 = measured_time(n, 0);
        let t1 = measured_time(n, 1);
        assert_eq!(t1, 1 + 32 + 2);
        assert!((t1 as f64) < 0.6 * t0 as f64, "{t1} vs {t0}");
    }

    #[test]
    fn log_height_reaches_theta_log() {
        let n = 64usize;
        let h = 6; // log2(64)
        let t = measured_time(n, h);
        // ⌈64/64⌉ + 6 + 1 + 1 = 9: Θ(log n)
        assert_eq!(t, 9);
    }

    #[test]
    fn measured_matches_analytic_everywhere() {
        for n in [4usize, 7, 16] {
            for h in 0..=3u32 {
                assert_eq!(
                    measured_time(n, h),
                    analytic_time(n as u64, h),
                    "n={n} h={h}"
                );
            }
        }
    }

    #[test]
    fn simulated_coincides_with_measured_on_one_parallel_layer() {
        // All Z cells run in a single parallel layer with uniform
        // arrival times — exactly where Observation 1.1 is tight, so
        // the executed expansion matches the longest path everywhere.
        for n in [4usize, 7, 16] {
            for h in 0..=3u32 {
                let (measured, model) = expansion_model(n, h);
                assert_eq!(model.run_event().finish, measured, "n={n} h={h}");
            }
        }
    }

    #[test]
    fn curve_is_convex_ish_with_sweet_spot() {
        // Time falls as h grows, then the +h term dominates.
        let curve = tradeoff_curve(32, 8);
        let times: Vec<u64> = curve.iter().map(|p| p.measured).collect();
        let min = *times.iter().min().unwrap();
        assert!(times[0] > min, "h=0 is not optimal");
        assert!(
            *times.last().unwrap() >= min,
            "excessive height should not keep helping"
        );
        // space accounting
        assert_eq!(curve[1].extra_space, 32 * 32 * 2);
    }
}
