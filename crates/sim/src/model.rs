//! The unified execution model ([`ExecModel`]) and its two engines —
//! the binary-heap **event simulator** ([`ExecModel::run_event`]) and
//! the tick-loop baseline ([`ExecModel::run_ticks`]).
//!
//! Every simulator in this crate — the race-DAG executor of
//! [`crate::exec`], the Figure 2 reducer replay of
//! [`crate::reducer_sim`], and the engine's Observation 1.1
//! certification of reducer-expanded solutions — runs the same physical
//! model: memory cells applying updates one per tick behind their
//! locks. This module is that model's single implementation.
//!
//! # The `ExecModel` contract
//!
//! A model is a DAG of *cells*; cell `v` must apply `works[v]` updates,
//! one per tick, once they are *released*:
//!
//! * **pipelined** (`works[v] == d_in(v)`, the §1 race-DAG convention):
//!   each predecessor completion releases exactly one update, so a cell
//!   drains early arrivals while later predecessors are still running —
//!   this is what lets the simulation beat the makespan bound;
//! * **gated** (`works[v] != d_in(v)`): all `works[v]` updates release
//!   only once *every* predecessor has completed — how a sibling merge
//!   waits for both children, and how a serialized cell of explicit
//!   work `t` waits for its precedences;
//! * **zero-work** cells complete the instant their last predecessor
//!   does (same-tick cascade).
//!
//! Both engines implement this contract exactly; for unbounded
//! processors they are *equal by construction and by differential
//! proptest* (`tests/proptest_obs11.rs`): with no processor limit,
//! cells never contend, so each cell is an independent single-server
//! queue and its busy ticks follow the recurrence
//! `c_i = max(c_{i-1}, t_i) + 1` over its sorted release times `t_i`.
//! The event engine runs that recurrence directly off a completion-time
//! heap — **O((V + E) log V)**, independent of the makespan — while the
//! tick loop rescans every cell every tick, Θ(T·V). `bench-pr5`
//! measures the gap; the tick loop stays in-tree as the measurable
//! baseline and as the only engine for *bounded* processor counts,
//! whose greedy most-loaded-first policy is decided tick by tick.

use crate::exec::SimResult;
use rtt_budget::{BudgetMeter, Exhausted};
use rtt_dag::{Dag, NodeId};
use rtt_duration::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A flattened instance of the update-granular execution model — the
/// DAG shape plus per-cell work, with the release rule per cell
/// precomputed (see the module docs for the contract).
#[derive(Debug, Clone)]
pub struct ExecModel {
    /// Successor cell indices, one entry per update arc (multiplicity
    /// preserved: `k` parallel arcs appear `k` times).
    succs: Vec<Vec<u32>>,
    /// Updates each cell applies.
    works: Vec<Time>,
    /// Incoming update arcs per cell (`d_in`).
    indeg: Vec<usize>,
    /// `works[v] == d_in(v)`: per-update release (§1 pipelining).
    pipelined: Vec<bool>,
    /// Total update arcs (= Σ out-degrees).
    edges: u64,
}

impl ExecModel {
    /// Builds a model from a DAG and an explicit per-cell work vector.
    ///
    /// # Panics
    /// If `works.len() != g.node_count()`. Acyclicity is the caller's
    /// responsibility (checked in debug builds; a cyclic model panics
    /// at execution with "stalled").
    pub fn from_works<N, E>(g: &Dag<N, E>, works: &[Time]) -> Self {
        let n = g.node_count();
        assert_eq!(works.len(), n, "one work value per cell required");
        debug_assert!(rtt_dag::is_acyclic(g), "execution model requires a DAG");
        let succs: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                g.out_edges(NodeId(i as u32))
                    .iter()
                    .map(|&e| g.dst(e).0)
                    .collect()
            })
            .collect();
        let indeg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId(i as u32))).collect();
        let pipelined: Vec<bool> = (0..n).map(|i| works[i] == indeg[i] as Time).collect();
        ExecModel {
            succs,
            works: works.to_vec(),
            indeg,
            pipelined,
            edges: g.edge_count() as u64,
        }
    }

    /// The §1 race-DAG model: every cell's work is its in-degree (one
    /// update per incoming arc, all cells pipelined).
    pub fn race_dag<N, E>(g: &Dag<N, E>) -> Self {
        let works: Vec<Time> = (0..g.node_count())
            .map(|i| g.in_degree(NodeId(i as u32)) as Time)
            .collect();
        Self::from_works(g, &works)
    }

    /// The Figure 2 sibling reducer applying `n` updates at height
    /// `height`: `2^h` leaf cells splitting the load (ceiling split),
    /// `h` levels of one-update sibling merges gated on both children,
    /// and the final root update of the shared variable. Height 0 is
    /// the plain lock-serialized cell. Completion with unbounded
    /// processors is `⌈n/2^h⌉ + h + 1` (§1, Eq. 3).
    pub fn reducer(n: u64, height: u32) -> Self {
        let mut g: Dag<(), ()> = Dag::new();
        let mut works: Vec<Time> = Vec::new();
        if height == 0 {
            g.add_node(());
            works.push(n);
            return Self::from_works(&g, &works);
        }
        let leaves = 1u64 << height;
        let mut level: Vec<NodeId> = (0..leaves)
            .map(|i| {
                let v = g.add_node(());
                works.push(n / leaves + u64::from(i < n % leaves));
                v
            })
            .collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len() / 2);
            for pair in level.chunks(2) {
                let m = g.add_node(());
                works.push(1);
                for &c in pair {
                    g.add_edge(c, m, ()).expect("fresh nodes");
                }
                next.push(m);
            }
            level = next;
        }
        let root = g.add_node(());
        works.push(1);
        g.add_edge(level[0], root, ()).expect("fresh nodes");
        Self::from_works(&g, &works)
    }

    /// Number of cells.
    pub fn node_count(&self) -> usize {
        self.works.len()
    }

    /// Total updates the model applies when run to completion.
    pub fn update_count(&self) -> u64 {
        self.works.iter().sum()
    }

    /// Events the heap engine processes to completion: one completion
    /// per cell plus one release per update arc. This — not the
    /// makespan, not the update count — is what a [`Self::run_event`]
    /// call costs, which is why the engine's certification guard is an
    /// event-count bound.
    pub fn event_count(&self) -> u64 {
        self.works.len() as u64 + self.edges
    }

    /// Executes the model with **unbounded processors** on the
    /// binary-heap event engine: completions pop off a min-heap in time
    /// order, each completion releases updates to its successors, and
    /// every cell advances its single-server recurrence incrementally.
    /// `O((V + E) log V)`; bit-identical to
    /// [`run_ticks(UNBOUNDED)`](Self::run_ticks).
    ///
    /// # Panics
    /// If the model is cyclic ("stalled").
    pub fn run_event(&self) -> SimResult {
        self.run_event_metered(None)
            .expect("an unmetered simulation cannot exhaust")
    }

    /// [`Self::run_event`] under a cooperative budget meter: each popped
    /// completion charges itself plus the releases it fans out (one
    /// batched `sim_events` charge per pop — the same quantity
    /// [`Self::event_count`] bounds a priori), so an over-budget
    /// simulation stops mid-run with a typed [`Exhausted`] instead of
    /// processing its remaining heap.
    ///
    /// # Panics
    /// If the model is cyclic ("stalled") and the meter never trips.
    pub fn run_event_metered(
        &self,
        meter: Option<&BudgetMeter>,
    ) -> Result<SimResult, Exhausted> {
        let (finish, mut deltas) = self.run_event_deltas(meter)?;
        let peak = sweep_peak(&mut deltas);
        Ok(SimResult {
            finish: finish.iter().copied().max().unwrap_or(0),
            node_finish: finish,
            updates_applied: self.update_count(),
            peak_parallelism: peak,
        })
    }

    /// The event engine proper: per-cell finish times plus the raw busy
    /// intervals (as `(tick, ±1)` deltas, unsorted) — the pieces
    /// [`Self::run_event_metered`] sweeps directly and
    /// [`Self::run_event_sharded`] merges across shards.
    fn run_event_deltas(&self, meter: Option<&BudgetMeter>) -> Result<FinishAndDeltas, Exhausted> {
        let n = self.works.len();
        let mut preds_left = self.indeg.clone();
        let mut finish: Vec<Time> = vec![0; n];
        // (completion time, cell) min-heap; ties pop in id order
        let mut heap: BinaryHeap<Reverse<(Time, u32)>> = BinaryHeap::new();
        // pipelined cells: last busy tick + the open busy-run start
        let mut cursor: Vec<Time> = vec![0; n];
        let mut run_start: Vec<Time> = vec![0; n];
        let mut open: Vec<bool> = vec![false; n];
        // gated cells: latest predecessor completion
        let mut gate: Vec<Time> = vec![0; n];
        // busy intervals (closed [start, end] in ticks) for the peak
        let mut deltas: Vec<(Time, i32)> = Vec::new();
        let busy = |deltas: &mut Vec<(Time, i32)>, s: Time, e: Time| {
            debug_assert!(s >= 1 && s <= e);
            deltas.push((s, 1));
            deltas.push((e + 1, -1));
        };

        for i in 0..n {
            if self.indeg[i] == 0 {
                if self.works[i] == 0 {
                    heap.push(Reverse((0, i as u32)));
                } else {
                    finish[i] = self.works[i];
                    busy(&mut deltas, 1, self.works[i]);
                    heap.push(Reverse((self.works[i], i as u32)));
                }
            }
        }

        let mut completed = 0usize;
        while let Some(Reverse((t, v))) = heap.pop() {
            completed += 1;
            if let Some(m) = meter {
                // this pop plus every release it fans out, in one charge
                m.charge_sim_events(1 + self.succs[v as usize].len() as u64)?;
            }
            for &wi in &self.succs[v as usize] {
                let w = wi as usize;
                preds_left[w] -= 1;
                if self.pipelined[w] {
                    // this completion releases one update; the cell
                    // applies it at the next free tick
                    let nb = cursor[w].max(t) + 1;
                    if !open[w] {
                        open[w] = true;
                        run_start[w] = nb;
                    } else if nb > cursor[w] + 1 {
                        // idle gap: close the finished run
                        busy(&mut deltas, run_start[w], cursor[w]);
                        run_start[w] = nb;
                    }
                    cursor[w] = nb;
                    if preds_left[w] == 0 {
                        // pipelined ⇒ works == d_in: the last release
                        // is the last update
                        finish[w] = nb;
                        busy(&mut deltas, run_start[w], nb);
                        heap.push(Reverse((nb, wi)));
                    }
                } else {
                    gate[w] = gate[w].max(t);
                    if preds_left[w] == 0 {
                        let f = if self.works[w] == 0 {
                            gate[w] // zero-work: same-tick cascade
                        } else {
                            busy(&mut deltas, gate[w] + 1, gate[w] + self.works[w]);
                            gate[w] + self.works[w]
                        };
                        finish[w] = f;
                        heap.push(Reverse((f, wi)));
                    }
                }
            }
        }
        assert_eq!(completed, n, "execution stalled: the model is cyclic");
        Ok((finish, deltas))
    }

    /// Weakly-connected components of the update-arc graph: cells in
    /// different components never exchange releases, so each is an
    /// independent simulation. Components are ordered by their smallest
    /// cell id, cells ascending within each — a pure function of the
    /// model, independent of any thread count.
    fn weak_components(&self) -> Vec<Vec<u32>> {
        let n = self.works.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for v in 0..n {
            for wi in 0..self.succs[v].len() {
                let w = self.succs[v][wi];
                let a = find(&mut parent, v as u32);
                let b = find(&mut parent, w);
                if a != b {
                    // union toward the smaller root id — deterministic
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    parent[hi as usize] = lo;
                }
            }
        }
        let mut slot_of_root: Vec<usize> = vec![usize::MAX; n];
        let mut comps: Vec<Vec<u32>> = Vec::new();
        for v in 0..n as u32 {
            let r = find(&mut parent, v) as usize;
            if slot_of_root[r] == usize::MAX {
                slot_of_root[r] = comps.len();
                comps.push(Vec::new());
            }
            comps[slot_of_root[r]].push(v);
        }
        comps
    }

    /// [`Self::run_event`] with weakly-connected components simulated
    /// concurrently — **bit-identical** to the serial engine at any
    /// `threads` value:
    ///
    /// * the component partition is a pure function of the model (see
    ///   [`Self::weak_components`]);
    /// * each shard is an index-compacted submodel whose cell order
    ///   preserves global id order, so its heap tie-breaks match the
    ///   serial run's and every absolute finish time is unchanged;
    /// * `finish` is the max over per-cell times (order-independent),
    ///   `node_finish` scatters back through the shard's id list,
    ///   `updates_applied` is [`Self::update_count`] (a model property),
    ///   and peak parallelism sweeps the *merged* delta multiset from
    ///   all shards — the same sorted sequence the serial sweep sees.
    ///
    /// Single-component models just run the serial engine. Metered
    /// replay never shards (exhaustion stop-points are wire-visible and
    /// must not depend on shard scheduling); `rtt_engine::certify`
    /// gates accordingly.
    ///
    /// # Panics
    /// If the model is cyclic ("stalled").
    pub fn run_event_sharded(&self, threads: usize) -> SimResult {
        let comps = self.weak_components();
        if comps.len() <= 1 {
            return self.run_event();
        }
        let n = self.works.len();
        let mut local_of: Vec<u32> = vec![0; n];
        for cells in &comps {
            for (l, &g) in cells.iter().enumerate() {
                local_of[g as usize] = l as u32;
            }
        }
        let shards: Vec<ExecModel> = comps
            .iter()
            .map(|cells| {
                let succs: Vec<Vec<u32>> = cells
                    .iter()
                    .map(|&g| {
                        self.succs[g as usize]
                            .iter()
                            .map(|&w| local_of[w as usize])
                            .collect()
                    })
                    .collect();
                let edges = succs.iter().map(|s| s.len() as u64).sum();
                ExecModel {
                    succs,
                    works: cells.iter().map(|&g| self.works[g as usize]).collect(),
                    indeg: cells.iter().map(|&g| self.indeg[g as usize]).collect(),
                    pipelined: cells
                        .iter()
                        .map(|&g| self.pipelined[g as usize])
                        .collect(),
                    edges,
                }
            })
            .collect();
        let parts = rtt_par::map_chunks(shards.len(), 1, threads, |i, _| {
            shards[i]
                .run_event_deltas(None)
                .expect("an unmetered simulation cannot exhaust")
        });
        let mut node_finish: Vec<Time> = vec![0; n];
        let mut deltas: Vec<(Time, i32)> = Vec::new();
        for (cells, (finish, d)) in comps.iter().zip(parts) {
            for (l, &g) in cells.iter().enumerate() {
                node_finish[g as usize] = finish[l];
            }
            deltas.extend(d);
        }
        let peak = sweep_peak(&mut deltas);
        SimResult {
            finish: node_finish.iter().copied().max().unwrap_or(0),
            node_finish,
            updates_applied: self.update_count(),
            peak_parallelism: peak,
        }
    }

    /// Executes the model tick by tick with `processors` processors
    /// (use [`crate::exec::UNBOUNDED`] for ∞): each tick, the at most
    /// `processors` cells with the most remaining work (ties by id)
    /// each apply one released update. Θ(T·V) — the measurable baseline
    /// the event engine is benchmarked against (`bench-pr5`), and the
    /// reference semantics for bounded processor counts.
    ///
    /// # Panics
    /// If `processors == 0`, or the model is cyclic ("stalled").
    pub fn run_ticks(&self, processors: usize) -> SimResult {
        assert!(processors > 0, "need at least one processor");
        let n = self.works.len();
        let mut preds_left = self.indeg.clone();
        let mut remaining: Vec<Time> = self.works.clone();
        let mut available: Vec<Time> = vec![0; n];
        let mut finish: Vec<Time> = vec![0; n];
        let mut complete: Vec<bool> = vec![false; n];

        // Sources: zero-work ones complete immediately; working ones
        // have their whole load available from tick 1.
        let mut newly_complete: Vec<u32> = Vec::new();
        let mut completed = 0usize;
        for i in 0..n {
            if preds_left[i] == 0 {
                if self.works[i] == 0 {
                    complete[i] = true;
                    newly_complete.push(i as u32);
                    completed += 1;
                } else {
                    available[i] = self.works[i];
                }
            }
        }

        let mut tick: Time = 0;
        let mut updates_applied = 0u64;
        let mut peak = 0usize;

        while completed < n {
            // release updates triggered by completions (zero-work cells
            // cascade within the same tick: they finish when their last
            // predecessor does)
            while let Some(v) = newly_complete.pop() {
                for &wi in &self.succs[v as usize] {
                    let i = wi as usize;
                    preds_left[i] -= 1;
                    if self.pipelined[i] {
                        available[i] += 1;
                    } else if preds_left[i] == 0 {
                        available[i] = remaining[i];
                    }
                    if preds_left[i] == 0 && remaining[i] == 0 && !complete[i] {
                        complete[i] = true;
                        finish[i] = tick;
                        newly_complete.push(wi);
                        completed += 1;
                    }
                }
            }
            if completed == n {
                break;
            }
            tick += 1;
            // pick up to `processors` cells with available updates,
            // most remaining work first (deterministic tie-break by id)
            let mut ready: Vec<usize> = (0..n)
                .filter(|&i| !complete[i] && available[i] > 0)
                .collect();
            // Some incomplete cell has all predecessors complete (the
            // DAG has no cycle), and it always has available updates.
            assert!(!ready.is_empty(), "execution stalled: the model is cyclic");
            ready.sort_by_key(|&i| (Time::MAX - remaining[i], i));
            let used = ready.len().min(processors);
            peak = peak.max(used);
            for &i in ready.iter().take(used) {
                available[i] -= 1;
                remaining[i] -= 1;
                updates_applied += 1;
                if remaining[i] == 0 && preds_left[i] == 0 {
                    complete[i] = true;
                    finish[i] = tick;
                    newly_complete.push(i as u32);
                    completed += 1;
                }
            }
        }

        SimResult {
            finish: finish.iter().copied().max().unwrap_or(0),
            node_finish: finish,
            updates_applied,
            peak_parallelism: peak,
        }
    }
}

/// Per-cell finish times plus the raw `(tick, ±1)` busy-interval
/// deltas (unsorted) — what [`sweep_peak`] consumes, produced by one
/// serial run or concatenated across shards.
type FinishAndDeltas = (Vec<Time>, Vec<(Time, i32)>);

/// Sorts the `(tick, ±1)` busy-interval deltas and sweeps for the
/// maximum concurrent count. Operating on the sorted multiset makes the
/// result independent of how the deltas were produced — one serial run
/// or a concatenation of per-shard runs sweep identically.
fn sweep_peak(deltas: &mut [(Time, i32)]) -> usize {
    deltas.sort_unstable();
    let mut peak = 0i32;
    let mut cur = 0i32;
    let mut i = 0;
    while i < deltas.len() {
        let t = deltas[i].0;
        while i < deltas.len() && deltas[i].0 == t {
            cur += deltas[i].1;
            i += 1;
        }
        peak = peak.max(cur);
    }
    peak as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::UNBOUNDED;

    /// The Figure 4 DAG as a race model.
    fn figure4() -> ExecModel {
        let mut g: Dag<(), ()> = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, ()).unwrap();
        g.add_edge(s, b, ()).unwrap();
        g.add_edge(a, b, ()).unwrap();
        g.add_parallel_edges(a, c, (), 3).unwrap();
        g.add_parallel_edges(b, c, (), 3).unwrap();
        g.add_edge(c, d, ()).unwrap();
        g.add_edge(d, t, ()).unwrap();
        ExecModel::race_dag(&g)
    }

    #[test]
    fn event_equals_ticks_on_figure4() {
        let m = figure4();
        assert_eq!(m.run_event(), m.run_ticks(UNBOUNDED));
    }

    #[test]
    fn event_count_is_nodes_plus_edges() {
        let m = figure4();
        assert_eq!(m.event_count(), 6 + 11);
        assert_eq!(m.update_count(), 11);
    }

    #[test]
    fn event_engine_pipelines_below_the_makespan() {
        // Figure 4's makespan bound is 11; the pipelined execution
        // beats it (same as the tick engine always did).
        let r = figure4().run_event();
        assert!(r.finish < 11, "got {}", r.finish);
    }

    #[test]
    fn gated_and_pipelined_mix_matches_ticks() {
        // a(3), b(1) → merge (work 1, gated) → zero-work junction →
        // pipelined sink of the junction's single arc
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let m = g.add_node(());
        let j = g.add_node(());
        let t = g.add_node(());
        g.add_edge(a, m, ()).unwrap();
        g.add_edge(b, m, ()).unwrap();
        g.add_edge(m, j, ()).unwrap();
        g.add_edge(j, t, ()).unwrap();
        let model = ExecModel::from_works(&g, &[3, 1, 1, 0, 1]);
        let ev = model.run_event();
        assert_eq!(ev, model.run_ticks(UNBOUNDED));
        // a finishes at 3, merge applies at 4, junction cascades at 4,
        // sink applies its one update at 5
        assert_eq!(ev.finish, 5);
        assert_eq!(ev.node_finish[j.index()], 4);
    }

    #[test]
    fn idle_gaps_split_busy_runs_for_the_peak() {
        // hub receives one early update (from a fast chain) and three
        // late ones: its busy run has a gap, and the peak must still
        // count overlapping cells correctly in both engines.
        let mut g: Dag<(), ()> = Dag::new();
        let fast = g.add_node(());
        let slow = g.add_node(());
        let hub = g.add_node(());
        g.add_edge(fast, hub, ()).unwrap();
        g.add_parallel_edges(slow, hub, (), 3).unwrap();
        let model = ExecModel::from_works(&g, &[1, 6, 4]);
        let ev = model.run_event();
        let tk = model.run_ticks(UNBOUNDED);
        assert_eq!(ev, tk);
        // hub applies fast's update at tick 2, idles 3..=6 while slow
        // (gated, 6 ticks) runs, then drains 3 updates at 7, 8, 9
        assert_eq!(ev.finish, 9);
    }

    #[test]
    fn reducer_model_matches_eq3() {
        for (n, h) in [(64u64, 3u32), (100, 2), (1000, 6), (5, 1)] {
            let m = ExecModel::reducer(n, h);
            let r = m.run_event();
            let leaves = 1u64 << h;
            assert_eq!(
                r.finish,
                n.div_ceil(leaves) + u64::from(h) + 1,
                "n={n} h={h}"
            );
            assert_eq!(r.updates_applied, n + (leaves - 1) + 1);
            assert_eq!(r, m.run_ticks(UNBOUNDED));
        }
    }

    #[test]
    fn reducer_height_zero_serializes() {
        let m = ExecModel::reducer(100, 0);
        assert_eq!(m.run_event().finish, 100);
        assert_eq!(m.event_count(), 1);
    }

    #[test]
    fn long_chain_event_cost_is_independent_of_makespan() {
        // 64 cells of 10_000 updates each: the event engine processes
        // 127 events; the tick loop would walk 640_000 ticks. This test
        // runs the event engine only — run_ticks here is exactly what
        // bench-pr5 measures as the baseline.
        let mut g: Dag<(), ()> = Dag::new();
        let mut prev = g.add_node(());
        for _ in 0..63 {
            let v = g.add_node(());
            g.add_edge(prev, v, ()).unwrap();
            prev = v;
        }
        let m = ExecModel::from_works(&g, &vec![10_000u64; 64]);
        assert_eq!(m.event_count(), 64 + 63);
        let r = m.run_event();
        assert_eq!(r.finish, 640_000);
        assert_eq!(r.updates_applied, 640_000);
        assert_eq!(r.peak_parallelism, 1);
    }

    #[test]
    #[should_panic(expected = "one work value per cell")]
    fn wrong_work_length_rejected() {
        let mut g: Dag<(), ()> = Dag::new();
        g.add_node(());
        ExecModel::from_works(&g, &[1, 2]);
    }

    /// Many disconnected diamond components with interleaved node ids
    /// (cells of different components alternate), plus one isolated
    /// zero-work cell — the sharded engine must reconstruct the exact
    /// serial result from per-shard runs.
    fn multi_component(k: usize) -> ExecModel {
        let mut g: Dag<(), ()> = Dag::new();
        let mut works: Vec<Time> = Vec::new();
        let mut roots = Vec::new();
        for c in 0..k as u64 {
            let s = g.add_node(());
            works.push(2 + c % 3);
            roots.push(s);
        }
        for (c, &s) in roots.iter().enumerate() {
            let c = c as u64;
            let a = g.add_node(());
            let b = g.add_node(());
            let t = g.add_node(());
            g.add_edge(s, a, ()).unwrap();
            g.add_edge(s, b, ()).unwrap();
            g.add_parallel_edges(a, t, (), 1 + (c % 2) as usize).unwrap();
            g.add_edge(b, t, ()).unwrap();
            works.push(1); // a: pipelined single update
            works.push(3 + c % 2); // b: gated explicit work
            works.push(5); // t: gated (works != d_in)
        }
        g.add_node(());
        works.push(0); // isolated zero-work cell
        ExecModel::from_works(&g, &works)
    }

    #[test]
    fn sharded_replay_is_bit_identical_to_serial() {
        for k in [2usize, 5, 9] {
            let m = multi_component(k);
            assert_eq!(m.weak_components().len(), k + 1, "k={k}");
            let serial = m.run_event();
            for threads in [1usize, 2, 4] {
                assert_eq!(
                    m.run_event_sharded(threads),
                    serial,
                    "k={k} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn sharded_replay_falls_back_on_connected_models() {
        let m = figure4();
        assert_eq!(m.weak_components().len(), 1);
        assert_eq!(m.run_event_sharded(4), m.run_event());
    }

    #[test]
    fn component_partition_is_deterministic_and_id_ordered() {
        let m = multi_component(3);
        let comps = m.weak_components();
        // ordered by smallest cell id; cells ascending within a shard
        let mins: Vec<u32> = comps.iter().map(|c| c[0]).collect();
        assert!(mins.windows(2).all(|w| w[0] < w[1]));
        for c in &comps {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, m.node_count());
    }
}
