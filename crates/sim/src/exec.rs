//! Update-granular execution of a race DAG with `P` processors — the
//! thin DAG-facing front end of the [`crate::model`] core.

use crate::model::ExecModel;
use rtt_dag::Dag;
use rtt_duration::Time;

/// Processor count standing for "unbounded".
pub const UNBOUNDED: usize = usize::MAX;

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Tick at which the whole DAG completed (the simulated running time).
    pub finish: Time,
    /// Completion tick per node.
    pub node_finish: Vec<Time>,
    /// Total updates applied (= number of edges).
    pub updates_applied: u64,
    /// Peak number of processors simultaneously busy in any tick.
    pub peak_parallelism: usize,
}

/// Simulates the §1 execution model.
///
/// Each node is a memory cell that must apply one update per incoming
/// edge; an update becomes *available* once its source cell is complete
/// (sources with in-degree 0 are complete at tick 0). At most
/// `processors` cells each apply one available update per tick (the
/// per-cell lock serializes, so a cell applies at most one update per
/// tick); under contention, cells are prioritized by remaining work
/// (most-loaded first) — a greedy list schedule.
///
/// With unbounded processors the result is Observation 1.1's refinement:
/// `finish ≤ makespan(D)` (equality on chains, strict when staggered
/// updates pipeline) — and the run is served by the event-heap engine
/// ([`ExecModel::run_event`]), whose cost scales with the DAG's nodes
/// and edges instead of its makespan.
pub fn simulate<N, E>(g: &Dag<N, E>, processors: usize) -> SimResult {
    assert!(processors > 0, "need at least one processor");
    let model = ExecModel::race_dag(g);
    if processors == UNBOUNDED {
        model.run_event()
    } else {
        model.run_ticks(processors)
    }
}

/// [`simulate`] generalized to an explicit per-node work vector — the
/// model the reducer-expanded DAGs of `rtt_duration::expand` (and the
/// engine's simulation certificates) execute under, where a sibling
/// merge costs *one* update despite its two incoming edges.
///
/// The release rule per node is the [`ExecModel`] contract:
///
/// * `works[v] == d_in(v)` (the §1 race-DAG convention): each
///   predecessor completion releases one update — staggered updates
///   pipeline, exactly as in [`simulate`];
/// * `works[v] != d_in(v)`: all `works[v]` updates release only once
///   **every** predecessor has completed (the conservative gate; this is
///   how a sibling merge waits for both children, and how a serialized
///   cell of explicit work `t` waits for its precedences).
///
/// Zero-work nodes complete the instant their last predecessor does.
/// Under both rules a node still applies at most one update per tick
/// behind its cell lock, so Observation 1.1 survives the
/// generalization: with unbounded processors,
/// `finish ≤ longest path of works` (induction: once `v`'s last
/// predecessor finishes, at most `works[v]` of its updates remain).
///
/// Unbounded runs dispatch to the event-heap engine; bounded ones to
/// the tick loop (the per-tick most-loaded-first choice is inherently
/// tick-granular). The two engines agree exactly where both apply —
/// see [`simulate_works_ticks`] and the differential proptests.
pub fn simulate_works<N, E>(g: &Dag<N, E>, works: &[Time], processors: usize) -> SimResult {
    assert!(processors > 0, "need at least one processor");
    let model = ExecModel::from_works(g, works);
    if processors == UNBOUNDED {
        model.run_event()
    } else {
        model.run_ticks(processors)
    }
}

/// [`simulate_works`] forced onto the tick-loop baseline engine
/// (Θ(makespan · nodes)) regardless of the processor count. Kept
/// public per the perf-PR protocol: `bench-pr5` measures the event
/// engine against this in the same binary, and the differential
/// proptests pin the two engines equal on unbounded runs.
pub fn simulate_works_ticks<N, E>(g: &Dag<N, E>, works: &[Time], processors: usize) -> SimResult {
    ExecModel::from_works(g, works).run_ticks(processors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_dag::{Dag, NodeId};

    /// The Figure 4 DAG.
    fn figure4() -> Dag<(), ()> {
        let mut g = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, ()).unwrap();
        g.add_edge(s, b, ()).unwrap();
        g.add_edge(a, b, ()).unwrap();
        g.add_parallel_edges(a, c, (), 3).unwrap();
        g.add_parallel_edges(b, c, (), 3).unwrap();
        g.add_edge(c, d, ()).unwrap();
        g.add_edge(d, t, ()).unwrap();
        g
    }

    #[test]
    fn chain_matches_makespan_exactly() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_parallel_edges(a, b, (), 4).unwrap();
        g.add_parallel_edges(b, c, (), 2).unwrap();
        // wait: parallel edges a->b only become available when a is
        // complete; b applies them serially: 4 ticks; then c: 2. total 6.
        let r = simulate(&g, UNBOUNDED);
        assert_eq!(r.finish, 6);
        assert_eq!(r.updates_applied, 6);
    }

    #[test]
    fn observation_1_1_simulation_at_most_makespan() {
        let g = figure4();
        let makespan = rtt_dag::longest_path_nodes(&g, |v| g.in_degree(v) as u64)
            .unwrap()
            .weight;
        assert_eq!(makespan, 11);
        let r = simulate(&g, UNBOUNDED);
        assert!(
            r.finish <= makespan,
            "Observation 1.1: {} <= {makespan}",
            r.finish
        );
    }

    #[test]
    fn figure4_pipelining_beats_makespan() {
        // In Figure 4, c's updates from a arrive while b is still being
        // updated — the event-level execution pipelines and finishes
        // before the conservative makespan bound of 11.
        let g = figure4();
        let r = simulate(&g, UNBOUNDED);
        assert!(r.finish < 11, "pipelining should beat 11, got {}", r.finish);
    }

    #[test]
    fn single_processor_serializes_everything() {
        let g = figure4();
        let r = simulate(&g, 1);
        // 10 edges = 10 updates, fully serialized (plus idle ticks are
        // impossible: some update is always available).
        assert_eq!(r.finish, g.edge_count() as u64);
        assert_eq!(r.peak_parallelism, 1);
    }

    #[test]
    fn more_processors_never_slower() {
        let g = figure4();
        let mut prev = u64::MAX;
        for p in [1usize, 2, 3, 4, 8] {
            let r = simulate(&g, p);
            assert!(r.finish <= prev, "p={p}: {} > {prev}", r.finish);
            prev = r.finish;
        }
    }

    #[test]
    fn brent_bound_holds() {
        // T_P <= W/P + span for greedy scheduling (Brent/Graham).
        let g = figure4();
        let work = g.edge_count() as u64;
        let span = simulate(&g, UNBOUNDED).finish;
        for p in [1usize, 2, 3] {
            let tp = simulate(&g, p).finish;
            assert!(
                tp <= work / p as u64 + span + 1,
                "p={p}: {tp} > {}",
                work / p as u64 + span
            );
        }
    }

    #[test]
    fn fan_in_star_parallelism() {
        // n sources all feeding one hub: hub applies serially.
        let mut g: Dag<(), ()> = Dag::new();
        let hub = g.add_node(());
        for _ in 0..16 {
            let s = g.add_node(());
            g.add_edge(s, hub, ()).unwrap();
        }
        let r = simulate(&g, UNBOUNDED);
        assert_eq!(r.finish, 16, "per-cell lock serializes all updates");
        assert_eq!(r.peak_parallelism, 1);
    }

    #[test]
    fn works_sibling_merge_waits_for_both_children() {
        // a, b (serialized cells of work 3 and 1) → merge (work 1,
        // in-degree 2) → sink junction (work 0). The merge update only
        // becomes available once BOTH children complete.
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let m = g.add_node(());
        let t = g.add_node(());
        g.add_edge(a, m, ()).unwrap();
        g.add_edge(b, m, ()).unwrap();
        g.add_edge(m, t, ()).unwrap();
        let r = simulate_works(&g, &[3, 1, 1, 0], UNBOUNDED);
        // a finishes at 3, b at 1; merge applies its one update at 4;
        // the zero-work sink completes the same tick.
        assert_eq!(r.node_finish[m.index()], 4);
        assert_eq!(r.finish, 4);
        assert_eq!(r.updates_applied, 5);
    }

    #[test]
    fn works_zero_work_junctions_cascade_in_the_same_tick() {
        // cell(2) → junction → junction → cell(1): junctions add no ticks.
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let j1 = g.add_node(());
        let j2 = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, j1, ()).unwrap();
        g.add_edge(j1, j2, ()).unwrap();
        g.add_edge(j2, c, ()).unwrap();
        let r = simulate_works(&g, &[2, 0, 0, 1], UNBOUNDED);
        assert_eq!(r.node_finish[j2.index()], 2);
        assert_eq!(r.finish, 3);
    }

    #[test]
    fn works_matches_in_degree_semantics_when_equal() {
        // works == in-degrees must be byte-identical to `simulate`.
        let g = figure4();
        let works: Vec<Time> = (0..g.node_count())
            .map(|i| g.in_degree(NodeId(i as u32)) as Time)
            .collect();
        for p in [1usize, 2, 3, UNBOUNDED] {
            assert_eq!(simulate_works(&g, &works, p), simulate(&g, p));
        }
    }

    #[test]
    fn event_engine_matches_tick_baseline_on_unbounded_runs() {
        // the dispatch seam itself: simulate_works (event for ∞) versus
        // the forced tick baseline, on a shape mixing all release rules
        let mut g: Dag<(), ()> = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let z = g.add_node(());
        g.add_parallel_edges(s, a, (), 3).unwrap();
        g.add_edge(s, b, ()).unwrap();
        g.add_edge(a, z, ()).unwrap();
        g.add_edge(b, z, ()).unwrap();
        let works: Vec<Time> = vec![0, 3, 5, 2];
        assert_eq!(
            simulate_works(&g, &works, UNBOUNDED),
            simulate_works_ticks(&g, &works, UNBOUNDED)
        );
    }

    #[test]
    fn works_gated_cell_serializes_explicit_work() {
        // one in-edge but work 5: the cell still takes 5 ticks, starting
        // only after its predecessor completes.
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, c, ()).unwrap();
        let r = simulate_works(&g, &[1, 5], UNBOUNDED);
        assert_eq!(r.finish, 6);
        assert_eq!(r.updates_applied, 6);
    }

    #[test]
    fn wide_independent_cells_run_in_parallel() {
        // many (source -> cell) pairs: all cells update simultaneously.
        let mut g: Dag<(), ()> = Dag::new();
        for _ in 0..8 {
            let s = g.add_node(());
            let c = g.add_node(());
            g.add_edge(s, c, ()).unwrap();
        }
        let r = simulate(&g, UNBOUNDED);
        assert_eq!(r.finish, 1);
        assert_eq!(r.peak_parallelism, 8);
        // with 4 processors it takes 2 ticks
        assert_eq!(simulate(&g, 4).finish, 2);
    }
}
