//! Update-granular execution of a race DAG with `P` processors.

use rtt_dag::{Dag, NodeId};
use rtt_duration::Time;

/// Processor count standing for "unbounded".
pub const UNBOUNDED: usize = usize::MAX;

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Tick at which the whole DAG completed (the simulated running time).
    pub finish: Time,
    /// Completion tick per node.
    pub node_finish: Vec<Time>,
    /// Total updates applied (= number of edges).
    pub updates_applied: u64,
    /// Peak number of processors simultaneously busy in any tick.
    pub peak_parallelism: usize,
}

/// Simulates the §1 execution model tick-by-tick.
///
/// Each node is a memory cell that must apply one update per incoming
/// edge; an update becomes *available* once its source cell is complete
/// (sources with in-degree 0 are complete at tick 0). In every tick, at
/// most `processors` cells each apply one available update (the
/// per-cell lock serializes, so a cell applies at most one update per
/// tick). Cells are prioritized by remaining work (most-loaded first) —
/// a greedy list schedule.
///
/// With unbounded processors the result is Observation 1.1's refinement:
/// `finish ≤ makespan(D)` (equality on chains, strict when staggered
/// updates pipeline).
pub fn simulate<N, E>(g: &Dag<N, E>, processors: usize) -> SimResult {
    let works: Vec<Time> = (0..g.node_count())
        .map(|i| g.in_degree(NodeId(i as u32)) as Time)
        .collect();
    simulate_works(g, &works, processors)
}

/// [`simulate`] generalized to an explicit per-node work vector — the
/// model the reducer-expanded DAGs of `rtt_duration::expand` (and the
/// engine's simulation certificates) execute under, where a sibling
/// merge costs *one* update despite its two incoming edges.
///
/// Release rule per node `v`:
///
/// * `works[v] == d_in(v)` (the §1 race-DAG convention): each
///   predecessor completion releases one update — staggered updates
///   pipeline, exactly as in [`simulate`];
/// * `works[v] != d_in(v)`: all `works[v]` updates release only once
///   **every** predecessor has completed (the conservative gate; this is
///   how a sibling merge waits for both children, and how a serialized
///   cell of explicit work `t` waits for its precedences).
///
/// Zero-work nodes complete the instant their last predecessor does.
/// Under both rules a node still applies at most one update per tick
/// behind its cell lock, so Observation 1.1 survives the
/// generalization: with unbounded processors,
/// `finish ≤ longest path of works` (induction: once `v`'s last
/// predecessor finishes, at most `works[v]` of its updates remain).
pub fn simulate_works<N, E>(g: &Dag<N, E>, works: &[Time], processors: usize) -> SimResult {
    assert!(processors > 0, "need at least one processor");
    let n = g.node_count();
    assert_eq!(works.len(), n, "one work value per node required");
    debug_assert!(
        rtt_dag::is_acyclic(g),
        "simulation requires a DAG"
    );
    let indeg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId(i as u32))).collect();
    let pipelined: Vec<bool> = (0..n).map(|i| works[i] == indeg[i] as Time).collect();
    let mut preds_left = indeg;
    let mut remaining: Vec<Time> = works.to_vec();
    let mut available: Vec<Time> = vec![0; n];
    let mut finish: Vec<Time> = vec![0; n];
    let mut complete: Vec<bool> = vec![false; n];

    // Sources: zero-work ones complete immediately; working ones have
    // their whole load available from tick 1.
    let mut newly_complete: Vec<NodeId> = Vec::new();
    let mut completed = 0usize;
    for i in 0..n {
        if preds_left[i] == 0 {
            if works[i] == 0 {
                complete[i] = true;
                newly_complete.push(NodeId(i as u32));
                completed += 1;
            } else {
                available[i] = works[i];
            }
        }
    }

    let mut tick: Time = 0;
    let mut updates_applied = 0u64;
    let mut peak = 0usize;

    while completed < n {
        // release updates triggered by completions (zero-work nodes
        // cascade within the same tick: they finish when their last
        // predecessor does)
        while let Some(v) = newly_complete.pop() {
            for w in g.successors(v) {
                let i = w.index();
                preds_left[i] -= 1;
                if pipelined[i] {
                    available[i] += 1;
                } else if preds_left[i] == 0 {
                    available[i] = remaining[i];
                }
                if preds_left[i] == 0 && remaining[i] == 0 && !complete[i] {
                    complete[i] = true;
                    finish[i] = tick;
                    newly_complete.push(w);
                    completed += 1;
                }
            }
        }
        if completed == n {
            break;
        }
        tick += 1;
        // pick up to `processors` cells with available updates,
        // most remaining work first (deterministic tie-break by id)
        let mut ready: Vec<usize> = (0..n)
            .filter(|&i| !complete[i] && available[i] > 0)
            .collect();
        // Some incomplete node has all predecessors complete (the DAG
        // has no cycle), and such a node always has available updates.
        assert!(!ready.is_empty(), "DAG execution stalled with work remaining");
        ready.sort_by_key(|&i| (Time::MAX - remaining[i], i));
        let used = ready.len().min(processors);
        peak = peak.max(used);
        for &i in ready.iter().take(used) {
            available[i] -= 1;
            remaining[i] -= 1;
            updates_applied += 1;
            if remaining[i] == 0 && preds_left[i] == 0 {
                complete[i] = true;
                finish[i] = tick;
                newly_complete.push(NodeId(i as u32));
                completed += 1;
            }
        }
    }

    let overall = finish.iter().copied().max().unwrap_or(0);
    SimResult {
        finish: overall,
        node_finish: finish,
        updates_applied,
        peak_parallelism: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_dag::Dag;

    /// The Figure 4 DAG.
    fn figure4() -> Dag<(), ()> {
        let mut g = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, ()).unwrap();
        g.add_edge(s, b, ()).unwrap();
        g.add_edge(a, b, ()).unwrap();
        g.add_parallel_edges(a, c, (), 3).unwrap();
        g.add_parallel_edges(b, c, (), 3).unwrap();
        g.add_edge(c, d, ()).unwrap();
        g.add_edge(d, t, ()).unwrap();
        g
    }

    #[test]
    fn chain_matches_makespan_exactly() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_parallel_edges(a, b, (), 4).unwrap();
        g.add_parallel_edges(b, c, (), 2).unwrap();
        // wait: parallel edges a->b only become available when a is
        // complete; b applies them serially: 4 ticks; then c: 2. total 6.
        let r = simulate(&g, UNBOUNDED);
        assert_eq!(r.finish, 6);
        assert_eq!(r.updates_applied, 6);
    }

    #[test]
    fn observation_1_1_simulation_at_most_makespan() {
        let g = figure4();
        let makespan = rtt_dag::longest_path_nodes(&g, |v| g.in_degree(v) as u64)
            .unwrap()
            .weight;
        assert_eq!(makespan, 11);
        let r = simulate(&g, UNBOUNDED);
        assert!(
            r.finish <= makespan,
            "Observation 1.1: {} <= {makespan}",
            r.finish
        );
    }

    #[test]
    fn figure4_pipelining_beats_makespan() {
        // In Figure 4, c's updates from a arrive while b is still being
        // updated — the event-level execution pipelines and finishes
        // before the conservative makespan bound of 11.
        let g = figure4();
        let r = simulate(&g, UNBOUNDED);
        assert!(r.finish < 11, "pipelining should beat 11, got {}", r.finish);
    }

    #[test]
    fn single_processor_serializes_everything() {
        let g = figure4();
        let r = simulate(&g, 1);
        // 10 edges = 10 updates, fully serialized (plus idle ticks are
        // impossible: some update is always available).
        assert_eq!(r.finish, g.edge_count() as u64);
        assert_eq!(r.peak_parallelism, 1);
    }

    #[test]
    fn more_processors_never_slower() {
        let g = figure4();
        let mut prev = u64::MAX;
        for p in [1usize, 2, 3, 4, 8] {
            let r = simulate(&g, p);
            assert!(r.finish <= prev, "p={p}: {} > {prev}", r.finish);
            prev = r.finish;
        }
    }

    #[test]
    fn brent_bound_holds() {
        // T_P <= W/P + span for greedy scheduling (Brent/Graham).
        let g = figure4();
        let work = g.edge_count() as u64;
        let span = simulate(&g, UNBOUNDED).finish;
        for p in [1usize, 2, 3] {
            let tp = simulate(&g, p).finish;
            assert!(
                tp <= work / p as u64 + span + 1,
                "p={p}: {tp} > {}",
                work / p as u64 + span
            );
        }
    }

    #[test]
    fn fan_in_star_parallelism() {
        // n sources all feeding one hub: hub applies serially.
        let mut g: Dag<(), ()> = Dag::new();
        let hub = g.add_node(());
        for _ in 0..16 {
            let s = g.add_node(());
            g.add_edge(s, hub, ()).unwrap();
        }
        let r = simulate(&g, UNBOUNDED);
        assert_eq!(r.finish, 16, "per-cell lock serializes all updates");
        assert_eq!(r.peak_parallelism, 1);
    }

    #[test]
    fn works_sibling_merge_waits_for_both_children() {
        // a, b (serialized cells of work 3 and 1) → merge (work 1,
        // in-degree 2) → sink junction (work 0). The merge update only
        // becomes available once BOTH children complete.
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let m = g.add_node(());
        let t = g.add_node(());
        g.add_edge(a, m, ()).unwrap();
        g.add_edge(b, m, ()).unwrap();
        g.add_edge(m, t, ()).unwrap();
        let r = simulate_works(&g, &[3, 1, 1, 0], UNBOUNDED);
        // a finishes at 3, b at 1; merge applies its one update at 4;
        // the zero-work sink completes the same tick.
        assert_eq!(r.node_finish[m.index()], 4);
        assert_eq!(r.finish, 4);
        assert_eq!(r.updates_applied, 5);
    }

    #[test]
    fn works_zero_work_junctions_cascade_in_the_same_tick() {
        // cell(2) → junction → junction → cell(1): junctions add no ticks.
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let j1 = g.add_node(());
        let j2 = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, j1, ()).unwrap();
        g.add_edge(j1, j2, ()).unwrap();
        g.add_edge(j2, c, ()).unwrap();
        let r = simulate_works(&g, &[2, 0, 0, 1], UNBOUNDED);
        assert_eq!(r.node_finish[j2.index()], 2);
        assert_eq!(r.finish, 3);
    }

    #[test]
    fn works_matches_in_degree_semantics_when_equal() {
        // works == in-degrees must be byte-identical to `simulate`.
        let g = figure4();
        let works: Vec<Time> = (0..g.node_count())
            .map(|i| g.in_degree(NodeId(i as u32)) as Time)
            .collect();
        for p in [1usize, 2, 3, UNBOUNDED] {
            assert_eq!(simulate_works(&g, &works, p), simulate(&g, p));
        }
    }

    #[test]
    fn works_gated_cell_serializes_explicit_work() {
        // one in-edge but work 5: the cell still takes 5 ticks, starting
        // only after its predecessor completes.
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, c, ()).unwrap();
        let r = simulate_works(&g, &[1, 5], UNBOUNDED);
        assert_eq!(r.finish, 6);
        assert_eq!(r.updates_applied, 6);
    }

    #[test]
    fn wide_independent_cells_run_in_parallel() {
        // many (source -> cell) pairs: all cells update simultaneously.
        let mut g: Dag<(), ()> = Dag::new();
        for _ in 0..8 {
            let s = g.add_node(());
            let c = g.add_node(());
            g.add_edge(s, c, ()).unwrap();
        }
        let r = simulate(&g, UNBOUNDED);
        assert_eq!(r.finish, 1);
        assert_eq!(r.peak_parallelism, 8);
        // with 4 processors it takes 2 ticks
        assert_eq!(simulate(&g, 4).finish, 2);
    }
}
