//! Update-granular execution of a race DAG with `P` processors.

use rtt_dag::{Dag, NodeId};
use rtt_duration::Time;

/// Processor count standing for "unbounded".
pub const UNBOUNDED: usize = usize::MAX;

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Tick at which the whole DAG completed (the simulated running time).
    pub finish: Time,
    /// Completion tick per node.
    pub node_finish: Vec<Time>,
    /// Total updates applied (= number of edges).
    pub updates_applied: u64,
    /// Peak number of processors simultaneously busy in any tick.
    pub peak_parallelism: usize,
}

/// Simulates the §1 execution model tick-by-tick.
///
/// Each node is a memory cell that must apply one update per incoming
/// edge; an update becomes *available* once its source cell is complete
/// (sources with in-degree 0 are complete at tick 0). In every tick, at
/// most `processors` cells each apply one available update (the
/// per-cell lock serializes, so a cell applies at most one update per
/// tick). Cells are prioritized by remaining work (most-loaded first) —
/// a greedy list schedule.
///
/// With unbounded processors the result is Observation 1.1's refinement:
/// `finish ≤ makespan(D)` (equality on chains, strict when staggered
/// updates pipeline).
pub fn simulate<N, E>(g: &Dag<N, E>, processors: usize) -> SimResult {
    assert!(processors > 0, "need at least one processor");
    let n = g.node_count();
    let order = rtt_dag::topo_order(g).expect("simulation requires a DAG");
    let mut remaining: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId(i as u32))).collect();
    let mut available: Vec<usize> = vec![0; n];
    let mut finish: Vec<Time> = vec![0; n];
    let mut complete: Vec<bool> = vec![false; n];

    // Sources complete immediately and release their out-edges.
    let mut newly_complete: Vec<NodeId> = Vec::new();
    for &v in &order {
        if remaining[v.index()] == 0 {
            complete[v.index()] = true;
            finish[v.index()] = 0;
            newly_complete.push(v);
        }
    }

    let mut tick: Time = 0;
    let mut updates_applied = 0u64;
    let mut peak = 0usize;
    let total_updates = g.edge_count() as u64;

    while updates_applied < total_updates {
        // release updates triggered by completions of the previous tick
        for v in newly_complete.drain(..) {
            for w in g.successors(v) {
                available[w.index()] += 1;
            }
        }
        tick += 1;
        // pick up to `processors` cells with available updates,
        // most remaining work first (deterministic tie-break by id)
        let mut ready: Vec<usize> = (0..n).filter(|&i| available[i] > 0).collect();
        if ready.is_empty() {
            // no update available although work remains: the released
            // updates all landed on busy... impossible here — every
            // available>0 cell is schedulable. Means a dependency stall;
            // continue releasing (can only happen if nothing completed
            // this tick, which cannot stall forever in a DAG).
            unreachable!("DAG execution stalled with work remaining");
        }
        ready.sort_by_key(|&i| (usize::MAX - remaining[i], i));
        let used = ready.len().min(processors);
        peak = peak.max(used);
        for &i in ready.iter().take(used) {
            available[i] -= 1;
            remaining[i] -= 1;
            updates_applied += 1;
            if remaining[i] == 0 {
                complete[i] = true;
                finish[i] = tick;
                newly_complete.push(NodeId(i as u32));
            }
        }
    }

    let overall = finish.iter().copied().max().unwrap_or(0);
    SimResult {
        finish: overall,
        node_finish: finish,
        updates_applied,
        peak_parallelism: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_dag::Dag;

    /// The Figure 4 DAG.
    fn figure4() -> Dag<(), ()> {
        let mut g = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, ()).unwrap();
        g.add_edge(s, b, ()).unwrap();
        g.add_edge(a, b, ()).unwrap();
        g.add_parallel_edges(a, c, (), 3).unwrap();
        g.add_parallel_edges(b, c, (), 3).unwrap();
        g.add_edge(c, d, ()).unwrap();
        g.add_edge(d, t, ()).unwrap();
        g
    }

    #[test]
    fn chain_matches_makespan_exactly() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_parallel_edges(a, b, (), 4).unwrap();
        g.add_parallel_edges(b, c, (), 2).unwrap();
        // wait: parallel edges a->b only become available when a is
        // complete; b applies them serially: 4 ticks; then c: 2. total 6.
        let r = simulate(&g, UNBOUNDED);
        assert_eq!(r.finish, 6);
        assert_eq!(r.updates_applied, 6);
    }

    #[test]
    fn observation_1_1_simulation_at_most_makespan() {
        let g = figure4();
        let makespan = rtt_dag::longest_path_nodes(&g, |v| g.in_degree(v) as u64)
            .unwrap()
            .weight;
        assert_eq!(makespan, 11);
        let r = simulate(&g, UNBOUNDED);
        assert!(
            r.finish <= makespan,
            "Observation 1.1: {} <= {makespan}",
            r.finish
        );
    }

    #[test]
    fn figure4_pipelining_beats_makespan() {
        // In Figure 4, c's updates from a arrive while b is still being
        // updated — the event-level execution pipelines and finishes
        // before the conservative makespan bound of 11.
        let g = figure4();
        let r = simulate(&g, UNBOUNDED);
        assert!(r.finish < 11, "pipelining should beat 11, got {}", r.finish);
    }

    #[test]
    fn single_processor_serializes_everything() {
        let g = figure4();
        let r = simulate(&g, 1);
        // 10 edges = 10 updates, fully serialized (plus idle ticks are
        // impossible: some update is always available).
        assert_eq!(r.finish, g.edge_count() as u64);
        assert_eq!(r.peak_parallelism, 1);
    }

    #[test]
    fn more_processors_never_slower() {
        let g = figure4();
        let mut prev = u64::MAX;
        for p in [1usize, 2, 3, 4, 8] {
            let r = simulate(&g, p);
            assert!(r.finish <= prev, "p={p}: {} > {prev}", r.finish);
            prev = r.finish;
        }
    }

    #[test]
    fn brent_bound_holds() {
        // T_P <= W/P + span for greedy scheduling (Brent/Graham).
        let g = figure4();
        let work = g.edge_count() as u64;
        let span = simulate(&g, UNBOUNDED).finish;
        for p in [1usize, 2, 3] {
            let tp = simulate(&g, p).finish;
            assert!(
                tp <= work / p as u64 + span + 1,
                "p={p}: {tp} > {}",
                work / p as u64 + span
            );
        }
    }

    #[test]
    fn fan_in_star_parallelism() {
        // n sources all feeding one hub: hub applies serially.
        let mut g: Dag<(), ()> = Dag::new();
        let hub = g.add_node(());
        for _ in 0..16 {
            let s = g.add_node(());
            g.add_edge(s, hub, ()).unwrap();
        }
        let r = simulate(&g, UNBOUNDED);
        assert_eq!(r.finish, 16, "per-cell lock serializes all updates");
        assert_eq!(r.peak_parallelism, 1);
    }

    #[test]
    fn wide_independent_cells_run_in_parallel() {
        // many (source -> cell) pairs: all cells update simultaneously.
        let mut g: Dag<(), ()> = Dag::new();
        for _ in 0..8 {
            let s = g.add_node(());
            let c = g.add_node(());
            g.add_edge(s, c, ()).unwrap();
        }
        let r = simulate(&g, UNBOUNDED);
        assert_eq!(r.finish, 1);
        assert_eq!(r.peak_parallelism, 8);
        // with 4 processors it takes 2 ticks
        assert_eq!(simulate(&g, 4).finish, 2);
    }
}
