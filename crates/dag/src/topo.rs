//! Topological ordering, acyclicity checks, and layering.

use crate::graph::{Dag, NodeId};
use std::fmt;

/// Error returned when a graph that must be acyclic contains a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoError {
    /// Some nodes that participate in (or are downstream of) a cycle.
    pub cyclic_nodes: Vec<NodeId>,
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph contains a cycle through {} node(s)",
            self.cyclic_nodes.len()
        )
    }
}

impl std::error::Error for TopoError {}

/// Kahn's algorithm. Returns node ids in a topological order, or the set
/// of nodes not orderable (i.e. on or behind a cycle).
pub fn topo_order<N, E>(g: &Dag<N, E>) -> Result<Vec<NodeId>, TopoError> {
    let n = g.node_count();
    let mut indeg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId(i as u32))).collect();
    let mut queue: Vec<NodeId> = (0..n as u32)
        .map(NodeId)
        .filter(|&v| indeg[v.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        order.push(v);
        for &e in g.out_edges(v) {
            let w = g.dst(e);
            indeg[w.index()] -= 1;
            if indeg[w.index()] == 0 {
                queue.push(w);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let placed: std::collections::HashSet<NodeId> = order.into_iter().collect();
        Err(TopoError {
            cyclic_nodes: (0..n as u32)
                .map(NodeId)
                .filter(|v| !placed.contains(v))
                .collect(),
        })
    }
}

/// Whether the graph is acyclic.
pub fn is_acyclic<N, E>(g: &Dag<N, E>) -> bool {
    topo_order(g).is_ok()
}

/// Assigns each node its *layer* = length (in edges) of the longest path
/// from any source to it. Sources are layer 0. Errors on cycles.
pub fn layers<N, E>(g: &Dag<N, E>) -> Result<Vec<usize>, TopoError> {
    let order = topo_order(g)?;
    let mut layer = vec![0usize; g.node_count()];
    for &v in &order {
        for &e in g.out_edges(v) {
            let w = g.dst(e);
            layer[w.index()] = layer[w.index()].max(layer[v.index()] + 1);
        }
    }
    Ok(layer)
}

/// Position of each node in a fixed topological order (inverse permutation
/// of [`topo_order`]). Useful for "is u before v" queries.
pub fn topo_positions<N, E>(g: &Dag<N, E>) -> Result<Vec<usize>, TopoError> {
    let order = topo_order(g)?;
    let mut pos = vec![0usize; g.node_count()];
    for (i, &v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dag;

    #[test]
    fn chain_in_order() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        // Insert edges "backwards" to make sure ordering is computed,
        // not inherited from insertion order.
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(a, b, ()).unwrap();
        let order = topo_order(&g).unwrap();
        let pos = topo_positions(&g).unwrap();
        assert_eq!(order.len(), 3);
        assert!(pos[a.index()] < pos[b.index()]);
        assert!(pos[b.index()] < pos[c.index()]);
    }

    #[test]
    fn cycle_detected() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(c, a, ()).unwrap();
        let err = topo_order(&g).unwrap_err();
        assert_eq!(err.cyclic_nodes.len(), 3);
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn partial_cycle_detected() {
        // d -> (a -> b -> c -> a): d is orderable, the cycle is not.
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(d, a, ()).unwrap();
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(c, a, ()).unwrap();
        let err = topo_order(&g).unwrap_err();
        assert_eq!(err.cyclic_nodes.len(), 3);
        assert!(!err.cyclic_nodes.contains(&d));
    }

    #[test]
    fn empty_graph_ok() {
        let g: Dag<(), ()> = Dag::new();
        assert!(topo_order(&g).unwrap().is_empty());
        assert!(is_acyclic(&g));
    }

    #[test]
    fn layers_diamond() {
        let mut g: Dag<(), ()> = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, ()).unwrap();
        g.add_edge(s, b, ()).unwrap();
        g.add_edge(a, t, ()).unwrap();
        g.add_edge(b, t, ()).unwrap();
        g.add_edge(a, b, ()).unwrap(); // skew: b now deeper than a
        let l = layers(&g).unwrap();
        assert_eq!(l[s.index()], 0);
        assert_eq!(l[a.index()], 1);
        assert_eq!(l[b.index()], 2);
        assert_eq!(l[t.index()], 3);
    }

    #[test]
    fn isolated_nodes_are_sources() {
        let mut g: Dag<(), ()> = Dag::new();
        g.add_node(());
        g.add_node(());
        let order = topo_order(&g).unwrap();
        assert_eq!(order.len(), 2);
        assert_eq!(layers(&g).unwrap(), vec![0, 0]);
    }
}
