//! Longest paths (makespans), critical-path extraction, reachability.
//!
//! The paper's *makespan* (§2, Observation 1.1) is the longest
//! source→sink path where each node `x` contributes its duration. After
//! the activity-on-arc transformation the contribution moves to edges.
//! Both flavours are provided; weights are `u64` ticks and all arithmetic
//! saturates so that ∞-like sentinel durations (Appendix A) stay absorbing.

use crate::graph::{Dag, EdgeId, NodeId};
use crate::topo::{topo_order, TopoError};

/// A maximum-weight path together with its total weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Total weight (saturating sum) along the path.
    pub weight: u64,
    /// Nodes on the path, in order from a source to a sink.
    pub nodes: Vec<NodeId>,
    /// Edges on the path (`nodes.len() - 1` entries, empty for a single node).
    pub edges: Vec<EdgeId>,
}

/// Longest path where node `v` contributes `node_weight(v)`.
///
/// Considers all source→sink paths (every maximal path in a DAG starts at
/// a source and ends at a sink). Returns the critical path; ties are
/// broken arbitrarily but deterministically. Errors on cyclic input.
pub fn longest_path_nodes<N, E>(
    g: &Dag<N, E>,
    mut node_weight: impl FnMut(NodeId) -> u64,
) -> Result<CriticalPath, TopoError> {
    let order = topo_order(g)?;
    if order.is_empty() {
        return Ok(CriticalPath {
            weight: 0,
            nodes: vec![],
            edges: vec![],
        });
    }
    let n = g.node_count();
    // dist[v] = max over paths ending at v of the sum of node weights
    // (including v itself).
    let mut dist = vec![0u64; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    for &v in &order {
        let wv = node_weight(v);
        let mut best = 0u64;
        let mut best_e = None;
        for &e in g.in_edges(v) {
            let u = g.src(e);
            if best_e.is_none() || dist[u.index()] > best {
                best = dist[u.index()];
                best_e = Some(e);
            }
        }
        dist[v.index()] = best.saturating_add(wv);
        pred[v.index()] = best_e;
    }
    let end = (0..n as u32)
        .map(NodeId)
        .max_by_key(|v| dist[v.index()])
        .expect("non-empty graph");
    Ok(walk_back(g, end, dist[end.index()], &pred))
}

/// Longest path where edge `e` contributes `edge_weight(e)` (nodes free).
///
/// This is the makespan of an activity-on-arc DAG (the `D'`/`D''` of
/// §3.1): the time of the sink event with `T_v = max_{(u,v)} T_u + t_e`.
pub fn longest_path_edges<N, E>(
    g: &Dag<N, E>,
    mut edge_weight: impl FnMut(EdgeId) -> u64,
) -> Result<CriticalPath, TopoError> {
    let order = topo_order(g)?;
    if order.is_empty() {
        return Ok(CriticalPath {
            weight: 0,
            nodes: vec![],
            edges: vec![],
        });
    }
    let n = g.node_count();
    let mut dist = vec![0u64; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    for &v in &order {
        for &e in g.in_edges(v) {
            let u = g.src(e);
            let cand = dist[u.index()].saturating_add(edge_weight(e));
            if pred[v.index()].is_none() || cand > dist[v.index()] {
                dist[v.index()] = cand;
                pred[v.index()] = Some(e);
            }
        }
    }
    let end = (0..n as u32)
        .map(NodeId)
        .max_by_key(|v| dist[v.index()])
        .expect("non-empty graph");
    Ok(walk_back(g, end, dist[end.index()], &pred))
}

/// Per-node earliest event times for an activity-on-arc DAG:
/// `T_v = max over incoming edges (T_u + t_e)`, sources at 0.
pub fn event_times<N, E>(
    g: &Dag<N, E>,
    mut edge_weight: impl FnMut(EdgeId) -> u64,
) -> Result<Vec<u64>, TopoError> {
    let order = topo_order(g)?;
    let mut t = vec![0u64; g.node_count()];
    for &v in &order {
        for &e in g.in_edges(v) {
            let u = g.src(e);
            t[v.index()] = t[v.index()].max(t[u.index()].saturating_add(edge_weight(e)));
        }
    }
    Ok(t)
}

/// Per-node `(start, finish)` times for an activity-on-node DAG:
/// `start(v) = max over predecessors u of finish(u)`,
/// `finish(v) = start(v) + node_weight(v)`. Sources start at 0.
pub fn node_schedule<N, E>(
    g: &Dag<N, E>,
    mut node_weight: impl FnMut(NodeId) -> u64,
) -> Result<Vec<(u64, u64)>, TopoError> {
    let order = topo_order(g)?;
    let mut sched = vec![(0u64, 0u64); g.node_count()];
    for &v in &order {
        let mut start = 0u64;
        for u in g.predecessors(v) {
            start = start.max(sched[u.index()].1);
        }
        sched[v.index()] = (start, start.saturating_add(node_weight(v)));
    }
    Ok(sched)
}

fn walk_back<N, E>(
    g: &Dag<N, E>,
    end: NodeId,
    weight: u64,
    pred: &[Option<EdgeId>],
) -> CriticalPath {
    let mut nodes = vec![end];
    let mut edges = Vec::new();
    let mut cur = end;
    while let Some(e) = pred[cur.index()] {
        edges.push(e);
        cur = g.src(e);
        nodes.push(cur);
    }
    nodes.reverse();
    edges.reverse();
    CriticalPath {
        weight,
        nodes,
        edges,
    }
}

/// Set of nodes reachable from `start` (including `start`).
pub fn reachable_from<N, E>(g: &Dag<N, E>, start: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![start];
    seen[start.index()] = true;
    while let Some(v) = stack.pop() {
        for w in g.successors(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                stack.push(w);
            }
        }
    }
    seen
}

/// Set of nodes that can reach `end` (including `end`).
pub fn reaching<N, E>(g: &Dag<N, E>, end: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![end];
    seen[end.index()] = true;
    while let Some(v) = stack.pop() {
        for w in g.predecessors(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                stack.push(w);
            }
        }
    }
    seen
}

/// Number of distinct source→sink paths (saturating at `u64::MAX`).
/// Parallel edges produce distinct paths.
pub fn count_paths<N, E>(g: &Dag<N, E>) -> Result<u64, TopoError> {
    let order = topo_order(g)?;
    let mut count = vec![0u64; g.node_count()];
    for &v in &order {
        if g.in_degree(v) == 0 {
            count[v.index()] = 1;
        }
        for &e in g.out_edges(v) {
            let w = g.dst(e);
            count[w.index()] = count[w.index()].saturating_add(count[v.index()]);
        }
    }
    Ok(g.sinks().iter().map(|t| count[t.index()]).fold(0u64, u64::saturating_add))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dag;

    /// The DAG consistent with Figure 4 of the paper: node work = in-degree,
    /// makespan 11 along s→a→b→c→d→t.
    pub(crate) fn figure4() -> (Dag<&'static str, ()>, [NodeId; 6]) {
        let mut g = Dag::new();
        let s = g.add_node("s");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        let t = g.add_node("t");
        g.add_edge(s, a, ()).unwrap();
        g.add_edge(s, b, ()).unwrap();
        g.add_edge(a, b, ()).unwrap();
        g.add_parallel_edges(a, c, (), 3).unwrap();
        g.add_parallel_edges(b, c, (), 3).unwrap();
        g.add_edge(c, d, ()).unwrap();
        g.add_edge(d, t, ()).unwrap();
        (g, [s, a, b, c, d, t])
    }

    #[test]
    fn figure4_makespan_is_11() {
        let (g, [s, a, b, c, d, t]) = figure4();
        let cp = longest_path_nodes(&g, |v| g.in_degree(v) as u64).unwrap();
        assert_eq!(cp.weight, 11);
        assert_eq!(cp.nodes, vec![s, a, b, c, d, t]);
    }

    #[test]
    fn node_schedule_matches_makespan() {
        let (g, [.., t]) = figure4();
        let sched = node_schedule(&g, |v| g.in_degree(v) as u64).unwrap();
        assert_eq!(sched[t.index()].1, 11);
        // Source starts at 0 and every start is the max predecessor finish.
        assert_eq!(sched[0], (0, 0));
    }

    #[test]
    fn longest_edges_simple() {
        let mut g: Dag<(), u64> = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, 5).unwrap();
        g.add_edge(a, t, 7).unwrap();
        g.add_edge(s, t, 10).unwrap();
        let cp = longest_path_edges(&g, |e| *g.edge(e)).unwrap();
        assert_eq!(cp.weight, 12);
        assert_eq!(cp.nodes, vec![s, a, t]);
        assert_eq!(cp.edges.len(), 2);
    }

    #[test]
    fn event_times_max_rule() {
        let mut g: Dag<(), u64> = Dag::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, 3).unwrap();
        g.add_edge(s, b, 1).unwrap();
        g.add_edge(a, t, 1).unwrap();
        g.add_edge(b, t, 10).unwrap();
        let t_v = event_times(&g, |e| *g.edge(e)).unwrap();
        assert_eq!(t_v[t.index()], 11);
        assert_eq!(t_v[a.index()], 3);
    }

    #[test]
    fn saturating_infinite_weights() {
        let mut g: Dag<(), u64> = Dag::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, u64::MAX).unwrap();
        let cp = longest_path_edges(&g, |e| *g.edge(e)).unwrap();
        assert_eq!(cp.weight, u64::MAX);
    }

    #[test]
    fn empty_and_singleton() {
        let g: Dag<(), ()> = Dag::new();
        assert_eq!(longest_path_nodes(&g, |_| 1).unwrap().weight, 0);
        let mut g: Dag<(), ()> = Dag::new();
        g.add_node(());
        let cp = longest_path_nodes(&g, |_| 42).unwrap();
        assert_eq!(cp.weight, 42);
        assert_eq!(cp.nodes.len(), 1);
    }

    #[test]
    fn reachability() {
        let (g, [s, a, b, c, d, t]) = figure4();
        let r = reachable_from(&g, a);
        assert!(r[c.index()] && r[t.index()] && !r[s.index()]);
        let back = reaching(&g, c);
        assert!(back[s.index()] && back[a.index()] && back[b.index()]);
        assert!(!back[d.index()] && !back[t.index()]);
    }

    #[test]
    fn path_counting_with_parallel_edges() {
        let (g, _) = figure4();
        // s→a→b: s-a edge then a-b; s→b direct. Paths into c multiply by 3
        // parallel edges. Count: paths to a =1; to b = (s->b) + (via a) = 2;
        // to c = 3*paths(a) + 3*paths(b) = 3 + 6 = 9; then one way to d, t.
        assert_eq!(count_paths(&g).unwrap(), 9);
    }
}
