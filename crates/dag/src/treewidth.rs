//! Tree decompositions of the *underlying undirected graph* of a DAG.
//!
//! §4.3 of the paper proves weak NP-hardness for DAGs whose underlying
//! undirected graph has bounded treewidth, exhibiting an explicit tree
//! decomposition of width 15 (Figure 16). This module provides the
//! [`TreeDecomposition`] container and a full validity/width checker so
//! the construction in `rtt-hardness::partition` can be verified
//! programmatically rather than by eye.

use crate::graph::{Dag, NodeId};
use std::collections::HashSet;
use std::fmt;

/// A tree decomposition: bags of graph nodes connected by tree edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeDecomposition {
    /// The bags; `bags[i]` is the content of tree node `i`.
    pub bags: Vec<Vec<NodeId>>,
    /// Undirected tree edges between bag indices.
    pub tree_edges: Vec<(usize, usize)>,
}

/// Why a claimed tree decomposition is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwError {
    /// The bag graph is not a tree (wrong edge count or disconnected).
    NotATree,
    /// A tree edge references a bag index that does not exist.
    BadBagIndex(usize),
    /// A graph node appears in no bag.
    NodeUncovered(NodeId),
    /// A graph edge `(u, v)` has no bag containing both endpoints.
    EdgeUncovered(NodeId, NodeId),
    /// The bags containing this node do not form a connected subtree.
    NodeBagsDisconnected(NodeId),
}

impl fmt::Display for TwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwError::NotATree => write!(f, "bag graph is not a tree"),
            TwError::BadBagIndex(i) => write!(f, "tree edge references missing bag {i}"),
            TwError::NodeUncovered(n) => write!(f, "node {n} appears in no bag"),
            TwError::EdgeUncovered(u, v) => {
                write!(f, "edge ({u},{v}) has no bag containing both endpoints")
            }
            TwError::NodeBagsDisconnected(n) => {
                write!(f, "bags containing node {n} are not connected in the tree")
            }
        }
    }
}

impl std::error::Error for TwError {}

impl TreeDecomposition {
    /// Width = (size of the largest bag) − 1. Zero bags ⇒ width 0.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Verifies all three tree-decomposition conditions against the
    /// underlying undirected graph of `g` and returns the width.
    ///
    /// 1. every node of `g` is in some bag;
    /// 2. for every edge of `g`, some bag contains both endpoints;
    /// 3. for every node, the bags containing it induce a connected
    ///    subtree.
    pub fn verify<N, E>(&self, g: &Dag<N, E>) -> Result<usize, TwError> {
        let b = self.bags.len();
        // -- the bag graph must be a tree (or empty alongside an empty g).
        for &(x, y) in &self.tree_edges {
            if x >= b {
                return Err(TwError::BadBagIndex(x));
            }
            if y >= b {
                return Err(TwError::BadBagIndex(y));
            }
        }
        if b > 0 {
            if self.tree_edges.len() != b - 1 {
                return Err(TwError::NotATree);
            }
            let mut adj: Vec<Vec<usize>> = vec![Vec::new(); b];
            for &(x, y) in &self.tree_edges {
                adj[x].push(y);
                adj[y].push(x);
            }
            let mut seen = vec![false; b];
            let mut stack = vec![0usize];
            seen[0] = true;
            let mut cnt = 1;
            while let Some(x) = stack.pop() {
                for &y in &adj[x] {
                    if !seen[y] {
                        seen[y] = true;
                        cnt += 1;
                        stack.push(y);
                    }
                }
            }
            if cnt != b {
                return Err(TwError::NotATree);
            }
        } else if g.node_count() > 0 {
            return Err(TwError::NodeUncovered(NodeId(0)));
        }

        // -- node coverage + per-node bag sets.
        let n = g.node_count();
        let mut bags_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, bag) in self.bags.iter().enumerate() {
            let mut seen_in_bag = HashSet::new();
            for &v in bag {
                if v.index() < n && seen_in_bag.insert(v) {
                    bags_of[v.index()].push(i);
                }
            }
        }
        for v in g.node_ids() {
            if bags_of[v.index()].is_empty() {
                return Err(TwError::NodeUncovered(v));
            }
        }

        // -- edge coverage (undirected view; parallel edges collapse).
        for e in g.edge_refs() {
            let (u, v) = (e.src, e.dst);
            let covered = self.bags.iter().any(|bag| {
                let mut has_u = false;
                let mut has_v = false;
                for &x in bag {
                    has_u |= x == u;
                    has_v |= x == v;
                }
                has_u && has_v
            });
            if !covered {
                return Err(TwError::EdgeUncovered(u, v));
            }
        }

        // -- connectivity of each node's bag set within the tree.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); b];
        for &(x, y) in &self.tree_edges {
            adj[x].push(y);
            adj[y].push(x);
        }
        for v in g.node_ids() {
            let with_v: HashSet<usize> = bags_of[v.index()].iter().copied().collect();
            let start = bags_of[v.index()][0];
            let mut seen = HashSet::new();
            seen.insert(start);
            let mut stack = vec![start];
            while let Some(x) = stack.pop() {
                for &y in &adj[x] {
                    if with_v.contains(&y) && seen.insert(y) {
                        stack.push(y);
                    }
                }
            }
            if seen.len() != with_v.len() {
                return Err(TwError::NodeBagsDisconnected(v));
            }
        }

        Ok(self.width())
    }
}

/// Trivial decomposition: one bag holding every node (width n−1).
/// Useful as a test baseline.
pub fn trivial_decomposition<N, E>(g: &Dag<N, E>) -> TreeDecomposition {
    TreeDecomposition {
        bags: vec![g.node_ids().collect()],
        tree_edges: vec![],
    }
}

/// Path decomposition of a chain-like DAG: bag i = {v_i, v_{i+1}} for the
/// node order given. Width 1 when `order` is a Hamiltonian path of the
/// underlying graph.
pub fn path_decomposition(order: &[NodeId]) -> TreeDecomposition {
    if order.len() <= 1 {
        return TreeDecomposition {
            bags: vec![order.to_vec()],
            tree_edges: vec![],
        };
    }
    let bags: Vec<Vec<NodeId>> = order.windows(2).map(|w| w.to_vec()).collect();
    let tree_edges = (0..bags.len().saturating_sub(1)).map(|i| (i, i + 1)).collect();
    TreeDecomposition { bags, tree_edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dag;

    fn chain(n: usize) -> (Dag<(), ()>, Vec<NodeId>) {
        let mut g = Dag::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ()).unwrap();
        }
        (g, nodes)
    }

    #[test]
    fn trivial_is_valid() {
        let (g, _) = chain(5);
        let td = trivial_decomposition(&g);
        assert_eq!(td.verify(&g).unwrap(), 4);
    }

    #[test]
    fn chain_has_pathwidth_1() {
        let (g, nodes) = chain(6);
        let td = path_decomposition(&nodes);
        assert_eq!(td.verify(&g).unwrap(), 1);
    }

    #[test]
    fn uncovered_edge_detected() {
        let (g, nodes) = chain(3);
        let td = TreeDecomposition {
            bags: vec![vec![nodes[0], nodes[1]], vec![nodes[2]]],
            tree_edges: vec![(0, 1)],
        };
        assert_eq!(
            td.verify(&g),
            Err(TwError::EdgeUncovered(nodes[1], nodes[2]))
        );
    }

    #[test]
    fn uncovered_node_detected() {
        let (mut g, nodes) = chain(2);
        let lonely = g.add_node(());
        let td = TreeDecomposition {
            bags: vec![vec![nodes[0], nodes[1]]],
            tree_edges: vec![],
        };
        assert_eq!(td.verify(&g), Err(TwError::NodeUncovered(lonely)));
    }

    #[test]
    fn disconnected_occurrences_detected() {
        let (g, nodes) = chain(3);
        // v0 appears in bags 0 and 2 but not 1 -> violates connectivity.
        let td = TreeDecomposition {
            bags: vec![
                vec![nodes[0], nodes[1]],
                vec![nodes[1], nodes[2]],
                vec![nodes[0], nodes[2]],
            ],
            tree_edges: vec![(0, 1), (1, 2)],
        };
        assert_eq!(td.verify(&g), Err(TwError::NodeBagsDisconnected(nodes[0])));
    }

    #[test]
    fn non_tree_detected() {
        let (g, nodes) = chain(2);
        let td = TreeDecomposition {
            bags: vec![vec![nodes[0], nodes[1]], vec![nodes[0], nodes[1]]],
            tree_edges: vec![], // 2 bags, 0 edges: disconnected
        };
        assert_eq!(td.verify(&g), Err(TwError::NotATree));
    }

    #[test]
    fn bad_bag_index_detected() {
        let (g, nodes) = chain(2);
        let td = TreeDecomposition {
            bags: vec![vec![nodes[0], nodes[1]]],
            tree_edges: vec![(0, 5)],
        };
        assert_eq!(td.verify(&g), Err(TwError::BadBagIndex(5)));
    }

    #[test]
    fn duplicate_nodes_in_bag_do_not_inflate() {
        let (g, nodes) = chain(2);
        let td = TreeDecomposition {
            bags: vec![vec![nodes[0], nodes[1], nodes[0]]],
            tree_edges: vec![],
        };
        // Width still computed from raw bag length (3-1=2), but validity holds.
        assert!(td.verify(&g).is_ok());
    }
}
