//! Seeded random DAG generators for experiments.
//!
//! The Table 1 ratio experiments measure algorithm/OPT over instance
//! families; these generators produce the families: chains, diamonds,
//! layered DAGs, fork-join DAGs, series-parallel DAGs (with their
//! ground-truth decomposition tree), and "race DAGs" with parallel edges
//! standing in for repeated updates. All take a caller-supplied
//! [`rand::Rng`], so experiments are reproducible from a seed.

use crate::graph::{Dag, NodeId};
use crate::normalize::normalize_source_sink;
use crate::sp::SpTree;
use rand::Rng;

/// A generated two-terminal DAG.
#[derive(Debug, Clone)]
pub struct TwoTerminal {
    /// The graph. Node and edge payloads are `()`; callers attach
    /// durations separately (usually keyed by id).
    pub dag: Dag<(), ()>,
    /// The unique source.
    pub source: NodeId,
    /// The unique sink.
    pub sink: NodeId,
}

/// A simple path `s -> v1 -> ... -> t` with `edges` edges.
pub fn chain(edges: usize) -> TwoTerminal {
    assert!(edges >= 1, "a chain needs at least one edge");
    let mut dag = Dag::with_capacity(edges + 1, edges);
    let first = dag.add_node(());
    let mut prev = first;
    for _ in 0..edges {
        let next = dag.add_node(());
        dag.add_edge(prev, next, ()).unwrap();
        prev = next;
    }
    TwoTerminal {
        dag,
        source: first,
        sink: prev,
    }
}

/// A diamond: `s` fans out to `width` middle nodes which join at `t`.
pub fn diamond(width: usize) -> TwoTerminal {
    assert!(width >= 1);
    let mut dag = Dag::with_capacity(width + 2, 2 * width);
    let s = dag.add_node(());
    let t = dag.add_node(());
    for _ in 0..width {
        let m = dag.add_node(());
        dag.add_edge(s, m, ()).unwrap();
        dag.add_edge(m, t, ()).unwrap();
    }
    TwoTerminal {
        dag,
        source: s,
        sink: t,
    }
}

/// Random layered DAG: `layers` layers of `width` nodes; every node gets
/// at least one incoming edge from the previous layer, plus extra edges
/// with probability `p`. Normalized to a single source/sink.
pub fn layered<R: Rng>(rng: &mut R, layers: usize, width: usize, p: f64) -> TwoTerminal {
    assert!(layers >= 1 && width >= 1);
    let mut dag: Dag<(), ()> = Dag::new();
    let mut grid: Vec<Vec<NodeId>> = Vec::with_capacity(layers);
    for l in 0..layers {
        let layer: Vec<NodeId> = (0..width).map(|_| dag.add_node(())).collect();
        if l > 0 {
            let prev = &grid[l - 1];
            for &v in &layer {
                // guaranteed connection
                let u = prev[rng.random_range(0..prev.len())];
                dag.add_edge(u, v, ()).unwrap();
                for &u in prev {
                    if rng.random_bool(p) {
                        dag.add_edge(u, v, ()).unwrap();
                    }
                }
            }
        }
        grid.push(layer);
    }
    let (source, sink) = normalize_source_sink(&mut dag, (), ());
    TwoTerminal { dag, source, sink }
}

/// Random fork-join DAG of the given recursion `depth`: every fork spawns
/// 2..=`max_branch` parallel chains of 1..=3 edges, recursively. Fork-join
/// DAGs model the cilk-style computations of §1.
pub fn fork_join<R: Rng>(rng: &mut R, depth: usize, max_branch: usize) -> TwoTerminal {
    assert!(max_branch >= 2);
    let mut dag: Dag<(), ()> = Dag::new();
    let s = dag.add_node(());
    let t = dag.add_node(());
    build_fj(rng, &mut dag, s, t, depth, max_branch);
    TwoTerminal {
        dag,
        source: s,
        sink: t,
    }
}

fn build_fj<R: Rng>(
    rng: &mut R,
    dag: &mut Dag<(), ()>,
    from: NodeId,
    to: NodeId,
    depth: usize,
    max_branch: usize,
) {
    if depth == 0 {
        dag.add_edge(from, to, ()).unwrap();
        return;
    }
    let branches = rng.random_range(2..=max_branch);
    for _ in 0..branches {
        let segments = rng.random_range(1..=3usize);
        let mut prev = from;
        for i in 0..segments {
            let next = if i + 1 == segments { to } else { dag.add_node(()) };
            if rng.random_bool(0.5) && depth > 0 {
                build_fj(rng, dag, prev, next, depth - 1, max_branch);
            } else {
                dag.add_edge(prev, next, ()).unwrap();
            }
            prev = next;
        }
    }
}

/// A generated series-parallel DAG together with its ground-truth
/// decomposition tree (leaves are edge ids of `dag`).
#[derive(Debug, Clone)]
pub struct GeneratedSp {
    /// The two-terminal graph.
    pub tt: TwoTerminal,
    /// A decomposition tree consistent with the construction.
    pub tree: SpTree,
}

/// Random two-terminal series-parallel DAG with exactly `leaves` edges.
pub fn random_sp<R: Rng>(rng: &mut R, leaves: usize) -> GeneratedSp {
    assert!(leaves >= 1);
    let mut dag: Dag<(), ()> = Dag::new();
    let s = dag.add_node(());
    let t = dag.add_node(());
    let tree = build_sp(rng, &mut dag, s, t, leaves);
    GeneratedSp {
        tt: TwoTerminal {
            dag,
            source: s,
            sink: t,
        },
        tree,
    }
}

fn build_sp<R: Rng>(
    rng: &mut R,
    dag: &mut Dag<(), ()>,
    from: NodeId,
    to: NodeId,
    leaves: usize,
) -> SpTree {
    if leaves == 1 {
        let e = dag.add_edge(from, to, ()).unwrap();
        return SpTree::leaf(e);
    }
    let left = rng.random_range(1..leaves);
    let right = leaves - left;
    if rng.random_bool(0.5) {
        // series: introduce a middle vertex
        let mid = dag.add_node(());
        let lt = build_sp(rng, dag, from, mid, left);
        let rt = build_sp(rng, dag, mid, to, right);
        lt.series(rt)
    } else {
        let lt = build_sp(rng, dag, from, to, left);
        let rt = build_sp(rng, dag, from, to, right);
        lt.parallel(rt)
    }
}

/// Random "race DAG": `n` internal nodes in a random topological order,
/// each connected from an earlier node, plus `extra` additional forward
/// edges (parallel edges allowed, modelling repeated updates to the same
/// cell). Normalized to a single source/sink.
pub fn random_race_dag<R: Rng>(rng: &mut R, n: usize, extra: usize) -> TwoTerminal {
    assert!(n >= 1);
    let mut dag: Dag<(), ()> = Dag::new();
    let nodes: Vec<NodeId> = (0..n).map(|_| dag.add_node(())).collect();
    for i in 1..n {
        let j = rng.random_range(0..i);
        dag.add_edge(nodes[j], nodes[i], ()).unwrap();
    }
    for _ in 0..extra {
        if n < 2 {
            break;
        }
        let i = rng.random_range(0..n - 1);
        let j = rng.random_range(i + 1..n);
        dag.add_edge(nodes[i], nodes[j], ()).unwrap();
    }
    let (source, sink) = normalize_source_sink(&mut dag, (), ());
    TwoTerminal { dag, source, sink }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sp::decompose;
    use crate::topo::is_acyclic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_shape() {
        let tt = chain(4);
        assert_eq!(tt.dag.node_count(), 5);
        assert_eq!(tt.dag.edge_count(), 4);
        assert_eq!(tt.dag.sources(), vec![tt.source]);
        assert_eq!(tt.dag.sinks(), vec![tt.sink]);
    }

    #[test]
    fn diamond_shape() {
        let tt = diamond(3);
        assert_eq!(tt.dag.node_count(), 5);
        assert_eq!(tt.dag.edge_count(), 6);
        assert!(is_acyclic(&tt.dag));
    }

    #[test]
    fn layered_single_terminal_acyclic() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let tt = layered(&mut rng, 4, 3, 0.3);
            assert!(is_acyclic(&tt.dag));
            assert_eq!(tt.dag.sources(), vec![tt.source]);
            assert_eq!(tt.dag.sinks(), vec![tt.sink]);
        }
    }

    #[test]
    fn fork_join_two_terminal() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let tt = fork_join(&mut rng, 2, 3);
            assert!(is_acyclic(&tt.dag));
            assert_eq!(tt.dag.sources(), vec![tt.source]);
            assert_eq!(tt.dag.sinks(), vec![tt.sink]);
        }
    }

    #[test]
    fn random_sp_is_recognized_with_same_leafcount() {
        let mut rng = StdRng::seed_from_u64(3);
        for leaves in [1usize, 2, 5, 12, 30] {
            let gsp = random_sp(&mut rng, leaves);
            assert_eq!(gsp.tree.leaf_count(), leaves);
            assert_eq!(gsp.tt.dag.edge_count(), leaves);
            let tree = decompose(&gsp.tt.dag, gsp.tt.source, gsp.tt.sink)
                .expect("generated SP graph must be recognized");
            assert_eq!(tree.leaf_count(), leaves);
        }
    }

    #[test]
    fn race_dag_two_terminal_acyclic() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let tt = random_race_dag(&mut rng, 12, 8);
            assert!(is_acyclic(&tt.dag));
            assert_eq!(tt.dag.sources(), vec![tt.source]);
            assert_eq!(tt.dag.sinks(), vec![tt.sink]);
        }
    }

    #[test]
    fn generators_deterministic_for_fixed_seed() {
        let a = {
            let mut rng = StdRng::seed_from_u64(42);
            let tt = random_race_dag(&mut rng, 10, 5);
            (tt.dag.node_count(), tt.dag.edge_count())
        };
        let b = {
            let mut rng = StdRng::seed_from_u64(42);
            let tt = random_race_dag(&mut rng, 10, 5);
            (tt.dag.node_count(), tt.dag.edge_count())
        };
        assert_eq!(a, b);
    }
}
